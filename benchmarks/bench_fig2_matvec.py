"""Figure 2 — single-CPU-core runtimes of one implicit matvec ``W·x``.

The paper compares, over ν ∈ [10, 25]:

* ``Xmvp(ν)`` — exact XOR product, ``Θ(N²)``-class cost (≡ Smvp),
* ``Xmvp(1)`` — coarsest possible sparsification, ``Θ(N(ν+1))``,
* ``Fmmp``   — exact fast product, ``Θ(N log₂ N)``,

with ``O(N²)`` and ``O(N log₂ N)`` guide lines.  The headline shape:
**Fmmp is exact yet beats even the least-accurate Xmvp(1) from small ν
onward**, while the exact Xmvp(ν) blows up quadratically.

We measure real NumPy wall-clock where feasible (dense/quadratic
operators stop where memory/time does — exactly like the truncated
curves in the paper) and extrapolate along the known complexity laws,
the paper's own procedure for ν ≥ 22.
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, Xmvp
from repro.perf import ComplexityLaw, fit_and_extend, measure_series
from repro.reporting import SeriesBundle, format_seconds

P = 0.01
TARGET_NUS = list(range(10, 26))
FMMP_NUS = list(range(10, 21))
XMVP1_NUS = list(range(10, 19))
XMVPNU_NUS = list(range(10, 14))


def _landscape(nu):
    return RandomLandscape(nu, c=5.0, sigma=1.0, seed=nu)


@pytest.fixture(scope="module")
def measured():
    fmmp = measure_series(
        "Fmmp",
        FMMP_NUS,
        lambda nu: Fmmp(UniformMutation(nu, P), _landscape(nu)),
        repeats=3,
        min_time=0.002,
    )
    xmvp1 = measure_series(
        "Xmvp(1)",
        XMVP1_NUS,
        lambda nu: Xmvp(UniformMutation(nu, P), _landscape(nu), 1),
        repeats=3,
        min_time=0.002,
    )
    xmvp_nu = measure_series(
        "Xmvp(nu)",
        XMVPNU_NUS,
        lambda nu: Xmvp(UniformMutation(nu, P), _landscape(nu), nu),
        repeats=2,
        min_time=0.0,
        budget_s=5.0,
    )
    return fmmp, xmvp1, xmvp_nu


def test_fig2_matvec_runtimes(measured, benchmark):
    fmmp, xmvp1, xmvp_nu = measured

    # pytest-benchmark timing of the headline operator at a mid-size ν.
    op = Fmmp(UniformMutation(16, P), _landscape(16))
    v = _landscape(16).start_vector()
    benchmark(lambda: op.matvec(v))

    # --- extrapolate along the complexity laws (paper's procedure) ----
    full_fmmp = fit_and_extend(ComplexityLaw.N_LOG2_N, fmmp.nus, fmmp.seconds, TARGET_NUS)
    xmvp1_law = lambda nu: float(1 << nu) * (nu + 1)
    full_x1 = fit_and_extend(xmvp1_law, xmvp1.nus, xmvp1.seconds, TARGET_NUS)
    full_xn = fit_and_extend(ComplexityLaw.N_SQUARED, xmvp_nu.nus, xmvp_nu.seconds, TARGET_NUS)

    bundle = SeriesBundle("Fig. 2: matvec runtimes, 1 CPU core [s]", x_label="nu")
    bundle.add_mapping("Xmvp(nu)", dict(zip(TARGET_NUS, full_xn)))
    bundle.add_mapping("Xmvp(1)", dict(zip(TARGET_NUS, full_x1)))
    bundle.add_mapping("Fmmp", dict(zip(TARGET_NUS, full_fmmp)))
    guide_n2 = fit_and_extend(ComplexityLaw.N_SQUARED, xmvp_nu.nus, xmvp_nu.seconds, TARGET_NUS)
    guide_nlogn = fit_and_extend(ComplexityLaw.N_LOG2_N, fmmp.nus, fmmp.seconds, TARGET_NUS)
    bundle.add_mapping("O(N^2) guide", dict(zip(TARGET_NUS, guide_n2)))
    bundle.add_mapping("O(NlogN) guide", dict(zip(TARGET_NUS, guide_nlogn)))

    rows = []
    for i, nu in enumerate(TARGET_NUS):
        measured_marks = (
            "m" if nu in fmmp.nus else "e",
            "m" if nu in xmvp1.nus else "e",
            "m" if nu in xmvp_nu.nus else "e",
        )
        rows.append(
            [
                nu,
                format_seconds(full_xn[i]) + f" ({measured_marks[2]})",
                format_seconds(full_x1[i]) + f" ({measured_marks[1]})",
                format_seconds(full_fmmp[i]) + f" ({measured_marks[0]})",
            ]
        )
    from repro.reporting import render_table

    txt = render_table(
        ["nu", "Xmvp(nu)", "Xmvp(1)", "Fmmp"],
        rows,
        title="Fig. 2 — W·x runtimes, single CPU core (m=measured, e=extrapolated)",
    )

    # --------------------------- shape assertions ---------------------
    # 1. Fmmp (exact!) runs within a small constant factor of the
    #    *least accurate* Xmvp(1) and shares its slope.  The paper's C
    #    implementation puts Fmmp strictly ahead from small ν; NumPy's
    #    vectorized gathers carry less bookkeeping than the authors'
    #    Xmvp code, so here the constant is near 1 and the crossover
    #    point (driven by cache effects on the gathers, which the paper
    #    itself cites) is machine/noise-dependent — we assert the ratio
    #    band and *report* the measured crossover.
    common = sorted(set(fmmp.nus) & set(xmvp1.nus))
    ratios = {
        nu: fmmp.seconds[fmmp.nus.index(nu)] / xmvp1.seconds[xmvp1.nus.index(nu)]
        for nu in common
    }
    tail = [ratios[nu] for nu in common[-4:]]
    assert all(0.2 < r < 4.0 for r in tail), (
        f"Fmmp and Xmvp(1) must share slope (bounded ratio): {ratios}"
    )
    wins = {nu: r < 1.0 for nu, r in ratios.items()}
    crossover = min((nu for nu, w in wins.items() if w), default=None)

    # 2. Exact Xmvp(nu) is orders of magnitude slower at nu = 25.
    assert full_xn[-1] / full_fmmp[-1] > 1e3

    # 3. Growth shapes: per-doubling ratio of Fmmp ≈ 2·(ν+1)/ν (N log N),
    #    of Xmvp(nu) ≈ 4 (N²).  Check measured tails loosely.
    f_ratio = fmmp.seconds[-1] / fmmp.seconds[-2]
    assert 1.5 < f_ratio < 3.5, f"Fmmp per-nu growth {f_ratio}"
    x_ratio = xmvp_nu.seconds[-1] / xmvp_nu.seconds[-2]
    assert 2.5 < x_ratio < 7.0, f"Xmvp(nu) per-nu growth {x_ratio}"

    txt += (
        f"\n\nFmmp/Xmvp(1) time ratios: "
        + ", ".join(f"nu={nu}: {r:.2f}" for nu, r in ratios.items())
        + f"\nfirst measured Fmmp win over Xmvp(1): "
        + (f"nu = {crossover}" if crossover is not None else "none in range (NumPy constant factors; see EXPERIMENTS.md)")
    )
    txt += f"\nXmvp(nu)/Fmmp time ratio at nu=25 (extrapolated): {full_xn[-1] / full_fmmp[-1]:.2e}"
    report("fig2_matvec_runtimes", txt, csv=bundle.to_csv())

"""Batched Fmmp crossover bench → ``BENCH_fmmp.json``.

Measures the scalar 7-pass ``Fmmp.matvec`` against the stage-fused
multi-vector ``BatchedFmmp.matmat`` at ν = 18 for block widths
B ∈ {4, 16, 64}, records effective bandwidths and per-vector speedups
(next to the roofline model's predictions) into ``BENCH_fmmp.json`` at
the repository root, and **fails** if the B = 16 per-vector throughput
does not clear the 1.5× acceptance bar.

Run it as part of the perf gate tier::

    pytest benchmarks/bench_batched.py -m perf_smoke

or with the rest of the paper-reproduction benches
(``pytest benchmarks/``).
"""

import json
import os

import pytest

from conftest import report
from repro.perf import (
    batched_fmmp_costs,
    fmmp_costs,
    measure_batched_matmat,
    modeled_crossover_batch,
    modeled_speedup,
)

NU = 18
BATCHES = (4, 16, 64)
ACCEPT_BATCH = 16
ACCEPT_SPEEDUP = 1.5
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_fmmp.json")


@pytest.fixture(scope="module")
def measurements():
    return {
        b: measure_batched_matmat(NU, b, repeats=5, min_time=0.02) for b in BATCHES
    }


@pytest.mark.perf_smoke
def test_batched_crossover_and_record(measurements):
    points = []
    lines = [
        f"Batched Fmmp crossover, nu={NU} (N={1 << NU})",
        f"{'B':>4} {'single ms':>10} {'batched ms':>11} {'single GB/s':>12} "
        f"{'batched GB/s':>13} {'speedup/vec':>12} {'modeled':>8}",
    ]
    for b in BATCHES:
        m = measurements[b]
        model = modeled_speedup(NU, b)
        points.append({**m.to_dict(), "modeled_speedup": model})
        lines.append(
            f"{b:>4} {m.single_s * 1e3:>10.3f} {m.batched_s * 1e3:>11.3f} "
            f"{m.single_gbs:>12.2f} {m.batched_gbs:>13.2f} "
            f"{m.per_vector_speedup:>12.2f} {model:>8.2f}"
        )
    crossover = modeled_crossover_batch(NU, target_speedup=ACCEPT_SPEEDUP)
    payload = {
        "kind": "repro.BENCH_fmmp.v1",
        "nu": NU,
        "n": 1 << NU,
        "accept": {"batch": ACCEPT_BATCH, "per_vector_speedup": ACCEPT_SPEEDUP},
        "scalar_model_bytes": fmmp_costs(NU).bytes_moved,
        "fused_model_bytes_b16": batched_fmmp_costs(NU, 16).bytes_moved,
        "modeled_crossover_batch": crossover,
        "points": points,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    lines.append(f"modeled crossover batch (>= {ACCEPT_SPEEDUP}x): {crossover}")
    lines.append(f"recorded: {os.path.abspath(OUT_PATH)}")
    report("bench_batched", "\n".join(lines))

    accept = measurements[ACCEPT_BATCH]
    assert accept.per_vector_speedup >= ACCEPT_SPEEDUP, (
        f"batched B={ACCEPT_BATCH} per-vector throughput is only "
        f"{accept.per_vector_speedup:.2f}x the scalar path at nu={NU} "
        f"(acceptance bar: {ACCEPT_SPEEDUP}x)"
    )


@pytest.mark.perf_smoke
def test_speedup_grows_with_batch(measurements):
    """Wider blocks amortize the scale passes better — the measured
    series should not collapse as B grows."""
    s = [measurements[b].per_vector_speedup for b in BATCHES]
    assert s[-1] >= 1.0  # B=64 must beat scalar outright

"""Section 3 ablation — solver choice: power iteration vs the
alternatives the paper weighs.

The paper argues power iteration gives "the best balance between storage
requirements and accuracy": Lanczos converges in fewer matvecs but keeps
a basis of length-N vectors; shift-and-invert methods converge fastest
but need inner solves.  This bench measures all three trade-off axes
(matvecs, extra storage, wall-clock) on the same problem.
"""

import time

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, ShiftedOperator
from repro.operators.shifted import conservative_shift
from repro.reporting import format_seconds, render_table
from repro.solvers import Lanczos, PowerIteration, cg_inverse_iteration

NU = 12
P = 0.01
TOL = 1e-10


@pytest.fixture(scope="module")
def results():
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=17)
    sym = Fmmp(mut, ls, form="symmetric")
    start = np.sqrt(ls.values())

    out = {}

    t0 = time.perf_counter()
    pi = PowerIteration(sym, tol=TOL).solve(start, landscape=ls, form="symmetric")
    out["power iteration"] = (pi, time.perf_counter() - t0, pi.iterations, 1)

    mu = conservative_shift(mut, ls)
    t0 = time.perf_counter()
    pis = PowerIteration(ShiftedOperator(sym, mu), tol=TOL).solve(
        start, landscape=ls, form="symmetric"
    )
    out["shifted power"] = (pis, time.perf_counter() - t0, pis.iterations, 1)

    t0 = time.perf_counter()
    lz = Lanczos(sym, tol=TOL).solve(start, landscape=ls, form="symmetric")
    out["Lanczos"] = (lz, time.perf_counter() - t0, lz.iterations, lz.iterations + 1)

    t0 = time.perf_counter()
    inv = cg_inverse_iteration(sym, start=start, mu=ls.fmax * 1.05, tol=TOL)
    out["CG inverse iteration"] = (inv, time.perf_counter() - t0, inv.iterations, 4)

    return ls, out


def test_solver_tradeoffs(results, benchmark):
    ls, out = results
    mut = UniformMutation(NU, P)
    sym = Fmmp(mut, ls, form="symmetric")
    benchmark(
        lambda: PowerIteration(sym, tol=TOL).solve(np.sqrt(ls.values()))
    )

    ref = out["power iteration"][0]
    rows = []
    for label, (res, dt, iters, storage) in out.items():
        rows.append(
            [label, iters, storage, format_seconds(dt), f"{res.eigenvalue:.12f}"]
        )
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-7), label
    txt = render_table(
        ["solver", "outer iters", "extra N-vectors", "time", "lambda_0"],
        rows,
        title=f"Sec. 3 — solver trade-offs on W (nu={NU}, random landscape, tol={TOL:g})",
    )

    # The paper's qualitative points:
    assert out["shifted power"][2] < out["power iteration"][2]
    assert out["Lanczos"][2] < out["power iteration"][2]
    assert out["Lanczos"][3] > out["power iteration"][3], "Lanczos stores a basis"
    assert out["CG inverse iteration"][2] < out["power iteration"][2]
    txt += (
        "\n\npower iteration: most matvecs but O(1) extra vectors — the "
        "paper's choice once 2^nu vectors barely fit in memory."
    )
    report("solver_tradeoffs", txt)

"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench registers the tables/series it reproduces through
:func:`report`; they are printed in the terminal summary (so they appear
in ``pytest benchmarks/ --benchmark-only`` output regardless of capture
settings) and written to ``benchmarks/out/`` as text + CSV artifacts.
"""

from __future__ import annotations

import os

_REPORTS: list[tuple[str, str]] = []

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(name: str, text: str, *, csv: str | None = None) -> None:
    """Register a rendered table for the terminal summary and persist it."""
    _REPORTS.append((name, text))
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    if csv is not None:
        with open(os.path.join(OUT_DIR, f"{name}.csv"), "w", encoding="utf-8") as fh:
            fh.write(csv)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction outputs")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)

"""Ablation — the three equivalent eigenproblem forms (Eqs. 3–5).

The paper observes that the right (``Q·F``), symmetric (``F^½QF^½``) and
left (``F·Q``) formulations are similar matrices, so any may be chosen;
Sec. 3 exploits the freedom by picking the symmetric one when symmetry
helps.  This ablation measures what the choice actually costs/buys with
the power iteration: identical spectra and identical concentrations
(asserted), identical iteration counts (same eigenvalue ratios!), and
only the diagonal-scaling overhead differing.
"""

import time

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.reporting import format_seconds, render_table
from repro.solvers import PowerIteration

NU = 14
P = 0.01
TOL = 1e-12


@pytest.fixture(scope="module")
def form_results():
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=44)
    out = {}
    for form in ("right", "symmetric", "left"):
        op = Fmmp(mut, ls, form=form)
        t0 = time.perf_counter()
        res = PowerIteration(op, tol=TOL).solve(
            ls.start_vector(), landscape=ls, form=form
        )
        out[form] = (res, time.perf_counter() - t0, op.costs())
    return out


def test_eigenproblem_forms(form_results, benchmark):
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=44)
    op = Fmmp(mut, ls, form="symmetric")
    benchmark(lambda: PowerIteration(op, tol=TOL).solve(ls.start_vector()))

    out = form_results
    rows = []
    for form, (res, dt, costs) in out.items():
        rows.append(
            [
                form,
                f"{res.eigenvalue:.12f}",
                res.iterations,
                format_seconds(dt),
                f"{costs.flops:.3g}",
            ]
        )
    txt = render_table(
        ["form", "lambda_0", "iterations", "time", "flops/matvec"],
        rows,
        title=f"Eqs. (3)-(5) — the three equivalent eigenproblem forms (nu={NU}, p={P})",
    )

    ref = out["right"][0]
    for form, (res, _, _) in out.items():
        # Similar matrices: same eigenvalue ...
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-9), form
        # ... and, after the F^{±1/2} conversions, same concentrations.
        np.testing.assert_allclose(
            res.concentrations, ref.concentrations, atol=1e-8, err_msg=form
        )
    # Same spectrum ⇒ same convergence ratio ⇒ (nearly) same iterations.
    iters = [res.iterations for res, _, _ in out.values()]
    assert max(iters) - min(iters) <= max(3, int(0.1 * max(iters)))
    # The symmetric form pays one extra diagonal pass per matvec.
    assert out["symmetric"][2].flops > out["right"][2].flops

    txt += (
        "\n\nAll three forms deliver the same eigenpair with (nearly) the same "
        "iteration count — the choice only buys structure: 'symmetric' "
        "enables Lanczos/deflation at one extra diagonal pass per matvec."
    )
    report("eigenproblem_forms", txt)

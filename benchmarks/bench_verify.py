"""Overhead of the differential verification harness itself.

The registry is meant to run after every refactor, so its own cost is
part of the development-loop budget.  This bench tracks:

* one full-registry spec run (invariants + product + solver tiers),
* the product-oracle tier alone (the per-commit smoke configuration),
* whole-grid throughput on the smoke grid.

Timings land in the perf trajectory via ``pytest-benchmark``; the check
counts are reported so a silently shrinking registry is caught.
"""

import pytest

from conftest import report
from repro.reporting import render_table
from repro.util.rng import as_generator
from repro.verify import (
    ProblemSpec,
    default_registry,
    run_product_oracles,
    run_verification,
)

SPEC = ProblemSpec(nu=6, p=0.03, landscape="random", seed=1)


def test_registry_single_spec(benchmark):
    registry = default_registry()
    rep = benchmark(lambda: registry.run_spec(SPEC, rng=0))
    assert rep.passed
    assert len(rep.checks) >= 15


def test_product_tier_only(benchmark):
    checks = benchmark(lambda: run_product_oracles(SPEC, as_generator(0)))
    assert all(c.passed for c in checks)


def test_smoke_grid_throughput(benchmark):
    rep = benchmark(lambda: run_verification("smoke"))
    assert rep.passed

    rows = [
        ["smoke grid specs", str(len(rep.spec_reports))],
        ["total checks", str(rep.total_checks)],
        ["checks per spec", f"{rep.total_checks / len(rep.spec_reports):.1f}"],
    ]
    report(
        "verify_overhead",
        render_table(["quantity", "value"], rows,
                     title="verification harness coverage (smoke grid)"),
    )

"""Ablation — classic first-order theory vs the exact solver.

The pre-fast-solver literature ([5, 17] in the paper) worked from
closed forms: master fidelity ``Q̄ = (1−p)^ν``, threshold
``p_max = 1 − σ₀^{−1/ν}``, no-backmutation master frequency
``(σ₀Q̄ − 1)/(σ₀ − 1)``.  The exact machinery lets us *measure* their
error across the phase diagram — they are excellent deep in the ordered
phase and collapse near the threshold, which is precisely the regime
the paper's solvers open up.
"""

import numpy as np
import pytest

from conftest import report
from repro.analysis.approximations import (
    classic_threshold,
    no_backmutation_growth,
    no_backmutation_master_frequency,
)
from repro.landscapes import SinglePeakLandscape
from repro.model.antiviral import find_threshold
from repro.reporting import render_table
from repro.solvers import ReducedSolver

NU = 20
SIGMA = 2.0


@pytest.fixture(scope="module")
def phase_scan():
    ls = SinglePeakLandscape(NU, SIGMA, 1.0)
    p_max = classic_threshold(NU, SIGMA)
    fractions = (0.1, 0.3, 0.5, 0.7, 0.9, 0.97)
    rows = []
    for frac in fractions:
        p = frac * p_max
        exact = ReducedSolver(NU, p, ls).solve()
        x0_exact = exact.concentrations[0]
        x0_theory = no_backmutation_master_frequency(NU, p, SIGMA)
        lam_theory = no_backmutation_growth(ls, p)
        rows.append(
            (
                frac,
                p,
                x0_exact,
                x0_theory,
                abs(x0_theory - x0_exact) / x0_exact,
                exact.eigenvalue,
                lam_theory,
            )
        )
    return ls, p_max, rows


def test_classic_theory_accuracy(phase_scan, benchmark):
    ls, p_max, rows = phase_scan
    benchmark(lambda: ReducedSolver(NU, 0.5 * p_max, ls).solve())

    table_rows = [
        [
            f"{frac:.2f}",
            f"{p:.4f}",
            f"{x0e:.5f}",
            f"{x0t:.5f}",
            f"{err:.1%}",
            f"{lame:.5f}",
            f"{lamt:.5f}",
        ]
        for frac, p, x0e, x0t, err, lame, lamt in rows
    ]
    txt = render_table(
        ["p/p_max", "p", "[G0] exact", "[G0] theory", "rel err", "lambda0 exact", "lambda0 theory"],
        table_rows,
        title=f"Classic no-backmutation theory vs exact (single peak, nu={NU}, sigma={SIGMA})",
    )

    errs = [r[4] for r in rows]
    # Accurate deep in the ordered phase; degrading monotonically toward
    # the threshold; useless at its edge.
    assert errs[0] < 0.02
    assert all(a <= b + 1e-12 for a, b in zip(errs, errs[1:])), errs
    assert errs[-1] > 0.25

    # The analytic and bisection-detected thresholds agree within the
    # finite-size smearing.
    detected = find_threshold(ls, tol_p=1e-3)
    assert detected == pytest.approx(p_max, rel=0.25)

    txt += (
        f"\n\nanalytic p_max = {p_max:.4f}; exact-solver (bisection) p_max = {detected:.4f}"
        "\nfirst-order theory holds to ~2% deep in the ordered phase and "
        "collapses near the threshold — the regime where only the exact "
        "solvers answer."
    )
    report("classic_theory_accuracy", txt)

"""Figure 4 — speedups over CPU-Pi(Xmvp(ν)) for algorithm × hardware.

The paper divides every (algorithm, hardware) total-time curve by the
reference ``CPU-Pi(Xmvp(ν))`` and plots, with the theoretical
``N²/(N log₂ N)`` guide line:

* GPU-Pi(Fmmp)   — the headline: ≈ 2·10⁷ at ν = 25,
* CPU-Pi(Fmmp),
* GPU-Pi(Xmvp(5)), CPU-Pi(Xmvp(5)),
* GPU-Pi(Xmvp(ν)).

Qualitative observations asserted below: different algorithms ⇒
different slopes; same algorithm on different hardware ⇒ parallel
(constant-ratio) curves; the Fmmp slope matches the guide line.

Times come from the pipeline cost model (pinned to the simulated device
by test_perf.py and bench_fig3) on the Tesla C2050 / Intel i5-750
profiles; iteration counts are measured at small ν and extended exactly
as in bench_fig3.
"""

import numpy as np
import pytest

from conftest import report
from repro.device.profile import INTEL_I5_750, INTEL_I5_750_SINGLE_CORE, TESLA_C2050
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.perf import PipelineCostModel
from repro.perf.speedup import SpeedupTable
from repro.reporting import SeriesBundle, format_sci, render_table
from repro.solvers import PowerIteration

P = 0.01
TARGET_NUS = list(range(10, 26))
MEASURE_NUS = list(range(10, 17))
TOL_EXACT = 1e-14
TOL_APPROX = 1e-10

#: (label, profile, operator, dmax, tolerance-class)
COMBOS = [
    ("GPU-Pi(Fmmp)", TESLA_C2050, "fmmp", None, "exact"),
    ("CPU-Pi(Fmmp)", INTEL_I5_750, "fmmp", None, "exact"),
    ("GPU-Pi(Xmvp(5))", TESLA_C2050, "xmvp", 5, "approx"),
    ("CPU-Pi(Xmvp(5))", INTEL_I5_750, "xmvp", 5, "approx"),
    ("GPU-Pi(Xmvp(nu))", TESLA_C2050, "xmvp", "nu", "exact"),
]


def _landscape(nu):
    return RandomLandscape(nu, c=5.0, sigma=1.0, seed=nu)


def _iteration_counts(tol):
    counts = {}
    for nu in MEASURE_NUS:
        ls = _landscape(nu)
        op = Fmmp(UniformMutation(nu, P), ls)
        counts[nu] = PowerIteration(op, tol=tol, max_iterations=20_000).solve(
            ls.start_vector()
        ).iterations
    nus = np.array(sorted(counts))
    vals = np.array([counts[n] for n in nus], dtype=float)
    slope, intercept = np.polyfit(nus, vals, 1)
    return {nu: int(counts.get(nu, round(slope * nu + intercept))) for nu in TARGET_NUS}


@pytest.fixture(scope="module")
def speedup_table():
    iters = {"exact": _iteration_counts(TOL_EXACT), "approx": _iteration_counts(TOL_APPROX)}
    # All Xmvp variants use the fused (paper-style) implementation model.
    reference = {
        nu: PipelineCostModel(nu, "xmvp", nu, fused_xmvp=True).total_time(
            INTEL_I5_750_SINGLE_CORE, iters["exact"][nu]
        )
        for nu in TARGET_NUS
    }
    candidates = {}
    for label, profile, operator, dmax, tol_class in COMBOS:
        times = {}
        for nu in TARGET_NUS:
            d = nu if dmax == "nu" else dmax
            times[nu] = PipelineCostModel(nu, operator, d, fused_xmvp=True).total_time(
                profile, iters[tol_class][nu]
            )
        candidates[label] = times
    return SpeedupTable.build("CPU-Pi(Xmvp(nu))", reference, candidates)


def test_fig4_speedup_factors(speedup_table, benchmark):
    table = speedup_table

    # The benchmarked unit: assembling the full table from the models.
    benchmark(lambda: SpeedupTable.build(
        "ref",
        {nu: PipelineCostModel(nu, "xmvp", nu).total_time(INTEL_I5_750_SINGLE_CORE, 40) for nu in TARGET_NUS},
        {"f": {nu: PipelineCostModel(nu, "fmmp").total_time(TESLA_C2050, 40) for nu in TARGET_NUS}},
    ))

    labels = ["N^2/(N log2 N)"] + [c[0] for c in COMBOS]
    rows = []
    for nu in TARGET_NUS:
        rows.append([nu] + [format_sci(table.at(lbl, nu)) for lbl in labels])
    txt = render_table(
        ["nu"] + labels,
        rows,
        title="Fig. 4 — speedup over CPU-Pi(Xmvp(nu)) (reference: Intel i5-750, 1 core)",
    )

    bundle = SeriesBundle("Fig. 4: speedups", x_label="nu")
    for lbl in labels:
        bundle.add_mapping(lbl, table.series[lbl])

    # ------------------------------ shape assertions ------------------
    headline = table.at("GPU-Pi(Fmmp)", 25)
    assert 1e6 <= headline <= 1e9, f"GPU-Pi(Fmmp) at nu=25: {headline:.2e} (paper ~2e7)"

    # Same algorithm, different hardware ⇒ (asymptotically) parallel
    # curves — the paper's wording; at small ν the GPU's launch
    # overhead bends its curve, so slopes are compared on the tail.
    TAIL = 19
    assert table.slope("GPU-Pi(Fmmp)", min_nu=TAIL) == pytest.approx(
        table.slope("CPU-Pi(Fmmp)", min_nu=TAIL), rel=0.10
    )
    assert table.slope("GPU-Pi(Xmvp(5))", min_nu=TAIL) == pytest.approx(
        table.slope("CPU-Pi(Xmvp(5))", min_nu=TAIL), rel=0.10
    )

    # Different algorithms ⇒ different slopes; Fmmp's matches the
    # theoretical N²/(N log₂ N) guide line.
    s_fmmp = table.slope("GPU-Pi(Fmmp)", min_nu=TAIL)
    s_x5 = table.slope("GPU-Pi(Xmvp(5))", min_nu=TAIL)
    s_xn = table.slope("GPU-Pi(Xmvp(nu))", min_nu=TAIL)
    s_guide = table.slope("N^2/(N log2 N)", min_nu=TAIL)
    assert s_fmmp > s_x5 > s_xn
    assert s_fmmp == pytest.approx(s_guide, rel=0.15)
    # Same algorithm as the reference on faster hardware: flat curve.
    assert abs(s_xn) < 0.05

    # Conclusions claim: Fmmp ≈ 250× over the approximative Xmvp(5) on
    # the same hardware at ν = 25 (our roofline puts it somewhat higher;
    # same winner/slope — see EXPERIMENTS.md).
    vs_approx = table.at("GPU-Pi(Fmmp)", 25) / table.at("GPU-Pi(Xmvp(5))", 25)
    assert 100 <= vs_approx <= 5000, f"Fmmp vs Xmvp(5): {vs_approx:.0f} (paper ~250)"

    txt += f"\n\nGPU-Pi(Fmmp) speedup at nu=25: {headline:.2e} (paper: ~2e7)"
    txt += f"\nGPU Fmmp vs GPU Xmvp(5) at nu=25: {vs_approx:.0f}x (paper: ~250x)"
    txt += (
        "\nslopes [decades/nu]: "
        + ", ".join(f"{lbl}: {table.slope(lbl):+.3f}" for lbl in labels)
    )
    report("fig4_speedups", txt, csv=bundle.to_csv())

"""Ablation — the spectral gap closes at the error threshold.

Not a paper figure, but the spectral mechanism *behind* two of them:
the power iteration's convergence rate is λ₁/λ₀ (Sec. 3), and the
error threshold of Fig. 1 is precisely where the dominant eigenvalue
becomes nearly degenerate.  We sweep p on the ν = 12 single-peak
landscape and measure both the gap (by deflation) and the resulting
power-iteration cost: iteration counts blow up in the threshold region
and the stationary distribution flips to uniform right there.

This also quantifies DESIGN.md's modeling assumption for Fig. 3 — that
iteration counts vary slowly in ν *away* from the threshold — by showing
what controls them.
"""

import numpy as np
import pytest

from conftest import report
from repro.analysis.spectral import spectral_gap
from repro.landscapes import SinglePeakLandscape
from repro.model.concentrations import uniform_class_concentrations
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.reporting import render_table
from repro.solvers import PowerIteration, ReducedSolver, dense_solve

NU = 12
RATES = (0.005, 0.02, 0.04, 0.055, 0.07, 0.12)
# ln(2)/12 ≈ 0.058: the sweep brackets the threshold.


@pytest.fixture(scope="module")
def gap_sweep():
    ls = SinglePeakLandscape(NU, 2.0, 1.0)
    rows = []
    for p in RATES:
        mut = UniformMutation(NU, p)
        op = Fmmp(mut, ls, form="symmetric")
        ref = dense_solve(mut, ls, form="symmetric")
        gap = spectral_gap(op, ref.eigenvalue, ref.eigenvector, tol=1e-8)
        pi = PowerIteration(op, tol=1e-10, max_iterations=500_000).solve(
            np.sqrt(ls.values())
        )
        g0 = ReducedSolver(NU, p, ls).solve().concentrations[0]
        rows.append((p, gap, pi.iterations, g0))
    return rows


def test_gap_closes_at_threshold(gap_sweep, benchmark):
    ls = SinglePeakLandscape(NU, 2.0, 1.0)
    mut = UniformMutation(NU, 0.02)
    ref = dense_solve(mut, ls, form="symmetric")
    op = Fmmp(mut, ls, form="symmetric")
    benchmark(lambda: spectral_gap(op, ref.eigenvalue, ref.eigenvector, tol=1e-7))

    rows = gap_sweep
    uni0 = uniform_class_concentrations(NU)[0]
    table_rows = [
        [f"{p:.3f}", f"{gap:.6f}", iters, f"{g0:.3e}"]
        for p, gap, iters, g0 in rows
    ]
    txt = render_table(
        ["p", "lambda1/lambda0", "Pi iterations", "[Gamma_0]"],
        table_rows,
        title=f"Spectral gap vs error rate (single peak, nu={NU}; "
        f"threshold ~ ln2/{NU} = {np.log(2) / NU:.3f})",
    )

    gaps = [r[1] for r in rows]
    iters = [r[2] for r in rows]
    # The gap ratio rises monotonically toward the threshold region,
    # peaks there (finite ν rounds the would-be degeneracy: ≈0.94 at
    # ν = 12), and recedes beyond it.
    assert all(a < b + 1e-9 for a, b in zip(gaps[:3], gaps[1:4]))
    peak = int(np.argmax(gaps))
    assert RATES[peak] == pytest.approx(np.log(2) / NU, abs=0.02), (
        f"gap must peak at the threshold: peak at p={RATES[peak]}, gaps={gaps}"
    )
    assert gaps[peak] > 0.9, f"near-degeneracy at the threshold: {gaps}"
    assert gaps[-1] < gaps[peak] - 0.05, "gap recedes beyond the threshold"
    # Iteration counts blow up in the threshold region relative to the
    # deep ordered phase.
    assert max(iters[2:5]) > 5 * iters[0], (iters, gaps)
    # And the order parameter collapses across the same region.
    assert rows[0][3] > 1e3 * uni0
    assert rows[-1][3] < 10 * uni0

    txt += (
        "\n\nThe power iteration's convergence rate IS the gap (Sec. 3); "
        "its cost peaks exactly where Fig. 1 collapses — the spectral "
        "mechanism of the error threshold."
    )
    report("spectral_gap_vs_threshold", txt)

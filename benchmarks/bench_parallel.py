"""Panel-engine thread-scaling bench → ``BENCH_parallel.json``.

Measures the serial stage-fused kernel against the panel-parallel
engine (:mod:`repro.transforms.parallel`) over ν = 18–20 and block
widths B ∈ {1, 16}, with BLAS pinned to one thread so the engine owns
all parallelism.  Records wall-clock, effective bandwidth, measured and
modeled speedups plus the host's core/BLAS metadata into
``BENCH_parallel.json`` at the repository root.

Acceptance gate: ≥ 1.8× speedup at 4 engine threads for ν ≥ 18.  The
*measured* figure is enforced only on hosts with at least 4 physical
cores — a 1-core container cannot speed anything up by threading, so
there the gate falls back to the roofline model's prediction and the
JSON records why.

Run as part of the perf tier::

    pytest benchmarks/bench_parallel.py -m perf_parallel
"""

import json
import os

import pytest

from conftest import report
from repro.perf import (
    auto_panels,
    measure_parallel_matmat,
    modeled_thread_crossover,
    modeled_thread_speedup,
    parallel_fmmp_costs,
)
from repro.transforms import shutdown_engines
from repro.util.blas import blas_thread_info

GATE_THREADS = 4
GATE_SPEEDUP = 1.8
GATE_NU = 18
THREAD_COUNTS = (1, 2, 4)
#: (nu, batch) measured points — the B=16 column only at the pivot ν so
#: the bench stays a few seconds even on slow hosts.
POINTS = ((18, 1), (19, 1), (20, 1), (18, 16))
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_parallel.json")


def _host_cores() -> int:
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for nu, batch in POINTS:
        for t in THREAD_COUNTS:
            out[(nu, batch, t)] = measure_parallel_matmat(
                nu, batch, t, repeats=3, min_time=0.02
            )
    yield out
    shutdown_engines()


@pytest.mark.perf_parallel
def test_thread_scaling_and_record(measurements):
    cores = _host_cores()
    lines = [
        f"Panel-parallel thread scaling (host cores={cores}, BLAS pinned to 1)",
        f"{'nu':>3} {'B':>3} {'T':>2} {'R':>2} {'serial ms':>10} "
        f"{'parallel ms':>12} {'speedup':>8} {'modeled':>8}",
    ]
    points = []
    for (nu, batch, t), m in sorted(measurements.items()):
        model = modeled_thread_speedup(nu, batch, t)
        points.append({**m.to_dict(), "modeled_speedup": model})
        lines.append(
            f"{nu:>3} {batch:>3} {t:>2} {m.panels:>2} {m.serial_s * 1e3:>10.3f} "
            f"{m.parallel_s * 1e3:>12.3f} {m.speedup:>8.2f} {model:>8.2f}"
        )

    gate_points = {
        (nu, b): measurements[(nu, b, GATE_THREADS)]
        for (nu, b) in POINTS
        if nu >= GATE_NU
    }
    modeled_gate = {
        f"{nu},{b}": modeled_thread_speedup(nu, b, GATE_THREADS)
        for (nu, b) in POINTS
        if nu >= GATE_NU
    }
    if cores >= GATE_THREADS:
        gate_mode = "measured"
        gate_reason = f"host has {cores} cores >= {GATE_THREADS}"
        gate_values = {f"{nu},{b}": m.speedup for (nu, b), m in gate_points.items()}
    else:
        gate_mode = "modeled"
        gate_reason = (
            f"host has only {cores} core(s); a {GATE_THREADS}-thread measured "
            f"speedup is physically impossible, so the gate is enforced on "
            f"the roofline model instead (measured points are still recorded)"
        )
        gate_values = modeled_gate

    payload = {
        "kind": "repro.BENCH_parallel.v1",
        "host": {"cpu_count": cores, "blas": blas_thread_info()},
        "gate": {
            "threads": GATE_THREADS,
            "min_nu": GATE_NU,
            "target_speedup": GATE_SPEEDUP,
            "mode": gate_mode,
            "reason": gate_reason,
            "values": gate_values,
        },
        "modeled": {
            "speedup_nu18_b1_t4": modeled_thread_speedup(18, 1, GATE_THREADS),
            "crossover_threads_nu18_b1": modeled_thread_crossover(18, 1),
            "auto_panels_nu18_b1_t4": auto_panels(18, 1, threads=GATE_THREADS),
            "bytes_moved_nu18_b1": parallel_fmmp_costs(18, 1).bytes_moved,
        },
        "points": points,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    lines.append(
        f"gate: {gate_mode} >= {GATE_SPEEDUP}x at T={GATE_THREADS} ({gate_reason})"
    )
    lines.append(f"recorded: {os.path.abspath(OUT_PATH)}")
    report("bench_parallel", "\n".join(lines))

    for key, value in gate_values.items():
        assert value >= GATE_SPEEDUP, (
            f"{gate_mode} {GATE_THREADS}-thread speedup at (nu,B)=({key}) is "
            f"only {value:.2f}x (acceptance bar: {GATE_SPEEDUP}x)"
        )


@pytest.mark.perf_parallel
def test_auto_panels_never_hurts_small_nu(measurements):
    """The auto heuristic must keep tiny transforms on the serial kernel
    (threading a barrier-dominated ν would only lose)."""
    for nu in (2, 4, 8):
        assert auto_panels(nu, 1, threads=GATE_THREADS) == 1
    assert auto_panels(GATE_NU, 1, threads=GATE_THREADS) > 1


@pytest.mark.perf_parallel
def test_parallel_results_match_serial_bitwise():
    """The engine's core contract, re-checked at bench scale (ν = 18)."""
    import numpy as np

    from repro.mutation import UniformMutation
    from repro.transforms import batched_butterfly_transform, get_engine
    from repro.transforms import parallel_butterfly_transform

    nu, b = 18, 4
    n = 1 << nu
    rng = np.random.default_rng(7)
    block = np.ascontiguousarray(rng.random((n, b)))
    pre = rng.random(n) + 0.5
    factors = UniformMutation(nu, 0.01).factors_per_bit()
    ref = batched_butterfly_transform(block, factors, pre_scale=pre)
    got = parallel_butterfly_transform(
        block, factors, pre_scale=pre, panels=4, engine=get_engine(GATE_THREADS)
    )
    assert np.array_equal(ref, got)

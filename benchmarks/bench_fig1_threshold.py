"""Figure 1 — the error-threshold phenomenon.

Left panel: ν = 20 single-peak landscape (f₀ = 2, rest 1): the
cumulative class concentrations [Γ_k](p) collapse suddenly into the
uniform distribution at p_max ≈ 0.035.

Right panel: ν = 20 linear landscape (f₀ = 2, f_ν = 1): smooth
transition, no threshold.

Regenerated here with the exact (ν+1) reduction (Sec. 5.1) — the same
curves the paper plots, printed as a table over the p grid.
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import LinearLandscape, SinglePeakLandscape
from repro.model.concentrations import uniform_class_concentrations
from repro.model.threshold import sweep_error_rates
from repro.reporting import SeriesBundle

NU = 20
RATES = np.linspace(0.0025, 0.09, 36)
SHOWN_CLASSES = (0, 1, 2, 5, 10)  # subset of the 21 curves, for the table


def _sweep_to_bundle(title, landscape):
    sweep = sweep_error_rates(landscape, RATES)
    bundle = SeriesBundle(title, x_label="p", y_label="[Gamma_k]")
    for k in SHOWN_CLASSES:
        bundle.add_mapping(f"G{k}", dict(zip(sweep.error_rates, sweep.series(k))))
    return sweep, bundle


@pytest.fixture(scope="module")
def single_peak():
    return _sweep_to_bundle("Fig. 1 (left): single peak, nu=20", SinglePeakLandscape(NU, 2.0, 1.0))


@pytest.fixture(scope="module")
def linear():
    return _sweep_to_bundle("Fig. 1 (right): linear, nu=20", LinearLandscape(NU, 2.0, 1.0))


def test_fig1_left(single_peak, benchmark):
    """Single peak: sharp threshold at p_max ≈ 0.035."""
    sweep, bundle = single_peak
    # Benchmark one reduced solve (the per-grid-point work of the sweep).
    from repro.solvers import ReducedSolver

    benchmark(lambda: ReducedSolver(NU, 0.02, SinglePeakLandscape(NU, 2.0, 1.0)).solve())

    assert sweep.p_max is not None, "the single-peak landscape must show a threshold"
    assert 0.025 <= sweep.p_max <= 0.045, f"paper: ~0.035; got {sweep.p_max}"
    # Ordered phase below threshold: the master class dominates its
    # uniform value by orders of magnitude.
    below = sweep.class_concentrations[0]
    uni = uniform_class_concentrations(NU)
    assert below[0] > 1e4 * uni[0]
    # Above threshold: uniform at plotting resolution.
    above = sweep.class_concentrations[-1]
    np.testing.assert_allclose(above, uni, atol=0.02 * uni.max())
    # The Γ_k / Γ_{ν−k} color pairs of Fig. 1 meet once uniform.
    scale = above.max()
    for k in range(NU + 1):
        assert above[k] == pytest.approx(above[NU - k], abs=0.01 * scale)
    txt = bundle.render(float_fmt="{:.4g}") + f"\n\ndetected p_max = {sweep.p_max:.4f} (paper: ~0.035)"
    report("fig1_left_single_peak", txt, csv=bundle.to_csv())


def test_fig1_right(linear, benchmark):
    """Linear landscape: smooth transition, no error threshold."""
    sweep, bundle = linear
    from repro.solvers import ReducedSolver

    benchmark(lambda: ReducedSolver(NU, 0.02, LinearLandscape(NU, 2.0, 1.0)).solve())

    assert sweep.p_max is None, "the linear landscape must NOT show a threshold"
    # Smooth transition: the distance to the uniform distribution decays
    # monotonically and never *reaches* uniform inside the range (the
    # single-peak landscape, by contrast, hits uniform at p_max and
    # stays there — that is what the detector above keys on).
    uni = uniform_class_concentrations(NU)
    dist = np.abs(sweep.class_concentrations - uni[None, :]).max(axis=1)
    assert np.all(np.diff(dist) < 1e-12), "distance to uniform must decrease monotonically"
    assert dist[-1] > 0.02 * uni.max(), "never collapses to uniform inside the range"
    txt = bundle.render(float_fmt="{:.4g}") + "\n\nno threshold detected (paper: smooth transition)"
    report("fig1_right_linear", txt, csv=bundle.to_csv())

"""Section 5.1 — the exact (ν+1) reduction vs the full solvers.

Claims reproduced:

* the reduced solve is *exact* (matches the full solver to machine
  precision), so "approximative methods are not really needed";
* it is orders of magnitude faster than even the fast full solver and
  handles chain lengths no full solver can touch.
"""

import time

import numpy as np
import pytest

from conftest import report
from repro.landscapes import SinglePeakLandscape
from repro.model.concentrations import class_concentrations
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.reporting import format_seconds, render_table
from repro.solvers import PowerIteration, ReducedSolver

P = 0.01
FULL_NUS = (10, 12, 14, 16)
REDUCED_ONLY_NUS = (50, 100, 500, 1000)


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for nu in FULL_NUS:
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        t0 = time.perf_counter()
        red = ReducedSolver(nu, P, ls).solve()
        t_red = time.perf_counter() - t0
        mut = UniformMutation(nu, P)
        t0 = time.perf_counter()
        full = PowerIteration(Fmmp(mut, ls), tol=1e-13).solve(
            ls.start_vector(), landscape=ls
        )
        t_full = time.perf_counter() - t0
        err = float(
            np.abs(red.concentrations - class_concentrations(full.concentrations, nu)).max()
        )
        rows.append((nu, t_red, t_full, err))
    return rows


def test_reduced_exactness_and_speed(comparison, benchmark):
    benchmark(lambda: ReducedSolver(20, P, SinglePeakLandscape(20, 2.0, 1.0)).solve())

    rows = comparison
    table_rows = [
        [nu, format_seconds(t_red), format_seconds(t_full), f"{t_full / t_red:.0f}x", f"{err:.1e}"]
        for nu, t_red, t_full, err in rows
    ]
    txt = render_table(
        ["nu", "reduced", "full Pi(Fmmp)", "speedup", "max error"],
        table_rows,
        title="Sec. 5.1 — exact (nu+1) reduction vs full solver (single peak, p=0.01)",
    )

    for nu, t_red, t_full, err in rows:
        assert err < 1e-10, f"reduction must be exact (nu={nu}: {err:.1e})"
    # The speed gap widens with ν (reduced is ~O(ν³) dense vs O(N log N)).
    speedups = [t_full / t_red for _, t_red, t_full, _ in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 50

    # Chain lengths no full solver can touch (2^1000 unknowns).
    long_rows = []
    for nu in REDUCED_ONLY_NUS:
        t0 = time.perf_counter()
        res = ReducedSolver(nu, P, SinglePeakLandscape(nu, 5.0, 1.0)).solve()
        dt = time.perf_counter() - t0
        long_rows.append([nu, format_seconds(dt), f"{res.concentrations[0]:.3e}"])
        assert res.converged
    txt += "\n\n" + render_table(
        ["nu", "time", "[Gamma_0]"],
        long_rows,
        title="Reduced solver far beyond full-solver reach (2^nu unknowns implicit)",
    )
    report("reduced_solver", txt)

"""Substrate ablation — finite-population error thresholds (paper ref. [11]).

The paper positions its solver against the finite-population literature
(Nowak & Schuster 1989): real populations are finite, and drift lowers
the effective error threshold.  With the Wright–Fisher simulator driven
by the same fast matvec we can measure that shift directly: just below
the deterministic p_max, the master survives in large populations and
dies out in small ones.
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.population import WrightFisher
from repro.reporting import render_table
from repro.solvers import ReducedSolver

NU = 8
P_NEAR = 0.075  # deterministic threshold ~ ln2/8 ≈ 0.0866
SIZES = (30, 300, 3_000, 30_000)
TRIALS = 6
GENERATIONS = 300


@pytest.fixture(scope="module")
def extinction_table():
    mut = UniformMutation(NU, P_NEAR)
    ls = SinglePeakLandscape(NU, 2.0, 1.0)
    det = ReducedSolver(NU, P_NEAR, ls).solve()
    rows = []
    for m in SIZES:
        extinct = 0
        mean_g0 = 0.0
        for seed in range(TRIALS):
            stats = WrightFisher(mut, ls, m, seed=seed).run(GENERATIONS)
            extinct += stats.master_extinction_generation is not None
            mean_g0 += stats.mean_class_concentrations[0]
        rows.append((m, extinct, mean_g0 / TRIALS))
    return det, rows


def test_finite_population_threshold_shift(extinction_table, benchmark):
    mut = UniformMutation(NU, P_NEAR)
    ls = SinglePeakLandscape(NU, 2.0, 1.0)
    benchmark.pedantic(
        lambda: WrightFisher(mut, ls, 1_000, seed=0).run(100), rounds=2, iterations=1
    )

    det, rows = extinction_table
    table_rows = [
        [m, f"{extinct}/{TRIALS}", f"{g0:.4f}"] for m, extinct, g0 in rows
    ]
    txt = render_table(
        ["population M", "master extinct", "mean [Gamma_0]"],
        table_rows,
        title=f"Finite-population threshold shift (nu={NU}, p={P_NEAR}, "
        f"deterministic threshold ~ {np.log(2) / NU:.3f}; "
        f"deterministic [Gamma_0] = {det.concentrations[0]:.3f})",
    )

    # Drift kills the master in the smallest populations and not in the
    # largest; the surviving mean [Γ0] grows with M toward the
    # deterministic value.
    extinct_counts = [r[1] for r in rows]
    assert extinct_counts[0] > extinct_counts[-1]
    assert extinct_counts[-1] == 0
    g0s = [r[2] for r in rows]
    assert g0s[-1] > g0s[0]
    assert g0s[-1] == pytest.approx(det.concentrations[0], abs=0.1)
    txt += (
        "\n\nDrift lowers the effective threshold in small populations "
        "(Nowak & Schuster 1989 — the paper's ref. [11]); the infinite-"
        "population limit recovers the deterministic eigenvector solution."
    )
    report("finite_population_threshold", txt)


def test_sparse_long_chain_simulation(benchmark):
    """The sparse per-event simulator runs finite populations at chain
    lengths (ν = 40) whose dense state could never exist (2⁴⁰ types) —
    and shows the same phase phenomenology."""
    from repro.population import SparseWrightFisher

    nu = 40
    fitness = lambda s: 2.0 if s == 0 else 1.0

    def run_below():
        wf = SparseWrightFisher(nu, 0.002, fitness, 400, seed=0)
        return wf.run(100)

    stats_below = benchmark.pedantic(run_below, rounds=1, iterations=1)
    wf_above = SparseWrightFisher(nu, 0.05, fitness, 400, seed=0)
    stats_above = wf_above.run(100)

    rows = [
        ["p = 0.002 (below ln2/40)", f"{stats_below['master_fraction']:.3f}",
         f"{stats_below['mean_distance']:.2f}", int(stats_below["support_size"])],
        ["p = 0.05 (above)", f"{stats_above['master_fraction']:.3f}",
         f"{stats_above['mean_distance']:.2f}", int(stats_above["support_size"])],
    ]
    txt = render_table(
        ["regime", "master fraction", "mean dH to master", "types present"],
        rows,
        title=f"Sparse Wright-Fisher at nu={nu} (2^{nu} = {2.0**nu:.1e} possible types)",
    )
    assert stats_below["master_fraction"] > 0.3
    assert stats_above["master_fraction"] < 0.05
    assert stats_above["mean_distance"] > stats_below["mean_distance"] + 1.0
    report("finite_population_long_chain", txt)

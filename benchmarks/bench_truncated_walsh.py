"""Future-work artifact — certified approximative matvec strategies.

The conclusions list "approximative strategies for a fast matrix vector
product" as an open direction.  Our truncated-Walsh operator keeps only
the Walsh modes with popcount ≤ k_max, whose dropped spectral mass is
*exactly* ``(1−2p)^{k_max+1}`` — an a-priori certificate the Xmvp(dmax)
sparsification of [10] does not provide.  This bench traces the
compression/accuracy trade curve and compares with Xmvp at matched
work.
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, TruncatedWalsh, Xmvp
from repro.reporting import format_sci, render_table
from repro.solvers import PowerIteration

NU = 12
P = 0.03


@pytest.fixture(scope="module")
def trade_curve():
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=14)
    exact = PowerIteration(Fmmp(mut, ls), tol=1e-12).solve(ls.start_vector(), landscape=ls)
    rows = []
    for k in range(NU + 1):
        op = TruncatedWalsh(mut, ls, k)
        res = PowerIteration(op, tol=1e-12).solve(ls.start_vector(), landscape=ls)
        err = float(np.abs(res.concentrations - exact.concentrations).max())
        rows.append((k, op.rank, op.retained_fraction, op.error_bound(), err))
    return exact, rows


def test_truncated_walsh_trade_curve(trade_curve, benchmark):
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=14)
    op = TruncatedWalsh(mut, ls, 5)
    v = ls.start_vector()
    benchmark(lambda: op.matvec(v))

    exact, rows = trade_curve
    table_rows = [
        [k, rank, f"{frac:.1%}", format_sci(bound), format_sci(err)]
        for k, rank, frac, bound, err in rows
    ]
    txt = render_table(
        ["k_max", "rank", "modes kept", "a-priori bound", "solution error"],
        table_rows,
        title=f"Truncated-Walsh compression/accuracy trade (nu={NU}, p={P})",
    )

    errs = [r[4] for r in rows]
    bounds = [r[3] for r in rows]
    # Error decreases monotonically (to the solver floor) and is exactly
    # zero truncation at k = nu.
    assert all(a >= b - 1e-13 for a, b in zip(errs, errs[1:]))
    assert errs[-1] < 1e-10
    # Geometric decay tracking the certificate: each level of k gains
    # roughly a factor (1-2p) per step in the bound.
    for k in range(3, 9):
        assert errs[k] < 50 * bounds[k], f"k={k}: error {errs[k]} vs bound {bounds[k]}"

    # Comparison with Xmvp at matched accuracy: find the smallest k and
    # dmax reaching 1e-6, compare their state compression.
    target = 1e-6
    k_needed = next(k for k, *_, err in rows if err < target)
    mut_ = UniformMutation(NU, P)
    ls_ = RandomLandscape(NU, c=5.0, sigma=1.0, seed=14)
    dmax_needed = None
    for dmax in range(1, NU + 1):
        res = PowerIteration(Xmvp(mut_, ls_, dmax), tol=1e-12).solve(
            ls_.start_vector(), landscape=ls_
        )
        if float(np.abs(res.concentrations - exact.concentrations).max()) < target:
            dmax_needed = dmax
            break
    assert dmax_needed is not None
    frac_needed = rows[k_needed][2]
    txt += (
        f"\n\nmatched accuracy {target:g}: truncated-Walsh needs k_max={k_needed} "
        f"({frac_needed:.1%} of modes, certified bound {rows[k_needed][3]:.1e}); "
        f"Xmvp needs dmax={dmax_needed} (no a-priori certificate)."
    )
    report("truncated_walsh_trade", txt)

"""Figure 3 — end-to-end GPU power-iteration times.

Paper setup: Tesla C2050, p = 0.01, random landscape (Eq. 13, c = 5,
σ = 1), ν ∈ [10, 25]; overall times *including* host↔device transfers;
τ = 10⁻¹⁵ for the exact products, 10⁻¹⁰ for Xmvp(5).  The shape:
``Pi(Fmmp) ≪ Pi(Xmvp(5)) ≪ Pi(Xmvp(ν))``, with the gaps widening in ν.

Reproduction methodology (see DESIGN.md substitution table):

1. iteration counts are *measured* with the real solver at ν ≤ 16 and
   extrapolated linearly (they grow ≈ +1 per 2ν on these landscapes);
2. per-run times come from :class:`repro.perf.model.PipelineCostModel`
   on the Tesla C2050 profile — the analytic twin of the simulated
   device, which test_perf.py pins to the simulator exactly;
3. the model is cross-checked here against a full simulated-device run
   at ν = 12 for both operators.
"""

import numpy as np
import pytest

from conftest import report
from repro.device import Device, DevicePowerIteration, TESLA_C2050
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.perf import PipelineCostModel
from repro.reporting import SeriesBundle, format_seconds, render_table
from repro.solvers import PowerIteration

P = 0.01
TARGET_NUS = list(range(10, 26))
MEASURE_NUS = list(range(10, 17))
TOL_EXACT = 1e-14  # float64 floor for the paper's 1e-15
TOL_APPROX = 1e-10


def _landscape(nu):
    return RandomLandscape(nu, c=5.0, sigma=1.0, seed=nu)


def _measure_iterations(tol):
    counts = {}
    for nu in MEASURE_NUS:
        ls = _landscape(nu)
        op = Fmmp(UniformMutation(nu, P), ls)
        res = PowerIteration(op, tol=tol, max_iterations=20_000).solve(ls.start_vector())
        counts[nu] = res.iterations
    return counts


def _extend_iterations(counts):
    """Linear extrapolation of the measured counts over TARGET_NUS."""
    nus = np.array(sorted(counts))
    vals = np.array([counts[n] for n in nus], dtype=float)
    slope, intercept = np.polyfit(nus, vals, 1)
    out = {}
    for nu in TARGET_NUS:
        out[nu] = int(counts.get(nu, round(slope * nu + intercept)))
    return out


@pytest.fixture(scope="module")
def iteration_counts():
    return (
        _extend_iterations(_measure_iterations(TOL_EXACT)),
        _extend_iterations(_measure_iterations(TOL_APPROX)),
    )


def test_fig3_model_matches_simulated_device(iteration_counts, benchmark):
    """Cross-check: the analytic Fig. 3 numbers equal a full simulated
    run of the device pipeline (kernels actually executed)."""
    nu = 10
    mut = UniformMutation(nu, P)
    ls = _landscape(nu)

    def run_fmmp():
        dev = Device(TESLA_C2050, record_launches=False)
        return DevicePowerIteration(dev, mut, ls, operator="fmmp", tol=TOL_EXACT).run()

    rep = benchmark.pedantic(run_fmmp, rounds=2, iterations=1)
    model_t = PipelineCostModel(nu, "fmmp").total_time(TESLA_C2050, rep.result.iterations)
    assert model_t == pytest.approx(rep.modeled_total_s, rel=1e-9)

    dev = Device(TESLA_C2050, record_launches=False)
    rep5 = DevicePowerIteration(dev, mut, ls, operator="xmvp", dmax=5, tol=TOL_APPROX).run()
    model5 = PipelineCostModel(nu, "xmvp", 5).total_time(TESLA_C2050, rep5.result.iterations)
    assert model5 == pytest.approx(rep5.modeled_total_s, rel=1e-9)


def test_fig3_gpu_power_iteration_times(iteration_counts, benchmark):
    iters_exact, iters_approx = iteration_counts

    # Benchmark the real measured unit of Fig. 3: one host power
    # iteration on the fast operator at a mid-size ν.
    ls = _landscape(14)
    op = Fmmp(UniformMutation(14, P), ls)
    benchmark(lambda: PowerIteration(op, tol=TOL_EXACT).solve(ls.start_vector()))

    # Xmvp series use the fused (one-kernel-per-matvec, register
    # accumulator) model — the natural OpenCL implementation the paper
    # ran; the per-mask-launch variant our simulator executes is ~3x
    # slower still (see PipelineCostModel.fused_xmvp).
    series = {"Pi(Xmvp(nu))": {}, "Pi(Xmvp(5))": {}, "Pi(Fmmp)": {}}
    for nu in TARGET_NUS:
        series["Pi(Xmvp(nu))"][nu] = PipelineCostModel(
            nu, "xmvp", nu, fused_xmvp=True
        ).total_time(TESLA_C2050, iters_exact[nu])
        series["Pi(Xmvp(5))"][nu] = PipelineCostModel(
            nu, "xmvp", 5, fused_xmvp=True
        ).total_time(TESLA_C2050, iters_approx[nu])
        series["Pi(Fmmp)"][nu] = PipelineCostModel(nu, "fmmp").total_time(
            TESLA_C2050, iters_exact[nu]
        )

    bundle = SeriesBundle("Fig. 3: GPU overall execution times [s]", x_label="nu")
    for label, data in series.items():
        bundle.add_mapping(label, data)

    rows = [
        [
            nu,
            format_seconds(series["Pi(Xmvp(nu))"][nu]),
            format_seconds(series["Pi(Xmvp(5))"][nu]),
            format_seconds(series["Pi(Fmmp)"][nu]),
            iters_exact[nu],
        ]
        for nu in TARGET_NUS
    ]
    txt = render_table(
        ["nu", "Pi(Xmvp(nu))", "Pi(Xmvp(5))", "Pi(Fmmp)", "iters"],
        rows,
        title="Fig. 3 — overall power iteration times on Tesla C2050 "
        "(p=0.01, random landscape c=5, sigma=1; transfers included)",
    )

    # ------------------------------ shape assertions ------------------
    # Strict ordering from ν ≥ 12; at the left edge of the figure the
    # curves nearly touch (launch-overhead regime + Xmvp(5)'s looser
    # τ = 1e-10), as in the paper's plot.
    for nu in TARGET_NUS:
        assert series["Pi(Xmvp(5))"][nu] < series["Pi(Xmvp(nu))"][nu], f"nu={nu}"
        if nu >= 12:
            assert series["Pi(Fmmp)"][nu] < series["Pi(Xmvp(5))"][nu], f"nu={nu}"
        else:
            assert series["Pi(Fmmp)"][nu] < 1.5 * series["Pi(Xmvp(5))"][nu], f"nu={nu}"

    # Paper conclusions: Fmmp vs the approximative method ≈ 250× at
    # ν = 25; vs the exact standard product ≈ 10⁷ (together with Fig. 4).
    # Our pure-roofline model does not charge Fmmp for the uncoalesced
    # access of its small-span stages on real GPUs, so it puts the
    # ratio somewhat above the measured 250 — same winner, same slope,
    # factor within one order (documented in EXPERIMENTS.md).
    r_approx = series["Pi(Xmvp(5))"][25] / series["Pi(Fmmp)"][25]
    r_exact = series["Pi(Xmvp(nu))"][25] / series["Pi(Fmmp)"][25]
    assert 100 <= r_approx <= 5000, f"Xmvp(5)/Fmmp at nu=25: {r_approx:.0f} (paper ~250)"
    assert r_exact >= 1e5, f"Xmvp(nu)/Fmmp at nu=25: {r_exact:.2e} (paper ~1e7)"

    # Gap widens with ν (different slopes).
    r10 = series["Pi(Xmvp(5))"][10] / series["Pi(Fmmp)"][10]
    assert r_approx > 5 * r10

    txt += f"\n\nPi(Xmvp(5))/Pi(Fmmp) at nu=25: {r_approx:.0f}x   (paper: ~250x)"
    txt += f"\nPi(Xmvp(nu))/Pi(Fmmp) at nu=25: {r_exact:.2e}x (paper: ~1e7 incl. hardware)"
    report("fig3_gpu_power_iteration", txt, csv=bundle.to_csv())

"""Future-work artifact — distributed-memory scaling of Pi(Fmmp).

The paper's conclusions: the runtime wall has fallen; the *memory* wall
is next, and "in the future we will focus on distributed memory
approaches."  We implement and evaluate that approach over a simulated
GPU cluster (α–β interconnect model, per-node roofline):

* strong scaling at fixed ν: compute shrinks like 1/R while the
  hypercube exchanges grow like log₂R — speedup rises and then
  saturates as the communication fraction takes over;
* the memory-per-rank column shows the paper's actual goal: chain
  lengths whose state cannot fit one device become feasible.

Numerics execute for real at the measured sizes (equality with the
serial solver is asserted in the unit tests); times are modeled.
"""

import numpy as np
import pytest

from conftest import report
from repro.distributed import DistributedFmmp
from repro.distributed.cluster import gpu_cluster
from repro.mutation import UniformMutation
from repro.reporting import format_seconds, render_table

NU = 25  # the paper's largest evaluated chain length
ITERATIONS = 42  # measured iteration count at this tolerance (bench_fig3)
RANKS = (1, 2, 4, 8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def scaling():
    mut = UniformMutation(NU, 0.01)
    factors = mut.factors_per_bit()
    rows = []
    for r in RANKS:
        op = DistributedFmmp(gpu_cluster(r), factors)
        compute = op.compute_time_per_matvec() * ITERATIONS
        comm = (
            op.comm_time_per_matvec() + 2.0 * gpu_cluster(r).allreduce_time()
        ) * ITERATIONS
        total = compute + comm
        mem = 8.0 * op.block_size * 3  # x, w, f blocks
        rows.append((r, compute, comm, total, mem))
    return rows


def test_distributed_strong_scaling(scaling, benchmark):
    # Benchmarked unit: a real distributed matvec at a feasible size.
    from repro.distributed import PartitionedVector

    mut = UniformMutation(16, 0.01)
    op = DistributedFmmp(gpu_cluster(8), mut.factors_per_bit())
    v = PartitionedVector.scatter(np.random.default_rng(0).random(1 << 16), 8)
    benchmark(lambda: op.apply(v))

    rows = scaling
    base_total = rows[0][3]
    table_rows = []
    for r, compute, comm, total, mem in rows:
        table_rows.append(
            [
                r,
                format_seconds(total),
                format_seconds(compute),
                format_seconds(comm),
                f"{base_total / total:.2f}x",
                f"{mem / 2**20:.1f} MiB",
            ]
        )
    txt = render_table(
        ["ranks", "total", "compute", "comm", "speedup", "mem/rank"],
        table_rows,
        title=f"Distributed Pi(Fmmp) strong scaling (nu={NU}, {ITERATIONS} iterations, "
        "Tesla-class nodes on QDR IB; modeled)",
    )

    totals = [row[3] for row in rows]
    speedups = [base_total / t for t in totals]
    comms = [row[2] for row in rows]

    # Strong scaling exists but is communication-bound: each of the
    # log₂R cross stages exchanges the whole block over a link ~35x
    # slower than device memory — the classic distributed-FFT wall.
    # (This is presumably why the paper lists "approximative strategies
    # for a fast matrix vector product" right next to distributed memory
    # in its future work: cutting cross-stage traffic is the lever.)
    assert all(a < b for a, b in zip(speedups, speedups[1:])), speedups
    assert speedups[-1] > 10.0, f"128 ranks must still win >10x: {speedups}"
    eff = [s / r for s, r in zip(speedups, RANKS)]
    assert eff[0] == 1.0
    assert all(a >= b - 1e-12 for a, b in zip(eff, eff[1:])), "efficiency decays"
    # Comm fraction grows monotonically with ranks.
    fracs = [c / t for c, t in zip(comms, totals)]
    assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))
    assert fracs[-1] > 0.5, "large clusters are communication-dominated"
    # Memory per rank falls linearly — the paper's actual target.
    assert rows[-1][4] == rows[0][4] / RANKS[-1]

    txt += (
        f"\n\nspeedup is monotone but communication-bound: efficiency "
        f"{eff[1]:.0%} at 2 ranks -> {eff[-1]:.0%} at {RANKS[-1]} ranks "
        f"(log2 R full-block exchanges per matvec vs 1/R compute);"
        f"\nmemory per rank falls {RANKS[-1]}x — the paper's stated goal for "
        "distributed memory — making chain lengths beyond single-device "
        "memory feasible at a latency cost."
    )
    report("distributed_scaling", txt)


def test_distributed_weak_scaling_memory_wall(benchmark):
    """The memory-wall story: hold the per-rank block at the Tesla
    C2050's practical limit (~2^27 doubles of state) and grow ν with the
    cluster — every added hypercube dimension buys one more chain-length
    unit at near-constant per-rank memory and only log-growing comm."""
    from repro.mutation import UniformMutation

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # modeled-only artifact

    BLOCK_NU = 27  # ~1 GiB of f64 state per rank: fits the 3 GB card
    rows = []
    for r_log in range(0, 8):
        ranks = 1 << r_log
        nu = BLOCK_NU + r_log
        op = DistributedFmmp(gpu_cluster(ranks), UniformMutation(nu, 0.01).factors_per_bit())
        t_compute = op.compute_time_per_matvec()
        t_comm = op.comm_time_per_matvec()
        rows.append(
            [
                ranks,
                nu,
                f"2^{nu}",
                f"{8.0 * op.block_size / 2**30:.2f} GiB",
                format_seconds(t_compute),
                format_seconds(t_comm),
            ]
        )
    txt = render_table(
        ["ranks", "nu", "N", "state/rank", "compute/matvec", "comm/matvec"],
        rows,
        title="Weak scaling: chain length grows with the cluster at fixed "
        "per-rank memory (modeled, Tesla-class nodes)",
    )

    # Per-rank state is exactly constant; compute/matvec grows only
    # through the extra (cheap) cross stage; comm grows ~linearly in the
    # hypercube dimension.
    state_col = {row[3] for row in rows}
    assert len(state_col) == 1, "constant memory per rank is the whole point"
    txt += (
        "\n\nnu = 27 -> 34 (128x more sequences than any single Tesla could "
        "hold) at constant per-rank memory — the distributed answer to the "
        "paper's 'main limiting factor is ... the memory requirements'."
    )
    report("distributed_weak_scaling", txt)

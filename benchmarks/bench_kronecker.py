"""Section 5.2 — Kronecker landscape decoupling.

Claims reproduced:

* with ``F = ⊗ F_{G_i}`` the 2^ν problem splits into ``g`` independent
  2^{ν/g} problems — we solve ν = 24 as 3×(ν = 8) and ν = 100 as
  10×(ν = 10), sizes far beyond the full solvers;
* the decoupled solution is exact (checked against the full solver at a
  size where both run);
* the implicit eigenvector answers error-class min/max queries — the
  paper's proposed error-threshold diagnostic — without materializing.
"""

import time

import numpy as np
import pytest

from conftest import report
from repro.landscapes import KroneckerLandscape, TabulatedLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.reporting import format_seconds, render_table
from repro.solvers import KroneckerSolver, PowerIteration

P = 0.01


def _kron_landscape(nu, g, seed):
    rng = np.random.default_rng(seed)
    bits = nu // g
    return KroneckerLandscape([rng.random(1 << bits) + 0.5 for _ in range(g)])


def test_kronecker_exact_vs_full(benchmark):
    """At ν = 16 both paths run: they must agree to machine precision."""
    nu, g = 16, 2
    kl = _kron_landscape(nu, g, 1)
    mut = UniformMutation(nu, P)
    res = benchmark(lambda: KroneckerSolver(mut, kl).solve())
    full_ls = TabulatedLandscape(kl.values())
    full = PowerIteration(Fmmp(mut, full_ls), tol=1e-13).solve(
        full_ls.start_vector(), landscape=full_ls
    )
    assert res.eigenvalue == pytest.approx(full.eigenvalue, rel=1e-10)
    np.testing.assert_allclose(
        res.eigenvector.class_concentrations(),
        full.error_class_concentrations(nu),
        atol=1e-10,
    )


def test_kronecker_decoupling_scale(benchmark):
    rows = []
    # (nu, g): the right column is what a full solver would need.
    for nu, g, seed in ((16, 2, 1), (24, 3, 2), (48, 6, 3), (100, 10, 4)):
        kl = _kron_landscape(nu, g, seed)
        mut = UniformMutation(nu, P)
        t0 = time.perf_counter()
        res = KroneckerSolver(mut, kl).solve()
        dt = time.perf_counter() - t0
        assert res.converged
        gamma = res.eigenvector.class_concentrations()
        np.testing.assert_allclose(gamma.sum(), 1.0, atol=1e-8)
        lo, hi = res.eigenvector.class_extrema()
        assert np.all(lo[1:-1] <= hi[1:-1] + 1e-18)
        rows.append(
            [
                nu,
                f"{g} x 2^{nu // g}",
                f"2^{nu} = {2.0**nu:.1e}",
                format_seconds(dt),
                f"{gamma[: min(3, nu)].sum():.3e}",
            ]
        )

    benchmark(lambda: KroneckerSolver(UniformMutation(24, P), _kron_landscape(24, 3, 2)).solve())

    txt = render_table(
        ["nu", "subproblems", "full size", "time", "[G0..G2] mass"],
        rows,
        title="Sec. 5.2 — Kronecker decoupling: g subproblems of size 2^(nu/g) "
        "instead of one 2^nu problem (p=0.01)",
    )
    txt += (
        "\n\nnu=100 (the paper's example of an existing-virus chain length, "
        "'by far out of reach of any currently available computational technology' "
        "for general landscapes) solved implicitly via 10 x 2^10 subproblems."
    )
    report("kronecker_decoupling", txt)

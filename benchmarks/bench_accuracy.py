"""Accuracy claims — Xmvp(dmax) truncation error vs the exact Fmmp.

The paper (Sec. 1.2/4, citing [10]):

* ``Xmvp(5)`` yields an approximation error ≈ 10⁻¹⁰ at p = 0.01,
* smaller ``dmax`` is "usually too low" in accuracy,
* ``Fmmp`` is exact to floating-point accuracy, while the approximative
  methods "loose about 5 decimal digits".

We solve the quasispecies problem with Pi(Xmvp(dmax)) for each dmax and
measure the error of the resulting concentrations against the exact
Pi(Fmmp) solution.
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, Xmvp
from repro.reporting import format_sci, render_table
from repro.solvers import PowerIteration

NU = 12
P = 0.01
TOL = 1e-13


@pytest.fixture(scope="module")
def solutions():
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=7)
    exact = PowerIteration(Fmmp(mut, ls), tol=TOL).solve(ls.start_vector(), landscape=ls)
    errors = {}
    for dmax in (1, 2, 3, 4, 5, 6, 8, NU):
        res = PowerIteration(Xmvp(mut, ls, dmax), tol=max(TOL, 1e-12)).solve(
            ls.start_vector(), landscape=ls
        )
        errors[dmax] = float(np.abs(res.concentrations - exact.concentrations).max())
    return exact, errors


def test_xmvp_truncation_accuracy(solutions, benchmark):
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=7)
    benchmark(
        lambda: PowerIteration(Xmvp(mut, ls, 5), tol=1e-10).solve(ls.start_vector())
    )

    exact, errors = solutions
    rows = [[d, format_sci(e)] for d, e in sorted(errors.items())]
    txt = render_table(
        ["dmax", "max |conc error| vs exact"],
        rows,
        title=f"Xmvp(dmax) solution accuracy (nu={NU}, p={P}) vs exact Pi(Fmmp)",
    )

    # Monotone improvement with dmax (down to the solver-tolerance
    # floor, where ties within a few ulps are expected).
    ds = sorted(errors)
    assert all(errors[a] >= errors[b] - 1e-14 for a, b in zip(ds, ds[1:]))
    # dmax=nu is exact to solver tolerance.
    assert errors[NU] < 1e-10
    # The paper's headline numbers: dmax=5 ≈ 1e-10-ish; dmax=1 loses
    # ~5+ digits relative to that.
    assert errors[5] < 1e-8, f"dmax=5 error {errors[5]:.2e} (paper ~1e-10)"
    assert errors[1] > 1e4 * errors[5], "small dmax must be orders of magnitude worse"

    txt += f"\n\ndmax=5 error: {errors[5]:.2e} (paper: ~1e-10); dmax=1: {errors[1]:.2e}"
    report("xmvp_accuracy", txt)

"""Section 2.2 — generalized mutation processes at Fmmp-like cost.

Claims reproduced:

* per-site (ν independent, different 2×2 column-stochastic factors)
  matvecs cost the *same* as the uniform model — the butterfly never
  needed equal factors;
* grouped factors (Eq. 11) with moderate group sizes stay close to the
  ``Θ(N log₂ N)`` cost (group size enters the Master-theorem ``f(n)``).
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation
from repro.operators import Fmmp
from repro.perf import measure_operator_matvec
from repro.reporting import format_seconds, render_table

NU = 16
P = 0.01


def _grouped(nu, bits, seed):
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(nu // bits):
        m = rng.random((1 << bits, 1 << bits))
        blocks.append(m / m.sum(axis=0, keepdims=True))
    return GroupedMutation(blocks)


@pytest.fixture(scope="module")
def timings():
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=0)
    rng = np.random.default_rng(1)
    models = {
        "uniform": UniformMutation(NU, P),
        "per-site": PerSiteMutation.from_error_rates(rng.uniform(0.001, 0.05, NU)),
        "grouped g_i=2": _grouped(NU, 2, 2),
        "grouped g_i=4": _grouped(NU, 4, 3),
    }
    out = {}
    for label, mut in models.items():
        op = Fmmp(mut, ls)
        out[label] = measure_operator_matvec(op, ls.start_vector(), repeats=5, min_time=0.005).median
    return out


def test_general_mutation_cost(timings, benchmark):
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=0)
    rng = np.random.default_rng(1)
    mut = PerSiteMutation.from_error_rates(rng.uniform(0.001, 0.05, NU))
    op = Fmmp(mut, ls)
    v = ls.start_vector()
    benchmark(lambda: op.matvec(v))

    rows = [[label, format_seconds(t), f"{t / timings['uniform']:.2f}x"] for label, t in timings.items()]
    txt = render_table(
        ["mutation model", "matvec time", "vs uniform"],
        rows,
        title=f"Sec. 2.2 — Fmmp matvec cost across mutation generality (nu={NU})",
    )

    # Per-site generality is free (identical code path).
    assert timings["per-site"] < 1.5 * timings["uniform"]
    # Small groups stay within a modest factor of the butterfly.
    assert timings["grouped g_i=2"] < 12 * timings["uniform"]
    assert timings["grouped g_i=4"] < 25 * timings["uniform"]
    report("general_mutation_cost", txt)

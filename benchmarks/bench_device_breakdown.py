"""Section 4 claim — the reduction (vector summation) is cheap.

"Since the summation of the components of a vector can be relatively
well parallelized, this part of the power iteration method has almost no
influence on the overall execution time."

We run the simulated-device pipeline across ν and report the share of
modeled kernel time spent in reduction kernels: it must shrink with ν
(the matvec grows like N·ν while the reductions stay ~2N per iteration)
— at small ν launch overhead dominates everything, which is also real.
"""

import pytest

from conftest import report
from repro.device import Device, DevicePowerIteration, TESLA_C2050
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.reporting import render_table

P = 0.01
NUS = (8, 10, 12, 14, 16)


@pytest.fixture(scope="module")
def breakdown():
    rows = []
    for nu in NUS:
        mut = UniformMutation(nu, P)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=nu)
        dev = Device(TESLA_C2050)
        rep = DevicePowerIteration(dev, mut, ls, tol=1e-12).run()
        rows.append((nu, rep))
    return rows


def test_reduction_share_shrinks(breakdown, benchmark):
    mut = UniformMutation(10, P)
    ls = RandomLandscape(10, c=5.0, sigma=1.0, seed=10)
    benchmark.pedantic(
        lambda: DevicePowerIteration(Device(TESLA_C2050, record_launches=False), mut, ls, tol=1e-12).run(),
        rounds=2,
        iterations=1,
    )

    table_rows = []
    fractions = []
    for nu, rep in breakdown:
        frac = rep.reduction_fraction
        fractions.append(frac)
        table_rows.append(
            [
                nu,
                rep.result.iterations,
                rep.launches,
                f"{rep.time_by_class['matvec'] * 1e3:.3f} ms",
                f"{rep.time_by_class['reduction'] * 1e3:.3f} ms",
                f"{frac:.1%}",
            ]
        )
    txt = render_table(
        ["nu", "iters", "launches", "matvec time", "reduction time", "reduction share"],
        table_rows,
        title="Sec. 4 — modeled kernel-time breakdown of the device pipeline (Tesla C2050)",
    )

    # The reduction share trends down with ν (small per-point noise from
    # iteration-count steps allowed) and the matvec dominates at the
    # largest size.
    assert fractions[-1] < fractions[0], fractions
    assert all(b < a + 0.02 for a, b in zip(fractions, fractions[1:])), fractions
    assert fractions[-1] < 0.5
    txt += (
        "\n\nreduction share falls with nu: the matvec volume grows ~N*nu while "
        "the summations stay ~N per iteration (the paper's 'almost no influence' "
        "regime; at tiny nu, per-launch overhead dominates everything — also real)."
    )
    report("device_breakdown", txt)

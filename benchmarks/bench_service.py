"""Solver-service overhead and cache speedup on sweep-shaped batches.

The service layer only pays for itself if its bookkeeping (hashing,
planning, cache lookups) is negligible next to the solves and the
dedup + cache machinery converts repeated work into hits.  This bench
measures both on a 100-job error-rate sweep in which half the requests
are duplicates (the ISSUE workload):

* **scheduler overhead** — planning 100 jobs must cost well under a
  millisecond per job;
* **naive vs service (cold)** — solving every request one by one versus
  one deduplicated batch: the 50%-duplicate manifest must come in at
  least ~2× cheaper because each unique job is solved exactly once;
* **cold vs warm** — re-submitting the same batch against the populated
  cache must be at least **5× faster** (the acceptance criterion; in
  practice it is orders of magnitude).
"""

import time

import numpy as np

from conftest import report
from repro.reporting import render_table
from repro.service import SolverService, SolveJob, plan_batch

NU = 20
N_UNIQUE = 50
DUPLICATES = 50  # 50% of the 100-job manifest repeats an earlier job


def _sweep_jobs() -> list[SolveJob]:
    """A 100-job sweep manifest with 50% duplicates."""
    values = tuple([2.0] + [1.0] * NU)
    rates = np.linspace(0.001, 0.05, N_UNIQUE)
    unique = [
        SolveJob(nu=NU, p=float(p), landscape="hamming", class_values=values,
                 method="reduced")
        for p in rates
    ]
    return unique + unique[:DUPLICATES]


def test_scheduler_overhead(benchmark):
    jobs = _sweep_jobs()
    plan = benchmark(lambda: plan_batch(jobs))
    assert plan.n_unique == N_UNIQUE
    assert plan.n_duplicates == DUPLICATES


def test_cache_speedup_on_duplicate_sweep(benchmark):
    jobs = _sweep_jobs()

    # naive: every request solved individually, no dedup, no cache
    from repro.service import execute_job

    t0 = time.perf_counter()
    for job in jobs:
        execute_job(job)
    naive_s = time.perf_counter() - t0

    # cold service: dedup + cache, each unique job solved once
    service = SolverService(kind="serial", capacity=256)
    t0 = time.perf_counter()
    cold = service.submit(jobs)
    cold_s = time.perf_counter() - t0
    assert cold.passed and cold.n_solved == N_UNIQUE

    # warm service: the benchmark target — everything from cache
    warm = benchmark(lambda: service.submit(jobs))
    assert warm.n_solved == 0 and warm.n_cached == N_UNIQUE
    t0 = time.perf_counter()
    service.submit(jobs)
    warm_s = time.perf_counter() - t0

    cold_speedup = naive_s / cold_s
    warm_speedup = cold_s / warm_s
    rows = [
        ["jobs in manifest", "100"],
        ["unique jobs", str(N_UNIQUE)],
        ["naive per-request loop", f"{naive_s * 1e3:.1f} ms"],
        ["service, cold cache", f"{cold_s * 1e3:.1f} ms"],
        ["service, warm cache", f"{warm_s * 1e3:.1f} ms"],
        ["cold speedup vs naive", f"{cold_speedup:.1f}x"],
        ["warm speedup vs cold", f"{warm_speedup:.1f}x"],
    ]
    report(
        "service_cache_speedup",
        render_table(["quantity", "value"], rows,
                     title=f"solver service on a 100-job sweep (nu={NU}, 50% duplicates)"),
        csv="quantity,value\n" + "\n".join(f"{a},{b}" for a, b in rows) + "\n",
    )
    # acceptance: warm rerun >= 5x faster than the cold batch
    assert warm_speedup >= 5.0
    # dedup alone should come close to the ideal 2x on a 50% manifest
    assert cold_speedup >= 1.5

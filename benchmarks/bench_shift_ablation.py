"""Section 3 claim — the conservative shift saves ≳10 % of iterations.

"Although this choice of the shift μ is very conservative, using it
results in a clearly measurable reduction of the number of iterations of
about ten percent and more for the random landscapes we considered."

Ablation: run Pi(Fmmp) with and without μ = (1−2p)^ν·f_min over several
random landscapes (Eq. 13) and error rates, and compare iteration counts.
"""

import numpy as np
import pytest

from conftest import report
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, ShiftedOperator
from repro.operators.shifted import conservative_shift
from repro.reporting import render_table
from repro.solvers import PowerIteration

NU = 12
TOL = 1e-12
SEEDS = (1, 2, 3, 4, 5)
ERROR_RATES = (0.005, 0.01, 0.02)


def _iterations(mut, ls, mu):
    op = Fmmp(mut, ls)
    if mu:
        op = ShiftedOperator(op, mu)
    return PowerIteration(op, tol=TOL, max_iterations=50_000).solve(ls.start_vector()).iterations


@pytest.fixture(scope="module")
def ablation():
    rows = []
    for p in ERROR_RATES:
        for seed in SEEDS:
            mut = UniformMutation(NU, p)
            ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=seed)
            mu = conservative_shift(mut, ls)
            plain = _iterations(mut, ls, 0.0)
            shifted = _iterations(mut, ls, mu)
            rows.append((p, seed, mu, plain, shifted, 1.0 - shifted / plain))
    return rows


def test_shift_ablation(ablation, benchmark):
    mut = UniformMutation(NU, 0.01)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=1)
    mu = conservative_shift(mut, ls)
    benchmark(
        lambda: PowerIteration(ShiftedOperator(Fmmp(mut, ls), mu), tol=TOL).solve(
            ls.start_vector()
        )
    )

    rows = ablation
    table_rows = [
        [f"{p:.3f}", seed, f"{mu:.3e}", plain, shifted, f"{saving:.1%}"]
        for p, seed, mu, plain, shifted, saving in rows
    ]
    savings = np.array([r[-1] for r in rows])
    txt = render_table(
        ["p", "seed", "mu", "iters plain", "iters shifted", "saving"],
        table_rows,
        title="Sec. 3 ablation — conservative shift mu = (1-2p)^nu * fmin "
        f"(nu={NU}, random landscapes Eq. 13, tol={TOL:g})",
    )
    txt += f"\n\nmean saving: {savings.mean():.1%}  min: {savings.min():.1%}  (paper: ~10% and more)"

    # Every configuration improves; the average saving is >= 10 %.
    assert all(r[4] < r[3] for r in rows), "shift must never increase iterations"
    assert savings.mean() >= 0.10, f"mean saving {savings.mean():.1%} below the paper's ~10%"
    report("shift_ablation", txt)

"""Tests for the exact (ν+1) reduction — Lemma 2 and Sec. 5.1."""

import numpy as np
import pytest

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.landscapes import (
    HammingLandscape,
    LinearLandscape,
    RandomLandscape,
    SinglePeakLandscape,
)
from repro.model.concentrations import class_concentrations
from repro.mutation import UniformMutation
from repro.operators import dense_w
from repro.solvers import ReducedSolver, dense_solve, reduced_w_matrix


class TestLemma2:
    """W = Q·F maps error-class vectors to error-class vectors."""

    @pytest.mark.parametrize("nu,p", [(5, 0.01), (7, 0.1), (8, 0.3)])
    def test_closure_under_w(self, nu, p):
        mut = UniformMutation(nu, p)
        ls = HammingLandscape(nu, lambda k: 1.0 + 1.0 / (k + 1.0))
        w = dense_w(mut, ls)
        labels = distance_to_master(nu)
        rng = np.random.default_rng(nu)
        class_vals = rng.random(nu + 1) + 0.1
        v = class_vals[labels]  # an error-class vector
        out = w @ v
        for k in range(nu + 1):
            cls = out[labels == k]
            np.testing.assert_allclose(cls, cls[0], rtol=1e-12)

    def test_closure_fails_for_general_landscape(self):
        """Sanity: a non-class landscape breaks the closure, confirming
        the hypothesis of Lemma 2 is necessary."""
        nu, p = 5, 0.05
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, seed=1)
        w = dense_w(mut, ls)
        labels = distance_to_master(nu)
        v = (labels + 1.0).astype(float)
        out = w @ v
        spread = [np.ptp(out[labels == k]) for k in range(1, nu)]
        assert max(spread) > 1e-8


class TestReducedMatrix:
    def test_shape_and_positivity(self):
        w = reduced_w_matrix(10, 0.02, np.linspace(2.0, 1.0, 11))
        assert w.shape == (11, 11)
        assert np.all(w > 0)

    def test_wrong_fitness_length(self):
        with pytest.raises(ValidationError):
            reduced_w_matrix(5, 0.1, np.ones(5))

    def test_non_positive_fitness(self):
        with pytest.raises(ValidationError):
            reduced_w_matrix(5, 0.1, np.zeros(6))


class TestExactness:
    """The headline of Sec. 5.1: the reduction is *exact*, no
    approximation or perturbation theory involved."""

    @pytest.mark.parametrize(
        "landscape_cls,kwargs",
        [
            (SinglePeakLandscape, dict(f_peak=2.0, f_rest=1.0)),
            (LinearLandscape, dict(f0=2.0, fnu=1.0)),
        ],
    )
    @pytest.mark.parametrize("p", [0.005, 0.03, 0.2])
    def test_matches_full_solver(self, landscape_cls, kwargs, p):
        nu = 9
        ls = landscape_cls(nu, **kwargs)
        red = ReducedSolver(nu, p, ls).solve()
        full = dense_solve(UniformMutation(nu, p), ls)
        assert red.eigenvalue == pytest.approx(full.eigenvalue, rel=1e-12)
        np.testing.assert_allclose(
            red.concentrations,
            class_concentrations(full.concentrations, nu),
            atol=1e-12,
        )

    def test_full_eigenvector_recovery(self):
        nu, p = 8, 0.02
        ls = SinglePeakLandscape(nu)
        solver = ReducedSolver(nu, p, ls)
        recovered = solver.full_eigenvector()
        full = dense_solve(UniformMutation(nu, p), ls)
        np.testing.assert_allclose(recovered, full.concentrations, atol=1e-12)

    def test_binomial_rescaling_not_raw_classes(self):
        """vΓ are *representative* concentrations: [Γk] = C(ν,k)·vΓk
        normalized — using vΓ directly would be wrong (paper's warning)."""
        nu, p = 7, 0.03
        res = ReducedSolver(nu, p, SinglePeakLandscape(nu)).solve()
        assert not np.allclose(res.concentrations, res.eigenvector)
        np.testing.assert_allclose(res.concentrations.sum(), 1.0)
        np.testing.assert_allclose(res.eigenvector.sum(), 1.0)

    def test_arbitrary_phi_profile(self):
        nu, p = 8, 0.04
        rng = np.random.default_rng(5)
        phi = rng.random(nu + 1) + 0.5
        red = ReducedSolver(nu, p, HammingLandscape(nu, phi)).solve()
        full = dense_solve(UniformMutation(nu, p), HammingLandscape(nu, phi))
        np.testing.assert_allclose(
            red.concentrations, class_concentrations(full.concentrations, nu), atol=1e-11
        )


class TestScalability:
    def test_chain_length_far_beyond_full_solvers(self):
        """ν = 200: the full problem has 2²⁰⁰ unknowns; the reduction
        solves it in milliseconds."""
        nu, p = 200, 0.005
        res = ReducedSolver(nu, p, SinglePeakLandscape(nu, 5.0, 1.0)).solve()
        assert res.converged
        assert 0.0 < res.concentrations[0] < 1.0
        np.testing.assert_allclose(res.concentrations.sum(), 1.0, atol=1e-9)

    def test_accepts_raw_class_array(self):
        res = ReducedSolver(50, 0.01, np.linspace(3.0, 1.0, 51)).solve()
        assert res.converged


class TestRejections:
    def test_rejects_general_landscape(self):
        with pytest.raises(ValidationError):
            ReducedSolver(6, 0.01, RandomLandscape(6, seed=0))

    def test_rejects_mismatched_nu(self):
        with pytest.raises(ValidationError):
            ReducedSolver(6, 0.01, SinglePeakLandscape(7))

    def test_rejects_wrong_array_length(self):
        with pytest.raises(ValidationError):
            ReducedSolver(6, 0.01, np.ones(6))

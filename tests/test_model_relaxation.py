"""Tests for relaxation-time prediction vs measured dynamics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape
from repro.model.ode import QuasispeciesODE
from repro.model.relaxation import measure_relaxation_time, relaxation_time
from repro.mutation import UniformMutation
from repro.operators import dense_w
from repro.solvers import dense_solve


@pytest.fixture(scope="module")
def system():
    nu, p = 6, 0.03
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=41)
    w = dense_w(mut, ls, "right")
    evals = np.sort(np.linalg.eigvals(w).real)
    ref = dense_solve(mut, ls)
    return mut, ls, evals, ref


class TestPrediction:
    def test_formula(self):
        assert relaxation_time(2.0, 1.5) == pytest.approx(2.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValidationError):
            relaxation_time(1.0, 1.0)


class TestMeasurement:
    def test_measured_matches_spectral_prediction(self, system):
        """The dynamics relax at the spectral-gap rate 1/(λ₀−λ₁)."""
        mut, ls, evals, ref = system
        predicted = relaxation_time(evals[-1], evals[-2])
        ode = QuasispeciesODE(mut, ls)
        measured = measure_relaxation_time(
            ode, ref.concentrations, t_transient=4 * predicted, t_fit=6 * predicted
        )
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_closer_start_decays_on_same_clock(self, system):
        """The asymptotic rate is start-independent (same slowest mode)."""
        mut, ls, evals, ref = system
        predicted = relaxation_time(evals[-1], evals[-2])
        ode = QuasispeciesODE(mut, ls)
        rng = np.random.default_rng(0)
        x0 = ref.concentrations + 0.05 * rng.random(mut.n)
        x0 = np.clip(x0, 1e-12, None)
        x0 /= x0.sum()
        measured = measure_relaxation_time(
            ode, ref.concentrations, x0=x0,
            t_transient=4 * predicted, t_fit=6 * predicted,
        )
        assert measured == pytest.approx(predicted, rel=0.2)

    def test_wrong_target_detected_or_implausible(self, system):
        """Against a wrong target the distance plateaus at a nonzero
        constant: either the fit rejects (non-decaying) or it returns an
        apparent time orders of magnitude beyond the physical one."""
        mut, ls, evals, ref = system
        predicted = relaxation_time(evals[-1], evals[-2])
        ode = QuasispeciesODE(mut, ls)
        wrong_target = np.roll(ref.concentrations, 3)
        try:
            tau = measure_relaxation_time(ode, wrong_target, t_transient=50.0, t_fit=3.0)
        except ValidationError:
            return
        assert tau > 50 * predicted

    def test_parameter_validation(self, system):
        mut, ls, _, ref = system
        ode = QuasispeciesODE(mut, ls)
        with pytest.raises(ValidationError):
            measure_relaxation_time(ode, ref.concentrations, dt=0.0)

"""Documentation consistency gates.

The README, DESIGN.md and EXPERIMENTS.md promise specific artifacts;
these tests keep the promises honest as the repository evolves.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestBenchDocCoverage:
    def test_every_bench_is_documented_in_readme(self):
        readme = _read("README.md")
        benches = sorted(p.name for p in (ROOT / "benchmarks").glob("bench_*.py"))
        missing = [b for b in benches if b not in readme]
        assert not missing, f"benches absent from README: {missing}"

    def test_every_figure_bench_in_design_index(self):
        design = _read("DESIGN.md")
        for required in (
            "bench_fig1_threshold.py",
            "bench_fig2_matvec.py",
            "bench_fig3_power_iteration.py",
            "bench_fig4_speedups.py",
        ):
            assert required in design, f"{required} missing from DESIGN.md"

    def test_experiments_covers_all_figures(self):
        experiments = _read("EXPERIMENTS.md")
        for heading in ("Figure 1", "Figure 2", "Figure 3", "Figure 4"):
            assert heading in experiments


class TestExampleDocCoverage:
    def test_every_example_mentioned_in_readme(self):
        readme = _read("README.md")
        examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
        missing = [e for e in examples if e not in readme]
        assert not missing, f"examples absent from README: {missing}"


class TestPaperMapping:
    def test_mapping_references_resolve(self):
        """Every `repro.xxx.yyy` module path named in the mapping doc
        must import."""
        import importlib

        mapping = _read("docs/paper_mapping.md")
        modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", mapping))
        failures = []
        for name in sorted(modules):
            parts = name.split(".")
            # Trailing attribute names are allowed; try progressively.
            for cut in range(len(parts), 1, -1):
                try:
                    mod = importlib.import_module(".".join(parts[:cut]))
                    obj = mod
                    ok = True
                    for attr in parts[cut:]:
                        if not hasattr(obj, attr):
                            ok = False
                            break
                        obj = getattr(obj, attr)
                    if ok:
                        break
                except ImportError:
                    continue
            else:
                failures.append(name)
        assert not failures, f"paper_mapping.md names unresolvable paths: {failures}"

    def test_mapping_covers_every_paper_section(self):
        mapping = _read("docs/paper_mapping.md")
        for section in ("Section 1", "Section 2", "Section 3", "Section 4",
                        "Section 5", "Section 6"):
            assert section in mapping

"""Tests for spectral-gap analysis (deflation, rates, predictions)."""

import numpy as np
import pytest

from repro.analysis.spectral import (
    deflated_second_eigenpair,
    estimate_rate_from_history,
    predicted_iterations,
    spectral_gap,
)
from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, dense_w
from repro.solvers import PowerIteration, dense_solve
from repro.solvers.result import IterationRecord


@pytest.fixture
def symmetric_problem():
    nu, p = 7, 0.02
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=12)
    op = Fmmp(mut, ls, form="symmetric")
    w = dense_w(mut, ls, "symmetric")
    evals = np.sort(np.linalg.eigvalsh(w))
    vecs = np.linalg.eigh(w)[1]
    return op, evals, vecs


class TestDeflation:
    def test_finds_second_eigenvalue(self, symmetric_problem):
        op, evals, vecs = symmetric_problem
        lam1, x1 = deflated_second_eigenpair(op, evals[-1], vecs[:, -1], tol=1e-10)
        assert lam1 == pytest.approx(evals[-2], abs=1e-8)
        # x1 orthogonal to the dominant eigenvector.
        assert abs(vecs[:, -1] @ x1) < 1e-6

    def test_eigenpair_residual(self, symmetric_problem):
        op, evals, vecs = symmetric_problem
        lam1, x1 = deflated_second_eigenpair(op, evals[-1], vecs[:, -1], tol=1e-10)
        assert np.linalg.norm(op.matvec(x1) - lam1 * x1) < 1e-8

    def test_rejects_nonsymmetric(self):
        nu, p = 5, 0.05
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, seed=0)
        op = Fmmp(mut, ls, form="right")
        with pytest.raises(ValidationError):
            deflated_second_eigenpair(op, 1.0, np.ones(32))

    def test_rejects_zero_vector(self, symmetric_problem):
        op, evals, _ = symmetric_problem
        with pytest.raises(ValidationError):
            deflated_second_eigenpair(op, evals[-1], np.zeros(op.n))


class TestSpectralGap:
    def test_matches_dense_ratio(self, symmetric_problem):
        op, evals, vecs = symmetric_problem
        gap = spectral_gap(op, evals[-1], vecs[:, -1])
        assert gap == pytest.approx(evals[-2] / evals[-1], abs=1e-7)
        assert 0.0 < gap < 1.0

    def test_gap_closes_toward_threshold(self):
        """λ₁/λ₀ rises toward 1 as p approaches the error threshold —
        the spectral signature of the Fig. 1 collapse."""
        nu = 8
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        gaps = []
        for p in (0.01, 0.04, 0.08):
            mut = UniformMutation(nu, p)
            op = Fmmp(mut, ls, form="symmetric")
            ref = dense_solve(mut, ls, form="symmetric")
            gaps.append(spectral_gap(op, ref.eigenvalue, ref.eigenvector))
        assert gaps[0] < gaps[1] < gaps[2]


class TestRateEstimation:
    def test_recovers_geometric_rate(self):
        rate = 0.8
        history = [
            IterationRecord(i, 2.0, 1e-2 * rate**i) for i in range(1, 30)
        ]
        est = estimate_rate_from_history(history)
        assert est == pytest.approx(rate, rel=1e-6)

    def test_matches_spectral_gap_on_real_run(self, symmetric_problem):
        op, evals, _ = symmetric_problem
        res = PowerIteration(op, tol=1e-12, record_history=True).solve(
            np.ones(op.n) / op.n
        )
        est = estimate_rate_from_history(res.history)
        assert est == pytest.approx(evals[-2] / evals[-1], rel=0.05)

    def test_needs_enough_points(self):
        with pytest.raises(ValidationError):
            estimate_rate_from_history([IterationRecord(1, 1.0, 0.5)])


class TestPredictedIterations:
    def test_formula(self):
        # 0.5^k from 1.0 to below 1e-6: k = 20.
        assert predicted_iterations(0.5, start_residual=1.0, tol=1e-6) == 20

    def test_already_converged(self):
        assert predicted_iterations(0.9, start_residual=1e-12, tol=1e-6) == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            predicted_iterations(1.5, start_residual=1.0, tol=0.1)
        with pytest.raises(ValidationError):
            predicted_iterations(0.5, start_residual=-1.0, tol=0.1)

    def test_end_to_end_prediction_is_accurate(self, symmetric_problem):
        """Predicted iteration counts from the measured asymptotic rate
        match the real solver when started past the transient (early
        iterations mix several eigencomponents and decay slower)."""
        op, *_ = symmetric_problem
        res = PowerIteration(op, tol=1e-11, record_history=True).solve(
            np.ones(op.n) / op.n
        )
        rate = estimate_rate_from_history(res.history)
        anchor = len(res.history) // 2
        remaining_pred = predicted_iterations(
            rate, start_residual=res.history[anchor - 1].residual, tol=1e-11
        )
        actual_remaining = res.iterations - anchor + 1
        assert remaining_pred == pytest.approx(actual_remaining, abs=max(2, 0.2 * actual_remaining))

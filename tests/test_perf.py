"""Tests for the performance models, measurement, and extrapolation."""

import numpy as np
import pytest

from repro.device import Device, DevicePowerIteration, TESLA_C2050
from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, Xmvp
from repro.perf import (
    ComplexityLaw,
    PipelineCostModel,
    fit_and_extend,
    fit_scale,
    fmmp_costs,
    measure_operator_matvec,
    measure_series,
    operator_costs,
    predict,
    predict_matvec_time,
    predict_power_iteration_time,
    smvp_costs,
    speedup_series,
    xmvp_costs,
    xmvp_mask_count,
)
from repro.perf.speedup import SpeedupTable, theoretical_guideline


class TestCosts:
    def test_mask_count(self):
        assert xmvp_mask_count(5, 5) == 32
        assert xmvp_mask_count(10, 1) == 11
        assert xmvp_mask_count(20, 5) == 1 + 20 + 190 + 1140 + 4845 + 15504

    def test_formulas_match_operator_objects(self):
        nu = 9
        mut = UniformMutation(nu, 0.01)
        ls = RandomLandscape(nu, seed=0)
        assert fmmp_costs(nu).flops == Fmmp(mut, ls).costs().flops
        assert xmvp_costs(nu, 4).flops == Xmvp(mut, ls, 4).costs().flops

    def test_smvp_quadratic(self):
        assert smvp_costs(10).flops == 2.0 * (1 << 10) ** 2

    def test_dispatch(self):
        assert operator_costs("fmmp", 8).flops == fmmp_costs(8).flops
        with pytest.raises(ValidationError):
            operator_costs("xmvp", 8)  # missing dmax
        with pytest.raises(ValidationError):
            operator_costs("gemm", 8)

    def test_fmmp_scales_n_log_n(self):
        r = fmmp_costs(20).flops / fmmp_costs(10).flops
        assert r == pytest.approx((1 << 20) * 20 / ((1 << 10) * 10), rel=0.3)


class TestPipelineModel:
    def test_exactly_matches_simulated_device(self):
        """The analytic model must reproduce the simulated accounting to
        machine precision — they encode the same schedule."""
        nu = 7
        mut = UniformMutation(nu, 0.01)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=2)
        for operator, dmax in (("fmmp", None), ("xmvp", 3)):
            dev = Device(TESLA_C2050)
            rep = DevicePowerIteration(
                dev, mut, ls, operator=operator, dmax=dmax, tol=1e-12
            ).run()
            model = PipelineCostModel(nu, operator, dmax)
            predicted = model.total_time(TESLA_C2050, rep.result.iterations)
            assert predicted == pytest.approx(rep.modeled_total_s, rel=1e-12)

    def test_shifted_adds_axpy(self):
        base = PipelineCostModel(10, "fmmp")
        shifted = PipelineCostModel(10, "fmmp", shifted=True)
        assert shifted.launches_per_iteration() == base.launches_per_iteration() + 1

    def test_wrapper(self):
        t = predict_power_iteration_time(TESLA_C2050, 12, 100, operator="fmmp")
        assert t > 0

    def test_iterations_validated(self):
        with pytest.raises(ValidationError):
            PipelineCostModel(8, "fmmp").total_time(TESLA_C2050, 0)

    def test_matvec_prediction_positive_and_monotone(self):
        t10 = predict_matvec_time(TESLA_C2050, fmmp_costs(10))
        t20 = predict_matvec_time(TESLA_C2050, fmmp_costs(20))
        assert 0 < t10 < t20


class TestMeasurement:
    def test_measure_single_matvec(self):
        nu = 8
        op = Fmmp(UniformMutation(nu, 0.01), RandomLandscape(nu, seed=1))
        res = measure_operator_matvec(op, repeats=3, min_time=0.001)
        assert res.median > 0

    def test_measure_series_skips_infeasible(self):
        """The dense operator refuses large ν — the series must simply
        stop there, like the truncated curves in Fig. 2."""
        from repro.operators import Smvp

        def factory(nu):
            mut = UniformMutation(nu, 0.01)
            return Smvp(mut, RandomLandscape(nu, seed=0), max_nu=8)

        series = measure_series("Smvp", [6, 7, 8, 9, 10], factory, repeats=1, min_time=0.0)
        assert series.nus == [6, 7, 8]

    def test_budget_stops_series(self):
        def factory(nu):
            return Fmmp(UniformMutation(nu, 0.01), RandomLandscape(nu, seed=0))

        series = measure_series(
            "Fmmp", [6, 8, 10], factory, repeats=1, min_time=0.0, budget_s=0.0
        )
        assert len(series.nus) == 1


class TestExtrapolation:
    def test_fit_recovers_known_scale(self):
        nus = [10, 12, 14, 16]
        times = [3e-9 * (1 << nu) ** 2 for nu in nus]
        a = fit_scale(ComplexityLaw.N_SQUARED, nus, times)
        assert a == pytest.approx(3e-9, rel=1e-6)

    def test_predict_extends(self):
        out = predict(ComplexityLaw.N_LOG2_N, 1e-9, [10, 20])
        assert out[1] / out[0] == pytest.approx((1 << 20) * 20 / ((1 << 10) * 10))

    def test_fit_and_extend_keeps_measured(self):
        nus = [10, 11, 12]
        times = [1.0, 2.1, 4.4]
        out = fit_and_extend(ComplexityLaw.N_SQUARED, nus, times, [10, 11, 12, 13])
        np.testing.assert_allclose(out[:3], times)
        assert out[3] > out[2]

    def test_callable_law(self):
        law = lambda nu: ComplexityLaw.xmvp_growth(nu, 5)
        a = fit_scale(law, [12, 14, 16], [law(n) * 2e-9 for n in (12, 14, 16)])
        assert a == pytest.approx(2e-9, rel=1e-6)

    def test_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            fit_scale(ComplexityLaw.N_SQUARED, [10], [])
        with pytest.raises(ValidationError):
            fit_scale(ComplexityLaw.N_SQUARED, [10], [-1.0])


class TestSpeedup:
    def test_basic_series(self):
        ref = {10: 100.0, 12: 1000.0}
        cand = {10: 1.0, 12: 5.0, 14: 9.0}
        out = speedup_series(ref, cand)
        assert out == {10: 100.0, 12: 200.0}

    def test_disjoint_rejected(self):
        with pytest.raises(ValidationError):
            speedup_series({10: 1.0}, {12: 1.0})

    def test_guideline(self):
        g = theoretical_guideline([10, 20])
        assert g[0] == pytest.approx(1024 / 10)
        assert g[1] == pytest.approx((1 << 20) / 20)

    def test_table_build_and_slope(self):
        nus = range(10, 21)
        ref = {nu: 1e-9 * (1 << nu) ** 2 for nu in nus}
        fast = {nu: 1e-9 * (1 << nu) * nu for nu in nus}
        table = SpeedupTable.build("ref", ref, {"fast": fast})
        # Speedup of an N log N algorithm over N² grows ~ +0.27 decades/ν.
        assert table.slope("fast") > 0.2
        assert table.at("fast", 20) == pytest.approx((1 << 20) / 20)
        # The guide line has the same slope as the fast algorithm.
        assert table.slope("N^2/(N log2 N)") == pytest.approx(table.slope("fast"), rel=0.05)

    def test_same_algorithm_parallel_curves(self):
        """Two hardware platforms running the same algorithm: constant
        ratio ⇒ identical slopes (paper's Fig. 4 observation)."""
        nus = range(10, 18)
        ref = {nu: 1e-9 * (1 << nu) ** 2 for nu in nus}
        slow_hw = {nu: 1e-8 * (1 << nu) * nu for nu in nus}
        fast_hw = {nu: 1e-10 * (1 << nu) * nu for nu in nus}
        table = SpeedupTable.build("ref", ref, {"slow": slow_hw, "fast": fast_hw})
        assert table.slope("slow") == pytest.approx(table.slope("fast"), rel=1e-9)

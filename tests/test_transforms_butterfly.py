"""Tests for the butterfly engine — the executable core of Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.transforms.butterfly import (
    apply_stage,
    butterfly_transform,
    butterfly_transform_reference,
)


def kron_from_bit_factors(factors):
    """Dense ⊗ with factor for bit s at Kronecker position ν−s (MSB first)."""
    m = np.array([[1.0]])
    for f in reversed(factors):
        m = np.kron(m, np.asarray(f, dtype=float))
    return m


finite_vec = lambda n: hnp.arrays(
    np.float64, n, elements=st.floats(-10, 10, allow_nan=False)
)


class TestApplyStage:
    def test_identity_factor_is_noop(self):
        v = np.arange(8, dtype=float)
        out = apply_stage(v.copy(), 2, np.eye(2))
        np.testing.assert_array_equal(out, v)

    def test_span1_pairs(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        m = np.array([[0.9, 0.1], [0.1, 0.9]])
        out = apply_stage(v, 1, m)
        np.testing.assert_allclose(out[:2], m @ v[:2])
        np.testing.assert_allclose(out[2:], m @ v[2:])

    def test_span2_pairs(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        m = np.array([[0.7, 0.3], [0.3, 0.7]])
        out = apply_stage(v, 2, m)
        # pairs are (0,2) and (1,3)
        np.testing.assert_allclose(out[[0, 2]], m @ v[[0, 2]])
        np.testing.assert_allclose(out[[1, 3]], m @ v[[1, 3]])

    def test_in_situ(self):
        v = np.arange(8, dtype=float)
        expected = apply_stage(v.copy(), 2, np.array([[0.5, 0.5], [0.25, 0.75]]))
        out = apply_stage(v, 2, np.array([[0.5, 0.5], [0.25, 0.75]]), out=v)
        assert out is v
        np.testing.assert_allclose(v, expected)

    def test_span_too_large(self):
        with pytest.raises(ValidationError):
            apply_stage(np.zeros(4), 4, np.eye(2))

    def test_non_power_of_two_length(self):
        with pytest.raises(ValidationError):
            apply_stage(np.zeros(6), 1, np.eye(2))

    def test_bad_factor_shape(self):
        with pytest.raises(ValidationError):
            apply_stage(np.zeros(4), 1, np.eye(3))


class TestButterflyTransform:
    @pytest.mark.parametrize("nu", [1, 2, 3, 5])
    def test_matches_dense_kronecker_uniform(self, nu):
        p = 0.07
        m = np.array([[1 - p, p], [p, 1 - p]])
        rng = np.random.default_rng(nu)
        v = rng.standard_normal(1 << nu)
        dense = kron_from_bit_factors([m] * nu)
        np.testing.assert_allclose(butterfly_transform(v, [m] * nu), dense @ v, atol=1e-12)

    @pytest.mark.parametrize("nu", [2, 4])
    def test_matches_dense_kronecker_distinct_factors(self, nu):
        rng = np.random.default_rng(100 + nu)
        factors = [rng.random((2, 2)) for _ in range(nu)]
        v = rng.standard_normal(1 << nu)
        dense = kron_from_bit_factors(factors)
        np.testing.assert_allclose(butterfly_transform(v, factors), dense @ v, atol=1e-12)

    def test_reference_agrees_with_vectorized(self):
        rng = np.random.default_rng(7)
        nu = 6
        factors = [rng.random((2, 2)) for _ in range(nu)]
        v = rng.standard_normal(1 << nu)
        np.testing.assert_allclose(
            butterfly_transform(v, factors),
            butterfly_transform_reference(v, factors),
            atol=1e-12,
        )

    def test_in_place_overwrites(self):
        v = np.arange(4, dtype=float)
        expected = butterfly_transform(v.copy(), [np.eye(2) * 2] * 2)
        out = butterfly_transform(v, [np.eye(2) * 2] * 2, in_place=True)
        assert out is v
        np.testing.assert_allclose(v, expected)

    def test_not_in_place_preserves_input(self):
        v = np.arange(4, dtype=float)
        orig = v.copy()
        butterfly_transform(v, [np.full((2, 2), 0.5)] * 2)
        np.testing.assert_array_equal(v, orig)

    def test_empty_factors_rejected(self):
        with pytest.raises(ValidationError):
            butterfly_transform(np.zeros(1), [])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValidationError):
            butterfly_transform(np.zeros(8), [np.eye(2)] * 2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.data())
    def test_linearity(self, nu, data):
        n = 1 << nu
        v = data.draw(finite_vec(n))
        w = data.draw(finite_vec(n))
        a = data.draw(st.floats(-3, 3, allow_nan=False))
        rng = np.random.default_rng(0)
        factors = [rng.random((2, 2)) for _ in range(nu)]
        lhs = butterfly_transform(a * v + w, factors)
        rhs = a * butterfly_transform(v, factors) + butterfly_transform(w, factors)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.data())
    def test_stochastic_factors_preserve_mass(self, nu, data):
        """Column-stochastic factors ⇒ Kronecker product column-stochastic
        ⇒ 1ᵀ(Qv) = 1ᵀv (Sec. 2.2)."""
        n = 1 << nu
        v = data.draw(finite_vec(n))
        rng = np.random.default_rng(1)
        factors = []
        for _ in range(nu):
            a, b = rng.random(2)
            factors.append(np.array([[1 - a, b], [a, 1 - b]]))
        out = butterfly_transform(v, factors)
        np.testing.assert_allclose(out.sum(), v.sum(), atol=1e-8 * (1 + abs(v.sum())))

"""Tests for the uniform mutation model (Eq. 2 / Eq. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops.popcount import hamming_matrix
from repro.exceptions import ValidationError
from repro.mutation import UniformMutation
from repro.transforms.fwht import fwht_matrix


@pytest.fixture
def q63():
    return UniformMutation(6, 0.03)


class TestConstruction:
    def test_valid(self):
        q = UniformMutation(5, 0.01)
        assert q.n == 32 and q.nu == 5

    def test_invalid_p(self):
        with pytest.raises(ValidationError):
            UniformMutation(5, -0.01)
        with pytest.raises(ValidationError):
            UniformMutation(5, 0.6)

    def test_error_free_corner_is_identity(self):
        # p = 0 is admitted (error-free replication): Q = I exactly.
        q = UniformMutation(3, 0.0)
        np.testing.assert_array_equal(q.dense(), np.eye(8))

    def test_invalid_nu(self):
        with pytest.raises(ValidationError):
            UniformMutation(0, 0.01)


class TestDense:
    def test_matches_hamming_formula(self, q63):
        """Q[i,j] = p^dH (1−p)^(ν−dH) — Eq. (2)."""
        dense = q63.dense()
        dh = hamming_matrix(6)
        expected = q63.p**dh * (1 - q63.p) ** (6 - dh)
        np.testing.assert_allclose(dense, expected, atol=1e-15)

    def test_symmetric(self, q63):
        dense = q63.dense()
        np.testing.assert_allclose(dense, dense.T)
        assert q63.is_symmetric

    def test_column_stochastic(self, q63):
        np.testing.assert_allclose(q63.dense().sum(axis=0), 1.0, atol=1e-12)

    def test_only_nu_plus_one_values(self, q63):
        assert len(np.unique(np.round(q63.dense(), 14))) == 7

    def test_guard(self):
        with pytest.raises(ValidationError):
            UniformMutation(20, 0.01).dense()


class TestApply:
    @pytest.mark.parametrize("nu", [1, 3, 6, 9])
    def test_matches_dense(self, nu):
        q = UniformMutation(nu, 0.02)
        rng = np.random.default_rng(nu)
        v = rng.standard_normal(q.n)
        np.testing.assert_allclose(q.apply(v), q.dense() @ v, atol=1e-12)

    def test_in_situ(self, q63):
        v = np.random.default_rng(0).random(64)
        expected = q63.apply(v.copy())
        out = q63.apply(v, out=v)
        assert out is v
        np.testing.assert_allclose(v, expected)

    def test_out_buffer(self, q63):
        v = np.random.default_rng(0).random(64)
        out = np.empty(64)
        res = q63.apply(v, out=out)
        assert res is out
        np.testing.assert_allclose(out, q63.apply(v))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), st.floats(1e-4, 0.5))
    def test_mass_preservation(self, nu, p):
        q = UniformMutation(nu, p)
        v = np.random.default_rng(0).random(q.n)
        np.testing.assert_allclose(q.apply(v).sum(), v.sum(), rtol=1e-12)

    def test_wrong_length(self, q63):
        with pytest.raises(ValidationError):
            q63.apply(np.zeros(63))


class TestSpectralStructure:
    def test_eigendecomposition_via_hadamard(self, q63):
        """Q = V Λ V with V the Hadamard matrix (paper, Sec. 2)."""
        v = fwht_matrix(6)
        lam = np.diag(q63.eigenvalues())
        np.testing.assert_allclose(v @ lam @ v, q63.dense(), atol=1e-12)

    def test_eigenvalue_multiplicities(self):
        """(1−2p)^k with multiplicity C(ν,k)."""
        q = UniformMutation(5, 0.1)
        vals, counts = np.unique(np.round(q.eigenvalues(), 12), return_counts=True)
        np.testing.assert_allclose(vals, (1 - 0.2) ** np.arange(5, -1, -1), atol=1e-12)
        np.testing.assert_array_equal(counts, [1, 5, 10, 10, 5, 1][::-1])

    def test_positive_definite_for_p_below_half(self):
        q = UniformMutation(6, 0.49)
        evals = np.linalg.eigvalsh(q.dense())
        assert evals.min() > 0

    def test_spectral_bounds(self, q63):
        lo, hi = q63.spectral_bounds()
        evals = np.linalg.eigvalsh(q63.dense())
        np.testing.assert_allclose([evals.min(), evals.max()], [lo, hi], atol=1e-12)

    def test_apply_inverse(self, q63):
        v = np.random.default_rng(1).random(64)
        np.testing.assert_allclose(q63.apply_inverse(q63.apply(v.copy())), v, atol=1e-10)

    def test_inverse_row_sums(self):
        """Eq. (12): absolute row sums of Q⁻¹ are (1−2p)^{−ν}."""
        q = UniformMutation(5, 0.05)
        qinv = np.linalg.inv(q.dense())
        np.testing.assert_allclose(
            np.abs(qinv).sum(axis=1), (1 - 0.1) ** (-5), rtol=1e-10
        )

    def test_inverse_rejected_at_half(self):
        q = UniformMutation(3, 0.5)
        with pytest.raises(ValidationError):
            q.apply_inverse(np.ones(8))


class TestClassValues:
    def test_formula(self):
        q = UniformMutation(4, 0.1)
        k = np.arange(5)
        np.testing.assert_allclose(q.class_values(), 0.1**k * 0.9 ** (4 - k))

    def test_sum_weighted_by_class_size_is_one(self):
        """Σ_k C(ν,k)·QΓ_k = (p + (1−p))^ν = 1 — each column sums to 1."""
        from repro.util.binomial import binomial_row

        q = UniformMutation(12, 0.07)
        np.testing.assert_allclose((binomial_row(12) * q.class_values()).sum(), 1.0)

"""Unit tests for repro.util.timing and repro.util.rng."""

import time

import numpy as np
import pytest

from repro.util.rng import as_generator
from repro.util.timing import Timer, median_time


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_exit(self):
        t = Timer()
        assert t.elapsed == 0.0


class TestMedianTime:
    def test_basic(self):
        calls = []
        res = median_time(lambda: calls.append(1), repeats=3, warmup=1)
        assert res.repeats == 3
        assert len(res.samples) == 3
        assert res.minimum <= res.median <= res.maximum
        # 1 warmup + 3 measured
        assert len(calls) == 4

    def test_min_time_batches(self):
        res = median_time(lambda: None, repeats=2, warmup=0, min_time=0.005)
        assert res.median >= 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            median_time(lambda: None, repeats=0)


class TestAsGenerator:
    def test_from_int_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

"""Tests for the FWHT spectral operations on Q (Sec. 2 / Sec. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.mutation import UniformMutation
from repro.mutation.spectral import (
    apply_uniform_q_inverse,
    apply_uniform_q_spectral,
    solve_shifted_uniform_q,
    uniform_q_eigenvalues,
)


class TestEigenvalues:
    def test_match_dense_spectrum(self):
        nu, p = 6, 0.07
        lam = uniform_q_eigenvalues(nu, p)
        dense_eigs = np.linalg.eigvalsh(UniformMutation(nu, p).dense())
        np.testing.assert_allclose(np.sort(lam), np.sort(dense_eigs), atol=1e-12)

    def test_alignment_with_fwht_basis(self):
        """Column j of the Hadamard matrix is an eigenvector with
        eigenvalue (1−2p)^{popcount(j)}."""
        from repro.transforms.fwht import fwht_matrix

        nu, p = 5, 0.04
        q = UniformMutation(nu, p).dense()
        v = fwht_matrix(nu)
        lam = uniform_q_eigenvalues(nu, p)
        for j in [0, 1, 7, 31]:
            np.testing.assert_allclose(q @ v[:, j], lam[j] * v[:, j], atol=1e-12)


class TestSpectralApply:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 9), st.floats(1e-3, 0.49))
    def test_matches_butterfly_apply(self, nu, p):
        q = UniformMutation(nu, p)
        v = np.random.default_rng(0).standard_normal(q.n)
        np.testing.assert_allclose(
            apply_uniform_q_spectral(v, nu, p), q.apply(v), atol=1e-10
        )


class TestShiftedSolve:
    def test_solves_the_system(self):
        nu, p, mu = 7, 0.02, 0.005
        q = UniformMutation(nu, p)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(q.n)
        x = solve_shifted_uniform_q(b, nu, p, mu)
        np.testing.assert_allclose(q.apply(x) - mu * x, b, atol=1e-9)

    def test_zero_shift_is_inverse(self):
        nu, p = 6, 0.05
        q = UniformMutation(nu, p)
        b = np.random.default_rng(2).standard_normal(q.n)
        np.testing.assert_allclose(
            apply_uniform_q_inverse(b, nu, p), q.apply_inverse(b), atol=1e-9
        )

    def test_eigenvalue_shift_rejected(self):
        nu, p = 4, 0.1
        with pytest.raises(ValidationError):
            solve_shifted_uniform_q(np.ones(16), nu, p, mu=1.0)  # λ_max = 1

    def test_shift_near_but_not_at_eigenvalue(self):
        nu, p = 4, 0.1
        x = solve_shifted_uniform_q(np.ones(16), nu, p, mu=1.0 - 1e-6)
        assert np.all(np.isfinite(x))

    def test_complexity_is_two_fwht_passes(self):
        """Structural check: cost is independent of the shift — the same
        two transforms + diagonal solve (we just verify correctness for
        several shifts here; timing is covered in the benches)."""
        nu, p = 8, 0.01
        q = UniformMutation(nu, p)
        b = np.random.default_rng(3).standard_normal(q.n)
        for mu in (0.0, 0.3, 0.9):
            x = solve_shifted_uniform_q(b, nu, p, mu)
            np.testing.assert_allclose(q.apply(x) - mu * x, b, atol=1e-8)

"""Tests for the process-parallel sweep runner."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.model.parallel_sweep import parallel_sweep_error_rates
from repro.model.threshold import sweep_error_rates

RATES = np.linspace(0.005, 0.1, 12)


class TestParallelSweep:
    def test_identical_to_serial(self):
        ls = SinglePeakLandscape(14, 2.0, 1.0)
        serial = sweep_error_rates(ls, RATES)
        parallel = parallel_sweep_error_rates(ls, RATES, max_workers=4)
        np.testing.assert_allclose(
            parallel.class_concentrations, serial.class_concentrations, atol=1e-13
        )
        assert parallel.p_max == serial.p_max

    def test_single_worker_path(self):
        ls = SinglePeakLandscape(10, 2.0, 1.0)
        serial = sweep_error_rates(ls, RATES)
        one = parallel_sweep_error_rates(ls, RATES, max_workers=1)
        np.testing.assert_allclose(
            one.class_concentrations, serial.class_concentrations, atol=1e-13
        )

    def test_p_zero_point(self):
        ls = SinglePeakLandscape(8)
        sweep = parallel_sweep_error_rates(ls, np.array([0.0, 0.02]), max_workers=2)
        np.testing.assert_array_equal(sweep.class_concentrations[0], [1.0] + [0.0] * 8)

    def test_rejects_general_landscape(self):
        with pytest.raises(ValidationError):
            parallel_sweep_error_rates(RandomLandscape(6, seed=0), RATES)

    def test_rejects_bad_grid(self):
        ls = SinglePeakLandscape(8)
        with pytest.raises(ValidationError):
            parallel_sweep_error_rates(ls, np.array([0.05, 0.01]))

    def test_workers_capped_by_grid(self):
        ls = SinglePeakLandscape(8)
        sweep = parallel_sweep_error_rates(ls, np.array([0.01, 0.02]), max_workers=64)
        assert sweep.class_concentrations.shape == (2, 9)

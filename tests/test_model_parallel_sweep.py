"""Tests for the process-parallel sweep runner."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.model.parallel_sweep import parallel_sweep_error_rates
from repro.model.threshold import sweep_error_rates

RATES = np.linspace(0.005, 0.1, 12)


class TestParallelSweep:
    def test_identical_to_serial(self):
        ls = SinglePeakLandscape(14, 2.0, 1.0)
        serial = sweep_error_rates(ls, RATES)
        parallel = parallel_sweep_error_rates(ls, RATES, max_workers=4)
        np.testing.assert_allclose(
            parallel.class_concentrations, serial.class_concentrations, atol=1e-13
        )
        assert parallel.p_max == serial.p_max

    def test_single_worker_path(self):
        ls = SinglePeakLandscape(10, 2.0, 1.0)
        serial = sweep_error_rates(ls, RATES)
        one = parallel_sweep_error_rates(ls, RATES, max_workers=1)
        np.testing.assert_allclose(
            one.class_concentrations, serial.class_concentrations, atol=1e-13
        )

    def test_p_zero_point(self):
        ls = SinglePeakLandscape(8)
        sweep = parallel_sweep_error_rates(ls, np.array([0.0, 0.02]), max_workers=2)
        np.testing.assert_array_equal(sweep.class_concentrations[0], [1.0] + [0.0] * 8)

    def test_rejects_general_landscape(self):
        with pytest.raises(ValidationError):
            parallel_sweep_error_rates(RandomLandscape(6, seed=0), RATES)

    def test_rejects_bad_grid(self):
        ls = SinglePeakLandscape(8)
        with pytest.raises(ValidationError):
            parallel_sweep_error_rates(ls, np.array([0.05, 0.01]))

    def test_workers_capped_by_grid(self):
        ls = SinglePeakLandscape(8)
        sweep = parallel_sweep_error_rates(ls, np.array([0.01, 0.02]), max_workers=64)
        assert sweep.class_concentrations.shape == (2, 9)


@pytest.mark.service_smoke
class TestServiceRouteRegression:
    """The scheduler-routed sweep must be *bit-identical* to the serial
    path — both run the very same :class:`ReducedSolver` call."""

    def test_bit_identical_to_serial(self):
        ls = SinglePeakLandscape(12, 2.0, 1.0)
        serial = sweep_error_rates(ls, RATES)
        parallel = parallel_sweep_error_rates(ls, RATES, max_workers=1)
        assert (
            parallel.class_concentrations.tobytes()
            == serial.class_concentrations.tobytes()
        )
        assert parallel.p_max == serial.p_max

    def test_bit_identical_through_process_pool(self):
        rates = np.linspace(0.01, 0.06, 5)
        ls = SinglePeakLandscape(10, 2.0, 1.0)
        serial = sweep_error_rates(ls, rates)
        parallel = parallel_sweep_error_rates(ls, rates, max_workers=2)
        assert (
            parallel.class_concentrations.tobytes()
            == serial.class_concentrations.tobytes()
        )

    def test_duplicate_rates_rejected_by_grid_check(self):
        # the service would dedup them, but the sweep contract demands a
        # strictly increasing grid — unchanged from the serial path
        ls = SinglePeakLandscape(8)
        with pytest.raises(ValidationError):
            parallel_sweep_error_rates(ls, np.array([0.01, 0.01, 0.02]))

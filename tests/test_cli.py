"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.landscape == "single-peak" and args.nu == 12


class TestSolveCommand:
    def test_single_peak(self, capsys):
        assert main(["solve", "--nu", "10", "--p", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "lambda_0" in out
        assert "Reduced" in out  # auto picks the exact reduction

    def test_random_landscape_power(self, capsys):
        assert main(["solve", "--landscape", "random", "--nu", "8", "--p", "0.02",
                     "--method", "power"]) == 0
        out = capsys.readouterr().out
        assert "Pi(" in out

    def test_save_result(self, capsys, tmp_path):
        path = str(tmp_path / "out.npz")
        assert main(["solve", "--nu", "8", "--save", path]) == 0
        from repro.io import load_result

        res = load_result(path)
        assert res.converged

    def test_reduced_on_random_fails_cleanly(self, capsys):
        code = main(["solve", "--landscape", "random", "--nu", "8", "--method", "reduced"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweepCommand:
    def test_threshold_reported(self, capsys):
        assert main(["sweep", "--nu", "14", "--p-min", "0.005", "--p-max", "0.12",
                     "--steps", "24"]) == 0
        out = capsys.readouterr().out
        assert "p_max" in out

    def test_linear_no_threshold(self, capsys):
        assert main(["sweep", "--landscape", "linear", "--nu", "12",
                     "--steps", "10"]) == 0
        assert "no error threshold" in capsys.readouterr().out

    def test_csv_export(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        assert main(["sweep", "--nu", "10", "--steps", "6", "--csv", str(path)]) == 0
        header = path.read_text().splitlines()[0]
        assert header.startswith("p,G0,")

    def test_save_npz(self, capsys, tmp_path):
        path = str(tmp_path / "sweep.npz")
        assert main(["sweep", "--nu", "10", "--steps", "6", "--save", path]) == 0
        from repro.io import load_sweep

        assert load_sweep(path).nu == 10

    def test_bad_steps(self, capsys):
        assert main(["sweep", "--steps", "1"]) == 2


class TestThresholdCommand:
    def test_single_peak_margin(self, capsys):
        assert main(["threshold", "--nu", "12", "--p", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "p_max" in out and "mutagenic margin" in out

    def test_linear_no_threshold(self, capsys):
        assert main(["threshold", "--landscape", "linear", "--nu", "12"]) == 0
        assert "no sharp error threshold" in capsys.readouterr().out

    def test_already_delocalized(self, capsys):
        assert main(["threshold", "--nu", "12", "--p", "0.2"]) == 0
        assert "past the threshold" in capsys.readouterr().out


class TestSimulateCommand:
    def test_runs_and_compares_with_deterministic(self, capsys):
        assert main(["simulate", "--nu", "8", "--p", "0.02",
                     "--population", "1000", "--generations", "60",
                     "--burn-in", "20"]) == 0
        out = capsys.readouterr().out
        assert "mean fitness" in out
        assert "deterministic" in out

    def test_bad_population(self, capsys):
        assert main(["simulate", "--population", "0"]) == 2


class TestInfoCommand:
    def test_prints_capabilities(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Fmmp" in out and "landscapes" in out


class TestVerifyCommand:
    def test_smoke_grid_passes_and_writes_json(self, capsys, tmp_path):
        path = str(tmp_path / "report.json")
        assert main(["verify", "--grid", "smoke", "--json", path]) == 0
        out = capsys.readouterr().out
        assert "all invariants and oracle pairs held" in out
        from repro.io import load_verification_report

        report = load_verification_report(path)
        assert report.passed and report.grid == "smoke"

    def test_json_to_stdout(self, capsys):
        assert main(["verify", "--grid", "smoke", "--no-solvers",
                     "--quiet", "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"kind": "repro.VerificationReport.v1"' in out

    def test_progress_lines(self, capsys):
        assert main(["verify", "--grid", "smoke", "--no-solvers",
                     "--json", ""]) == 0
        out = capsys.readouterr().out
        assert "[  1/" in out and "ok" in out

    def test_random_grid_with_count(self, capsys):
        assert main(["verify", "--grid", "random", "--count", "3", "--nu", "4",
                     "--no-solvers", "--quiet", "--json", ""]) == 0
        assert "3 specs" in capsys.readouterr().out

    def test_violation_exits_nonzero_and_names_invariant(self, capsys, monkeypatch):
        from repro.operators.fmmp import Fmmp

        original = Fmmp.matvec

        def broken(self, v):
            out = original(self, v)
            out[-1] = -out[-1]
            return out

        monkeypatch.setattr(Fmmp, "matvec", broken)
        code = main(["verify", "--grid", "smoke", "--no-solvers",
                     "--quiet", "--json", ""])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "fmmp-dense-equivalence" in out

    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.grid == "small" and args.nu == 6
        assert args.json == "verify-report.json"

"""Tests for quasispecies population statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    cloud_entropy,
    consensus_sequence,
    master_localization,
    summarize,
)
from repro.exceptions import ValidationError
from repro.landscapes import SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.solvers import dense_solve


class TestConsensus:
    def test_single_sequence(self):
        x = np.zeros(16)
        x[0b1010] = 1.0
        assert consensus_sequence(x, 4) == 0b1010

    def test_majority_without_dominant_sequence(self):
        """Three sequences sharing bit 0: consensus has bit 0 even though
        no single sequence dominates."""
        x = np.zeros(8)
        x[0b001] = 0.3
        x[0b011] = 0.3
        x[0b101] = 0.3
        x[0b110] = 0.1
        assert consensus_sequence(x, 3) & 1 == 1

    def test_quasispecies_consensus_is_master(self):
        nu, p = 8, 0.02
        res = dense_solve(UniformMutation(nu, p), SinglePeakLandscape(nu, 2.0, 1.0))
        assert consensus_sequence(res.concentrations, nu) == 0

    def test_zero_mass_rejected(self):
        with pytest.raises(ValidationError):
            consensus_sequence(np.zeros(4), 2)


class TestEntropy:
    def test_point_mass_zero(self):
        x = np.zeros(8)
        x[3] = 1.0
        assert cloud_entropy(x) == 0.0

    def test_uniform_is_log2_n(self):
        assert cloud_entropy(np.full(64, 1 / 64)) == pytest.approx(6.0)

    def test_normalized_range(self):
        assert cloud_entropy(np.full(32, 1.0), normalized=True) == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 10_000))
    def test_bounds_property(self, nu, seed):
        x = np.random.default_rng(seed).random(1 << nu) + 1e-12
        h = cloud_entropy(x)
        assert -1e-9 <= h <= nu + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            cloud_entropy(np.array([-0.1, 1.1]))
        with pytest.raises(ValidationError):
            cloud_entropy(np.zeros(4))


class TestLocalization:
    def test_point_mass(self):
        x = np.zeros(16)
        x[0] = 1.0
        assert master_localization(x, 4, radius=0) == 1.0

    def test_radius_grows_mass(self):
        nu, p = 7, 0.03
        res = dense_solve(UniformMutation(nu, p), SinglePeakLandscape(nu, 2.0, 1.0))
        vals = [master_localization(res.concentrations, nu, radius=r) for r in range(nu + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))
        assert vals[-1] == pytest.approx(1.0)

    def test_radius_validation(self):
        with pytest.raises(ValidationError):
            master_localization(np.ones(4), 2, radius=3)


class TestSummary:
    def test_ordered_phase(self):
        nu, p = 8, 0.01
        res = dense_solve(UniformMutation(nu, p), SinglePeakLandscape(nu, 2.0, 1.0))
        s = summarize(res.concentrations, nu)
        assert s.is_ordered
        assert s.consensus == 0
        assert s.dominant_index == 0
        assert s.dominant_concentration > 0.3
        assert s.localization_radius1 > 0.5
        np.testing.assert_allclose(s.class_concentrations.sum(), 1.0)

    def test_disordered_phase(self):
        nu, p = 8, 0.45  # deep in the random-replication regime
        res = dense_solve(UniformMutation(nu, p), SinglePeakLandscape(nu, 2.0, 1.0))
        s = summarize(res.concentrations, nu)
        assert not s.is_ordered
        assert s.entropy_normalized > 0.95
        assert s.participation_ratio > 0.9 * (1 << nu)

    def test_phase_transition_visible_in_entropy(self):
        """Entropy jumps across the threshold — a scalar view of Fig. 1."""
        nu = 8
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        ents = []
        for p in (0.01, 0.2):
            res = dense_solve(UniformMutation(nu, p), ls)
            ents.append(summarize(res.concentrations, nu).entropy_normalized)
        assert ents[1] > ents[0] + 0.3

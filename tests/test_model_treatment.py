"""Tests for time-dependent error rates (treatment courses)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import SinglePeakLandscape
from repro.model.ode import QuasispeciesODE
from repro.model.treatment import (
    TimeVaryingQuasispeciesODE,
    constant,
    dose_course,
    ramp,
)
from repro.mutation import UniformMutation
from repro.solvers import ReducedSolver


NU = 8
LS = SinglePeakLandscape(NU, 3.0, 1.0)


class TestSchedules:
    def test_constant(self):
        s = constant(0.02)
        assert s(0.0) == 0.02 and s(100.0) == 0.02

    def test_ramp_endpoints(self):
        s = ramp(0.01, 0.2, t_ramp=10.0)
        assert s(0.0) == pytest.approx(0.01)
        assert s(5.0) == pytest.approx(0.105)
        assert s(10.0) == pytest.approx(0.2)
        assert s(50.0) == pytest.approx(0.2)

    def test_dose_course_shape(self):
        s = dose_course(0.01, 0.3, t_on=5.0, t_off=20.0, tau=3.0)
        assert s(0.0) == pytest.approx(0.01)
        assert s(6.0) > 0.01
        peak_level = s(19.9)
        assert 0.2 < peak_level < 0.3
        assert s(40.0) < peak_level  # washout
        assert s(1e3) == pytest.approx(0.01, abs=1e-6)

    def test_schedule_range_enforced(self):
        from repro.model.treatment import ErrorRateSchedule

        bad = ErrorRateSchedule(lambda t: 0.7)
        with pytest.raises(ValidationError):
            bad(0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            ramp(0.01, 0.1, t_ramp=0.0)
        with pytest.raises(ValidationError):
            dose_course(0.01, 0.2, t_on=5.0, t_off=5.0, tau=1.0)
        with pytest.raises(ValidationError):
            dose_course(0.01, 0.2, t_on=0.0, t_off=5.0, tau=0.0)


class TestDynamics:
    def test_constant_schedule_matches_fixed_ode(self):
        p = 0.02
        tv = TimeVaryingQuasispeciesODE(LS, constant(p))
        fixed = QuasispeciesODE(UniformMutation(NU, p), LS)
        x0 = np.full(1 << NU, 1.0 / (1 << NU))
        a = tv.integrate(x0, t_end=3.0, dt=0.05)
        b, _ = fixed.integrate(x0, t_end=3.0, dt=0.05)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_mass_conserved_under_varying_p(self):
        tv = TimeVaryingQuasispeciesODE(LS, ramp(0.01, 0.3, t_ramp=2.0))
        x0 = np.zeros(1 << NU)
        x0[0] = 1.0
        x = tv.integrate(x0, t_end=5.0, dt=0.02)
        assert x.sum() == pytest.approx(1.0)
        assert x.min() >= 0.0

    def test_treatment_delocalizes_and_washout_recovers(self):
        """The pharmacological story: dosing pushes the population over
        the threshold; stopping the drug lets the master recolonize
        (the landscape never changed)."""
        course = dose_course(0.01, 0.35, t_on=2.0, t_off=30.0, tau=1.0)
        tv = TimeVaryingQuasispeciesODE(LS, course)
        x0 = ReducedSolver(NU, 0.01, LS).full_eigenvector()

        snapshots = {}

        def observer(t, x):
            snapshots[round(t, 2)] = x[0]

        tv.integrate(x0, t_end=80.0, dt=0.02, observer=observer, observe_every=50)
        before = x0[0]
        during = min(v for t, v in snapshots.items() if 20.0 <= t <= 30.0)
        after = snapshots[max(snapshots)]
        assert during < 0.05 * before, "treatment collapses the master"
        assert after > 0.5 * before, "washout lets the master recolonize"

    def test_observer_cadence(self):
        tv = TimeVaryingQuasispeciesODE(LS, constant(0.02))
        calls = []
        x0 = np.full(1 << NU, 1.0 / (1 << NU))
        tv.integrate(x0, t_end=1.0, dt=0.1, observer=lambda t, x: calls.append(t), observe_every=2)
        assert len(calls) == 5

    def test_bad_x0(self):
        tv = TimeVaryingQuasispeciesODE(LS, constant(0.02))
        with pytest.raises(ValidationError):
            tv.integrate(np.full(1 << NU, 0.5), t_end=1.0)

"""Batched solve path through the service layer.

Covers the scheduler's block extraction (`plan_batched_jobs`), the
pool's block execution with per-failure-scope degradation
(`run_batched`), the `SolverService` wiring (``batched``/``min_batch``
options, `BatchReport.n_batched`), the manifest/CLI plumbing, and the
acceptance property: a batched run answers every job with the same
eigenpairs as the scalar route.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.service import (
    BatchedSolveJob,
    JobResult,
    SolveJob,
    SolverService,
    WorkerPool,
    execute_batched_job,
    execute_job,
    is_batchable,
    plan_batch,
    plan_batched_jobs,
    run_manifest,
)

NU = 6


def sharing_jobs(n=4, method="power", **overrides):
    """Jobs sharing one mutation operator (same nu/p) across landscapes."""
    base = dict(nu=NU, p=0.02, method=method, tol=1e-10)
    base.update(overrides)
    variants = [
        dict(landscape="single-peak", peak=2.0),
        dict(landscape="single-peak", peak=4.0),
        dict(landscape="random", seed=1),
        dict(landscape="linear"),
    ]
    return [SolveJob(**{**base, **v}) for v in variants[:n]]


class TestIsBatchable:
    def test_power_fmmp_is_batchable(self):
        assert is_batchable(SolveJob(nu=NU, p=0.02, method="power"))

    def test_other_routes_are_not(self):
        assert not is_batchable(SolveJob(nu=NU, p=0.02, method="dense"))
        assert not is_batchable(
            SolveJob(nu=NU, p=0.02, method="power", operator="xmvp")
        )
        # auto on an error-class landscape resolves to the reduced route
        assert not is_batchable(SolveJob(nu=NU, p=0.02, method="auto"))


class TestPlanBatchedJobs:
    def test_operator_sharing_group_becomes_one_block(self):
        jobs = sharing_jobs(4)
        plan = plan_batch(jobs)
        blocks = plan_batched_jobs(plan)
        assert len(blocks) == 1
        block = blocks[0]
        assert isinstance(block, BatchedSolveJob)
        assert block.batch == 4
        assert sorted(block.indices) == list(block.indices)
        assert all(is_batchable(j) for j in block.jobs)

    def test_distinct_operators_stay_separate(self):
        jobs = sharing_jobs(2) + sharing_jobs(2, p=0.05)
        blocks = plan_batched_jobs(plan_batch(jobs))
        assert len(blocks) == 2
        keys = {b.key for b in blocks}
        assert len(keys) == 2

    def test_forms_split_blocks(self):
        jobs = sharing_jobs(2, form="right") + sharing_jobs(2, form="left")
        blocks = plan_batched_jobs(plan_batch(jobs))
        assert sorted(b.form for b in blocks) == ["left", "right"]

    def test_min_batch_filters_small_groups(self):
        jobs = sharing_jobs(2)
        assert plan_batched_jobs(plan_batch(jobs), min_batch=3) == []
        assert len(plan_batched_jobs(plan_batch(jobs), min_batch=2)) == 1

    def test_subset_restricts_membership(self):
        jobs = sharing_jobs(4)
        plan = plan_batch(jobs)
        blocks = plan_batched_jobs(plan, subset=[0, 2])
        assert len(blocks) == 1 and set(blocks[0].indices) == {0, 2}
        assert plan_batched_jobs(plan, subset=[1]) == []

    def test_non_batchable_members_excluded(self):
        jobs = sharing_jobs(3) + [SolveJob(nu=NU, p=0.02, method="dense")]
        blocks = plan_batched_jobs(plan_batch(jobs))
        assert len(blocks) == 1 and blocks[0].batch == 3

    def test_block_accuracy_envelope(self):
        jobs = sharing_jobs(2)
        loose = SolveJob(nu=NU, p=0.02, method="power", landscape="flat", tol=1e-6,
                         max_iterations=50)
        blocks = plan_batched_jobs(plan_batch(jobs + [loose]))
        assert blocks[0].tol == 1e-10  # tightest member wins
        assert blocks[0].max_iterations == 100_000

    def test_min_batch_validated(self):
        with pytest.raises(ValidationError, match="min_batch"):
            plan_batched_jobs(plan_batch(sharing_jobs(2)), min_batch=0)


class TestExecuteBatchedJob:
    def make_block(self, **overrides):
        jobs = sharing_jobs(4, **overrides)
        return plan_batched_jobs(plan_batch(jobs))[0]

    def test_matches_scalar_execute_job(self):
        block = self.make_block()
        batched = execute_batched_job(block)
        assert len(batched) == block.batch
        for job, res in zip(block.jobs, batched):
            scalar = execute_job(job)
            assert res.converged
            assert res.eigenvalue == pytest.approx(scalar.eigenvalue, rel=1e-8)
            np.testing.assert_allclose(
                res.concentrations, scalar.concentrations, atol=1e-7
            )

    def test_shifted_label_when_auto_shift_applies(self):
        block = self.make_block()  # method=power, shift=False, uniform -> no auto
        results = execute_batched_job(block)
        assert all(r.method == "BPi(Fmmp)" for r in results)
        shifted = self.make_block(shift=True)
        results = execute_batched_job(shifted)
        assert all(r.method == "BPi(Fmmp, shifted)" for r in results)


class TestRunBatched:
    def test_telemetry_carries_batch_size(self):
        block = plan_batched_jobs(plan_batch(sharing_jobs(3)))[0]
        pool = WorkerPool(kind="serial")
        outcomes = pool.run_batched(block)
        assert len(outcomes) == 3
        for result, tele in outcomes:
            assert result is not None and result.converged
            assert tele.status == "solved"
            assert tele.route == "batched-power"
            assert tele.batch == 3
            assert not tele.fallback_used
            # round trip keeps the new field
            assert type(tele).from_dict(tele.to_dict()).batch == 3

    def test_block_failure_degrades_every_member_to_scalar(self):
        def broken(bjob):
            raise RuntimeError("kernel exploded")

        block = plan_batched_jobs(plan_batch(sharing_jobs(3)))[0]
        pool = WorkerPool(kind="serial", batched_solve_fn=broken)
        outcomes = pool.run_batched(block)
        for result, tele in outcomes:
            assert result is not None and result.converged  # scalar rescued it
            assert tele.fallback_used
            assert any("kernel exploded" in msg for msg in tele.failures)
            assert tele.batch == 1

    def test_unconverged_column_degrades_alone(self):
        def partial(bjob):
            results = execute_batched_job(bjob)
            bad = results[1]
            results[1] = JobResult(
                eigenvalue=bad.eigenvalue,
                concentrations=bad.concentrations,
                method=bad.method,
                iterations=bad.iterations,
                residual=1.0,
                converged=False,
                tol=bad.tol,
            )
            return results

        block = plan_batched_jobs(plan_batch(sharing_jobs(3)))[0]
        pool = WorkerPool(kind="serial", batched_solve_fn=partial)
        outcomes = pool.run_batched(block)
        assert outcomes[0][1].route == "batched-power"
        assert outcomes[2][1].route == "batched-power"
        rescue_result, rescue_tele = outcomes[1]
        assert rescue_result is not None and rescue_result.converged
        assert rescue_tele.fallback_used
        assert any("did not converge" in msg for msg in rescue_tele.failures)

    def test_wrong_result_count_degrades_to_scalar(self):
        def truncated(bjob):
            return execute_batched_job(bjob)[:-1]

        block = plan_batched_jobs(plan_batch(sharing_jobs(2)))[0]
        pool = WorkerPool(kind="serial", batched_solve_fn=truncated)
        outcomes = pool.run_batched(block)
        assert all(r is not None for r, _ in outcomes)
        assert all(t.fallback_used for _, t in outcomes)


class TestServiceBatched:
    @pytest.mark.service_smoke
    def test_batched_and_scalar_services_agree(self):
        jobs = sharing_jobs(4)
        batched = SolverService(kind="serial", batched=True).submit(jobs)
        scalar = SolverService(kind="serial", batched=False).submit(jobs)
        assert batched.passed and scalar.passed
        assert batched.n_batched == 4 and scalar.n_batched == 0
        for rb, rs in zip(batched.results, scalar.results):
            assert rb.eigenvalue == pytest.approx(rs.eigenvalue, rel=1e-8)
            np.testing.assert_allclose(
                rb.concentrations, rs.concentrations, atol=1e-7
            )

    @pytest.mark.service_smoke
    def test_batched_results_are_cached(self):
        service = SolverService(kind="serial", batched=True)
        jobs = sharing_jobs(3)
        first = service.submit(jobs)
        second = service.submit(jobs)
        assert first.n_batched == 3 and first.n_cached == 0
        assert second.n_solved == 0 and second.n_cached == 3

    def test_min_batch_keeps_small_groups_scalar(self):
        jobs = sharing_jobs(2)
        report = SolverService(kind="serial", batched=True, min_batch=3).submit(jobs)
        assert report.passed and report.n_batched == 0

    def test_mixed_manifest_batches_only_the_sharing_group(self):
        jobs = sharing_jobs(3) + [
            SolveJob(nu=NU, p=0.01),  # auto -> reduced, scalar
            SolveJob(nu=NU, p=0.02, method="dense", landscape="random", seed=9),
        ]
        report = SolverService(kind="serial", batched=True).submit(jobs)
        assert report.passed
        assert report.n_batched == 3
        assert report.to_dict()["batched"] == 3

    def test_min_batch_validated(self):
        with pytest.raises(ValidationError, match="min_batch"):
            SolverService(kind="serial", min_batch=0)


def _sharing_manifest(tmp_path, options=None):
    data = {
        "defaults": {"nu": NU, "p": 0.02, "method": "power", "tol": 1e-10},
        "jobs": [
            {"landscape": "single-peak", "peak": 2.0},
            {"landscape": "single-peak", "peak": 4.0},
            {"landscape": "random", "seed": 1},
        ],
        "options": options or {},
    }
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestManifestAndCli:
    def test_manifest_batched_option(self, tmp_path):
        path = _sharing_manifest(tmp_path, options={"kind": "serial", "batched": False})
        report = run_manifest(path)
        assert report.passed and report.n_batched == 0
        report = run_manifest(path, batched=True)  # override wins
        assert report.passed and report.n_batched == 3

    def test_cli_batched_flag_round_trip(self, tmp_path, capsys):
        path = _sharing_manifest(tmp_path, options={"kind": "serial"})
        out_json = str(tmp_path / "report.json")
        assert main(["batch", path, "--quiet", "--json", out_json]) == 0
        report = json.loads(open(out_json).read())
        assert report["batched"] == 3
        assert main(["batch", path, "--no-batched", "--quiet", "--json", out_json]) == 0
        report = json.loads(open(out_json).read())
        assert report["batched"] == 0

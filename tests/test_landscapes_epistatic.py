"""Tests for the multiplicative / additive / NK landscape families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.landscapes import (
    AdditiveLandscape,
    MultiplicativeLandscape,
    NKLandscape,
)
from repro.mutation import UniformMutation
from repro.solvers import KroneckerSolver, dense_solve
from repro.landscapes.custom import TabulatedLandscape


class TestMultiplicative:
    def test_values_formula(self):
        ls = MultiplicativeLandscape(2.0, [0.1, 0.5])
        # f_i = 2 * (1-0.1)^bit0 * (1-0.5)^bit1
        np.testing.assert_allclose(ls.values(), [2.0, 1.8, 1.0, 0.9])

    def test_is_kronecker_and_decouples(self):
        """The advertised payoff: the Sec. 5.2 solver applies directly."""
        effects = [0.05, 0.2, 0.1, 0.3]
        ls = MultiplicativeLandscape(3.0, effects)
        mut = UniformMutation(4, 0.02)
        dec = KroneckerSolver(mut, ls).solve()
        full = dense_solve(mut, TabulatedLandscape(ls.values()))
        assert dec.eigenvalue == pytest.approx(full.eigenvalue, rel=1e-11)
        np.testing.assert_allclose(
            dec.eigenvector.materialize(), full.concentrations, atol=1e-11
        )

    def test_master_is_fittest(self):
        ls = MultiplicativeLandscape(2.0, [0.1, 0.01, 0.3])
        assert ls.values().argmax() == 0
        assert ls.fmax == pytest.approx(2.0)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(0.0, 0.9), min_size=1, max_size=8))
    def test_fmin_formula(self, effects):
        ls = MultiplicativeLandscape(1.5, effects)
        expected = 1.5 * np.prod([1 - e for e in effects])
        assert ls.fmin == pytest.approx(expected, rel=1e-10)

    def test_effect_range_validated(self):
        with pytest.raises(ValidationError):
            MultiplicativeLandscape(1.0, [1.0])
        with pytest.raises(ValidationError):
            MultiplicativeLandscape(1.0, [-0.1])


class TestAdditive:
    def test_values_formula(self):
        ls = AdditiveLandscape(3.0, [0.5, 1.0])
        np.testing.assert_allclose(ls.values(), [3.0, 2.5, 2.0, 1.5])

    def test_uniform_effects_is_error_class(self):
        assert AdditiveLandscape(3.0, [0.2] * 5).is_error_class_landscape

    def test_distinct_effects_not_error_class(self):
        ls = AdditiveLandscape(3.0, [0.2, 0.3, 0.1])
        assert not ls.is_error_class_landscape

    def test_bounds(self):
        ls = AdditiveLandscape(4.0, [0.5, 1.0, 0.25])
        assert ls.fmax == 4.0 and ls.fmin == pytest.approx(2.25)

    def test_positivity_guard(self):
        with pytest.raises(ValidationError):
            AdditiveLandscape(1.0, [0.6, 0.6])

    def test_solver_end_to_end(self):
        """Additive-non-uniform: the honest general workload — full
        solver only, and it just works."""
        ls = AdditiveLandscape(3.0, [0.1, 0.4, 0.2, 0.3, 0.15, 0.25])
        mut = UniformMutation(6, 0.02)
        res = dense_solve(mut, ls)
        assert res.concentrations.argmax() == 0
        assert res.converged


class TestNK:
    def test_reproducible(self):
        a = NKLandscape(8, 2, seed=5).values()
        b = NKLandscape(8, 2, seed=5).values()
        np.testing.assert_array_equal(a, b)

    def test_positive(self):
        ls = NKLandscape(8, 3, seed=1)
        assert ls.fmin > 0

    def test_k_zero_is_additive(self):
        """K = 0: each site contributes independently, so fitness is an
        additive function of the bits."""
        ls = NKLandscape(6, 0, seed=2)
        f = ls.values()
        # Additivity test: f(i) + f(0) == f(i & mask) + f(i | ...) for
        # single-bit decompositions: f(a|b) - f(a) constant over a for a
        # fixed new bit b.
        idx = np.arange(64)
        for s in range(6):
            without = idx[(idx >> s) & 1 == 0]
            delta = f[without ^ (1 << s)] - f[without]
            np.testing.assert_allclose(delta, delta[0], atol=1e-12)

    def test_ruggedness_grows_with_k(self):
        """More epistasis ⇒ more local optima (averaged over seeds)."""
        def mean_rug(k):
            return np.mean([NKLandscape(10, k, seed=s).ruggedness() for s in range(5)])

        assert mean_rug(0) < mean_rug(4) < mean_rug(9) + 1e-9
        assert mean_rug(0) == pytest.approx(1.0 / (1 << 10), abs=2e-3)

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            NKLandscape(6, 6)

    def test_quasispecies_on_rugged_landscape(self):
        """The general solver handles maximal ruggedness unchanged."""
        ls = NKLandscape(8, 6, seed=3)
        mut = UniformMutation(8, 0.01)
        from repro.operators import Fmmp
        from repro.solvers import PowerIteration

        res = PowerIteration(Fmmp(mut, ls), tol=1e-11).solve(
            ls.start_vector(), landscape=ls
        )
        ref = dense_solve(mut, ls)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-8)

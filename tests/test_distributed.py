"""Tests for the simulated distributed-memory solver (paper future work)."""

import numpy as np
import pytest

from repro.distributed import (
    ClusterProfile,
    CommLink,
    DistributedFmmp,
    DistributedPowerIteration,
    PartitionedVector,
)
from repro.distributed.cluster import INFINIBAND_QDR, gpu_cluster
from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import PerSiteMutation, UniformMutation
from repro.solvers import dense_solve


class TestCommLink:
    def test_alpha_beta_model(self):
        link = CommLink(latency_s=1e-6, bandwidth_gbs=1.0)
        assert link.time(0) == pytest.approx(1e-6)
        assert link.time(1e9) == pytest.approx(1e-6 + 1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            CommLink(latency_s=-1.0, bandwidth_gbs=1.0)
        with pytest.raises(ValidationError):
            CommLink(latency_s=0.0, bandwidth_gbs=0.0)


class TestClusterProfile:
    def test_hypercube_dimension(self):
        assert gpu_cluster(8).dimensions == 3
        assert gpu_cluster(1).dimensions == 0

    def test_rank_validation(self):
        from repro.device.profile import TESLA_C2050

        with pytest.raises(ValidationError):
            ClusterProfile(node=TESLA_C2050, link=INFINIBAND_QDR, ranks=3)

    def test_allreduce_scales_logarithmically(self):
        t2 = gpu_cluster(2).allreduce_time()
        t16 = gpu_cluster(16).allreduce_time()
        assert t16 == pytest.approx(4 * t2)
        assert gpu_cluster(1).allreduce_time() == 0.0


class TestPartitionedVector:
    def test_scatter_gather_roundtrip(self):
        v = np.arange(32, dtype=float)
        pv = PartitionedVector.scatter(v, 4)
        assert pv.ranks == 4 and pv.block_size == 8
        np.testing.assert_array_equal(pv.gather(), v)

    def test_scatter_validation(self):
        with pytest.raises(ValidationError):
            PartitionedVector.scatter(np.arange(10, dtype=float), 4)
        with pytest.raises(ValidationError):
            PartitionedVector.scatter(np.arange(16, dtype=float), 3)

    def test_unequal_blocks_rejected(self):
        with pytest.raises(ValidationError):
            PartitionedVector([np.zeros(4), np.zeros(8)])

    def test_local_sum(self):
        pv = PartitionedVector.scatter(np.ones(16), 4)
        assert pv.local_sum() == [4.0, 4.0, 4.0, 4.0]


class TestDistributedFmmp:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8, 16])
    def test_matches_serial_exactly(self, ranks):
        nu, p = 8, 0.02
        mut = UniformMutation(nu, p)
        v = np.random.default_rng(ranks).random(1 << nu)
        serial = mut.apply(v.copy())
        op = DistributedFmmp(gpu_cluster(ranks), mut.factors_per_bit())
        out = op.apply(PartitionedVector.scatter(v, ranks)).gather()
        np.testing.assert_allclose(out, serial, atol=1e-13)

    def test_per_site_factors(self):
        nu = 6
        mut = PerSiteMutation.from_error_rates([0.01, 0.05, 0.02, 0.08, 0.03, 0.04])
        v = np.random.default_rng(1).random(1 << nu)
        serial = mut.apply(v.copy())
        op = DistributedFmmp(gpu_cluster(4), mut.factors_per_bit())
        out = op.apply(PartitionedVector.scatter(v, 4)).gather()
        np.testing.assert_allclose(out, serial, atol=1e-13)

    def test_stage_split(self):
        op = DistributedFmmp(gpu_cluster(8), UniformMutation(10, 0.01).factors_per_bit())
        assert op.local_stages == 7 and op.cross_stages == 3
        assert op.local_stages + op.cross_stages == 10

    def test_comm_volume_formula(self):
        nu, ranks = 12, 8
        op = DistributedFmmp(gpu_cluster(ranks), UniformMutation(nu, 0.01).factors_per_bit())
        expected = 8.0 * (1 << nu) / ranks * 3  # log2(8) exchanges of the block
        assert op.comm_bytes_per_matvec() == expected

    def test_single_rank_no_comm(self):
        op = DistributedFmmp(gpu_cluster(1), UniformMutation(6, 0.01).factors_per_bit())
        assert op.comm_time_per_matvec() == 0.0

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValidationError):
            DistributedFmmp(gpu_cluster(16), UniformMutation(4, 0.01).factors_per_bit())

    def test_mismatched_vector_rejected(self):
        op = DistributedFmmp(gpu_cluster(4), UniformMutation(6, 0.01).factors_per_bit())
        with pytest.raises(ValidationError):
            op.apply(PartitionedVector.scatter(np.ones(64), 2))


class TestDistributedPowerIteration:
    @pytest.fixture
    def problem(self):
        nu, p = 7, 0.02
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=31)
        return mut, ls, dense_solve(mut, ls)

    @pytest.mark.parametrize("ranks", [1, 4, 16])
    def test_matches_dense(self, problem, ranks):
        mut, ls, ref = problem
        rep = DistributedPowerIteration(gpu_cluster(ranks), mut, ls, tol=1e-13).run()
        assert rep.result.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-10)
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_identical_iterations_across_ranks(self, problem):
        """Partitioning must not change the numerics at all."""
        mut, ls, _ = problem
        reps = [
            DistributedPowerIteration(gpu_cluster(r), mut, ls, tol=1e-12).run()
            for r in (1, 2, 8)
        ]
        iters = {rep.result.iterations for rep in reps}
        assert len(iters) == 1
        np.testing.assert_allclose(
            reps[0].result.concentrations, reps[-1].result.concentrations, atol=1e-14
        )

    def test_memory_per_rank_shrinks(self, problem):
        mut, ls, _ = problem
        r1 = DistributedPowerIteration(gpu_cluster(1), mut, ls, tol=1e-10).run()
        r8 = DistributedPowerIteration(gpu_cluster(8), mut, ls, tol=1e-10).run()
        assert r8.memory_per_rank_bytes == r1.memory_per_rank_bytes / 8

    def test_comm_fraction_grows_with_ranks(self, problem):
        mut, ls, _ = problem
        fracs = [
            DistributedPowerIteration(gpu_cluster(r), mut, ls, tol=1e-10).run().comm_fraction
            for r in (1, 4, 16)
        ]
        assert fracs[0] == 0.0
        assert fracs[0] < fracs[1] < fracs[2]

    def test_mismatched_nu_rejected(self):
        with pytest.raises(ValidationError):
            DistributedPowerIteration(
                gpu_cluster(2), UniformMutation(5, 0.01), RandomLandscape(6, seed=0)
            )

"""Cross-validation of the three implicit operators (Smvp/Xmvp/Fmmp).

The central correctness claims of the paper's Sec. 2: Fmmp is *exact*
(agrees with the dense product to machine precision), Xmvp(ν) ≡ Smvp,
and Xmvp(dmax) errors shrink as dmax grows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape, TabulatedLandscape
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation, site_factor
from repro.operators import Fmmp, ShiftedOperator, Smvp, Xmvp, dense_w, convert_eigenvector
from repro.operators.shifted import conservative_shift


@pytest.fixture
def setup8():
    nu, p = 8, 0.02
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, seed=3)
    return nu, p, mut, ls


class TestDenseW:
    def test_forms_are_similar(self, setup8):
        """All three forms share the same spectrum (Eqs. 3-5)."""
        _, _, mut, ls = setup8
        eig_r = np.sort(np.linalg.eigvals(dense_w(mut, ls, "right")).real)
        eig_s = np.sort(np.linalg.eigvalsh(dense_w(mut, ls, "symmetric")))
        eig_l = np.sort(np.linalg.eigvals(dense_w(mut, ls, "left")).real)
        np.testing.assert_allclose(eig_r, eig_s, atol=1e-10)
        np.testing.assert_allclose(eig_l, eig_s, atol=1e-10)

    def test_symmetric_form_is_symmetric(self, setup8):
        _, _, mut, ls = setup8
        w = dense_w(mut, ls, "symmetric")
        np.testing.assert_allclose(w, w.T, atol=1e-14)

    def test_mismatched_nu(self):
        with pytest.raises(ValidationError):
            dense_w(UniformMutation(4, 0.1), RandomLandscape(5, seed=0))

    def test_bad_form(self, setup8):
        _, _, mut, ls = setup8
        with pytest.raises(ValidationError):
            dense_w(mut, ls, "diagonal")


class TestConvertEigenvector:
    def test_roundtrip_between_forms(self, setup8):
        """Eigenvectors of the three forms map onto the same
        concentrations via the F^{±1/2} relations."""
        _, _, mut, ls = setup8
        from repro.solvers.dense import dense_dominant_eigenpair

        conc = {}
        for form in ("right", "symmetric", "left"):
            w = dense_w(mut, ls, form)
            _, vec = dense_dominant_eigenpair(w)
            conc[form] = convert_eigenvector(vec, ls, form)
        np.testing.assert_allclose(conc["right"], conc["symmetric"], atol=1e-10)
        np.testing.assert_allclose(conc["right"], conc["left"], atol=1e-10)

    def test_negative_orientation_fixed(self):
        ls = TabulatedLandscape([1.0, 1.0, 1.0, 1.0])
        out = convert_eigenvector(-np.ones(4) / 4, ls, "right")
        assert np.all(out > 0)
        np.testing.assert_allclose(out.sum(), 1.0)


class TestAgreementAcrossOperators:
    @pytest.mark.parametrize("form", ["right", "symmetric", "left"])
    def test_all_three_match_dense(self, setup8, form):
        nu, _, mut, ls = setup8
        w = dense_w(mut, ls, form)
        v = np.random.default_rng(0).random(1 << nu)
        expected = w @ v
        for op in (Smvp(mut, ls, form), Xmvp(mut, ls, nu, form), Fmmp(mut, ls, form)):
            np.testing.assert_allclose(op.matvec(v), expected, atol=1e-12)

    def test_fmmp_variants_agree(self, setup8):
        _, _, mut, ls = setup8
        v = np.random.default_rng(1).random(mut.n)
        a = Fmmp(mut, ls, variant="eq9").matvec(v)
        b = Fmmp(mut, ls, variant="eq10").matvec(v)
        np.testing.assert_allclose(a, b, atol=1e-13)

    def test_matvec_does_not_mutate_input(self, setup8):
        _, _, mut, ls = setup8
        v = np.random.default_rng(2).random(mut.n)
        orig = v.copy()
        for op in (Fmmp(mut, ls), Fmmp(mut, ls, form="left"), Xmvp(mut, ls, 3)):
            op.matvec(v)
            np.testing.assert_array_equal(v, orig)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 9), st.floats(1e-3, 0.49), st.integers(0, 10_000))
    def test_fmmp_equals_xmvp_full_property(self, nu, p, seed):
        mut = UniformMutation(nu, p)
        rng = np.random.default_rng(seed)
        ls = TabulatedLandscape(rng.random(1 << nu) + 0.5)
        v = rng.standard_normal(1 << nu)
        np.testing.assert_allclose(
            Fmmp(mut, ls).matvec(v), Xmvp(mut, ls, nu).matvec(v), atol=1e-11
        )


class TestFmmpGeneralizedMutation:
    def test_per_site_model(self):
        mut = PerSiteMutation([site_factor(0.01), site_factor(0.05, 0.2), site_factor(0.1)])
        ls = TabulatedLandscape(np.arange(1, 9, dtype=float))
        w = dense_w(mut, ls)
        v = np.random.default_rng(0).random(8)
        np.testing.assert_allclose(Fmmp(mut, ls).matvec(v), w @ v, atol=1e-13)

    def test_grouped_model(self):
        rng = np.random.default_rng(4)
        block = rng.random((4, 4))
        block /= block.sum(axis=0, keepdims=True)
        mut = GroupedMutation([block, site_factor(0.02)])
        ls = TabulatedLandscape(rng.random(8) + 0.5)
        w = dense_w(mut, ls)
        v = rng.standard_normal(8)
        np.testing.assert_allclose(Fmmp(mut, ls).matvec(v), w @ v, atol=1e-12)


class TestXmvpTruncation:
    def test_error_decreases_with_dmax(self, setup8):
        nu, _, mut, ls = setup8
        v = np.random.default_rng(5).random(mut.n)
        exact = Fmmp(mut, ls).matvec(v)
        errors = []
        for dmax in range(1, nu + 1):
            approx = Xmvp(mut, ls, dmax).matvec(v)
            errors.append(np.abs(approx - exact).max())
        assert all(e1 >= e2 - 1e-16 for e1, e2 in zip(errors, errors[1:]))
        assert errors[-1] < 1e-13, "dmax = nu must be exact"

    def test_dmax5_accuracy_claim(self):
        """[10]'s claim (used in Fig. 3): dmax=5 gives ≈1e-10 accuracy at
        small error rates."""
        nu, p = 12, 0.01
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=0)
        v = ls.start_vector()
        exact = Fmmp(mut, ls).matvec(v)
        approx = Xmvp(mut, ls, 5).matvec(v)
        rel = np.abs(approx - exact).max() / np.abs(exact).max()
        assert rel < 1e-8, f"expected ~1e-10 class accuracy, got {rel}"

    def test_rejects_bad_dmax(self, setup8):
        _, _, mut, ls = setup8
        with pytest.raises(ValidationError):
            Xmvp(mut, ls, 0)
        with pytest.raises(ValidationError):
            Xmvp(mut, ls, 9)

    def test_rejects_non_uniform_mutation(self):
        mut = PerSiteMutation.from_error_rates([0.01, 0.02])
        ls = TabulatedLandscape(np.ones(4))
        with pytest.raises(ValidationError):
            Xmvp(mut, ls, 1)

    def test_is_exact_flag(self, setup8):
        nu, _, mut, ls = setup8
        assert Xmvp(mut, ls, nu).is_exact
        assert not Xmvp(mut, ls, 2).is_exact


class TestShiftedOperator:
    def test_matvec(self, setup8):
        _, _, mut, ls = setup8
        base = Fmmp(mut, ls)
        mu = 0.1
        v = np.random.default_rng(6).random(mut.n)
        np.testing.assert_allclose(
            ShiftedOperator(base, mu).matvec(v), base.matvec(v) - mu * v, atol=1e-13
        )

    def test_conservative_shift_below_lambda_min(self, setup8):
        """μ = (1−2p)^ν f_min must lower-bound the spectrum of W."""
        _, _, mut, ls = setup8
        mu = conservative_shift(mut, ls)
        evals = np.linalg.eigvals(dense_w(mut, ls)).real
        assert mu <= evals.min() + 1e-12
        assert mu > 0

    def test_costs_add_axpy(self, setup8):
        _, _, mut, ls = setup8
        base = Fmmp(mut, ls)
        sh = ShiftedOperator(base, 0.5)
        assert sh.costs().flops > base.costs().flops


class TestOperatorCosts:
    def test_ordering_matches_complexity(self):
        """Fmmp (exact) costs the same order as the *coarsest* Xmvp(1)
        approximation — the paper's Sec. 2.1 comparison — and moves fewer
        bytes; both are far below the exact Xmvp(ν) ≈ Smvp."""
        nu = 10
        mut = UniformMutation(nu, 0.01)
        ls = RandomLandscape(nu, seed=1)
        c_fmmp = Fmmp(mut, ls).costs()
        c_x1 = Xmvp(mut, ls, 1).costs()
        c_xn = Xmvp(mut, ls, nu).costs()
        c_s = Smvp(mut, ls).costs()
        assert c_fmmp.flops < 2 * c_x1.flops, "same Θ(N log N) order"
        assert c_fmmp.bytes_moved < c_x1.bytes_moved, "Fmmp streams less data"
        assert c_x1.flops < c_xn.flops
        assert c_fmmp.flops < c_xn.flops / 10
        assert c_xn.flops == pytest.approx(c_s.flops, rel=0.1)

    def test_fmmp_storage_linear(self):
        nu = 12
        mut = UniformMutation(nu, 0.01)
        ls = RandomLandscape(nu, seed=1)
        assert Fmmp(mut, ls).costs().storage_bytes == 8.0 * (1 << nu)

    def test_to_dense_guard(self, setup8):
        _, _, mut, ls = setup8
        with pytest.raises(ValidationError):
            Fmmp(mut, ls).to_dense(max_n=16)

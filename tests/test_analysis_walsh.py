"""Tests for Walsh-spectral analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.walsh import (
    effective_order,
    epistasis_order,
    shell_energies,
    walsh_spectrum,
)
from repro.exceptions import ValidationError
from repro.landscapes import (
    AdditiveLandscape,
    NKLandscape,
    SinglePeakLandscape,
    TabulatedLandscape,
)


class TestSpectrum:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 9), st.integers(0, 10_000))
    def test_parseval(self, nu, seed):
        x = np.random.default_rng(seed).standard_normal(1 << nu)
        spec = walsh_spectrum(x, nu)
        assert np.linalg.norm(spec) == pytest.approx(np.linalg.norm(x), rel=1e-10)

    def test_constant_vector_is_shell_zero(self):
        e = shell_energies(np.full(32, 3.0), 5)
        np.testing.assert_allclose(e, [1, 0, 0, 0, 0, 0], atol=1e-14)

    def test_energies_sum_to_one(self):
        x = np.random.default_rng(1).random(64)
        assert shell_energies(x, 6).sum() == pytest.approx(1.0)

    def test_unnormalized_total_is_squared_norm(self):
        x = np.random.default_rng(2).standard_normal(32)
        e = shell_energies(x, 5, normalized=False)
        assert e.sum() == pytest.approx(float(x @ x), rel=1e-10)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValidationError):
            shell_energies(np.zeros(8), 3)


class TestEpistasisOrder:
    def test_constant(self):
        assert epistasis_order(np.full(16, 2.0), 4) == 0

    def test_additive_is_order_one(self):
        ls = AdditiveLandscape(3.0, [0.2, 0.4, 0.1, 0.3])
        assert epistasis_order(ls.values(), 4) == 1

    def test_single_peak_is_full_order(self):
        """A delta function has energy in every shell."""
        ls = SinglePeakLandscape(5, 2.0, 1.0)
        assert epistasis_order(ls.values(), 5) == 5

    def test_nk_order_bounded_by_k_plus_one(self):
        """NK contributions couple K+1 sites, so the Walsh support sits
        in shells <= K+1."""
        for k in (0, 1, 2, 3):
            ls = NKLandscape(7, k, seed=4)
            assert epistasis_order(ls.values(), 7, threshold=1e-10) <= k + 1

    def test_pairwise_product_landscape(self):
        """f = 2 + x₀·x₁ (in ±1 coding) is pure order-2 epistasis."""
        idx = np.arange(16)
        signs = (1 - 2 * ((idx >> 0) & 1)) * (1 - 2 * ((idx >> 1) & 1))
        f = 2.0 + 0.5 * signs
        assert epistasis_order(f, 4) == 2


class TestEffectiveOrder:
    def test_bounds(self):
        x = np.random.default_rng(0).random(64)
        k = effective_order(x, 6, mass=0.9)
        assert 0 <= k <= 6

    def test_full_mass_needs_all_shells_for_delta(self):
        x = np.zeros(32)
        x[7] = 1.0
        assert effective_order(x, 5, mass=1.0) == 5

    def test_delocalized_phase_compresses(self):
        """Walsh energy concentrates in low shells for near-uniform
        distributions (above threshold) and spreads wide for localized
        ones — so the TruncatedWalsh compression pays off exactly in
        the high-error regime, and the effective order is a phase
        diagnostic."""
        from repro.mutation import UniformMutation
        from repro.solvers import dense_solve

        nu = 8
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        ordered = dense_solve(UniformMutation(nu, 0.01), ls)
        delocalized = dense_solve(UniformMutation(nu, 0.3), ls)
        k_ordered = effective_order(ordered.concentrations, nu, mass=0.99)
        k_deloc = effective_order(delocalized.concentrations, nu, mass=0.99)
        assert k_deloc <= 1
        assert k_ordered >= nu // 2

    def test_mass_validation(self):
        with pytest.raises(ValidationError):
            effective_order(np.ones(8), 3, mass=0.0)

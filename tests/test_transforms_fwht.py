"""Tests for the fast Walsh–Hadamard transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitops.popcount import distance_to_master, hamming_matrix
from repro.exceptions import ValidationError
from repro.transforms.fwht import fwht, fwht_inverse, fwht_matrix


def vec(n):
    return hnp.arrays(np.float64, n, elements=st.floats(-100, 100, allow_nan=False))


class TestFwhtMatrix:
    @pytest.mark.parametrize("nu", [1, 2, 3])
    def test_against_sylvester_construction(self, nu):
        h = np.array([[1.0, 1.0], [1.0, -1.0]])
        m = np.array([[1.0]])
        for _ in range(nu):
            m = np.kron(m, h)
        np.testing.assert_allclose(fwht_matrix(nu, ortho=False), m)

    def test_orthogonality(self):
        v = fwht_matrix(5)
        np.testing.assert_allclose(v @ v, np.eye(32), atol=1e-12)

    def test_symmetry(self):
        v = fwht_matrix(4)
        np.testing.assert_allclose(v, v.T)

    def test_paper_componentwise_formula(self):
        """(V(ν))_{i,j} = 2^{−ν/2}·(−1)^{(dH(i,0)+dH(j,0)−dH(i,j))/2} (Sec. 2)."""
        nu = 4
        d0 = distance_to_master(nu).astype(int)
        dij = hamming_matrix(nu)
        expo = (d0[:, None] + d0[None, :] - dij) // 2
        expected = 2.0 ** (-nu / 2) * np.where(expo % 2 == 0, 1.0, -1.0)
        np.testing.assert_allclose(fwht_matrix(nu), expected, atol=1e-12)

    def test_guard(self):
        with pytest.raises(ValidationError):
            fwht_matrix(0)
        with pytest.raises(ValidationError):
            fwht_matrix(15)


class TestFwht:
    @pytest.mark.parametrize("nu", [1, 3, 6])
    def test_matches_dense(self, nu):
        rng = np.random.default_rng(nu)
        v = rng.standard_normal(1 << nu)
        np.testing.assert_allclose(fwht(v), fwht_matrix(nu) @ v, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8), st.data())
    def test_involution_property(self, nu, data):
        v = data.draw(vec(1 << nu))
        np.testing.assert_allclose(fwht(fwht(v)), v, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8), st.data())
    def test_parseval(self, nu, data):
        v = data.draw(vec(1 << nu))
        np.testing.assert_allclose(
            np.linalg.norm(fwht(v)), np.linalg.norm(v), atol=1e-7 * (1 + np.linalg.norm(v))
        )

    def test_unnormalized_roundtrip(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal(64)
        np.testing.assert_allclose(fwht_inverse(fwht(v, ortho=False), ortho=False), v, atol=1e-12)

    def test_in_place(self):
        v = np.arange(8, dtype=float)
        expected = fwht(v.copy())
        out = fwht(v, in_place=True)
        assert out is v
        np.testing.assert_allclose(v, expected)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValidationError):
            fwht(np.zeros(6))

    def test_rejects_scalar_length(self):
        with pytest.raises(ValidationError):
            fwht(np.zeros(1))

    def test_block_matches_column_transforms(self):
        rng = np.random.default_rng(7)
        block = rng.standard_normal((16, 5))
        expected = np.stack([fwht(block[:, j]) for j in range(5)], axis=1)
        np.testing.assert_allclose(fwht(block), expected, atol=1e-12)

    def test_block_in_place(self):
        rng = np.random.default_rng(8)
        block = np.ascontiguousarray(rng.standard_normal((8, 3)))
        expected = fwht(block.copy())
        out = fwht(block, in_place=True)
        assert out is block
        np.testing.assert_allclose(block, expected)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            fwht(np.zeros((2, 2, 2)))

    def test_in_place_rejects_non_float64(self):
        with pytest.raises(ValidationError, match="float64"):
            fwht(np.arange(8), in_place=True)

    def test_in_place_rejects_non_contiguous(self):
        v = np.arange(16, dtype=np.float64)[::2]
        with pytest.raises(ValidationError, match="contiguous"):
            fwht(v, in_place=True)

    def test_in_place_rejects_list(self):
        with pytest.raises(ValidationError, match="float64"):
            fwht([1.0, 2.0, 3.0, 4.0], in_place=True)

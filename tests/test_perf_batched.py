"""Roofline cost model for the batched kernel + cost reconciliation.

The reconciliation contract: ``Fmmp.costs(batch=B)``,
``BatchedFmmp.costs()`` and ``batched_fmmp_costs(nu, B)`` must describe
the *same* sweep schedule — one source of truth consumed from three
entry points.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import GroupedMutation, UniformMutation, site_factor
from repro.operators import BatchedFmmp, Fmmp
from repro.operators.base import OperatorCosts
from repro.perf import (
    BatchedMeasurement,
    batched_fmmp_costs,
    fmmp_costs,
    measure_batched_matmat,
    modeled_crossover_batch,
    modeled_speedup,
)
from repro.transforms.batched import fused_stage_count


class TestBatchedCostModel:
    @pytest.mark.parametrize("nu", [2, 3, 8, 18])
    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_bytes_track_the_sweep_schedule(self, nu, batch):
        costs = batched_fmmp_costs(nu, batch)
        n, b = float(1 << nu), float(batch)
        sweeps = fused_stage_count(nu)
        # `right` form: fused sweeps + one pre-scale pass.
        expected = 16.0 * n * b * sweeps + 8.0 * (2.0 * n * b + n)
        assert costs.bytes_moved == pytest.approx(expected)
        assert costs.batch == batch

    def test_form_scale_passes(self):
        right = batched_fmmp_costs(8, 4, form="right")
        left = batched_fmmp_costs(8, 4, form="left")
        sym = batched_fmmp_costs(8, 4, form="symmetric")
        assert right.bytes_moved == left.bytes_moved  # one pass each
        assert sym.bytes_moved > right.bytes_moved  # pre AND post

    def test_radix4_halves_sweep_bytes(self):
        fused = batched_fmmp_costs(8, 16, radix4=True)
        plain = batched_fmmp_costs(8, 16, radix4=False)
        assert fused.bytes_moved < plain.bytes_moved
        # sweep term exactly halves for even nu
        n, b = float(1 << 8), 16.0
        assert plain.bytes_moved - fused.bytes_moved == pytest.approx(
            16.0 * n * b * (8 - 4)
        )

    def test_per_vector_amortization(self):
        c16 = batched_fmmp_costs(10, 16)
        c1 = batched_fmmp_costs(10, 1)
        assert c16.per_vector().bytes_moved < c1.per_vector().bytes_moved
        assert c16.per_vector().batch == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            batched_fmmp_costs(0, 4)
        with pytest.raises(ValidationError):
            batched_fmmp_costs(8, 0)
        with pytest.raises(ValidationError):
            batched_fmmp_costs(8, 4, form="diagonal")


class TestModeledSpeedupAndCrossover:
    @pytest.mark.parametrize("nu", [8, 12, 18])
    def test_speedup_monotone_in_batch(self, nu):
        speedups = [modeled_speedup(nu, b) for b in (1, 2, 4, 16, 64)]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_acceptance_regime_modeled(self):
        """The ISSUE acceptance point (nu=18, B=16) must clear 1.5x
        already in the bytes model — the measured bench then confirms."""
        assert modeled_speedup(18, 16) >= 1.5

    def test_crossover_reaches_target(self):
        b = modeled_crossover_batch(18, target_speedup=1.5)
        assert b is not None and b <= 16

    def test_crossover_unreachable_returns_none(self):
        assert modeled_crossover_batch(8, target_speedup=1e9) is None

    def test_crossover_validation(self):
        with pytest.raises(ValidationError):
            modeled_crossover_batch(8, target_speedup=0.0)


class TestCostReconciliation:
    """Fmmp.costs(batch=), BatchedFmmp.costs() and batched_fmmp_costs
    must agree — the satellite reconciliation contract."""

    @pytest.mark.parametrize("form", ["right", "symmetric", "left"])
    @pytest.mark.parametrize("batch", [2, 16])
    def test_fmmp_costs_batch_delegates_to_model(self, form, batch):
        nu = 8
        op = Fmmp(UniformMutation(nu, 0.01), SinglePeakLandscape(nu), form=form)
        got = op.costs(batch=batch)
        want = batched_fmmp_costs(nu, batch, form=form)
        assert got.flops == pytest.approx(want.flops)
        assert got.bytes_moved == pytest.approx(want.bytes_moved)
        assert got.batch == batch

    def test_batched_operator_costs_match_model(self):
        nu = 7
        mutation = UniformMutation(nu, 0.02)
        lands = [RandomLandscape(nu, seed=s) for s in range(3)]
        op = BatchedFmmp(mutation, lands)
        got = op.costs()
        want = batched_fmmp_costs(nu, 3, form="right")
        assert got.bytes_moved == pytest.approx(want.bytes_moved)
        assert got.batch == 3

    def test_scalar_costs_unchanged_at_batch_1(self):
        nu = 8
        op = Fmmp(UniformMutation(nu, 0.01), SinglePeakLandscape(nu))
        assert op.costs().batch == 1
        assert op.costs().bytes_moved == pytest.approx(
            op.costs(batch=1).bytes_moved
        )

    def test_grouped_mutation_costs_scale_linearly(self):
        nu = 4
        mutation = GroupedMutation([site_factor(0.1) for _ in range(nu)] )
        op = Fmmp(mutation, SinglePeakLandscape(nu))
        c1, c4 = op.costs(batch=1), op.costs(batch=4)
        assert c4.flops == pytest.approx(4.0 * c1.flops)
        assert c4.batch == 4

    def test_operator_costs_per_vector(self):
        c = OperatorCosts(flops=80.0, bytes_moved=160.0, storage_bytes=8.0, batch=4)
        pv = c.per_vector()
        assert pv.flops == 20.0 and pv.bytes_moved == 40.0 and pv.batch == 1
        assert pv.storage_bytes == 8.0


class TestMeasurement:
    def test_measure_small_problem(self):
        m = measure_batched_matmat(6, 4, repeats=1, min_time=1e-4)
        assert isinstance(m, BatchedMeasurement)
        assert m.single_s > 0.0 and m.batched_s > 0.0
        assert np.isfinite(m.per_vector_speedup)
        d = m.to_dict()
        assert d["nu"] == 6 and d["batch"] == 4
        assert d["per_vector_speedup"] == pytest.approx(m.per_vector_speedup)
        assert d["single_gbs"] > 0.0 and d["batched_gbs"] > 0.0

    def test_scalar_model_still_available(self):
        # the legacy 7-pass model stays the scalar reference
        assert fmmp_costs(8).bytes_moved > 0.0

"""API-surface quality gates: exports, docstrings, misc small paths."""

import importlib
import pkgutil

import numpy as np
import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.bitops",
    "repro.device",
    "repro.device.kernels",
    "repro.distributed",
    "repro.io",
    "repro.landscapes",
    "repro.model",
    "repro.mutation",
    "repro.operators",
    "repro.perf",
    "repro.population",
    "repro.reporting",
    "repro.service",
    "repro.solvers",
    "repro.transforms",
    "repro.util",
]


def _walk_modules():
    mods = []
    for name in PACKAGES:
        pkg = importlib.import_module(name)
        mods.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__, prefix=name + "."):
                mods.append(importlib.import_module(info.name))
    return {m.__name__: m for m in mods}.values()


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_all_exports_resolve(self):
        for mod in _walk_modules():
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod.__name__}.__all__ lists missing {name!r}"

    def test_public_callables_documented(self):
        missing = []
        for mod in _walk_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if callable(obj) and not (getattr(obj, "__doc__", None) or "").strip():
                    missing.append(f"{mod.__name__}.{name}")
        assert not missing, f"undocumented public callables: {missing}"

    def test_version_exposed(self):
        assert repro.__version__.count(".") == 2


class TestTopLevelApi:
    def test_quick_solve_via_top_level_import(self):
        from repro import QuasispeciesModel
        from repro.landscapes import SinglePeakLandscape

        res = QuasispeciesModel(SinglePeakLandscape(8), p=0.01).solve()
        assert res.converged

    def test_exception_hierarchy(self):
        from repro import (
            ConvergenceError,
            DeviceError,
            IncompatibleStructureError,
            ReproError,
            ValidationError,
        )

        for exc in (ValidationError, ConvergenceError, IncompatibleStructureError, DeviceError):
            assert issubclass(exc, ReproError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ConvergenceError, RuntimeError)

    def test_convergence_error_payload(self):
        from repro import ConvergenceError

        exc = ConvergenceError("x", iterations=7, residual=1e-3)
        assert exc.iterations == 7 and exc.residual == 1e-3


class TestSmallPaths:
    def test_solve_result_error_class_helper(self):
        from repro.landscapes import RandomLandscape
        from repro.model.concentrations import class_concentrations
        from repro.mutation import UniformMutation
        from repro.solvers import dense_solve

        nu = 6
        res = dense_solve(UniformMutation(nu, 0.02), RandomLandscape(nu, seed=0))
        np.testing.assert_allclose(
            res.error_class_concentrations(nu),
            class_concentrations(res.concentrations, nu),
        )

    def test_operator_matmul_and_shape(self):
        from repro.landscapes import RandomLandscape
        from repro.mutation import UniformMutation
        from repro.operators import Fmmp

        op = Fmmp(UniformMutation(5, 0.02), RandomLandscape(5, seed=0))
        assert op.shape == (32, 32)
        v = np.random.default_rng(0).random(32)
        np.testing.assert_array_equal(op @ v, op.matvec(v))

    def test_build_operator_shift_rejected_for_per_site(self):
        from repro.exceptions import ValidationError
        from repro.landscapes import RandomLandscape
        from repro.model import QuasispeciesModel
        from repro.mutation import PerSiteMutation

        mut = PerSiteMutation.from_error_rates([0.01, 0.02, 0.01])
        model = QuasispeciesModel(RandomLandscape(3, seed=0), mut)
        with pytest.raises(ValidationError):
            model.build_operator("fmmp", shift=True)
        # Explicit float shifts remain allowed.
        op = model.build_operator("fmmp", shift=0.001)
        assert op.mu == 0.001

    def test_measured_series_as_arrays(self):
        from repro.perf.measure import MeasuredSeries

        s = MeasuredSeries("x")
        s.add(10, 0.5)
        s.add(11, 1.0)
        nus, secs = s.as_arrays()
        np.testing.assert_array_equal(nus, [10, 11])
        np.testing.assert_array_equal(secs, [0.5, 1.0])

    def test_device_validation_sampling_large_launch(self):
        """Validation with sampled (not exhaustive) work items still
        catches a divergent kernel on a large launch."""
        from repro.device import Device, TESLA_C2050
        from repro.device.kernel import Kernel, KernelCosts
        from repro.exceptions import DeviceError

        def scalar(i, state, params):
            return {("v", i): state["v"][i] * 2.0}

        def bad_batch(ids, buffers, params):
            buffers["v"][ids] *= 3.0

        bad = Kernel("bad2", scalar, bad_batch, KernelCosts(16.0, 1.0), ("v",))
        dev = Device(TESLA_C2050, validate=True, validate_samples=8, seed=1)
        dev.alloc("v", 4096)
        dev.to_device("v", np.ones(4096))
        with pytest.raises(DeviceError, match="divergence"):
            dev.launch(bad, 4096)

"""Tests for the full on-device power iteration."""

import numpy as np
import pytest

from repro.device import (
    Device,
    DevicePowerIteration,
    INTEL_I5_750_SINGLE_CORE,
    TESLA_C2050,
)
from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import PerSiteMutation, UniformMutation
from repro.solvers import dense_solve


@pytest.fixture
def problem():
    nu, p = 7, 0.01
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=13)
    return mut, ls, dense_solve(mut, ls)


class TestNumericalFidelity:
    def test_fmmp_pipeline_matches_dense(self, problem):
        mut, ls, ref = problem
        dev = Device(TESLA_C2050, validate=True)
        rep = DevicePowerIteration(dev, mut, ls, operator="fmmp", tol=1e-13).run()
        assert rep.result.converged
        assert rep.result.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-10)
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_xmvp_full_pipeline_matches_dense(self, problem):
        mut, ls, ref = problem
        dev = Device(TESLA_C2050, validate=True)
        rep = DevicePowerIteration(
            dev, mut, ls, operator="xmvp", dmax=mut.nu, tol=1e-13
        ).run()
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_device_and_host_solvers_identical(self, problem):
        """The GPU pipeline and the host Pi(Fmmp) deliver the same result
        — 'the reference computation and the fastest combination deliver
        the same results' (paper, Sec. 4)."""
        from repro.operators import Fmmp
        from repro.solvers import PowerIteration

        mut, ls, _ = problem
        host = PowerIteration(Fmmp(mut, ls), tol=1e-13).solve(ls.start_vector())
        dev = Device(TESLA_C2050)
        rep = DevicePowerIteration(dev, mut, ls, operator="fmmp", tol=1e-13).run()
        assert rep.result.iterations == host.iterations
        np.testing.assert_allclose(
            rep.result.concentrations, host.concentrations, atol=1e-12
        )

    def test_per_site_mutation_pipeline(self):
        rates = [0.01, 0.02, 0.015, 0.03, 0.01, 0.02]
        mut = PerSiteMutation.from_error_rates(rates)
        ls = RandomLandscape(6, seed=3)
        ref = dense_solve(mut, ls)
        dev = Device(TESLA_C2050, validate=True)
        rep = DevicePowerIteration(dev, mut, ls, tol=1e-13).run()
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_shifted_pipeline(self, problem):
        from repro.operators.shifted import conservative_shift

        mut, ls, ref = problem
        mu = conservative_shift(mut, ls)
        dev_plain = Device(TESLA_C2050)
        plain = DevicePowerIteration(dev_plain, mut, ls, tol=1e-12).run()
        dev_shift = Device(TESLA_C2050)
        shifted = DevicePowerIteration(dev_shift, mut, ls, tol=1e-12, shift=mu).run()
        assert shifted.result.iterations < plain.result.iterations
        assert shifted.result.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-9)


class TestModeledPerformance:
    def test_gpu_faster_than_single_core_model(self):
        """Same algorithm, different hardware ⇒ shifted (parallel) time
        curves.  The GPU wins once the data volume outweighs its launch
        overhead (at tiny ν the zero-overhead CPU is rightly faster —
        also a real phenomenon)."""
        nu = 14
        mut = UniformMutation(nu, 0.01)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=13)
        rep_gpu = DevicePowerIteration(Device(TESLA_C2050), mut, ls, tol=1e-12).run()
        rep_cpu = DevicePowerIteration(
            Device(INTEL_I5_750_SINGLE_CORE), mut, ls, tol=1e-12
        ).run()
        assert rep_gpu.modeled_kernel_s < rep_cpu.modeled_kernel_s

    def test_xmvp_models_slower_than_fmmp(self, problem):
        mut, ls, _ = problem
        fmmp = DevicePowerIteration(Device(TESLA_C2050), mut, ls, operator="fmmp", tol=1e-12).run()
        xmvp = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, operator="xmvp", dmax=mut.nu, tol=1e-12
        ).run()
        assert fmmp.modeled_total_s < xmvp.modeled_total_s

    def test_transfer_time_included(self, problem):
        mut, ls, _ = problem
        rep = DevicePowerIteration(Device(TESLA_C2050), mut, ls, tol=1e-12).run()
        assert rep.modeled_transfer_s > 0.0
        assert rep.modeled_total_s == pytest.approx(
            rep.modeled_kernel_s + rep.modeled_transfer_s
        )

    def test_reduction_fraction_reported(self, problem):
        mut, ls, _ = problem
        rep = DevicePowerIteration(Device(TESLA_C2050), mut, ls, tol=1e-12).run()
        assert 0.0 <= rep.reduction_fraction <= 1.0

    def test_buffers_freed_after_run(self, problem):
        from repro.exceptions import DeviceError

        mut, ls, _ = problem
        dev = Device(TESLA_C2050)
        DevicePowerIteration(dev, mut, ls, tol=1e-12).run()
        with pytest.raises(DeviceError):
            dev.buffer("x")


class TestValidationErrors:
    def test_rejects_oversized_grouped_mutation(self):
        """2-bit groups run through the radix-4 kernel; larger blocks
        have no device kernel and must be rejected."""
        from repro.mutation import GroupedMutation

        rng = np.random.default_rng(0)
        b = rng.random((8, 8))
        b /= b.sum(axis=0, keepdims=True)
        with pytest.raises(ValidationError):
            DevicePowerIteration(
                Device(TESLA_C2050), GroupedMutation([b]), RandomLandscape(3, seed=0)
            )

    def test_rejects_xmvp_with_persite(self):
        mut = PerSiteMutation.from_error_rates([0.01, 0.02])
        with pytest.raises(ValidationError):
            DevicePowerIteration(
                Device(TESLA_C2050), mut, RandomLandscape(2, seed=0), operator="xmvp"
            )

    def test_rejects_bad_operator(self, problem):
        mut, ls, _ = problem
        with pytest.raises(ValidationError):
            DevicePowerIteration(Device(TESLA_C2050), mut, ls, operator="magic")

    def test_max_iterations_exhausted(self, problem):
        mut, ls, _ = problem
        with pytest.raises(ConvergenceError):
            DevicePowerIteration(
                Device(TESLA_C2050), mut, ls, tol=1e-15, max_iterations=2
            ).run()

    def test_no_raise_mode(self, problem):
        mut, ls, _ = problem
        rep = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, tol=1e-15, max_iterations=2
        ).run(raise_on_fail=False)
        assert not rep.result.converged

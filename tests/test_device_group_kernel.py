"""Tests for the radix-4 group kernel and grouped-model device pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import Device, DevicePowerIteration, TESLA_C2050
from repro.device.kernels.group_kernel import make_group4_stage_kernel
from repro.exceptions import DeviceError, ValidationError
from repro.landscapes import TabulatedLandscape
from repro.mutation import GroupedMutation, nucleotide_block, rna_mutation, site_factor
from repro.solvers import dense_solve


def random_block4(seed):
    rng = np.random.default_rng(seed)
    m = rng.random((4, 4))
    return m / m.sum(axis=0, keepdims=True)


class TestIndexFormula:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**18), st.integers(0, 12))
    def test_radix4_index_identity(self, item_id, log_h):
        h = 1 << log_h
        lhs = 4 * item_id - 3 * (item_id & (h - 1))
        rhs = 4 * h * (item_id // h) + item_id % h
        assert lhs == rhs

    def test_quadruples_cover_space(self):
        n, span = 64, 4
        touched = []
        for item in range(n // 4):
            j = 4 * item - 3 * (item & (span - 1))
            touched.extend(j + k * span for k in range(4))
        assert sorted(touched) == list(range(n))


class TestGroup4Kernel:
    def test_single_group_matches_dense(self):
        block = random_block4(0)
        kernel = make_group4_stage_kernel(block)
        v = np.random.default_rng(1).random(4)
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 4)
        dev.to_device("v", v)
        dev.launch(kernel, 1, {"span": 1})
        np.testing.assert_allclose(dev.from_device("v"), block @ v, atol=1e-13)

    def test_strided_group_matches_kron(self):
        """Group on the two MSBs of a nu=4 space: span = 4."""
        block = random_block4(2)
        q = GroupedMutation([block, site_factor(0.0), site_factor(0.0)])
        v = np.random.default_rng(3).random(16)
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 16)
        dev.to_device("v", v)
        dev.launch(make_group4_stage_kernel(block), 4, {"span": 4})
        np.testing.assert_allclose(dev.from_device("v"), q.dense() @ v, atol=1e-12)

    def test_bad_block_shape(self):
        with pytest.raises(DeviceError):
            make_group4_stage_kernel(np.eye(2))

    def test_bad_span(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 8)
        with pytest.raises(DeviceError):
            dev.launch(make_group4_stage_kernel(np.eye(4)), 2, {"span": 3})


class TestGroupedPipeline:
    def test_rna_model_on_device(self):
        q = rna_mutation(length=3, alpha=0.02, beta=0.005)
        f = np.ones(q.n)
        f[0] = 3.0
        ls = TabulatedLandscape(f)
        ref = dense_solve(q, ls)
        dev = Device(TESLA_C2050, validate=True)
        rep = DevicePowerIteration(dev, q, ls, tol=1e-12).run()
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_mixed_group_sizes(self):
        """A 4x4 block plus two independent sites (sizes 2,1,1)."""
        q = GroupedMutation([nucleotide_block(0.03, 0.01), site_factor(0.02), site_factor(0.05)])
        rng = np.random.default_rng(4)
        ls = TabulatedLandscape(rng.random(q.n) + 0.5)
        ref = dense_solve(q, ls)
        dev = Device(TESLA_C2050, validate=True)
        rep = DevicePowerIteration(dev, q, ls, tol=1e-12).run()
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_oversized_group_rejected(self):
        rng = np.random.default_rng(5)
        big = rng.random((8, 8))
        big /= big.sum(axis=0, keepdims=True)
        q = GroupedMutation([big])
        ls = TabulatedLandscape(np.ones(8))
        with pytest.raises(ValidationError):
            DevicePowerIteration(Device(TESLA_C2050), q, ls)

    def test_grouped_xmvp_rejected(self):
        q = GroupedMutation([nucleotide_block(0.01)])
        ls = TabulatedLandscape(np.ones(4))
        with pytest.raises(ValidationError):
            DevicePowerIteration(Device(TESLA_C2050), q, ls, operator="xmvp")

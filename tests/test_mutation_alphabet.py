"""Tests for the four-letter RNA alphabet extension (Sec. 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.landscapes import TabulatedLandscape
from repro.mutation import (
    NUCLEOTIDE_ORDER,
    PerSiteMutation,
    nucleotide_block,
    rna_mutation,
    site_factor,
)
from repro.solvers import dense_solve


class TestNucleotideBlock:
    def test_column_stochastic(self):
        b = nucleotide_block(0.01, 0.002)
        np.testing.assert_allclose(b.sum(axis=0), 1.0)
        assert np.all(b >= 0)

    def test_symmetric(self):
        b = nucleotide_block(0.03, 0.01)
        np.testing.assert_allclose(b, b.T)

    def test_transition_vs_transversion_structure(self):
        """A↔G and C↔U carry alpha; all purine↔pyrimidine pairs beta."""
        alpha, beta = 0.05, 0.01
        b = nucleotide_block(alpha, beta)
        a_idx, g_idx, c_idx, u_idx = range(4)
        assert NUCLEOTIDE_ORDER == ("A", "G", "C", "U")
        assert b[g_idx, a_idx] == alpha and b[u_idx, c_idx] == alpha
        for pur in (a_idx, g_idx):
            for pyr in (c_idx, u_idx):
                assert b[pyr, pur] == beta
                assert b[pur, pyr] == beta

    def test_jukes_cantor_default(self):
        b = nucleotide_block(0.02)
        off = b[b != b[0, 0]]
        np.testing.assert_allclose(off, 0.02)

    def test_rate_validation(self):
        with pytest.raises(ValidationError):
            nucleotide_block(-0.1)
        with pytest.raises(ValidationError):
            nucleotide_block(0.5, 0.3)  # alpha + 2 beta > 1

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0, 0.3), st.floats(0, 0.3))
    def test_always_stochastic_in_valid_range(self, alpha, beta):
        if alpha + 2 * beta <= 1.0:
            b = nucleotide_block(alpha, beta)
            np.testing.assert_allclose(b.sum(axis=0), 1.0)


class TestRnaMutation:
    def test_dimensions(self):
        q = rna_mutation(length=4, alpha=0.01)
        assert q.nu == 8 and q.n == 256
        assert q.group_sizes == (2, 2, 2, 2)

    def test_explicit_blocks(self):
        blocks = [nucleotide_block(0.01), nucleotide_block(0.02, 0.005)]
        q = rna_mutation(blocks)
        assert q.nu == 4

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            rna_mutation([nucleotide_block(0.01)], length=2)

    def test_missing_arguments(self):
        with pytest.raises(ValidationError):
            rna_mutation()
        with pytest.raises(ValidationError):
            rna_mutation(length=3)

    def test_wrong_block_shape(self):
        with pytest.raises(ValidationError):
            rna_mutation([np.eye(2)])

    def test_jukes_cantor_factors_into_binary_sites(self):
        """With alpha = beta the 4×4 block is NOT a product of two
        independent binary sites in general... but mass and symmetry
        invariants still hold; here we check the model against its own
        dense construction and against two binary sites for the special
        factorizable case.

        A 4×4 block equals ``s ⊗ s`` for a binary factor
        ``s = [[1−q, q], [q, 1−q]]`` iff alpha = q(1−q)·... — simplest:
        build it explicitly and compare.
        """
        q_bit = 0.1
        s = site_factor(q_bit)
        kron = np.kron(s, s)
        # kron corresponds to alpha = q(1-q)?? read off the entries:
        alpha = kron[1, 0]
        beta = kron[2, 0]
        blk = nucleotide_block(alpha, beta)
        # kron has distinct double-flip entry q^2 == beta; single flips
        # q(1-q) == alpha; check where they coincide:
        np.testing.assert_allclose(blk[1, 0], kron[1, 0])
        np.testing.assert_allclose(blk[2, 0], kron[2, 0])

    def test_quasispecies_solve_end_to_end(self):
        """A 3-nucleotide (ν = 6 bits) quasispecies with a fit wild-type
        codon: the stationary distribution concentrates on it."""
        q = rna_mutation(length=3, alpha=0.01, beta=0.002)
        f = np.ones(q.n)
        f[0] = 3.0  # AAA codon wild type
        res = dense_solve(q, TabulatedLandscape(f))
        assert res.concentrations.argmax() == 0
        assert res.concentrations[0] > 0.5
        assert res.eigenvalue < 3.0

    def test_transition_bias_shows_in_distribution(self):
        """With alpha >> beta, the transition neighbor (A→G at one site)
        of the wild type is more populated than a transversion
        neighbor."""
        q = rna_mutation(length=2, alpha=0.05, beta=0.001)
        f = np.ones(q.n)
        f[0] = 3.0
        res = dense_solve(q, TabulatedLandscape(f))
        x = res.concentrations
        # Sequence index: 2 bits per nucleotide, first block = most
        # significant bits.  Wild type AA = 0b0000.  A->G at the second
        # (LSB) nucleotide = 0b0001; A->C there = 0b0010.
        assert x[0b0001] > 5 * x[0b0010]

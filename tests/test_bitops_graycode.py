"""Unit tests for Gray-code reordering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitops.graycode import gray_code, gray_permutation, inverse_permutation
from repro.bitops.popcount import hamming_distance
from repro.exceptions import ValidationError


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(0, 2**20))
    def test_consecutive_codes_distance_one(self, i):
        assert hamming_distance(gray_code(i), gray_code(i + 1)) == 1

    def test_rejects_float_array(self):
        with pytest.raises(ValidationError):
            gray_code(np.array([0.5]))


class TestGrayPermutation:
    def test_is_permutation(self):
        p = gray_permutation(6)
        assert sorted(p) == list(range(64))

    def test_footnote2_property(self):
        """Paper footnote 2: under the Gray reordering, consecutive
        sequences have Hamming distance one, so the first off-diagonals
        of Q are constant."""
        p = gray_permutation(5)
        d = hamming_distance(p[:-1], p[1:])
        np.testing.assert_array_equal(d, 1)


class TestInversePermutation:
    def test_roundtrip(self):
        p = gray_permutation(7)
        inv = inverse_permutation(p)
        np.testing.assert_array_equal(inv[p], np.arange(128))
        np.testing.assert_array_equal(p[inv], np.arange(128))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValidationError):
            inverse_permutation(np.array([0, 0, 2]))

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            inverse_permutation(np.zeros((2, 2), dtype=int))

"""Tests for the generic Kronecker matvec (Eq. 11 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.transforms.kronecker import kron_diagonal, kron_matvec, kron_vector


def dense_kron(factors):
    m = np.array([[1.0]])
    for f in factors:
        m = np.kron(m, f)
    return m


class TestKronMatvec:
    def test_single_factor_is_plain_matvec(self):
        rng = np.random.default_rng(0)
        a = rng.random((4, 4))
        v = rng.random(4)
        np.testing.assert_allclose(kron_matvec([a], v), a @ v)

    @pytest.mark.parametrize(
        "dims", [(2, 2), (2, 3), (4, 2, 3), (2, 2, 2, 2), (8,), (3, 5)]
    )
    def test_matches_dense(self, dims):
        rng = np.random.default_rng(sum(dims))
        factors = [rng.random((d, d)) for d in dims]
        v = rng.standard_normal(int(np.prod(dims)))
        np.testing.assert_allclose(
            kron_matvec(factors, v), dense_kron(factors) @ v, atol=1e-10
        )

    def test_identity_factors(self):
        v = np.arange(12, dtype=float)
        np.testing.assert_allclose(kron_matvec([np.eye(3), np.eye(4)], v), v)

    def test_msb_convention(self):
        """Factor 0 acts on the most significant block of the index."""
        a = np.diag([1.0, 2.0])  # factor on MSB
        b = np.eye(2)
        v = np.array([1.0, 1.0, 1.0, 1.0])
        out = kron_matvec([a, b], v)
        np.testing.assert_allclose(out, [1.0, 1.0, 2.0, 2.0])

    def test_wrong_vector_length(self):
        with pytest.raises(ValidationError):
            kron_matvec([np.eye(2), np.eye(2)], np.zeros(5))

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            kron_matvec([np.zeros((2, 3))], np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            kron_matvec([], np.zeros(1))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(2, 4), min_size=1, max_size=4), st.integers(0, 10_000))
    def test_random_shapes_property(self, dims, seed):
        rng = np.random.default_rng(seed)
        factors = [rng.standard_normal((d, d)) for d in dims]
        v = rng.standard_normal(int(np.prod(dims)))
        np.testing.assert_allclose(
            kron_matvec(factors, v), dense_kron(factors) @ v, atol=1e-8
        )


class TestKronVector:
    def test_pair(self):
        np.testing.assert_allclose(
            kron_vector([[1.0, 2.0], [3.0, 4.0]]), [3.0, 4.0, 6.0, 8.0]
        )

    def test_matches_numpy_kron(self):
        rng = np.random.default_rng(3)
        vs = [rng.random(3), rng.random(2), rng.random(4)]
        expected = np.kron(np.kron(vs[0], vs[1]), vs[2])
        np.testing.assert_allclose(kron_vector(vs), expected)

    def test_diagonal_alias(self):
        vs = [np.array([1.0, 2.0]), np.array([3.0, 5.0])]
        np.testing.assert_allclose(kron_diagonal(vs), kron_vector(vs))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            kron_vector([])

    def test_consistency_with_matvec(self):
        """(A⊗B)(u⊗v) == (Au)⊗(Bv) — the mixed product formula."""
        rng = np.random.default_rng(9)
        a, b = rng.random((3, 3)), rng.random((4, 4))
        u, v = rng.random(3), rng.random(4)
        lhs = kron_matvec([a, b], kron_vector([u, v]))
        rhs = kron_vector([a @ u, b @ v])
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

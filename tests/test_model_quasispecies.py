"""Tests for the QuasispeciesModel facade."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import (
    KroneckerLandscape,
    RandomLandscape,
    SinglePeakLandscape,
    TabulatedLandscape,
)
from repro.model import QuasispeciesModel, class_concentrations
from repro.mutation import PerSiteMutation, UniformMutation
from repro.solvers import dense_solve
from repro.solvers.kron_solver import KroneckerSolveResult


class TestConstruction:
    def test_p_shorthand(self):
        m = QuasispeciesModel(SinglePeakLandscape(6), p=0.01)
        assert isinstance(m.mutation, UniformMutation)
        assert m.uniform_p == 0.01

    def test_requires_mutation_or_p(self):
        with pytest.raises(ValidationError):
            QuasispeciesModel(SinglePeakLandscape(6))

    def test_conflicting_p(self):
        with pytest.raises(ValidationError):
            QuasispeciesModel(SinglePeakLandscape(6), UniformMutation(6, 0.02), p=0.01)

    def test_mismatched_nu(self):
        with pytest.raises(ValidationError):
            QuasispeciesModel(SinglePeakLandscape(6), UniformMutation(5, 0.01))

    def test_uniform_p_none_for_general_model(self):
        m = QuasispeciesModel(
            SinglePeakLandscape(3), PerSiteMutation.from_error_rates([0.01] * 3)
        )
        assert m.uniform_p is None


class TestAutoDispatch:
    def test_hamming_goes_reduced(self):
        m = QuasispeciesModel(SinglePeakLandscape(8), p=0.01)
        res = m.solve()
        assert res.method.startswith("Reduced")

    def test_random_goes_power(self):
        m = QuasispeciesModel(RandomLandscape(7, seed=0), p=0.01)
        res = m.solve()
        assert res.method.startswith("Pi(")
        assert "shifted" in res.method

    def test_kronecker_goes_decoupled(self):
        rng = np.random.default_rng(0)
        kl = KroneckerLandscape([rng.random(4) + 0.5, rng.random(4) + 0.5])
        res = QuasispeciesModel(kl, p=0.02).solve()
        assert isinstance(res, KroneckerSolveResult)

    def test_per_site_hamming_falls_back_to_power(self):
        """The reduction needs the uniform model; per-site mutation on a
        Hamming landscape must route to the power iteration."""
        mut = PerSiteMutation.from_error_rates([0.01, 0.02, 0.01, 0.03, 0.02])
        m = QuasispeciesModel(SinglePeakLandscape(5), mut)
        res = m.solve()
        assert res.method.startswith("Pi(")


class TestSolveMethods:
    @pytest.fixture
    def model(self):
        return QuasispeciesModel(RandomLandscape(7, seed=5), p=0.02)

    def test_all_methods_agree(self, model):
        ref = model.solve("dense")
        for method, kwargs in [
            ("power", dict(operator="fmmp", tol=1e-13)),
            ("power", dict(operator="xmvp", tol=1e-13)),
            ("power", dict(operator="smvp", tol=1e-13)),
            ("power", dict(operator="fmmp", shift=True, tol=1e-13)),
            ("lanczos", dict(tol=1e-12)),
        ]:
            res = model.solve(method, **kwargs)
            np.testing.assert_allclose(
                res.concentrations, ref.concentrations, atol=1e-8,
                err_msg=f"{method} {kwargs}",
            )

    def test_explicit_float_shift(self, model):
        res = model.solve("power", shift=0.001, tol=1e-12)
        ref = model.solve("dense")
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-9)

    def test_xmvp_dmax(self, model):
        res = model.solve("power", operator="xmvp", dmax=5, tol=1e-10)
        assert "Xmvp(5)" in res.method

    def test_reduced_on_general_landscape_rejected(self, model):
        with pytest.raises(ValidationError):
            model.solve("reduced")

    def test_unknown_method(self, model):
        with pytest.raises(ValidationError):
            model.solve("magic")

    def test_unknown_operator(self, model):
        with pytest.raises(ValidationError):
            model.solve("power", operator="blas")


class TestReadouts:
    def test_class_concentrations_full(self):
        m = QuasispeciesModel(RandomLandscape(6, seed=2), p=0.02)
        res = m.solve("power", tol=1e-12)
        gamma = m.class_concentrations(res)
        assert gamma.shape == (7,)
        np.testing.assert_allclose(gamma.sum(), 1.0)

    def test_class_concentrations_reduced_passthrough(self):
        m = QuasispeciesModel(SinglePeakLandscape(8), p=0.01)
        res = m.solve("reduced")
        np.testing.assert_array_equal(m.class_concentrations(res), res.concentrations)

    def test_sweep_delegates(self):
        m = QuasispeciesModel(SinglePeakLandscape(10), p=0.01)
        sweep = m.sweep(np.linspace(0.01, 0.1, 10))
        assert sweep.class_concentrations.shape == (10, 11)

    def test_parallel_sweep_identical(self):
        m = QuasispeciesModel(SinglePeakLandscape(10), p=0.01)
        rates = np.linspace(0.01, 0.1, 8)
        serial = m.sweep(rates)
        par = m.sweep(rates, parallel=True)
        np.testing.assert_allclose(
            par.class_concentrations, serial.class_concentrations, atol=1e-13
        )

    def test_reproductive_values_accessor(self):
        m = QuasispeciesModel(SinglePeakLandscape(6, 3.0, 1.0), p=0.02)
        u = m.reproductive_values()
        x = m.solve("power", tol=1e-12).concentrations
        assert float(u @ x) == pytest.approx(1.0, rel=1e-8)
        assert u.argmax() == 0


class TestGeneralizedMutationEndToEnd:
    def test_per_site_vs_dense(self):
        mut = PerSiteMutation.from_error_rates([0.01, 0.05, 0.02, 0.03, 0.01, 0.04])
        ls = RandomLandscape(6, seed=8)
        m = QuasispeciesModel(ls, mut)
        res = m.solve("power", tol=1e-13)
        ref = dense_solve(mut, ls)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-9)

    def test_biased_mutation_shifts_distribution(self):
        """A strong 1→0 repair bias concentrates the population closer to
        the master than the symmetric model — a qualitative readout
        unavailable under the uniform assumption (Sec. 2.2 motivation)."""
        from repro.mutation import site_factor

        nu = 6
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        sym = QuasispeciesModel(ls, PerSiteMutation.from_error_rates([0.05] * nu)).solve(
            "power", tol=1e-12
        )
        biased_factors = [site_factor(0.05, 0.5) for _ in range(nu)]  # strong back-mutation
        biased = QuasispeciesModel(ls, PerSiteMutation(biased_factors)).solve(
            "power", tol=1e-12
        )
        g_sym = class_concentrations(sym.concentrations, nu)
        g_biased = class_concentrations(biased.concentrations, nu)
        assert g_biased[0] > g_sym[0]

"""Shared test configuration.

Pins a deterministic Hypothesis profile: derandomized (examples derive
from the test name, so runs are reproducible in CI and offline
environments) and without deadlines (several property tests drive
NumPy-heavy solver code whose first call pays warm-up costs).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

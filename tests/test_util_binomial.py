"""Unit tests for repro.util.binomial."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.util.binomial import binomial, binomial_row, log_binomial


class TestBinomial:
    def test_small_values(self):
        assert binomial(5, 2) == 10
        assert binomial(20, 10) == 184756

    def test_edges(self):
        assert binomial(7, 0) == 1
        assert binomial(7, 7) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(5, -1) == 0
        assert binomial(5, 6) == 0

    def test_negative_n_raises(self):
        with pytest.raises(ValidationError):
            binomial(-1, 0)

    @given(st.integers(0, 60), st.integers(0, 60))
    def test_matches_math_comb(self, n, k):
        expected = math.comb(n, k) if k <= n else 0
        assert binomial(n, k) == expected


class TestBinomialRow:
    def test_row_five(self):
        np.testing.assert_array_equal(binomial_row(5), [1, 5, 10, 10, 5, 1])

    def test_row_zero(self):
        np.testing.assert_array_equal(binomial_row(0), [1.0])

    def test_row_sums_to_power_of_two(self):
        for n in (1, 7, 20, 30):
            assert binomial_row(n).sum() == 2.0**n

    def test_symmetry(self):
        row = binomial_row(17)
        np.testing.assert_array_equal(row, row[::-1])

    def test_negative_raises(self):
        with pytest.raises(ValidationError):
            binomial_row(-2)


class TestLogBinomial:
    @given(st.integers(0, 100), st.integers(0, 100))
    def test_matches_exact_in_log_space(self, n, k):
        if k > n:
            assert log_binomial(n, k) == float("-inf")
        else:
            assert log_binomial(n, k) == pytest.approx(math.log(math.comb(n, k)), abs=1e-9)

    def test_out_of_range(self):
        assert log_binomial(5, -1) == float("-inf")

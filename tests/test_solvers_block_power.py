"""Block power iteration: lock-step sweeps, per-column shifts, deflation."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.operators import BatchedFmmp, Fmmp
from repro.operators.shifted import ShiftedOperator, conservative_shift
from repro.solvers import BlockPowerIteration, BlockSolveResult, PowerIteration

NU = 6
P = 0.02


def make_operator(form="right", n_lands=3):
    mutation = UniformMutation(NU, P)
    lands = [
        SinglePeakLandscape(NU, f_peak=2.0),
        RandomLandscape(NU, c=4.0, sigma=1.0, seed=0),
        RandomLandscape(NU, c=4.0, sigma=1.0, seed=1),
    ][:n_lands]
    return BatchedFmmp(mutation, lands, form=form), mutation, lands


class TestAgainstScalarPowerIteration:
    @pytest.mark.parametrize("form", ["right", "symmetric", "left"])
    def test_eigenpairs_match_scalar_route(self, form):
        op, mutation, lands = make_operator(form)
        block = BlockPowerIteration(op, tol=1e-12).solve()
        assert isinstance(block, BlockSolveResult)
        assert block.converged
        for j, land in enumerate(lands):
            scalar = PowerIteration(Fmmp(mutation, land, form=form), tol=1e-12).solve(
                land.start_vector(), landscape=land, form=form
            )
            assert block[j].eigenvalue == pytest.approx(scalar.eigenvalue, rel=1e-10)
            np.testing.assert_allclose(
                block[j].concentrations, scalar.concentrations, atol=1e-9
            )

    def test_iteration_counts_match_scalar_route(self):
        """Lock-step + deflation must not change any column's trajectory."""
        op, mutation, lands = make_operator()
        block = BlockPowerIteration(op, tol=1e-12).solve()
        for j, land in enumerate(lands):
            scalar = PowerIteration(Fmmp(mutation, land), tol=1e-12).solve(
                land.start_vector()
            )
            assert block[j].iterations == scalar.iterations
        assert block.sweeps == max(r.iterations for r in block)

    def test_per_column_shifts_match_shifted_scalar(self):
        op, mutation, lands = make_operator()
        shifts = [conservative_shift(mutation, land) for land in lands]
        block = BlockPowerIteration(op, shifts=shifts, tol=1e-12).solve()
        for j, land in enumerate(lands):
            shifted = ShiftedOperator(Fmmp(mutation, land), shifts[j])
            scalar = PowerIteration(shifted, tol=1e-12).solve(land.start_vector())
            assert block[j].eigenvalue == pytest.approx(scalar.eigenvalue, rel=1e-10)

    def test_shifts_accelerate_convergence(self):
        op, mutation, lands = make_operator()
        plain = BlockPowerIteration(op, tol=1e-12).solve()
        shifts = [conservative_shift(mutation, land) for land in lands]
        shifted = BlockPowerIteration(op, shifts=shifts, tol=1e-12).solve()
        assert shifted.sweeps <= plain.sweeps
        np.testing.assert_allclose(
            shifted.eigenvalues, plain.eigenvalues, rtol=1e-9
        )


class TestBlockSolveResult:
    def test_sequence_protocol(self):
        op, _, lands = make_operator()
        block = BlockPowerIteration(op, tol=1e-10).solve()
        assert len(block) == len(lands)
        assert [r.eigenvalue for r in block] == list(block.eigenvalues)
        assert block[1] is block.columns[1]

    def test_method_label(self):
        op, _, _ = make_operator()
        block = BlockPowerIteration(op, tol=1e-10).solve(method_name="BPi(Fmmp)")
        assert all(r.method == "BPi(Fmmp)" for r in block)

    def test_record_history(self):
        op, _, _ = make_operator()
        block = BlockPowerIteration(op, tol=1e-10, record_history=True).solve()
        for r in block:
            assert len(r.history) == r.iterations
            assert r.history[-1].residual < 1e-10


class TestDeflationAndFailure:
    def test_deflation_freezes_fast_columns(self):
        """Columns converging at different speeds all land on the right
        eigenpair (the fast ones are frozen, not dragged along)."""
        mutation = UniformMutation(NU, P)
        lands = [
            SinglePeakLandscape(NU, f_peak=8.0),  # large gap: fast
            RandomLandscape(NU, c=5.0, sigma=2.0, seed=5),  # slow
        ]
        op = BatchedFmmp(mutation, lands)
        block = BlockPowerIteration(op, tol=1e-12).solve()
        its = [r.iterations for r in block]
        assert its[0] != its[1]  # genuinely different convergence speeds
        for j, land in enumerate(lands):
            scalar = PowerIteration(Fmmp(mutation, land), tol=1e-12).solve(
                land.start_vector()
            )
            assert block[j].eigenvalue == pytest.approx(scalar.eigenvalue, rel=1e-10)

    def test_raise_on_fail_true_raises(self):
        op, _, _ = make_operator()
        with pytest.raises(ConvergenceError, match="did not reach"):
            BlockPowerIteration(op, tol=1e-14, max_iterations=2).solve()

    def test_raise_on_fail_false_flags_stragglers(self):
        op, _, _ = make_operator()
        block = BlockPowerIteration(op, tol=1e-14, max_iterations=2).solve(
            raise_on_fail=False
        )
        assert not block.converged
        assert all(not r.converged for r in block)
        assert all(np.isfinite(r.eigenvalue) for r in block)


class TestValidation:
    def test_bad_tol_and_iterations(self):
        op, _, _ = make_operator()
        with pytest.raises(ValidationError):
            BlockPowerIteration(op, tol=0.0)
        with pytest.raises(ValidationError):
            BlockPowerIteration(op, max_iterations=0)

    def test_starts_shape_checked(self):
        op, _, _ = make_operator()
        with pytest.raises(ValidationError, match="starts"):
            BlockPowerIteration(op).solve(np.zeros(op.n))
        with pytest.raises(ValidationError, match="columns"):
            BlockPowerIteration(op).solve(np.ones((op.n, 2)))

    def test_zero_mass_start_rejected(self):
        op, _, _ = make_operator()
        starts = np.ones((op.n, 3))
        starts[:, 1] = 0.0
        with pytest.raises(ValidationError, match="mass"):
            BlockPowerIteration(op).solve(starts)

    def test_shift_length_checked(self):
        op, _, _ = make_operator()
        with pytest.raises(ValidationError, match="shifts"):
            BlockPowerIteration(op, shifts=[0.1, 0.2]).solve()

    def test_shared_operator_requires_starts(self):
        mutation = UniformMutation(NU, P)
        land = SinglePeakLandscape(NU)
        shared = BatchedFmmp(mutation, land)
        with pytest.raises(ValidationError, match="starts"):
            BlockPowerIteration(shared).solve()
        # ... and works when given a block of starts:
        starts = np.repeat(land.start_vector()[:, None], 2, axis=1)
        block = BlockPowerIteration(shared, tol=1e-11).solve(starts)
        assert block.converged and len(block) == 2
        assert block[0].eigenvalue == pytest.approx(block[1].eigenvalue, rel=1e-12)

"""Tests for the device kernel library, especially Algorithm 2 fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import Device, TESLA_C2050
from repro.device.kernels import (
    abs_kernel,
    axpy_kernel,
    copy_kernel,
    diff_square_into_kernel,
    fmmp_stage_kernel,
    multiply_into_kernel,
    pointwise_multiply_kernel,
    reduce_add_stage_kernel,
    square_into_kernel,
    tree_reduce_sum,
    xmvp_pass_kernel,
)
from repro.exceptions import DeviceError
from repro.mutation import UniformMutation
from repro.transforms.butterfly import apply_stage


class TestAlgorithm2IndexFormula:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**20), st.integers(0, 15))
    def test_bit_trick_equals_modulo_formula(self, item_id, log_i):
        """Paper's derivation: 2·ID − (ID & (i−1)) == 2·i·⌊ID/i⌋ + ID mod i
        for power-of-two i."""
        i = 1 << log_i
        lhs = 2 * item_id - (item_id & (i - 1))
        rhs = 2 * i * (item_id // i) + item_id % i
        assert lhs == rhs

    def test_indices_cover_lower_half_pairs(self):
        """Across one launch the work items touch each pair (j, j+i)
        exactly once — the disjointness OpenCL requires."""
        n, span = 64, 8
        touched = []
        for item in range(n // 2):
            j = 2 * item - (item & (span - 1))
            touched.extend([j, j + span])
        assert sorted(touched) == list(range(n))


class TestFmmpStageKernel:
    @pytest.mark.parametrize("nu", [3, 6])
    def test_full_stage_sweep_equals_q_apply(self, nu):
        """log₂N launches of the stage kernel == the uniform Q matvec."""
        p = 0.03
        mut = UniformMutation(nu, p)
        v0 = np.random.default_rng(nu).random(1 << nu)
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 1 << nu)
        dev.to_device("v", v0)
        m = mut.factor()
        for s in range(nu):
            dev.launch(
                fmmp_stage_kernel,
                (1 << nu) // 2,
                {"span": 1 << s, "m00": m[0, 0], "m01": m[0, 1], "m10": m[1, 0], "m11": m[1, 1]},
            )
        np.testing.assert_allclose(dev.from_device("v"), mut.apply(v0), atol=1e-13)

    def test_single_stage_matches_host_butterfly(self):
        v0 = np.random.default_rng(1).random(32)
        m = np.array([[0.9, 0.1], [0.1, 0.9]])
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 32)
        dev.to_device("v", v0)
        dev.launch(
            fmmp_stage_kernel,
            16,
            {"span": 4, "m00": m[0, 0], "m01": m[0, 1], "m10": m[1, 0], "m11": m[1, 1]},
        )
        np.testing.assert_allclose(dev.from_device("v"), apply_stage(v0, 4, m), atol=1e-14)

    def test_missing_param_rejected(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 8)
        with pytest.raises(DeviceError):
            dev.launch(fmmp_stage_kernel, 4, {"span": 1})

    def test_bad_span_rejected(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 8)
        with pytest.raises(DeviceError):
            dev.launch(
                fmmp_stage_kernel, 4, {"span": 3, "m00": 1, "m01": 0, "m10": 0, "m11": 1}
            )


class TestElementwiseKernels:
    def _dev(self, **arrays):
        dev = Device(TESLA_C2050, validate=True)
        for name, arr in arrays.items():
            dev.alloc(name, len(arr))
            dev.to_device(name, np.asarray(arr, dtype=float))
        return dev

    def test_pointwise_multiply(self):
        dev = self._dev(v=[1, 2, 3, 4], f=[2, 2, 3, 3])
        dev.launch(pointwise_multiply_kernel, 4)
        np.testing.assert_array_equal(dev.from_device("v"), [2, 4, 9, 12])

    def test_multiply_into(self):
        dev = self._dev(dst=[0, 0], a=[2, 3], b=[4, 5])
        dev.launch(multiply_into_kernel, 2)
        np.testing.assert_array_equal(dev.from_device("dst"), [8, 15])

    def test_copy(self):
        dev = self._dev(dst=[0, 0, 0], src=[1, 2, 3])
        dev.launch(copy_kernel, 3)
        np.testing.assert_array_equal(dev.from_device("dst"), [1, 2, 3])

    def test_axpy(self):
        dev = self._dev(y=[1, 1], x=[2, 4])
        dev.launch(axpy_kernel, 2, {"alpha": 0.5})
        np.testing.assert_array_equal(dev.from_device("y"), [2, 3])

    def test_square_into(self):
        dev = self._dev(dst=[0, 0], src=[3, -4])
        dev.launch(square_into_kernel, 2)
        np.testing.assert_array_equal(dev.from_device("dst"), [9, 16])

    def test_diff_square_into(self):
        dev = self._dev(dst=[0, 0], a=[3, 1], b=[1, 4])
        dev.launch(diff_square_into_kernel, 2)
        np.testing.assert_array_equal(dev.from_device("dst"), [4, 9])

    def test_abs(self):
        dev = self._dev(dst=[0, 0], src=[-2, 5])
        dev.launch(abs_kernel, 2)
        np.testing.assert_array_equal(dev.from_device("dst"), [2, 5])


class TestReduction:
    def test_tree_reduce_sum(self):
        rng = np.random.default_rng(0)
        data = rng.random(128)
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("scratch", 128)
        dev.to_device("scratch", data)
        total = tree_reduce_sum(dev, "scratch", 128)
        assert total == pytest.approx(data.sum(), rel=1e-12)

    def test_single_stage_semantics(self):
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 8)
        dev.to_device("v", np.arange(8, dtype=float))
        dev.launch(reduce_add_stage_kernel, 4, {"half": 4})
        np.testing.assert_array_equal(dev.from_device("v")[:4], [4, 6, 8, 10])

    def test_non_power_of_two_rejected(self):
        dev = Device(TESLA_C2050)
        dev.alloc("scratch", 8)
        with pytest.raises(DeviceError):
            tree_reduce_sum(dev, "scratch", 6)

    def test_launch_count_is_log2(self):
        dev = Device(TESLA_C2050)
        dev.alloc("scratch", 64)
        dev.to_device("scratch", np.ones(64))
        tree_reduce_sum(dev, "scratch", 64)
        assert dev.accounting.launches == 6


class TestXmvpPassKernel:
    def test_single_pass(self):
        w = np.arange(8, dtype=float)
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("acc", 8)
        dev.alloc("w", 8)
        dev.to_device("acc", np.zeros(8))
        dev.to_device("w", w)
        dev.launch(xmvp_pass_kernel, 8, {"mask": 0b101, "q": 2.0})
        expected = 2.0 * w[np.arange(8) ^ 0b101]
        np.testing.assert_array_equal(dev.from_device("acc"), expected)

    def test_negative_mask_rejected(self):
        dev = Device(TESLA_C2050)
        dev.alloc("acc", 4)
        dev.alloc("w", 4)
        with pytest.raises(DeviceError):
            dev.launch(xmvp_pass_kernel, 4, {"mask": -1, "q": 1.0})

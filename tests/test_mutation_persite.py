"""Tests for per-site mutation processes (Sec. 2.2, first generalization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.mutation import PerSiteMutation, UniformMutation, site_factor


class TestSiteFactor:
    def test_symmetric_default(self):
        f = site_factor(0.1)
        np.testing.assert_allclose(f, [[0.9, 0.1], [0.1, 0.9]])

    def test_asymmetric(self):
        f = site_factor(0.1, 0.3)
        np.testing.assert_allclose(f, [[0.9, 0.3], [0.1, 0.7]])
        np.testing.assert_allclose(f.sum(axis=0), 1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_range_check(self, bad):
        with pytest.raises(ValidationError):
            site_factor(bad)


class TestConstruction:
    def test_from_rates(self):
        q = PerSiteMutation.from_error_rates([0.01, 0.02, 0.03])
        assert q.nu == 3 and q.n == 8

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            PerSiteMutation([np.array([[0.5, 0.5], [0.6, 0.5]])])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            PerSiteMutation([np.array([[1.2, 0.0], [-0.2, 1.0]])])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            PerSiteMutation([])

    def test_rejects_wrong_block_size(self):
        with pytest.raises(ValidationError):
            PerSiteMutation([np.eye(4) ])


class TestEquivalenceWithUniform:
    @pytest.mark.parametrize("nu", [1, 4, 7])
    def test_uniform_rates_match_uniform_model(self, nu):
        p = 0.03
        qa = PerSiteMutation.uniform(nu, p)
        qb = UniformMutation(nu, p)
        v = np.random.default_rng(nu).standard_normal(1 << nu)
        np.testing.assert_allclose(qa.apply(v), qb.apply(v), atol=1e-13)
        np.testing.assert_allclose(qa.dense(), qb.dense(), atol=1e-14)


class TestApply:
    def test_matches_dense(self):
        rng = np.random.default_rng(5)
        q = PerSiteMutation.from_error_rates(rng.uniform(0.001, 0.2, size=6))
        v = rng.standard_normal(64)
        np.testing.assert_allclose(q.apply(v), q.dense() @ v, atol=1e-12)

    def test_asymmetric_sites_match_dense(self):
        factors = [site_factor(0.05, 0.2), site_factor(0.01), site_factor(0.3, 0.1)]
        q = PerSiteMutation(factors)
        assert not q.is_symmetric
        v = np.random.default_rng(0).standard_normal(8)
        np.testing.assert_allclose(q.apply(v), q.dense() @ v, atol=1e-13)

    def test_site_bit_convention(self):
        """factors[s] acts on bit s: flipping only site 0 redistributes
        mass between indices differing in the LSB."""
        # Site 0 always flips (p=1 both ways); other sites frozen.
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        frozen = np.eye(2)
        q = PerSiteMutation([flip, frozen, frozen])
        v = np.zeros(8)
        v[0b000] = 1.0
        out = q.apply(v)
        expected = np.zeros(8)
        expected[0b001] = 1.0
        np.testing.assert_allclose(out, expected, atol=1e-15)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 7), st.integers(0, 10_000))
    def test_mass_preservation(self, nu, seed):
        rng = np.random.default_rng(seed)
        factors = []
        for _ in range(nu):
            a, b = rng.uniform(0, 1, size=2)
            factors.append(np.array([[1 - a, b], [a, 1 - b]]))
        q = PerSiteMutation(factors)
        v = rng.random(q.n)
        np.testing.assert_allclose(q.apply(v).sum(), v.sum(), rtol=1e-10)


class TestSpectral:
    def test_eigenvalues_match_dense(self):
        factors = [site_factor(0.05, 0.2), site_factor(0.1), site_factor(0.3, 0.12)]
        q = PerSiteMutation(factors)
        np.testing.assert_allclose(
            np.sort(q.eigenvalues()), np.sort(np.linalg.eigvals(q.dense()).real), atol=1e-12
        )

    def test_apply_inverse(self):
        q = PerSiteMutation.from_error_rates([0.1, 0.05, 0.2, 0.01])
        v = np.random.default_rng(2).random(16)
        np.testing.assert_allclose(q.apply_inverse(q.apply(v.copy())), v, atol=1e-11)

    def test_singular_factor_rejected(self):
        # a + b = 1 makes the 2x2 factor singular
        q = PerSiteMutation([site_factor(0.5, 0.5)])
        with pytest.raises(ValidationError):
            q.apply_inverse(np.ones(2))

    def test_kronecker_factor_order(self):
        """kronecker_factors() returns paper order: factor 1 = MSB."""
        f0 = site_factor(0.1)  # bit 0
        f1 = site_factor(0.2)  # bit 1 (MSB for nu=2)
        q = PerSiteMutation([f0, f1])
        kf = q.kronecker_factors()
        np.testing.assert_allclose(kf[0], f1)
        np.testing.assert_allclose(np.kron(kf[0], kf[1]), q.dense(), atol=1e-14)

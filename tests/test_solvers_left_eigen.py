"""Tests for left eigenvectors / reproductive values."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation, site_factor
from repro.operators import dense_w
from repro.solvers.left_eigen import (
    TransposedFmmp,
    left_eigenvector,
    reproductive_values,
)


@pytest.fixture
def asymmetric():
    nu = 6
    factors = [site_factor(0.01 + 0.02 * s, 0.06 - 0.005 * s) for s in range(nu)]
    mut = PerSiteMutation(factors)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=51)
    return mut, ls


class TestTransposedOperator:
    @pytest.mark.parametrize("form", ["right", "symmetric", "left"])
    def test_matches_dense_transpose(self, asymmetric, form):
        mut, ls = asymmetric
        w_t = dense_w(mut, ls, form).T
        op = TransposedFmmp(mut, ls, form=form)
        v = np.random.default_rng(0).random(mut.n)
        np.testing.assert_allclose(op.matvec(v), w_t @ v, atol=1e-12)

    def test_grouped_model(self):
        rng = np.random.default_rng(1)
        b = rng.random((4, 4))
        b /= b.sum(axis=0, keepdims=True)
        mut = GroupedMutation([b, site_factor(0.02)])
        ls = RandomLandscape(3, seed=2)
        w_t = dense_w(mut, ls, "right").T
        op = TransposedFmmp(mut, ls)
        v = np.random.default_rng(3).random(8)
        np.testing.assert_allclose(op.matvec(v), w_t @ v, atol=1e-12)

    def test_input_not_mutated(self, asymmetric):
        mut, ls = asymmetric
        op = TransposedFmmp(mut, ls, form="right")
        v = np.random.default_rng(4).random(mut.n)
        orig = v.copy()
        op.matvec(v)
        np.testing.assert_array_equal(v, orig)

    def test_costs_match_forward(self, asymmetric):
        from repro.operators import Fmmp

        mut, ls = asymmetric
        assert TransposedFmmp(mut, ls).costs().flops == Fmmp(mut, ls).costs().flops

    def test_bad_form(self, asymmetric):
        mut, ls = asymmetric
        with pytest.raises(ValidationError):
            TransposedFmmp(mut, ls, form="up")


class TestLeftEigenvector:
    def test_same_eigenvalue_as_right(self, asymmetric):
        mut, ls = asymmetric
        from repro.solvers import dense_solve

        right = dense_solve(mut, ls)
        left = left_eigenvector(mut, ls, tol=1e-13)
        assert left.eigenvalue == pytest.approx(right.eigenvalue, abs=1e-9)

    def test_matches_dense_left_vector(self, asymmetric):
        mut, ls = asymmetric
        w = dense_w(mut, ls, "right")
        evals, evecs = np.linalg.eig(w.T)
        k = int(np.argmax(evals.real))
        u_dense = np.abs(evecs[:, k].real)
        u_dense /= u_dense.sum()
        left = left_eigenvector(mut, ls, tol=1e-13)
        np.testing.assert_allclose(left.eigenvector, u_dense, atol=1e-9)

    def test_symmetric_q_left_equals_flat(self):
        """For symmetric Q and the right form, Wᵀ = F·Q has left... the
        left vector of QF is the right vector of FQ; with symmetric Q
        both exist and the biorthogonality Σ u_i x_i > 0 holds."""
        nu, p = 6, 0.02
        mut = UniformMutation(nu, p)
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        left = left_eigenvector(mut, ls, tol=1e-12)
        from repro.solvers import dense_solve

        right = dense_solve(mut, ls)
        assert float(left.eigenvector @ right.concentrations) > 0


class TestReproductiveValues:
    def test_normalization(self, asymmetric):
        mut, ls = asymmetric
        from repro.operators import Fmmp
        from repro.solvers import PowerIteration

        u = reproductive_values(mut, ls, tol=1e-12)
        x = PowerIteration(Fmmp(mut, ls), tol=1e-12).solve(
            ls.start_vector(), landscape=ls
        ).concentrations
        assert float(u @ x) == pytest.approx(1.0, rel=1e-8)
        assert np.all(u > 0)

    def test_fit_genotypes_have_higher_value(self):
        """On a single-peak landscape the master's lineage dominates, so
        its reproductive value tops the list."""
        nu, p = 7, 0.02
        mut = UniformMutation(nu, p)
        ls = SinglePeakLandscape(nu, 3.0, 1.0)
        u = reproductive_values(mut, ls)
        assert u.argmax() == 0
        assert u[0] > 1.0  # above the population average

"""Tests for the stage-fused multi-vector butterfly kernel."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.transforms import (
    batched_butterfly_transform,
    butterfly_transform,
    butterfly_transform_reference,
    fused_stage_count,
    fused_stage_plan,
)


def random_factors(nu, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((2, 2)) + 2.0 * np.eye(2) for _ in range(nu)]


class TestFusedStagePlan:
    @pytest.mark.parametrize("nu", [1, 2, 3, 4, 5, 8])
    def test_radix4_halves_sweep_count(self, nu):
        plan = fused_stage_plan(random_factors(nu), radix4=True)
        assert len(plan) == nu // 2 + nu % 2
        assert fused_stage_count(nu) == len(plan)

    @pytest.mark.parametrize("nu", [1, 3, 5])
    def test_odd_nu_keeps_one_radix2_stage(self, nu):
        plan = fused_stage_plan(random_factors(nu), radix4=True)
        radices = sorted(stage.radix for stage in plan)
        assert radices.count(2) == 1
        assert radices.count(4) == nu // 2

    def test_radix4_disabled_keeps_all_stages(self):
        plan = fused_stage_plan(random_factors(6), radix4=False)
        assert len(plan) == 6
        assert all(stage.radix == 2 for stage in plan)

    def test_radix4_factor_is_kron_of_adjacent_stages(self):
        factors = random_factors(2, seed=3)
        plan = fused_stage_plan(factors, radix4=True)
        assert len(plan) == 1 and plan[0].radix == 4
        np.testing.assert_allclose(plan[0].matrix, np.kron(factors[1], factors[0]))


class TestBatchedButterflyCorrectness:
    @pytest.mark.parametrize("variant", ["eq9", "eq10"])
    @pytest.mark.parametrize("nu", [1, 2, 3, 4, 6, 7])
    def test_matches_column_stacked_scalar(self, nu, variant):
        factors = random_factors(nu, seed=nu)
        n = 1 << nu
        rng = np.random.default_rng(nu + 10)
        block = rng.standard_normal((n, 5))
        got = batched_butterfly_transform(block, factors, variant=variant)
        want = np.stack(
            [butterfly_transform(block[:, j], factors) for j in range(5)], axis=1
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-13)

    def test_matches_paper_reference_triple_loop(self):
        factors = random_factors(4, seed=7)
        rng = np.random.default_rng(42)
        block = rng.standard_normal((16, 3))
        got = batched_butterfly_transform(block, factors)
        for j in range(3):
            want = butterfly_transform_reference(block[:, j], factors)
            np.testing.assert_allclose(got[:, j], want, rtol=1e-12, atol=1e-13)

    def test_radix2_and_radix4_agree(self):
        factors = random_factors(5, seed=1)
        rng = np.random.default_rng(1)
        block = rng.standard_normal((32, 4))
        a = batched_butterfly_transform(block, factors, radix4=True)
        b = batched_butterfly_transform(block, factors, radix4=False)
        np.testing.assert_allclose(a, b, rtol=1e-13)

    def test_input_block_never_mutated(self):
        factors = random_factors(3)
        block = np.random.default_rng(0).standard_normal((8, 2))
        saved = block.copy()
        batched_butterfly_transform(
            block, factors, pre_scale=np.arange(1.0, 9.0), post_scale=np.ones(8)
        )
        np.testing.assert_array_equal(block, saved)

    @pytest.mark.parametrize("shape", ["shared", "per-column"])
    def test_scale_folding_is_exact(self, shape):
        factors = random_factors(4, seed=9)
        n, b = 16, 3
        rng = np.random.default_rng(9)
        block = rng.standard_normal((n, b))
        if shape == "shared":
            pre = rng.uniform(0.5, 2.0, n)
            post = rng.uniform(0.5, 2.0, n)
            pre_cols = np.repeat(pre[:, None], b, axis=1)
            post_cols = np.repeat(post[:, None], b, axis=1)
        else:
            pre_cols = pre = rng.uniform(0.5, 2.0, (n, b))
            post_cols = post = rng.uniform(0.5, 2.0, (n, b))
        got = batched_butterfly_transform(block, factors, pre_scale=pre, post_scale=post)
        want = np.stack(
            [
                post_cols[:, j]
                * butterfly_transform(pre_cols[:, j] * block[:, j], factors)
                for j in range(b)
            ],
            axis=1,
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-13)


class TestBufferContract:
    def test_out_and_scratch_reuse(self):
        factors = random_factors(4)
        rng = np.random.default_rng(2)
        block = rng.standard_normal((16, 4))
        out = np.empty((16, 4))
        scratch = np.empty((16, 4))
        got = batched_butterfly_transform(block, factors, out=out, scratch=scratch)
        assert got is out
        np.testing.assert_allclose(got, batched_butterfly_transform(block, factors))

    def test_out_must_not_alias_input(self):
        factors = random_factors(3)
        block = np.zeros((8, 2))
        with pytest.raises(ValidationError, match="alias"):
            batched_butterfly_transform(block, factors, out=block)

    def test_scratch_must_not_alias_out(self):
        factors = random_factors(3)
        block = np.ones((8, 2))
        out = np.empty((8, 2))
        with pytest.raises(ValidationError, match="alias"):
            batched_butterfly_transform(block, factors, out=out, scratch=out)

    def test_wrong_shape_buffers_rejected(self):
        factors = random_factors(3)
        block = np.ones((8, 2))
        with pytest.raises(ValidationError, match="shape"):
            batched_butterfly_transform(block, factors, out=np.empty((8, 3)))


class TestValidation:
    def test_rejects_1d_and_3d_blocks(self):
        factors = random_factors(3)
        with pytest.raises(ValidationError, match="2-D"):
            batched_butterfly_transform(np.zeros(8), factors)
        with pytest.raises(ValidationError, match="2-D"):
            batched_butterfly_transform(np.zeros((8, 1, 1)), factors)

    def test_rejects_row_count_mismatch(self):
        with pytest.raises(ValidationError, match="rows"):
            batched_butterfly_transform(np.zeros((9, 2)), random_factors(3))

    def test_rejects_empty_factor_list(self):
        with pytest.raises(ValidationError, match="factor"):
            batched_butterfly_transform(np.zeros((1, 1)), [])

    def test_rejects_bad_scale_shape(self):
        factors = random_factors(3)
        with pytest.raises(ValidationError, match="pre_scale"):
            batched_butterfly_transform(np.zeros((8, 2)), factors, pre_scale=np.ones(4))

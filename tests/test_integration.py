"""Integration tests: every solver path agrees on the same physics.

One quasispecies problem, solved through every route the library offers
— dense LAPACK, power iteration over all three operator kinds and all
three eigenproblem forms, shifted, Lanczos, CG inverse iteration, the
simulated device pipeline, and the replicator–mutator dynamics — must
produce the same eigenvalue and the same concentrations.  For
structured landscapes, the reduced and Kronecker solvers join the club.
"""

import numpy as np
import pytest

from repro.device import Device, DevicePowerIteration, TESLA_C2050
from repro.landscapes import (
    HammingLandscape,
    KroneckerLandscape,
    RandomLandscape,
    TabulatedLandscape,
)
from repro.model import QuasispeciesModel, class_concentrations
from repro.model.ode import integrate_to_stationary
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.solvers import KroneckerSolver, PowerIteration, ReducedSolver, dense_solve

NU = 9
P = 0.015


@pytest.fixture(scope="module")
def general_problem():
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=33)
    return mut, ls, dense_solve(mut, ls)


class TestGrandAgreementGeneralLandscape:
    def test_every_route_matches_dense(self, general_problem):
        mut, ls, ref = general_problem
        model = QuasispeciesModel(ls, mut)

        routes = {
            "Pi(Fmmp,right)": model.solve("power", operator="fmmp", form="right", tol=1e-13),
            "Pi(Fmmp,symmetric)": model.solve("power", operator="fmmp", form="symmetric", tol=1e-13),
            "Pi(Fmmp,left)": model.solve("power", operator="fmmp", form="left", tol=1e-13),
            "Pi(Fmmp,shifted)": model.solve("power", shift=True, tol=1e-13),
            "Pi(Xmvp(nu))": model.solve("power", operator="xmvp", tol=1e-13),
            "Pi(Smvp)": model.solve("power", operator="smvp", tol=1e-13),
            "Lanczos": model.solve("lanczos", tol=1e-12),
        }
        for label, res in routes.items():
            assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-9), label
            np.testing.assert_allclose(
                res.concentrations, ref.concentrations, atol=1e-8, err_msg=label
            )

    def test_device_pipeline_agrees(self, general_problem):
        mut, ls, ref = general_problem
        rep = DevicePowerIteration(Device(TESLA_C2050), mut, ls, tol=1e-13).run()
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-9)

    def test_dynamics_agree(self, general_problem):
        mut, ls, ref = general_problem
        x, _ = integrate_to_stationary(mut, ls, dt=0.05, tol=1e-10)
        np.testing.assert_allclose(x, ref.concentrations, atol=1e-8)


class TestGrandAgreementHammingLandscape:
    def test_reduced_equals_full_equals_auto(self):
        ls = HammingLandscape(NU, lambda k: 2.0 - k / NU)
        mut = UniformMutation(NU, P)
        ref = dense_solve(mut, ls)
        red = ReducedSolver(NU, P, ls).solve()
        auto = QuasispeciesModel(ls, mut).solve()
        assert red.eigenvalue == pytest.approx(ref.eigenvalue, rel=1e-11)
        assert auto.eigenvalue == pytest.approx(ref.eigenvalue, rel=1e-11)
        np.testing.assert_allclose(
            red.concentrations, class_concentrations(ref.concentrations, NU), atol=1e-11
        )
        np.testing.assert_allclose(auto.concentrations, red.concentrations, atol=1e-13)


class TestGrandAgreementKroneckerLandscape:
    def test_kronecker_equals_full_equals_auto(self):
        rng = np.random.default_rng(4)
        kl = KroneckerLandscape([rng.random(8) + 0.5, rng.random(8) + 0.5])
        mut = UniformMutation(kl.nu, P)
        full_ls = TabulatedLandscape(kl.values())
        ref = PowerIteration(Fmmp(mut, full_ls), tol=1e-13).solve(
            full_ls.start_vector(), landscape=full_ls
        )
        dec = KroneckerSolver(mut, kl).solve()
        auto = QuasispeciesModel(kl, mut).solve()
        assert dec.eigenvalue == pytest.approx(ref.eigenvalue, rel=1e-10)
        assert auto.eigenvalue == pytest.approx(ref.eigenvalue, rel=1e-10)
        np.testing.assert_allclose(
            dec.eigenvector.materialize(), ref.concentrations, atol=1e-10
        )


class TestPhysicalConsistency:
    def test_eigenvalue_is_mean_fitness(self, general_problem):
        """λ₀ = Σ fᵢ xᵢ at the stationary distribution — the flux Φ of
        Eq. (1) equals the dominant eigenvalue."""
        mut, ls, ref = general_problem
        phi = float(ls.values() @ ref.concentrations)
        assert phi == pytest.approx(ref.eigenvalue, rel=1e-10)

    def test_eigenvalue_bounds(self, general_problem):
        """(1−2p)^ν·f_min ≤ λ₀ ≤ f_max (the Sec. 3 norm bounds)."""
        mut, ls, ref = general_problem
        assert (1 - 2 * P) ** NU * ls.fmin <= ref.eigenvalue <= ls.fmax

    def test_stationarity_of_solution(self, general_problem):
        """One more W application changes nothing after normalization."""
        mut, ls, ref = general_problem
        op = Fmmp(mut, ls)
        y = op.matvec(ref.concentrations)
        y /= y.sum()
        np.testing.assert_allclose(y, ref.concentrations, atol=1e-10)

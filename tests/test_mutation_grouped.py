"""Tests for grouped mutation processes (Eq. 11)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mutation import GroupedMutation, PerSiteMutation, site_factor


def random_stochastic_block(dim, seed):
    rng = np.random.default_rng(seed)
    m = rng.random((dim, dim))
    return m / m.sum(axis=0, keepdims=True)


class TestConstruction:
    def test_group_sizes(self):
        q = GroupedMutation([random_stochastic_block(4, 0), site_factor(0.1)])
        assert q.group_sizes == (2, 1)
        assert q.nu == 3 and q.n == 8

    def test_rejects_non_power_of_two_blocks(self):
        with pytest.raises(ValidationError):
            GroupedMutation([random_stochastic_block(3, 0)])

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            GroupedMutation([np.eye(4) * 2.0])

    def test_rejects_oversized_group(self):
        with pytest.raises(ValidationError):
            GroupedMutation([np.eye(1 << 13)])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            GroupedMutation([])

    def test_rejects_1x1(self):
        with pytest.raises(ValidationError):
            GroupedMutation([np.array([[1.0]])])


class TestApply:
    def test_matches_dense(self):
        blocks = [random_stochastic_block(4, 1), random_stochastic_block(2, 2),
                  random_stochastic_block(8, 3)]
        q = GroupedMutation(blocks)
        v = np.random.default_rng(0).standard_normal(q.n)
        np.testing.assert_allclose(q.apply(v), q.dense() @ v, atol=1e-12)

    def test_mass_preservation(self):
        q = GroupedMutation([random_stochastic_block(8, 7), random_stochastic_block(4, 8)])
        v = np.random.default_rng(1).random(q.n)
        np.testing.assert_allclose(q.apply(v).sum(), v.sum(), rtol=1e-12)

    def test_single_site_groups_match_persite(self):
        """All-singleton groups reduce to the per-site model (paper order
        vs site order: grouped blocks are MSB-first)."""
        fs = [site_factor(0.05, 0.1), site_factor(0.2), site_factor(0.15, 0.02)]
        persite = PerSiteMutation(fs)  # fs[s] on bit s
        grouped = GroupedMutation(list(reversed(fs)))  # MSB first
        v = np.random.default_rng(2).standard_normal(8)
        np.testing.assert_allclose(grouped.apply(v), persite.apply(v), atol=1e-13)

    def test_correlated_pair_example(self):
        """A 4x4 block where double mutation is suppressed cannot be
        written as a product of independent sites — the generality
        Eq. (11) buys."""
        p = 0.1
        block = np.array(
            [
                [1 - 2 * p, p, p, 0.0],
                [p, 1 - 2 * p, 0.0, p],
                [p, 0.0, 1 - 2 * p, p],
                [0.0, p, p, 1 - 2 * p],
            ]
        )
        q = GroupedMutation([block])
        v = np.zeros(4)
        v[0] = 1.0
        out = q.apply(v)
        assert out[3] == 0.0, "double mutation suppressed by construction"
        np.testing.assert_allclose(out.sum(), 1.0)


class TestSpectralAndInverse:
    def test_eigenvalues_match_dense(self):
        q = GroupedMutation([random_stochastic_block(4, 5), random_stochastic_block(2, 6)])
        lam = q.eigenvalues()
        expected = np.linalg.eigvals(q.dense())
        np.testing.assert_allclose(
            np.sort_complex(np.asarray(lam, dtype=complex)),
            np.sort_complex(expected),
            atol=1e-10,
        )

    def test_apply_inverse(self):
        q = GroupedMutation([random_stochastic_block(4, 9), random_stochastic_block(4, 10)])
        v = np.random.default_rng(3).random(16)
        np.testing.assert_allclose(q.apply_inverse(q.apply(v)), v, atol=1e-10)

    def test_symmetry_detection(self):
        sym = np.array([[0.8, 0.2], [0.2, 0.8]])
        assert GroupedMutation([sym, sym]).is_symmetric
        assert not GroupedMutation([random_stochastic_block(4, 11)]).is_symmetric

"""Regression tests for degenerate inputs surfaced while wiring the
verification registry.

Paper corners: ``p = 0`` (error-free replication, ``Q = I``),
``p = 1/2`` (maximal mixing, rank-one ``Q``), flat landscapes
(``f_i = c``), and the one-bit chain ``nu = 1``.  Each must either solve
correctly or raise a *typed* ``repro.exceptions`` error — never a bare
``ZeroDivisionError``/``LinAlgError`` or a silent wrong answer.
"""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ReproError, ValidationError
from repro.landscapes import HammingLandscape, SinglePeakLandscape
from repro.model import QuasispeciesModel
from repro.mutation import UniformMutation
from repro.mutation.spectral import (
    apply_uniform_q_spectral,
    solve_shifted_uniform_q,
    uniform_q_eigenvalues,
)
from repro.verify import ProblemSpec, default_registry
from repro.verify.oracles import run_solver_oracles


def flat(nu: int, c: float = 1.0) -> HammingLandscape:
    return HammingLandscape(nu, [c] * (nu + 1))


class TestErrorFreeCorner:
    """p = 0: Q = I, W = F — the quasispecies is the fittest genotype."""

    def test_uniform_mutation_accepts_p_zero(self):
        q = UniformMutation(4, 0.0)
        v = np.arange(16, dtype=float)
        np.testing.assert_array_equal(q.apply(v.copy()), v)
        np.testing.assert_array_equal(q.dense(), np.eye(16))

    def test_solve_concentrates_on_the_peak(self):
        model = QuasispeciesModel(SinglePeakLandscape(5, 2.0, 1.0), p=0.0)
        res = model.solve()
        assert res.eigenvalue == pytest.approx(2.0, abs=1e-12)
        gamma = model.class_concentrations(res)
        assert gamma[0] == pytest.approx(1.0, abs=1e-10)

    def test_spectral_helpers_accept_p_zero(self):
        lam = uniform_q_eigenvalues(3, 0.0)
        np.testing.assert_array_equal(lam, np.ones(8))
        v = np.arange(8, dtype=float)
        np.testing.assert_allclose(apply_uniform_q_spectral(v, 3, 0.0), v, atol=1e-12)
        # (I - mu)^{-1} v with mu = -1  ->  v / 2
        np.testing.assert_allclose(
            solve_shifted_uniform_q(v, 3, 0.0, mu=-1.0), v / 2.0, atol=1e-12
        )

    def test_shift_at_eigenvalue_raises_typed_error(self):
        with pytest.raises(ValidationError):
            solve_shifted_uniform_q(np.ones(8), 3, 0.0, mu=1.0)


class TestMaximalMixingCorner:
    """p = 1/2: Q = J/N — one generation erases all genetic memory."""

    def test_solve_succeeds(self):
        model = QuasispeciesModel(SinglePeakLandscape(4, 2.0, 1.0), p=0.5)
        res = model.solve()
        assert res.eigenvalue > 0
        gamma = model.class_concentrations(res)
        # Uniform over genotypes => binomial over error classes.
        from repro.util.binomial import binomial_row

        np.testing.assert_allclose(gamma, binomial_row(4) / 16.0, atol=1e-9)

    def test_inverse_raises_typed_error(self):
        with pytest.raises(ValidationError):
            UniformMutation(3, 0.5).apply_inverse(np.ones(8))

    def test_registry_passes_at_half(self):
        spec = ProblemSpec(nu=4, p=0.5)
        rep = default_registry().run_spec(spec)
        assert rep.passed, [c.name for c in rep.failures]


class TestFlatLandscape:
    """f_i = c: W = c·Q — stationary state is Q's Perron vector."""

    def test_solve_is_uniform(self):
        model = QuasispeciesModel(flat(4, 3.0), p=0.1)
        res = model.solve()
        assert res.eigenvalue == pytest.approx(3.0, abs=1e-10)
        gamma = model.class_concentrations(res)
        from repro.util.binomial import binomial_row

        np.testing.assert_allclose(gamma, binomial_row(4) / 16.0, atol=1e-9)

    def test_registry_passes_on_flat(self):
        rep = default_registry().run_spec(ProblemSpec(nu=4, p=0.05, landscape="flat"))
        assert rep.passed, [c.name for c in rep.failures]


class TestFullyDegenerateCorner:
    """p = 0 AND flat: W = c·I.  Every distribution is stationary; the
    eigenvalue is well-defined, the eigenvector direction is not."""

    def test_auto_solve_succeeds_without_shift(self):
        model = QuasispeciesModel(flat(4), p=0.0)
        res = model.solve()
        assert res.eigenvalue == pytest.approx(1.0, abs=1e-12)

    def test_power_auto_does_not_auto_shift(self):
        model = QuasispeciesModel(flat(4), p=0.0)
        res = model.solve("power")
        assert res.converged
        assert res.eigenvalue == pytest.approx(1.0, abs=1e-12)

    def test_explicit_shift_raises_typed_error(self):
        # W - mu·I = 0 exactly: the shifted operator annihilates every
        # vector, which must surface as a typed convergence error.
        model = QuasispeciesModel(flat(4), p=0.0)
        with pytest.raises(ConvergenceError):
            model.solve("power", shift=True)

    def test_solver_oracles_compare_eigenvalues_only(self):
        checks = run_solver_oracles(ProblemSpec(nu=3, p=0.0, landscape="flat"))
        assert checks, "routes must still be compared"
        assert all(c.passed for c in checks), [c.name for c in checks if not c.passed]
        assert any("eigenvalue only" in c.details for c in checks)


class TestOneBitChain:
    """nu = 1: N = 2, the smallest admissible model."""

    def test_solve_matches_dense_2x2(self):
        model = QuasispeciesModel(SinglePeakLandscape(1, 2.0, 1.0), p=0.05)
        res = model.solve()
        w = np.array([[0.95 * 2.0, 0.05 * 1.0], [0.05 * 2.0, 0.95 * 1.0]])
        lam = np.linalg.eigvals(w).real.max()
        assert res.eigenvalue == pytest.approx(lam, rel=1e-10)

    def test_registry_passes_at_nu_one(self):
        rep = default_registry().run_spec(ProblemSpec(nu=1, p=0.05))
        assert rep.passed, [c.name for c in rep.failures]

    def test_nu_zero_rejected_with_typed_error(self):
        with pytest.raises(ReproError):
            UniformMutation(0, 0.1)
        with pytest.raises(ReproError):
            ProblemSpec(nu=0, p=0.1)


class TestSpecValidation:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValidationError):
            ProblemSpec(nu=4, p=0.7)
        with pytest.raises(ValidationError):
            ProblemSpec(nu=4, p=-0.1)

    def test_bad_families_rejected(self):
        with pytest.raises(ValidationError):
            ProblemSpec(nu=4, p=0.1, landscape="volcano")
        with pytest.raises(ValidationError):
            ProblemSpec(nu=4, p=0.1, mutation="quantum")

    def test_degenerate_corners_stay_exact_in_derived_models(self):
        # Per-site jitter must collapse to exactly p at the corners so
        # p = 0 / p = 1/2 remain exactly degenerate for derived models.
        for p in (0.0, 0.5):
            spec = ProblemSpec(nu=3, p=p, mutation="persite", landscape="random")
            mutation = spec.build_mutation()
            for factor in mutation.factors_per_bit():
                assert factor[1, 0] == p and factor[0, 1] == p

"""End-to-end tests for the solver service: manifests, CLI, reports.

These exercise the ISSUE acceptance path: a mixed full/reduced manifest
with duplicates is solved with each unique job answered once, an
injected failing route completes via fallback with the failure named in
the report, and a rerun against a warm disk cache performs zero new
solves.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.io import load_batch_report, save_batch_report
from repro.service import (
    BatchReport,
    SolveJob,
    SolverService,
    load_manifest,
    run_manifest,
)


def _manifest(tmp_path, options=None) -> str:
    data = {
        "defaults": {"nu": 6, "tol": 1e-10},
        "jobs": [
            {"p": 0.01, "landscape": "single-peak"},              # reduced
            {"p": 0.02, "landscape": "single-peak"},              # reduced
            {"p": 0.02, "landscape": "single-peak"},              # duplicate
            {"p": 0.02, "landscape": "random", "method": "power", "seed": 3},
        ],
        "options": options or {},
    }
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestSolverService:
    @pytest.mark.service_smoke
    def test_duplicates_solved_once(self):
        service = SolverService(kind="serial")
        report = service.submit([SolveJob(nu=6, p=0.01)] * 3)
        assert report.passed
        assert report.n_solved == 1 and report.n_duplicates == 2
        # all three requests share the one result object
        assert report.results[0] is report.results[1] is report.results[2]

    @pytest.mark.service_smoke
    def test_resubmit_fully_cached(self):
        service = SolverService(kind="serial")
        jobs = [SolveJob(nu=6, p=p) for p in (0.01, 0.02)]
        first = service.submit(jobs)
        second = service.submit(jobs)
        assert first.n_solved == 2 and first.n_cached == 0
        assert second.n_solved == 0 and second.n_cached == 2
        for a, b in zip(first.results, second.results):
            assert a.concentrations.tobytes() == b.concentrations.tobytes()

    def test_tolerance_aware_cache_across_submissions(self):
        service = SolverService(kind="serial")
        service.submit([SolveJob(nu=6, p=0.01, landscape="random", method="power", tol=1e-12)])
        report = service.submit(
            [SolveJob(nu=6, p=0.01, landscape="random", method="power", tol=1e-6)]
        )
        assert report.n_cached == 1 and report.n_solved == 0

    def test_warm_disk_cache_zero_new_solves(self, tmp_path):
        disk = str(tmp_path / "cache")
        jobs = [SolveJob(nu=6, p=p) for p in (0.01, 0.02)]
        cold = SolverService(kind="serial", cache_dir=disk).submit(jobs)
        # a brand-new service instance = a fresh process with the same disk
        warm = SolverService(kind="serial", cache_dir=disk).submit(jobs)
        assert cold.n_solved == 2
        assert warm.n_solved == 0 and warm.n_cached == 2
        assert all(t.cache == "hit-disk" for t in warm.telemetry)

    def test_failing_route_completes_via_fallback_with_named_failure(self):
        from repro.service import execute_job

        def broken_lanczos(job):
            if job.method == "lanczos":
                raise RuntimeError("injected lanczos failure")
            return execute_job(job)

        service = SolverService(kind="serial", retries=0, solve_fn=broken_lanczos)
        job = SolveJob(nu=5, p=0.02, landscape="random", method="lanczos", tol=1e-10)
        report = service.submit([job])
        assert report.passed
        assert report.n_fallbacks == 1
        assert any("injected lanczos failure" in f for f in report.failures())

    def test_solve_single_raises_on_total_failure(self):
        def always_broken(job):
            raise RuntimeError("dead backend")

        service = SolverService(kind="serial", retries=0, solve_fn=always_broken)
        with pytest.raises(ValidationError, match="dead backend"):
            service.solve(SolveJob(nu=5, p=0.02))

    def test_entry_view(self):
        service = SolverService(kind="serial")
        report = service.submit([SolveJob(nu=6, p=0.01)] * 2)
        job, result, tele = report.entry(1)
        assert job.p == 0.01 and result is not None and tele.status == "solved"


class TestManifests:
    def test_load_manifest_merges_defaults(self, tmp_path):
        jobs, options = load_manifest(_manifest(tmp_path, options={"workers": 2}))
        assert len(jobs) == 4
        assert all(j.nu == 6 and j.tol == 1e-10 for j in jobs)
        assert options == {"workers": 2}

    def test_unknown_option_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": [{"nu": 4, "p": 0.01}], "options": {"turbo": 1}}))
        with pytest.raises(ValidationError, match="turbo"):
            load_manifest(str(path))

    def test_empty_jobs_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"jobs": []}))
        with pytest.raises(ValidationError):
            load_manifest(str(path))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="JSON"):
            load_manifest(str(path))

    @pytest.mark.service_smoke
    def test_run_manifest_mixed_batch(self, tmp_path):
        report = run_manifest(_manifest(tmp_path), kind="serial")
        assert report.passed
        assert report.n_jobs == 4 and report.n_duplicates == 1
        assert report.n_solved == 3
        # reduced jobs planned before the full power job
        routes = [t.route for t in report.telemetry if t.status == "solved"]
        assert routes[-1] == "power"

    def test_run_manifest_override_beats_options(self, tmp_path):
        path = _manifest(tmp_path, options={"workers": 8, "kind": "thread"})
        report = run_manifest(path, kind="serial", workers=1)
        assert report.passed


class TestBatchReport:
    def test_json_round_trip(self, tmp_path):
        report = run_manifest(_manifest(tmp_path), kind="serial")
        path = str(tmp_path / "report.json")
        save_batch_report(path, report)
        loaded = load_batch_report(path)
        assert isinstance(loaded, BatchReport)
        assert loaded.passed == report.passed
        assert loaded.n_solved == report.n_solved
        assert loaded.index_map == report.index_map
        for a, b in zip(loaded.results, report.results):
            np.testing.assert_array_equal(a.concentrations, b.concentrations)

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValidationError):
            BatchReport.from_dict({"kind": "something-else"})


class TestBatchCLI:
    @pytest.mark.service_smoke
    def test_cold_then_warm_run(self, tmp_path, capsys):
        manifest = _manifest(tmp_path)
        cache = str(tmp_path / "cache")
        report_path = str(tmp_path / "report.json")
        code = main(["batch", manifest, "--pool", "serial", "--cache-dir", cache,
                     "--json", report_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 solved" in out and "1 duplicate" in out
        cold = load_batch_report(report_path)
        assert cold.passed and cold.n_solved == 3

        # warm rerun: zero new solves, everything from the disk cache
        code = main(["batch", manifest, "--pool", "serial", "--cache-dir", cache,
                     "--json", report_path])
        assert code == 0
        warm = load_batch_report(report_path)
        assert warm.n_solved == 0 and warm.n_cached == 3

    def test_report_to_stdout(self, tmp_path, capsys):
        manifest = _manifest(tmp_path)
        code = main(["batch", manifest, "--pool", "serial", "--quiet", "--json", "-"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "repro.BatchReport.v1"
        assert payload["passed"] is True

    def test_missing_manifest_fails_cleanly(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

"""Tests for the sparse (long-chain) Wright–Fisher simulator."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.population import SparseWrightFisher, WrightFisher


def single_peak_fitness(seq: int) -> float:
    return 2.0 if seq == 0 else 1.0


class TestMechanics:
    def test_population_conserved(self):
        wf = SparseWrightFisher(20, 0.01, single_peak_fitness, 500, seed=0)
        for _ in range(10):
            counts = wf.step()
            assert sum(counts.values()) == 500
            assert all(c > 0 for c in counts.values())

    def test_reset_default_all_master(self):
        wf = SparseWrightFisher(30, 0.01, single_peak_fitness, 100, seed=0)
        assert wf.counts == {0: 100}
        assert wf.mean_fitness() == 2.0
        assert wf.mean_distance_to_master() == 0.0

    def test_reset_custom(self):
        wf = SparseWrightFisher(10, 0.01, single_peak_fitness, 10, seed=0)
        wf.reset({3: 4, 5: 6})
        assert wf.support_size == 2

    def test_reset_validation(self):
        wf = SparseWrightFisher(10, 0.01, single_peak_fitness, 10, seed=0)
        with pytest.raises(ValidationError):
            wf.reset({0: 5})  # wrong total
        with pytest.raises(ValidationError):
            wf.reset({1 << 10: 10})  # out of range

    def test_reproducible(self):
        a = SparseWrightFisher(15, 0.02, single_peak_fitness, 200, seed=9)
        b = SparseWrightFisher(15, 0.02, single_peak_fitness, 200, seed=9)
        for _ in range(5):
            assert a.step() == b.step()

    def test_nonpositive_fitness_rejected(self):
        wf = SparseWrightFisher(8, 0.1, lambda s: 0.0, 10, seed=0)
        with pytest.raises(ValidationError):
            wf.step()

    def test_run_summary(self):
        wf = SparseWrightFisher(12, 0.01, single_peak_fitness, 300, seed=2)
        stats = wf.run(50)
        assert stats["generations"] == 50
        assert 0.0 <= stats["master_fraction"] <= 1.0
        assert stats["support_size"] >= 1


class TestAgreementWithDense:
    def test_matches_dense_simulator_statistics(self):
        """At a size where both run, the sparse and dense simulators give
        the same ensemble means (different samplers ⇒ compare moments)."""
        nu, p, m = 8, 0.02, 2_000
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        mut = UniformMutation(nu, p)

        dense_g0 = []
        sparse_g0 = []
        for seed in range(5):
            dense = WrightFisher(mut, ls, m, seed=seed)
            dense.run(100)  # burn-in
            stats = dense.run(150)
            dense_g0.append(stats.mean_class_concentrations[0])

            sp = SparseWrightFisher(nu, p, lambda s: 2.0 if s == 0 else 1.0, m, seed=seed)
            fracs = []
            for _ in range(100):
                sp.step()
            for _ in range(150):
                sp.step()
                fracs.append(sp.counts.get(0, 0) / m)
            sparse_g0.append(float(np.mean(fracs)))
        assert np.mean(sparse_g0) == pytest.approx(np.mean(dense_g0), abs=0.05)


class TestLongChains:
    def test_nu_50_runs(self):
        """ν = 50: a 2⁵⁰-dimensional state space, simulated sparsely."""
        wf = SparseWrightFisher(50, 0.002, single_peak_fitness, 300, seed=1)
        stats = wf.run(100)
        assert stats["support_size"] < 300 * 2  # sparse by construction
        assert stats["master_fraction"] > 0.3  # p well below ln2/50

    def test_error_catastrophe_at_long_chain(self):
        """Above the threshold (p >> ln2/ν) the master washes out and the
        population drifts away from it."""
        nu = 40
        wf = SparseWrightFisher(nu, 0.05, single_peak_fitness, 300, seed=3)
        stats = wf.run(150)
        assert stats["master_fraction"] < 0.05
        assert stats["mean_distance"] > 2.0

    def test_kronecker_fitness_callable(self):
        """Fitness callables from implicit landscapes plug in directly."""
        from repro.landscapes import KroneckerLandscape

        rng = np.random.default_rng(0)
        kl = KroneckerLandscape([rng.random(1 << 8) + 0.5 for _ in range(4)])  # nu=32
        wf = SparseWrightFisher(32, 0.002, kl.value_at, 200, seed=4)
        stats = wf.run(30)
        assert stats["mean_fitness"] > 0

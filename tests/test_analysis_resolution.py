"""Tests for multi-resolution concentration queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.resolution import (
    kron_site_marginal,
    prefix_concentrations,
    site_marginal,
)
from repro.exceptions import ValidationError
from repro.landscapes import KroneckerLandscape
from repro.mutation import UniformMutation
from repro.solvers import KroneckerSolver


class TestSiteMarginal:
    def test_single_site(self):
        x = np.zeros(8)
        x[0b101] = 0.7
        x[0b010] = 0.3
        np.testing.assert_allclose(site_marginal(x, 3, [0]), [0.3, 0.7])
        np.testing.assert_allclose(site_marginal(x, 3, [1]), [0.7, 0.3])

    def test_two_sites_ordering(self):
        """sites[0] is the least significant output bit."""
        x = np.zeros(8)
        x[0b110] = 1.0  # site2=1, site1=1, site0=0
        out = site_marginal(x, 3, [0, 2])
        # output config: bit0 = site0 = 0; bit1 = site2 = 1 -> index 2
        np.testing.assert_allclose(out, [0, 0, 1, 0])

    def test_mass_preserved(self):
        rng = np.random.default_rng(0)
        x = rng.random(64)
        out = site_marginal(x, 6, [1, 3, 5])
        assert out.sum() == pytest.approx(x.sum())

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.data())
    def test_marginal_consistency(self, nu, data):
        """Marginalizing the marginal equals marginalizing directly."""
        sites = data.draw(
            st.lists(st.integers(0, nu - 1), min_size=2, max_size=min(4, nu), unique=True)
        )
        x = np.random.default_rng(0).random(1 << nu)
        joint = site_marginal(x, nu, sites)
        # The first site's marginal from the joint table:
        direct = site_marginal(x, nu, [sites[0]])
        k = len(sites)
        idx = np.arange(1 << k)
        from_joint = np.bincount(idx & 1, weights=joint, minlength=2)
        np.testing.assert_allclose(from_joint, direct, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValidationError):
            site_marginal(np.ones(8), 3, [])
        with pytest.raises(ValidationError):
            site_marginal(np.ones(8), 3, [0, 0])
        with pytest.raises(ValidationError):
            site_marginal(np.ones(8), 3, [3])


class TestPrefixConcentrations:
    def test_level_zero_is_total(self):
        x = np.random.default_rng(1).random(32)
        np.testing.assert_allclose(prefix_concentrations(x, 5, 0), [x.sum()])

    def test_level_nu_is_identity(self):
        x = np.random.default_rng(2).random(16)
        np.testing.assert_allclose(prefix_concentrations(x, 4, 4), x)

    def test_levels_nest(self):
        """Level ℓ is the pairwise sum of level ℓ+1 — a proper tree."""
        x = np.random.default_rng(3).random(64)
        for level in range(6):
            coarse = prefix_concentrations(x, 6, level)
            fine = prefix_concentrations(x, 6, level + 1)
            np.testing.assert_allclose(coarse, fine.reshape(-1, 2).sum(axis=1))

    def test_level_validation(self):
        with pytest.raises(ValidationError):
            prefix_concentrations(np.ones(8), 3, 4)


class TestKronSiteMarginal:
    @pytest.fixture
    def solved(self):
        rng = np.random.default_rng(5)
        kl = KroneckerLandscape([rng.random(8) + 0.5, rng.random(4) + 0.5])  # nu = 5
        mut = UniformMutation(kl.nu, 0.03)
        res = KroneckerSolver(mut, kl).solve()
        return kl, res

    def test_matches_explicit_marginal(self, solved):
        kl, res = solved
        full = res.eigenvector.materialize()
        for sites in ([0], [4], [0, 3], [1, 2, 4], [2, 0]):
            implicit = kron_site_marginal(res.eigenvector, sites)
            explicit = site_marginal(full, kl.nu, sites)
            np.testing.assert_allclose(implicit, explicit, atol=1e-12, err_msg=str(sites))

    def test_cross_group_independence(self, solved):
        """Sites in different groups: joint = product of singles."""
        kl, res = solved
        # group 0 covers bits 2..4, group 1 bits 0..1
        a = kron_site_marginal(res.eigenvector, [4])
        b = kron_site_marginal(res.eigenvector, [0])
        joint = kron_site_marginal(res.eigenvector, [4, 0])
        outer = np.array(
            [a[0] * b[0], a[1] * b[0], a[0] * b[1], a[1] * b[1]]
        )
        np.testing.assert_allclose(joint, outer, atol=1e-12)

    def test_huge_chain_query(self):
        """Resolution queries on a ν = 60 model — far beyond any full
        vector — run instantly."""
        rng = np.random.default_rng(7)
        kl = KroneckerLandscape([rng.random(1 << 6) + 0.5 for _ in range(10)])
        assert kl.nu == 60
        res = KroneckerSolver(UniformMutation(60, 0.005), kl).solve()
        marg = kron_site_marginal(res.eigenvector, [0, 30, 59])
        assert marg.shape == (8,)
        assert marg.sum() == pytest.approx(1.0)
        assert np.all(marg >= 0)

    def test_validation(self, solved):
        _, res = solved
        with pytest.raises(ValidationError):
            kron_site_marginal(res.eigenvector, [])
        with pytest.raises(ValidationError):
            kron_site_marginal(res.eigenvector, [9])

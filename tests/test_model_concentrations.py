"""Tests for concentration diagnostics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.model.concentrations import (
    class_concentrations,
    dominant_sequence,
    participation_ratio,
    uniform_class_concentrations,
)


class TestClassConcentrations:
    def test_pure_master(self):
        x = np.zeros(16)
        x[0] = 1.0
        gamma = class_concentrations(x, 4)
        np.testing.assert_array_equal(gamma, [1, 0, 0, 0, 0])

    def test_uniform_distribution(self):
        nu = 6
        x = np.full(1 << nu, 2.0**-nu)
        np.testing.assert_allclose(
            class_concentrations(x, nu), uniform_class_concentrations(nu)
        )

    def test_sums_preserved(self):
        rng = np.random.default_rng(0)
        x = rng.random(32)
        assert class_concentrations(x, 5).sum() == pytest.approx(x.sum())

    def test_wrong_length(self):
        with pytest.raises(ValidationError):
            class_concentrations(np.ones(10), 4)


class TestUniformClassConcentrations:
    def test_binomial_over_n(self):
        np.testing.assert_allclose(
            uniform_class_concentrations(4), np.array([1, 4, 6, 4, 1]) / 16.0
        )

    def test_normalized(self):
        assert uniform_class_concentrations(20).sum() == pytest.approx(1.0)

    def test_symmetry(self):
        """Γ_k and Γ_{ν−k} pairs — the curve pairs of Fig. 1 that meet at
        the threshold."""
        g = uniform_class_concentrations(9)
        np.testing.assert_allclose(g, g[::-1])


class TestDominantSequence:
    def test_basic(self):
        idx, conc = dominant_sequence(np.array([0.1, 0.7, 0.2]))
        assert idx == 1 and conc == 0.7

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            dominant_sequence(np.array([]))


class TestParticipationRatio:
    def test_single_sequence(self):
        x = np.zeros(8)
        x[3] = 1.0
        assert participation_ratio(x) == pytest.approx(1.0)

    def test_uniform(self):
        assert participation_ratio(np.full(64, 1 / 64)) == pytest.approx(64.0)

    def test_monotone_between_extremes(self):
        ordered = np.array([0.9] + [0.1 / 7] * 7)
        assert 1.0 < participation_ratio(ordered) < 8.0

    def test_zero_rejected(self):
        with pytest.raises(ValidationError):
            participation_ratio(np.zeros(4))

"""Tests for the fused Xmvp kernel and its pipeline/model integration."""

import numpy as np
import pytest

from repro.bitops.classes import masks_up_to_distance
from repro.device import Device, DevicePowerIteration, TESLA_C2050
from repro.device.kernels.xmvp_fused import make_fused_xmvp_kernel
from repro.exceptions import DeviceError
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Xmvp
from repro.perf import PipelineCostModel
from repro.solvers import dense_solve


def _mask_table(nu, dmax, p):
    q = UniformMutation(nu, p)
    groups = masks_up_to_distance(nu, dmax)
    cls = q.class_values()
    masks = np.concatenate(groups)
    weights = np.concatenate([np.full(len(m), cls[k]) for k, m in enumerate(groups)])
    return masks, weights


class TestFusedKernel:
    def test_matches_operator(self):
        nu, dmax, p = 7, 3, 0.02
        masks, weights = _mask_table(nu, dmax, p)
        kernel = make_fused_xmvp_kernel(masks, weights)
        dev = Device(TESLA_C2050, validate=True, validate_samples=32)
        dev.alloc("w", 1 << nu)
        dev.alloc("y", 1 << nu)
        w = np.random.default_rng(0).random(1 << nu)
        dev.to_device("w", w)
        dev.launch(kernel, 1 << nu)
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, seed=0)
        # The operator applies Q_trunc to (f*v); apply to raw w by using
        # the internal truncated product for comparison.
        expected = Xmvp(mut, ls, dmax)._q_truncated(w)
        np.testing.assert_allclose(dev.from_device("y"), expected, atol=1e-13)

    def test_cost_spec_scales_with_masks(self):
        masks, weights = _mask_table(6, 2, 0.05)
        k = make_fused_xmvp_kernel(masks, weights)
        assert k.costs.bytes_per_item == 8.0 * (len(masks) + 1)
        assert k.costs.flops_per_item == 2.0 * len(masks)

    def test_rejects_mismatched_table(self):
        with pytest.raises(DeviceError):
            make_fused_xmvp_kernel(np.array([0, 1]), np.array([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(DeviceError):
            make_fused_xmvp_kernel(np.array([], dtype=np.int64), np.array([]))


class TestFusedPipeline:
    def test_same_numerics_as_per_mask_pipeline(self):
        nu, p, dmax = 7, 0.01, 4
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=9)
        per_mask = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, operator="xmvp", dmax=dmax, tol=1e-11
        ).run()
        fused = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, operator="xmvp", dmax=dmax, tol=1e-11,
            fused_xmvp=True,
        ).run()
        assert fused.result.iterations == per_mask.result.iterations
        np.testing.assert_allclose(
            fused.result.concentrations, per_mask.result.concentrations, atol=1e-13
        )

    def test_fused_modeled_faster(self):
        nu, p, dmax = 8, 0.01, 5
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=1)
        per_mask = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, operator="xmvp", dmax=dmax, tol=1e-10
        ).run()
        fused = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, operator="xmvp", dmax=dmax, tol=1e-10,
            fused_xmvp=True,
        ).run()
        assert fused.modeled_total_s < per_mask.modeled_total_s
        assert fused.launches < per_mask.launches

    def test_pinned_to_cost_model(self):
        nu, p, dmax = 7, 0.01, 3
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=4)
        rep = DevicePowerIteration(
            Device(TESLA_C2050), mut, ls, operator="xmvp", dmax=dmax, tol=1e-10,
            fused_xmvp=True,
        ).run()
        model = PipelineCostModel(nu, "xmvp", dmax, fused_xmvp=True)
        assert model.total_time(TESLA_C2050, rep.result.iterations) == pytest.approx(
            rep.modeled_total_s, rel=1e-12
        )

    def test_exact_fused_matches_dense(self):
        nu, p = 6, 0.02
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, seed=8)
        ref = dense_solve(mut, ls)
        rep = DevicePowerIteration(
            Device(TESLA_C2050, validate=True), mut, ls, operator="xmvp",
            dmax=nu, tol=1e-13, fused_xmvp=True,
        ).run()
        np.testing.assert_allclose(rep.result.concentrations, ref.concentrations, atol=1e-10)

"""Thread plumbing through the service layer and CLI.

The panel engine's thread count is an *execution* option, not part of
any job's identity: it must reach every worker (bit-identical results
make that safe), must never enter a :class:`SolveJob` content hash, and
pool workers × engine threads must never oversubscribe the host.
"""

import functools

import numpy as np
import pytest

from repro.cli import build_parser
from repro.exceptions import ValidationError
from repro.service.jobspec import SolveJob
from repro.service.pool import WorkerPool, execute_job
from repro.service.service import _OPTION_KEYS, SolverService
from repro.transforms.parallel import resolve_threads


class TestOversubscriptionGuard:
    def _pool(self, monkeypatch, cpus, **kw):
        monkeypatch.setattr("repro.service.pool.os.cpu_count", lambda: cpus)
        return WorkerPool(**kw)

    def test_threads_cap_worker_count(self, monkeypatch):
        pool = self._pool(monkeypatch, 8, workers=8, threads=4)
        assert pool.effective_workers(16) == 2  # 8 cpus / 4 threads

    def test_serial_engine_leaves_workers_alone(self, monkeypatch):
        pool = self._pool(monkeypatch, 8, workers=8, threads=1)
        assert pool.effective_workers(16) == 8

    def test_job_count_still_bounds(self, monkeypatch):
        pool = self._pool(monkeypatch, 8, workers=8, threads=2)
        assert pool.effective_workers(3) == 3

    def test_never_below_one_worker(self, monkeypatch):
        pool = self._pool(monkeypatch, 1, workers=4, threads=4)
        assert pool.effective_workers(10) == 1

    def test_threads_bound_into_solve_fn(self):
        pool = WorkerPool(threads=2)
        assert isinstance(pool.solve_fn, functools.partial)
        assert pool.solve_fn.func is execute_job
        assert pool.solve_fn.keywords == {"threads": 2}

    def test_serial_pool_uses_plain_execute_job(self):
        pool = WorkerPool(threads=1)
        assert pool.solve_fn is execute_job


class TestThreadsStayOutOfJobIdentity:
    def test_cache_key_ignores_execution_threads(self):
        job = SolveJob(nu=5, p=0.03)
        key = job.cache_key()
        # threads ride on the pool's partial, not the job — the payload
        # round-trips without any thread field and the key is stable.
        clone = SolveJob.from_dict(job.to_dict())
        assert "threads" not in job.to_dict()
        assert clone.cache_key() == key

    def test_execute_job_threads_agree_and_are_deterministic(self):
        job = SolveJob(nu=6, p=0.02, method="power")
        serial = execute_job(job)
        t2 = execute_job(job, threads=2)
        t4 = execute_job(job, threads=4)
        # Bit-identity holds *within* the fused engine family: repeated
        # threaded runs and different thread counts give the same bytes
        # (the panel count, not the thread count, fixes the bits).
        assert t2.eigenvalue == t4.eigenvalue
        np.testing.assert_array_equal(t2.concentrations, t4.concentrations)
        rerun = execute_job(job, threads=2)
        assert rerun.eigenvalue == t2.eigenvalue
        # The serial route runs the legacy scalar kernel — agreement is
        # to solver tolerance there, not bitwise.
        assert serial.eigenvalue == pytest.approx(t2.eigenvalue, abs=1e-10)
        np.testing.assert_allclose(
            serial.concentrations, t2.concentrations, rtol=1e-9, atol=1e-12
        )


class TestServiceOptions:
    def test_threads_is_a_manifest_option(self):
        assert "threads" in _OPTION_KEYS

    def test_service_accepts_threads(self):
        svc = SolverService(workers=1, kind="serial", threads=2)
        assert svc.pool.threads == 2

    def test_threaded_service_matches_serial_service(self):
        jobs = [
            SolveJob(nu=5, p=0.03, method="power"),
            SolveJob(nu=6, p=0.05, peak=3.0, method="power"),
        ]
        serial = SolverService(workers=1, kind="serial")
        threaded = SolverService(workers=1, kind="serial", threads=2)
        for a, b in zip(
            serial.submit(jobs).results, threaded.submit(jobs).results
        ):
            assert a.converged and b.converged
            assert a.eigenvalue == pytest.approx(b.eigenvalue, abs=1e-10)


class TestResolveThreadsEnv:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert resolve_threads(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert resolve_threads(2) == 2

    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert resolve_threads(None) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "lots")
        with pytest.raises(ValidationError):
            resolve_threads(None)


class TestCliThreadsFlags:
    @pytest.mark.parametrize(
        "argv",
        [
            ["solve", "--nu", "4", "--threads", "2"],
            ["verify", "--grid", "small", "--threads", "2"],
            ["batch", "manifest.json", "--threads", "2"],
        ],
    )
    def test_threads_flag_parses(self, argv):
        args = build_parser().parse_args(argv)
        assert args.threads == 2

    def test_threads_defaults_to_none(self):
        args = build_parser().parse_args(["solve", "--nu", "4"])
        assert args.threads is None

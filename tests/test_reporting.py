"""Tests for tables and figure-series reporting."""

import pytest

from repro.exceptions import ValidationError
from repro.reporting import FigureSeries, SeriesBundle, format_seconds, format_sci, render_table


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "t,expected",
        [
            (5e-9, "5.0 ns"),
            (2.5e-6, "2.5 µs"),
            (3.2e-3, "3.2 ms"),
            (1.5, "1.50 s"),
            (300.0, "5.0 min"),
        ],
    )
    def test_scaling(self, t, expected):
        assert format_seconds(t) == expected

    def test_nan(self):
        assert format_seconds(float("nan")) == "n/a"

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_seconds(-1.0)


class TestFormatSci:
    def test_basic(self):
        assert format_sci(2.07e7) == "2.07e+07"
        assert format_sci(2.07e7, digits=1) == "2.1e+07"


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["nu", "t"], [[10, "1 s"], [20, "2 s"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "nu" in lines[1] and "t" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_left_align(self):
        out = render_table(["name"], [["x"]], align_right=False)
        assert out.splitlines()[0].startswith("name")
        assert out.splitlines()[2].startswith("x")


class TestFigureSeries:
    def test_add_and_mapping(self):
        s = FigureSeries("a")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.as_mapping() == {1.0: 10.0, 2.0: 20.0}
        assert len(s) == 2


class TestSeriesBundle:
    def _bundle(self):
        b = SeriesBundle("Fig X", x_label="nu", y_label="t")
        s = b.new_series("fmmp")
        s.add(10, 0.1)
        s.add(12, 0.4)
        b.add_mapping("xmvp", {10: 1.0, 14: 16.0})
        return b

    def test_duplicate_series_rejected(self):
        b = self._bundle()
        with pytest.raises(ValidationError):
            b.new_series("fmmp")

    def test_csv_wide_format(self):
        csv = self._bundle().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "nu,fmmp,xmvp"
        assert len(lines) == 4  # header + x = 10, 12, 14
        assert lines[2].startswith("12.0,0.4,")  # xmvp blank at 12

    def test_save_csv(self, tmp_path):
        path = tmp_path / "fig.csv"
        self._bundle().save_csv(str(path))
        assert path.read_text().startswith("nu,")

    def test_render_contains_all_series(self):
        out = self._bundle().render()
        assert "fmmp" in out and "xmvp" in out and "Fig X" in out

"""Tests for all fitness landscape classes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.landscapes import (
    HammingLandscape,
    KroneckerLandscape,
    LinearLandscape,
    RandomLandscape,
    SinglePeakLandscape,
    TabulatedLandscape,
)


class TestTabulated:
    def test_basic(self):
        ls = TabulatedLandscape([2.0, 1.0, 1.0, 1.0])
        assert ls.nu == 2 and ls.fmax == 2.0 and ls.fmin == 1.0

    def test_values_read_only(self):
        ls = TabulatedLandscape([1.0, 2.0])
        with pytest.raises(ValueError):
            ls.values()[0] = 5.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValidationError):
            TabulatedLandscape([1.0, 2.0, 3.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            TabulatedLandscape([1.0, 0.0, 1.0, 1.0])

    def test_error_class_detection_positive(self):
        labels = distance_to_master(3)
        vals = np.array([3.0, 2.0, 1.5, 1.0])[labels]
        ls = TabulatedLandscape(vals)
        assert ls.is_error_class_landscape
        np.testing.assert_allclose(ls.class_values(), [3.0, 2.0, 1.5, 1.0])

    def test_error_class_detection_negative(self):
        vals = np.ones(8)
        vals[3] = 2.0  # breaks class Γ2 constancy
        ls = TabulatedLandscape(vals)
        assert not ls.is_error_class_landscape
        with pytest.raises(ValidationError):
            ls.class_values()

    def test_start_vector(self):
        ls = TabulatedLandscape([2.0, 1.0, 1.0, 4.0])
        sv = ls.start_vector()
        np.testing.assert_allclose(sv.sum(), 1.0)
        np.testing.assert_allclose(sv, np.array([2, 1, 1, 4]) / 8.0)


class TestHamming:
    def test_callable_phi(self):
        ls = HammingLandscape(4, lambda k: 2.0 ** (-k))
        np.testing.assert_allclose(ls.class_values(), [1, 0.5, 0.25, 0.125, 0.0625])

    def test_sequence_phi(self):
        ls = HammingLandscape(3, [4.0, 3.0, 2.0, 1.0])
        f = ls.values()
        np.testing.assert_allclose(f, np.array([4.0, 3.0, 2.0, 1.0])[distance_to_master(3)])

    def test_wrong_length(self):
        with pytest.raises(ValidationError):
            HammingLandscape(3, [1.0, 2.0])

    def test_long_chain_values_guarded(self):
        ls = HammingLandscape(100, lambda k: 1.0 + 1.0 / (k + 1))
        assert ls.fmax == 2.0
        with pytest.raises(ValidationError):
            ls.values()

    def test_is_error_class(self):
        assert HammingLandscape(5, lambda k: k + 1.0).is_error_class_landscape


class TestSinglePeak:
    def test_paper_values(self):
        ls = SinglePeakLandscape(20, 2.0, 1.0)
        cv = ls.class_values()
        assert cv[0] == 2.0 and np.all(cv[1:] == 1.0)
        assert ls.superiority == 2.0

    def test_predicted_threshold_matches_classic_formula(self):
        import math

        ls = SinglePeakLandscape(20, 2.0, 1.0)
        assert ls.predicted_threshold() == pytest.approx(math.log(2.0) / 20)

    def test_rejects_flat_peak(self):
        with pytest.raises(ValidationError):
            SinglePeakLandscape(5, 1.0, 1.0)


class TestLinear:
    def test_paper_values(self):
        ls = LinearLandscape(20, 2.0, 1.0)
        cv = ls.class_values()
        assert cv[0] == 2.0
        assert cv[-1] == pytest.approx(1.0)
        np.testing.assert_allclose(np.diff(cv), -0.05)

    def test_constant_allowed(self):
        ls = LinearLandscape(4, 1.5, 1.5)
        np.testing.assert_allclose(ls.class_values(), 1.5)

    def test_rejects_increasing(self):
        with pytest.raises(ValidationError):
            LinearLandscape(4, 1.0, 2.0)


class TestRandom:
    def test_eq13_structure(self):
        ls = RandomLandscape(8, c=5.0, sigma=1.0, seed=42)
        f = ls.values()
        assert f[0] == 5.0
        assert np.all(f[1:] >= 0.5) and np.all(f[1:] <= 1.5)

    def test_reproducible(self):
        a = RandomLandscape(6, seed=7).values()
        b = RandomLandscape(6, seed=7).values()
        np.testing.assert_array_equal(a, b)

    def test_sigma_constraint(self):
        with pytest.raises(ValidationError):
            RandomLandscape(5, c=2.0, sigma=1.5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 10), st.integers(0, 2**31))
    def test_master_always_fittest(self, nu, seed):
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=seed)
        assert ls.fmax == 5.0
        assert ls.values().argmax() == 0


class TestKronecker:
    def test_values_match_kron(self):
        d1, d2 = np.array([1.0, 2.0]), np.array([3.0, 4.0, 5.0, 6.0])
        ls = KroneckerLandscape([d1, d2])
        np.testing.assert_allclose(ls.values(), np.kron(d1, d2))
        assert ls.nu == 3 and ls.group_sizes == (1, 2)

    def test_value_at_matches_values(self):
        rng = np.random.default_rng(0)
        ls = KroneckerLandscape([rng.random(4) + 0.5, rng.random(8) + 0.5])
        full = ls.values()
        for i in range(32):
            assert ls.value_at(i) == pytest.approx(full[i], rel=1e-14)

    def test_fmin_fmax_without_materializing(self):
        rng = np.random.default_rng(1)
        diags = [rng.random(4) + 0.1 for _ in range(3)]
        ls = KroneckerLandscape(diags)
        full = ls.values()
        assert ls.fmin == pytest.approx(full.min())
        assert ls.fmax == pytest.approx(full.max())

    def test_long_chain_guarded(self):
        ls = KroneckerLandscape([np.ones(1 << 10) + 1.0] * 10)  # nu = 100
        assert ls.nu == 100
        assert ls.fmax == 2.0**10
        with pytest.raises(ValidationError):
            ls.values()

    def test_degrees_of_freedom(self):
        ls = KroneckerLandscape([np.ones(4) * 2, np.ones(8) * 3])
        assert ls.degrees_of_freedom == 12

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            KroneckerLandscape([np.array([1.0, 0.0])])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValidationError):
            KroneckerLandscape([np.array([1.0, 2.0, 3.0])])

    def test_index_out_of_range(self):
        ls = KroneckerLandscape([np.array([1.0, 2.0])])
        with pytest.raises(ValidationError):
            ls.value_at(2)

"""Differential tests: device and distributed backends vs the reference.

These pit the simulated-device kernel path (``repro.device``) and the
hypercube-distributed path (``repro.distributed``) against the serial
reference ``repro.operators.fmmp.Fmmp`` on *identical* inputs — closing
the gap where those backends were only smoke-tested in isolation.

Each module is imported through ``pytest.importorskip`` so the tests
degrade to skips if a backend is stripped from a build.
"""

import numpy as np
import pytest

from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import PerSiteMutation, UniformMutation, site_factor
from repro.operators.fmmp import Fmmp
from repro.util.rng import as_generator
from repro.verify.invariants import relative_error

device_runtime = pytest.importorskip("repro.device.runtime")
device_kernels = pytest.importorskip("repro.device.kernels.fmmp_kernel")
device_profile = pytest.importorskip("repro.device.profile")
distributed_fmmp = pytest.importorskip("repro.distributed.fmmp")
distributed_partition = pytest.importorskip("repro.distributed.partition")
distributed_cluster = pytest.importorskip("repro.distributed.cluster")

EXACT = 1e-12


def _mutations(nu: int, p: float, seed: int = 0):
    rng = as_generator(seed)
    factors = [
        site_factor(p * (0.5 + rng.random()), p * (0.5 + rng.random()))
        for _ in range(nu)
    ]
    return [UniformMutation(nu, p), PerSiteMutation(factors)]


def _device_product(mutation, fv: np.ndarray) -> np.ndarray:
    """``Q·(f·v)`` via Algorithm-2 stage kernels on the simulated device."""
    dev = device_runtime.Device(device_profile.TESLA_C2050)
    n = mutation.n
    dev.alloc("v", n)
    try:
        dev.to_device("v", fv)
        for s, m in enumerate(mutation.factors_per_bit()):
            dev.launch(
                device_kernels.fmmp_stage_kernel,
                n // 2,
                {"span": 1 << s, "m00": m[0, 0], "m01": m[0, 1],
                 "m10": m[1, 0], "m11": m[1, 1]},
                binding={"v": "v"},
            )
        return dev.from_device("v")
    finally:
        dev.free("v")


def _distributed_product(mutation, fv: np.ndarray, ranks: int) -> np.ndarray:
    """``Q·(f·v)`` via the hypercube butterfly over partitioned blocks."""
    op = distributed_fmmp.DistributedFmmp(
        distributed_cluster.gpu_cluster(ranks), mutation.factors_per_bit()
    )
    pv = distributed_partition.PartitionedVector.scatter(fv, ranks)
    return op.apply(pv).gather()


@pytest.mark.parametrize("nu", [3, 5, 7])
@pytest.mark.parametrize("p", [0.01, 0.2, 0.45])
class TestDeviceVsReference:
    def test_device_matches_fmmp_product(self, nu, p):
        landscape = RandomLandscape(nu, seed=nu)
        f = landscape.values()
        for mutation in _mutations(nu, p, seed=nu):
            ref = Fmmp(mutation, landscape)
            rng = as_generator(17 + nu)
            for _ in range(3):
                v = rng.standard_normal(1 << nu)
                expected = ref.matvec(v)
                got = _device_product(mutation, f * v)
                assert relative_error(got, expected) <= EXACT, type(mutation).__name__


@pytest.mark.parametrize("nu", [3, 5, 7])
@pytest.mark.parametrize("p", [0.01, 0.2, 0.45])
class TestDistributedVsReference:
    def test_distributed_matches_fmmp_product(self, nu, p):
        landscape = RandomLandscape(nu, seed=nu)
        f = landscape.values()
        for mutation in _mutations(nu, p, seed=nu):
            ref = Fmmp(mutation, landscape)
            rng = as_generator(23 + nu)
            for ranks in (2, min(4, 1 << (nu - 1))):
                v = rng.standard_normal(1 << nu)
                expected = ref.matvec(v)
                got = _distributed_product(mutation, f * v, ranks)
                assert relative_error(got, expected) <= 1e-13


class TestBackendsAgreeWithEachOther:
    """Device vs distributed on the same input (both against each other,
    not just against the reference — a genuinely independent pair)."""

    def test_device_vs_distributed(self):
        nu, p = 5, 0.07
        landscape = SinglePeakLandscape(nu)
        f = landscape.values()
        mutation = UniformMutation(nu, p)
        v = as_generator(3).standard_normal(1 << nu)
        dev = _device_product(mutation, f * v)
        dist = _distributed_product(mutation, f * v, 4)
        assert relative_error(dev, dist) <= 1e-13

    def test_positive_input_stays_positive_everywhere(self):
        nu, p = 4, 0.1
        landscape = SinglePeakLandscape(nu)
        mutation = UniformMutation(nu, p)
        v = np.abs(as_generator(9).standard_normal(1 << nu)) + 1e-3
        fv = landscape.values() * v
        assert np.all(_device_product(mutation, fv) > 0)
        assert np.all(_distributed_product(mutation, fv, 2) > 0)

"""Tests for the (shifted) power iteration."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, ShiftedOperator, Smvp, Xmvp
from repro.operators.shifted import conservative_shift
from repro.solvers import PowerIteration, dense_solve


@pytest.fixture
def problem():
    nu, p = 7, 0.02
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=11)
    return mut, ls, dense_solve(mut, ls)


class TestConvergence:
    def test_matches_dense_ground_truth(self, problem):
        mut, ls, ref = problem
        op = Fmmp(mut, ls)
        res = PowerIteration(op, tol=1e-13).solve(ls.start_vector(), landscape=ls)
        assert res.converged
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-10)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-9)

    @pytest.mark.parametrize("form", ["right", "symmetric", "left"])
    def test_all_forms_give_same_concentrations(self, problem, form):
        mut, ls, ref = problem
        op = Fmmp(mut, ls, form=form)
        res = PowerIteration(op, tol=1e-13).solve(
            ls.start_vector(), landscape=ls, form=form
        )
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-8)

    def test_eigenvector_normalized_and_positive(self, problem):
        mut, ls, _ = problem
        res = PowerIteration(Fmmp(mut, ls), tol=1e-12).solve(ls.start_vector())
        assert res.eigenvector.min() >= 0.0
        assert res.eigenvector.sum() == pytest.approx(1.0)

    def test_residual_definition(self, problem):
        """Reported residual must equal ‖W·x − λ·x‖₂ of the final pair."""
        mut, ls, _ = problem
        op = Fmmp(mut, ls)
        res = PowerIteration(op, tol=1e-10).solve(ls.start_vector())
        actual = np.linalg.norm(op.matvec(res.eigenvector) - res.eigenvalue * res.eigenvector)
        assert actual == pytest.approx(res.residual, rel=0.5, abs=1e-12)
        assert actual < 1e-9


class TestShift:
    def test_shift_reduces_iterations(self, problem):
        """Sec. 3: the conservative shift gives a clearly measurable
        reduction (paper: ≳10 % on random landscapes)."""
        mut, ls, _ = problem
        base = Fmmp(mut, ls)
        mu = conservative_shift(mut, ls)
        plain = PowerIteration(base, tol=1e-12).solve(ls.start_vector())
        shifted = PowerIteration(ShiftedOperator(base, mu), tol=1e-12).solve(ls.start_vector())
        assert shifted.iterations < plain.iterations
        reduction = 1.0 - shifted.iterations / plain.iterations
        assert reduction >= 0.05, f"shift saved only {reduction:.1%}"

    def test_shifted_eigenvalue_unshifted_in_result(self, problem):
        mut, ls, ref = problem
        mu = conservative_shift(mut, ls)
        res = PowerIteration(ShiftedOperator(Fmmp(mut, ls), mu), tol=1e-13).solve(
            ls.start_vector(), landscape=ls
        )
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-9)

    def test_shifted_concentrations_identical(self, problem):
        mut, ls, ref = problem
        mu = conservative_shift(mut, ls)
        res = PowerIteration(ShiftedOperator(Fmmp(mut, ls), mu), tol=1e-13).solve(
            ls.start_vector(), landscape=ls
        )
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-9)


class TestOperatorsInsidePi:
    def test_xmvp5_converges_to_slightly_perturbed_answer(self):
        """Pi(Xmvp(5)) converges to the sparsified matrix's eigenvector:
        close to, but measurably different from, the exact solution —
        the accuracy/speed trade-off of [10]."""
        nu, p = 10, 0.01
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=4)
        exact = PowerIteration(Fmmp(mut, ls), tol=1e-13).solve(ls.start_vector(), landscape=ls)
        approx = PowerIteration(Xmvp(mut, ls, 5), tol=1e-10).solve(
            ls.start_vector(), landscape=ls
        )
        err = np.abs(exact.concentrations - approx.concentrations).max()
        assert err < 1e-7, "dmax=5 should be accurate to ~1e-10 .. 1e-8"
        assert err > 0.0

    def test_smvp_agrees(self, problem):
        mut, ls, ref = problem
        res = PowerIteration(Smvp(mut, ls), tol=1e-13).solve(ls.start_vector(), landscape=ls)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-9)


class TestFailureModes:
    def test_max_iterations_raises(self, problem):
        mut, ls, _ = problem
        with pytest.raises(ConvergenceError) as exc_info:
            PowerIteration(Fmmp(mut, ls), tol=1e-15, max_iterations=2).solve(ls.start_vector())
        assert exc_info.value.iterations == 2

    def test_no_raise_mode(self, problem):
        mut, ls, _ = problem
        res = PowerIteration(Fmmp(mut, ls), tol=1e-15, max_iterations=2).solve(
            ls.start_vector(), raise_on_fail=False
        )
        assert not res.converged
        assert res.iterations == 2

    def test_zero_start_rejected(self, problem):
        mut, ls, _ = problem
        with pytest.raises(ValidationError):
            PowerIteration(Fmmp(mut, ls)).solve(np.zeros(mut.n))

    def test_wrong_start_shape(self, problem):
        mut, ls, _ = problem
        with pytest.raises(ValidationError):
            PowerIteration(Fmmp(mut, ls)).solve(np.ones(3))

    def test_bad_tol(self, problem):
        mut, ls, _ = problem
        with pytest.raises(ValidationError):
            PowerIteration(Fmmp(mut, ls), tol=0.0)


class TestHistory:
    def test_history_recorded_and_monotone_tail(self, problem):
        mut, ls, _ = problem
        res = PowerIteration(Fmmp(mut, ls), tol=1e-12, record_history=True).solve(
            ls.start_vector()
        )
        assert len(res.history) == res.iterations
        resids = [h.residual for h in res.history]
        # Geometric convergence: the last residuals decrease.
        assert resids[-1] < resids[max(0, len(resids) - 5)]

    def test_history_off_by_default(self, problem):
        mut, ls, _ = problem
        res = PowerIteration(Fmmp(mut, ls), tol=1e-10).solve(ls.start_vector())
        assert res.history == []

"""Tests for Lanczos, dense baselines, and shift-and-invert solvers."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.solvers import (
    Lanczos,
    cg_inverse_iteration,
    dense_dominant_eigenpair,
    dense_solve,
    inverse_iteration_q,
    rayleigh_quotient_iteration_q,
)


@pytest.fixture
def problem():
    nu, p = 7, 0.02
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=21)
    return nu, p, mut, ls, dense_solve(mut, ls)


class TestDenseBaseline:
    def test_dominant_pair_simple_matrix(self):
        m = np.diag([3.0, 1.0, 2.0])
        lam, v = dense_dominant_eigenpair(m)
        assert lam == pytest.approx(3.0)
        np.testing.assert_allclose(v, [1.0, 0.0, 0.0], atol=1e-12)

    def test_symmetric_autodetect(self):
        rng = np.random.default_rng(0)
        a = rng.random((6, 6))
        s = a + a.T + 6 * np.eye(6)
        lam, _ = dense_dominant_eigenpair(s)
        assert lam == pytest.approx(np.linalg.eigvalsh(s)[-1])

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            dense_dominant_eigenpair(np.zeros((2, 3)))

    def test_complex_dominant_rejected(self):
        rot = np.array([[0.0, -1.0], [1.0, 0.0]])  # eigenvalues ±i
        with pytest.raises(ValidationError):
            dense_dominant_eigenpair(rot, symmetric=False)

    def test_dense_solve_residual_small(self, problem):
        *_, ref = problem
        assert ref.residual < 1e-10
        assert ref.converged and ref.iterations == 0


class TestLanczos:
    def test_matches_dense(self, problem):
        nu, p, mut, ls, ref = problem
        op = Fmmp(mut, ls, form="symmetric")
        res = Lanczos(op, tol=1e-12).solve(
            np.sqrt(ls.values()), landscape=ls, form="symmetric"
        )
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-9)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-8)

    def test_fewer_matvecs_than_power_iteration(self, problem):
        """The trade-off of Sec. 3: Lanczos needs fewer iterations but
        stores a basis."""
        from repro.solvers import PowerIteration

        nu, p, mut, ls, _ = problem
        sym = Fmmp(mut, ls, form="symmetric")
        lz = Lanczos(sym, tol=1e-12).solve(np.sqrt(ls.values()))
        pi = PowerIteration(sym, tol=1e-12).solve(np.sqrt(ls.values()))
        assert lz.iterations < pi.iterations
        assert Lanczos(sym).storage_vectors(lz.iterations) > 2

    def test_rejects_nonsymmetric_operator(self, problem):
        nu, p, mut, ls, _ = problem
        with pytest.raises(ValidationError):
            Lanczos(Fmmp(mut, ls, form="right"))

    def test_basis_cap_raises(self, problem):
        nu, p, mut, ls, _ = problem
        op = Fmmp(mut, ls, form="symmetric")
        with pytest.raises(ConvergenceError):
            Lanczos(op, tol=1e-15, max_basis=2).solve(np.sqrt(ls.values()))


class TestShiftInvertQ:
    def test_inverse_iteration_finds_dominant(self):
        nu, p = 7, 0.05
        res = inverse_iteration_q(nu, p, mu=1.1)  # just above λ_max = 1
        assert res.eigenvalue == pytest.approx(1.0, abs=1e-10)
        # dominant eigenvector of Q is uniform
        np.testing.assert_allclose(
            res.concentrations, np.full(1 << nu, 2.0**-nu), atol=1e-10
        )

    def test_inverse_iteration_interior_eigenvalue(self):
        """Shift-and-invert targets *interior* eigenvalues — something
        plain power iteration cannot do."""
        nu, p = 5, 0.1
        target = (1 - 2 * p) ** 2  # an interior eigenvalue of Q
        res = inverse_iteration_q(nu, p, mu=target + 0.013)
        assert res.eigenvalue == pytest.approx(target, abs=1e-9)

    def test_rqi_cubic_convergence_iteration_count(self):
        nu, p = 8, 0.03
        res = rayleigh_quotient_iteration_q(nu, p)
        assert res.converged
        assert res.iterations <= 8, "RQI should converge in a handful of steps"

    def test_rqi_eigenpair_is_valid(self):
        nu, p = 6, 0.07
        from repro.mutation import UniformMutation

        res = rayleigh_quotient_iteration_q(nu, p)
        q = UniformMutation(nu, p)
        resid = np.linalg.norm(q.apply(res.eigenvector.copy()) - res.eigenvalue * res.eigenvector)
        assert resid < 1e-10


class TestCgInverseIteration:
    def test_converges_to_dominant_pair(self, problem):
        nu, p, mut, ls, ref = problem
        op = Fmmp(mut, ls, form="symmetric")
        # Shift just above the dominant eigenvalue (fmax bounds it).
        res = cg_inverse_iteration(
            op, start=np.sqrt(ls.values()), mu=ls.fmax * 1.05, tol=1e-10
        )
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-8)
        from repro.operators.dense_w import convert_eigenvector

        conc = convert_eigenvector(res.eigenvector, ls, "symmetric")
        np.testing.assert_allclose(conc, ref.concentrations, atol=1e-7)

    def test_fewer_outer_iterations_than_power(self, problem):
        from repro.solvers import PowerIteration

        nu, p, mut, ls, _ = problem
        op = Fmmp(mut, ls, form="symmetric")
        start = np.sqrt(ls.values())
        inv = cg_inverse_iteration(op, start=start, mu=ls.fmax * 1.05, tol=1e-10)
        pi = PowerIteration(op, tol=1e-10).solve(start)
        assert inv.iterations < pi.iterations

    def test_rejects_nonsymmetric(self, problem):
        nu, p, mut, ls, _ = problem
        with pytest.raises(ValidationError):
            cg_inverse_iteration(
                Fmmp(mut, ls, form="right"), start=ls.values(), mu=10.0
            )

"""Tests for lethal-mutagenesis planning."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import LinearLandscape, SinglePeakLandscape
from repro.model.antiviral import find_threshold, mutagenesis_margin


class TestFindThreshold:
    def test_single_peak_matches_sweep(self):
        """Bisection pins p_max far more precisely than a sweep grid and
        must agree with the classic ln(σ)/ν estimate's neighbourhood."""
        nu = 16
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        p_max = find_threshold(ls, tol_p=1e-4)
        assert p_max is not None
        assert np.log(2.0) / nu * 0.8 <= p_max <= np.log(2.0) / nu * 1.5

    def test_agrees_with_sweep_detector(self):
        from repro.model.threshold import sweep_error_rates

        nu = 14
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        p_bisect = find_threshold(ls, tol_p=1e-4)
        sweep = sweep_error_rates(ls, np.linspace(0.002, 0.15, 75))
        assert abs(p_bisect - sweep.p_max) <= 0.004  # within the grid step

    def test_linear_landscape_no_threshold(self):
        assert find_threshold(LinearLandscape(14, 2.0, 1.0)) is None

    def test_monotone_in_peak_height(self):
        nu = 12
        low = find_threshold(SinglePeakLandscape(nu, 2.0, 1.0))
        high = find_threshold(SinglePeakLandscape(nu, 6.0, 1.0))
        assert low is not None and high is not None
        assert high > low

    def test_bad_bracket(self):
        with pytest.raises(ValidationError):
            find_threshold(SinglePeakLandscape(8), p_lo=0.2, p_hi=0.1)

    def test_general_landscape_path(self):
        """Non-Hamming landscapes go through the full fast solver: a
        single peak with a small symmetry-breaking perturbation keeps
        the sharp threshold but loses the class structure."""
        from repro.landscapes import TabulatedLandscape

        nu = 12
        base = SinglePeakLandscape(nu, 2.0, 1.0)
        rng = np.random.default_rng(3)
        vals = base.values() * (1.0 + 0.02 * rng.standard_normal(1 << nu))
        ls = TabulatedLandscape(np.abs(vals) + 0.5)
        assert not ls.is_error_class_landscape
        p_max = find_threshold(ls, tol_p=1e-3)
        clean = find_threshold(base, tol_p=1e-3)
        assert p_max is not None and clean is not None
        assert p_max == pytest.approx(clean, rel=0.25)

    def test_short_rugged_landscape_has_no_sharp_threshold(self):
        """ν = 8 random landscapes transition gradually (finite-size
        smearing): the sharpness criterion correctly reports none."""
        from repro.landscapes import RandomLandscape

        ls = RandomLandscape(8, c=5.0, sigma=1.0, seed=2)
        assert find_threshold(ls, p_hi=0.45, tol_p=5e-3) is None


class TestMutagenesisMargin:
    def test_below_threshold_treatable(self):
        nu = 16
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        assessment = mutagenesis_margin(ls, 0.01)
        assert assessment.treatable
        assert assessment.margin > 0
        assert assessment.fold_increase > 1.0
        assert assessment.master_concentration > 0.1

    def test_above_threshold_negative_margin(self):
        nu = 16
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        assessment = mutagenesis_margin(ls, 0.2)
        assert assessment.treatable
        assert assessment.margin < 0, "already past the threshold"

    def test_smooth_landscape_not_treatable(self):
        assessment = mutagenesis_margin(LinearLandscape(12, 2.0, 1.0), 0.01)
        assert not assessment.treatable
        assert assessment.margin is None and assessment.fold_increase is None

    def test_paper_magnitudes(self):
        """Sec. 1.1: typical p_max ~ 0.01–0.1, natural rates close to it
        — margins should be small fractions of p itself."""
        nu = 20
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        assessment = mutagenesis_margin(ls, 0.03)
        assert 0.01 <= assessment.p_max <= 0.1
        assert assessment.fold_increase < 2.0

"""Run the doctest examples embedded in the public docstrings."""

import doctest

import pytest

import repro.landscapes.custom
import repro.mutation.alphabet
import repro.mutation.uniform
import repro.operators.fmmp
import repro.population.wright_fisher
import repro.util.timing

MODULES = [
    repro.landscapes.custom,
    repro.mutation.alphabet,
    repro.mutation.uniform,
    repro.operators.fmmp,
    repro.population.wright_fisher,
    repro.util.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0

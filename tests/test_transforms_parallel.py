"""Panel-parallel butterfly engine tests.

The load-bearing contract: :func:`parallel_butterfly_transform` is
**bit-identical** to the serial stage-fused kernel for every panel
count ``R`` and thread count ``T`` — the partitioned schedule reorders
*which participant* touches which rows, never the arithmetic each row
sees.  A Hypothesis sweep drives the property over ``ν ∈ [2, 10]``,
all three eigenproblem forms and ``R ∈ {1, 2, 4}``; deterministic
tests pin down engine error handling, reducer determinism and the
keyed-LRU scratch pool under thread pressure.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation, site_factor
from repro.operators import Fmmp
from repro.transforms import batched_butterfly_transform
from repro.transforms.parallel import (
    PanelEngine,
    PanelReducer,
    get_engine,
    max_panels,
    parallel_butterfly_transform,
    resolve_panels,
    resolve_threads,
    shutdown_engines,
)
from repro.util.scratch import ScratchPool

common = settings(max_examples=15, deadline=None)


@pytest.fixture(scope="module", autouse=True)
def _teardown_engines():
    yield
    shutdown_engines()


def build_mutation(kind, nu, p, seed):
    if kind == "uniform":
        return UniformMutation(nu, p)
    if kind == "persite":
        rng = np.random.default_rng(seed)
        return PerSiteMutation.from_error_rates(rng.uniform(0.0, 0.4, nu))
    rng = np.random.default_rng(seed)
    block = rng.uniform(0.1, 1.0, (4, 4))
    block /= block.sum(axis=0, keepdims=True)
    return GroupedMutation([block] + [site_factor(p) for _ in range(nu - 2)])


def form_scales(form, n, rng):
    """(pre, post) diagonal scalings matching the three Fmmp forms."""
    f = rng.uniform(0.5, 2.0, n)
    if form == "right":
        return f, None
    if form == "left":
        return None, f
    root = np.sqrt(f)
    return root, root


class TestBitIdentity:
    """Threaded == serial, to the last bit, for every (R, T)."""

    @common
    @given(
        st.integers(2, 10),
        st.floats(1e-4, 0.45),
        st.sampled_from(["uniform", "persite"]),
        st.sampled_from(["right", "symmetric", "left"]),
        st.sampled_from([1, 2, 4]),
        st.integers(0, 1_000),
    )
    def test_kernel_matches_serial_bitwise(self, nu, p, kind, form, panels, seed):
        mutation = build_mutation(kind, nu, p, seed)
        factors = mutation.factors_per_bit()
        rng = np.random.default_rng(seed)
        b = int(rng.integers(1, 4))
        block = np.ascontiguousarray(rng.standard_normal((1 << nu, b)))
        pre, post = form_scales(form, 1 << nu, rng)
        want = batched_butterfly_transform(
            block, factors, pre_scale=pre, post_scale=post
        )
        for threads in (1, 2):
            got = parallel_butterfly_transform(
                block,
                factors,
                pre_scale=pre,
                post_scale=post,
                panels=panels,
                engine=get_engine(threads),
            )
            assert np.array_equal(want, got), (
                f"bit mismatch at nu={nu} kind={kind} form={form} "
                f"R={panels} T={threads}"
            )

    @common
    @given(
        st.integers(2, 10),
        st.floats(1e-4, 0.45),
        st.sampled_from(["uniform", "persite", "grouped"]),
        st.sampled_from(["right", "symmetric", "left"]),
        st.sampled_from([1, 2, 4]),
        st.integers(0, 1_000),
    )
    def test_operator_matches_serial_bitwise(self, nu, p, kind, form, panels, seed):
        """Fmmp(threads=..., panels=R) == the panels=1 serial fused
        engine, bitwise, for every R — and ≤ 1e-12-close to the legacy
        scalar kernel.  Grouped models fall back to the serial path and
        satisfy the bitwise bar trivially."""
        mutation = build_mutation(kind, nu, p, seed)
        land = RandomLandscape(nu, c=4.0, sigma=1.0, seed=seed)
        rng = np.random.default_rng(seed + 1)
        v = rng.standard_normal(1 << nu)
        want = Fmmp(mutation, land, form=form, panels=1).matvec(v)
        got = Fmmp(mutation, land, form=form, threads=2, panels=panels).matvec(v)
        assert np.array_equal(want, got)
        legacy = Fmmp(mutation, land, form=form).matvec(v)
        np.testing.assert_allclose(got, legacy, rtol=1e-12, atol=1e-13)

    def test_eq10_variant_matches_serial_bitwise(self):
        nu = 7
        factors = UniformMutation(nu, 0.05).factors_per_bit()
        rng = np.random.default_rng(0)
        block = np.ascontiguousarray(rng.standard_normal((1 << nu, 3)))
        want = batched_butterfly_transform(block, factors, variant="eq10")
        got = parallel_butterfly_transform(
            block, factors, variant="eq10", panels=4, engine=get_engine(2)
        )
        assert np.array_equal(want, got)

    def test_repeated_threaded_runs_are_byte_identical(self):
        """Determinism: same input, same panels — same bytes every run,
        regardless of thread count."""
        nu = 9
        factors = PerSiteMutation.from_error_rates(
            np.random.default_rng(1).uniform(0.0, 0.3, nu)
        ).factors_per_bit()
        rng = np.random.default_rng(2)
        block = np.ascontiguousarray(rng.standard_normal((1 << nu, 2)))
        pre = rng.uniform(0.5, 2.0, 1 << nu)
        runs = [
            parallel_butterfly_transform(
                block, factors, pre_scale=pre, panels=4, engine=get_engine(t)
            )
            for t in (1, 2, 4, 2, 1)
        ]
        for other in runs[1:]:
            assert np.array_equal(runs[0], other)

    def test_out_and_scratch_buffers_reused(self):
        nu = 6
        factors = UniformMutation(nu, 0.03).factors_per_bit()
        rng = np.random.default_rng(3)
        block = np.ascontiguousarray(rng.standard_normal((1 << nu, 2)))
        out = np.empty_like(block)
        scratch = np.empty_like(block)
        got = parallel_butterfly_transform(
            block, factors, panels=2, engine=get_engine(2), out=out, scratch=scratch
        )
        assert got is out
        assert np.array_equal(got, batched_butterfly_transform(block, factors))

    def test_aliased_buffers_rejected(self):
        nu = 5
        factors = UniformMutation(nu, 0.03).factors_per_bit()
        block = np.zeros((1 << nu, 1))
        buf = np.empty_like(block)
        with pytest.raises(ValidationError, match="alias"):
            parallel_butterfly_transform(
                block, factors, panels=2, out=buf, scratch=buf
            )


class TestResolution:
    def test_resolve_panels_clamps_to_max(self):
        assert max_panels(2) == 1
        assert resolve_panels(4, 2, threads=4) == 1
        assert resolve_panels(None, 10, threads=3) == 4
        assert resolve_panels(None, 10, threads=1) == 1

    def test_resolve_panels_rejects_non_power_of_two(self):
        with pytest.raises(ValidationError, match="power of two"):
            resolve_panels(3, 8)

    def test_resolve_threads_validates(self):
        assert resolve_threads(2) == 2
        with pytest.raises(ValidationError):
            resolve_threads(0)
        with pytest.raises(ValidationError):
            resolve_threads(True)


class TestPanelEngine:
    def test_worker_exception_propagates_and_engine_survives(self):
        eng = PanelEngine(2)
        try:

            def boom(t):
                if t == 1:
                    raise RuntimeError("worker died on purpose")
                eng.barrier_wait()

            with pytest.raises(RuntimeError, match="on purpose"):
                eng.run(boom)

            # The engine must be reusable after an abort.
            hits = []
            lock = threading.Lock()

            def ok(t):
                with lock:
                    hits.append(t)
                eng.barrier_wait()

            eng.run(ok)
            assert sorted(hits) == [0, 1]
        finally:
            eng.close()

    def test_caller_exception_propagates(self):
        eng = PanelEngine(2)
        try:

            def boom(t):
                if t == 0:
                    raise ValueError("caller died")
                eng.barrier_wait()

            with pytest.raises(ValueError, match="caller died"):
                eng.run(boom)
        finally:
            eng.close()

    def test_closed_engine_rejects_jobs(self):
        eng = PanelEngine(2)
        eng.close()
        eng.close()  # idempotent
        with pytest.raises(ValidationError, match="closed"):
            eng.run(lambda t: None)

    def test_single_thread_engine_is_a_plain_call(self):
        eng = PanelEngine(1)
        seen = []
        eng.run(seen.append)
        assert seen == [0]

    def test_get_engine_caches_per_thread_count(self):
        a = get_engine(2)
        assert get_engine(2) is a
        assert get_engine(3) is not a


class TestPanelReducer:
    def test_reductions_match_numpy(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        red = PanelReducer(4)
        assert np.isclose(red.abs_sum(x), np.abs(x).sum())
        assert np.isclose(red.norm(x), np.linalg.norm(x))
        assert np.isclose(red.diff_norm(x, y), np.linalg.norm(x - y))
        assert np.isclose(red.dot(x, y), float(np.dot(x, y)))

    def test_2d_reduces_per_column(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((32, 3))
        red = PanelReducer(2)
        np.testing.assert_allclose(red.abs_sum(x), np.abs(x).sum(axis=0))
        np.testing.assert_allclose(red.norm(x), np.linalg.norm(x, axis=0))

    def test_engine_and_serial_fill_are_byte_identical(self):
        """Same panels ⇒ same partials ⇒ same combined bytes, whether
        the workers or the caller computed them."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal(1 << 12)
        y = rng.standard_normal(1 << 12)
        serial = PanelReducer(4)
        threaded = PanelReducer(4, engine=get_engine(2))
        for name in ("abs_sum", "sq_sum", "norm"):
            assert getattr(serial, name)(x) == getattr(threaded, name)(x)
        assert serial.diff_norm(x, y) == threaded.diff_norm(x, y)
        assert serial.dot(x, y) == threaded.dot(x, y)

    def test_indivisible_length_rejected(self):
        red = PanelReducer(4)
        with pytest.raises(ValidationError, match="panels"):
            red.abs_sum(np.zeros(6))

    def test_bad_panel_counts_rejected(self):
        with pytest.raises(ValidationError):
            PanelReducer(3)
        with pytest.raises(ValidationError):
            PanelReducer(0)


class TestScratchPoolLRU:
    def test_keys_are_shape_and_dtype(self):
        pool = ScratchPool()
        a = pool.acquire((8,))
        b = pool.acquire((8,), dtype=np.float32)
        pool.release(a, b)
        assert pool.idle((8,)) == 1
        assert pool.idle((8,), dtype=np.float32) == 1
        assert pool.idle() == 2

    def test_max_idle_bounds_each_key(self):
        pool = ScratchPool(max_idle=2)
        arrays = [pool.acquire((4, 2)) for _ in range(5)]
        pool.release(*arrays)
        assert pool.idle((4, 2)) == 2

    def test_max_keys_evicts_lru_key(self):
        pool = ScratchPool(max_keys=2)
        for shape in ((2,), (3,), (4,)):
            pool.release(pool.acquire(shape))
        assert pool.idle((2,)) == 0  # LRU key evicted wholesale
        assert pool.idle((3,)) == 1
        assert pool.idle((4,)) == 1
        assert len(pool.keys) == 2

    def test_clear_drops_everything(self):
        pool = ScratchPool()
        pool.release(pool.acquire((4,)))
        pool.clear()
        assert pool.idle() == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            ScratchPool(max_idle=0)
        with pytest.raises(ValidationError):
            ScratchPool(max_keys=0)

    def test_threaded_stress_no_sharing(self):
        """Hammer one pool from 4 threads; no buffer may ever be handed
        to two owners at once, and idle counts stay bounded."""
        pool = ScratchPool(max_idle=4, max_keys=4)
        errors = []
        live_ids = set()
        lock = threading.Lock()

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(200):
                    shape = (int(rng.integers(1, 4)) * 8,)
                    buf = pool.acquire(shape)
                    with lock:
                        assert id(buf) not in live_ids, "buffer double-issued"
                        live_ids.add(id(buf))
                    buf.fill(seed)
                    assert (buf == seed).all()
                    with lock:
                        live_ids.discard(id(buf))
                    pool.release(buf)
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.idle() <= 4 * 4

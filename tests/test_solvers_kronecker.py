"""Tests for the Kronecker-decoupled solver (Sec. 5.2)."""

import numpy as np
import pytest

from repro.bitops.popcount import distance_to_master
from repro.exceptions import IncompatibleStructureError, ValidationError
from repro.landscapes import KroneckerLandscape, TabulatedLandscape
from repro.model.concentrations import class_concentrations
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation, site_factor
from repro.solvers import KroneckerEigenvector, KroneckerSolver, dense_solve


def make_landscape(seed, dims):
    rng = np.random.default_rng(seed)
    return KroneckerLandscape([rng.random(d) + 0.5 for d in dims])


class TestAgainstFullSolver:
    @pytest.mark.parametrize("dims", [(2, 2), (4, 8), (2, 4, 2), (8, 8)])
    def test_uniform_mutation(self, dims):
        kl = make_landscape(sum(dims), dims)
        mut = UniformMutation(kl.nu, 0.03)
        res = KroneckerSolver(mut, kl).solve()
        full = dense_solve(mut, TabulatedLandscape(kl.values()))
        assert res.eigenvalue == pytest.approx(full.eigenvalue, rel=1e-11)
        np.testing.assert_allclose(
            res.eigenvector.materialize(), full.concentrations, atol=1e-11
        )

    def test_per_site_mutation(self):
        kl = make_landscape(9, (4, 4))
        rates = [0.01, 0.05, 0.02, 0.08]
        mut = PerSiteMutation.from_error_rates(rates)
        res = KroneckerSolver(mut, kl).solve()
        full = dense_solve(mut, TabulatedLandscape(kl.values()))
        np.testing.assert_allclose(
            res.eigenvector.materialize(), full.concentrations, atol=1e-11
        )

    def test_grouped_mutation_matching_groups(self):
        rng = np.random.default_rng(2)
        b1 = rng.random((4, 4))
        b1 /= b1.sum(axis=0, keepdims=True)
        b2 = rng.random((2, 2))
        b2 /= b2.sum(axis=0, keepdims=True)
        mut = GroupedMutation([b1, b2])
        kl = make_landscape(3, (4, 2))
        res = KroneckerSolver(mut, kl).solve()
        full = dense_solve(mut, TabulatedLandscape(kl.values()))
        np.testing.assert_allclose(
            res.eigenvector.materialize(), full.concentrations, atol=1e-10
        )

    def test_grouped_mutation_mismatched_groups_rejected(self):
        rng = np.random.default_rng(3)
        b = rng.random((4, 4))
        b /= b.sum(axis=0, keepdims=True)
        mut = GroupedMutation([b])  # groups (2,)
        kl = make_landscape(4, (2, 2))  # groups (1, 1)
        with pytest.raises(IncompatibleStructureError):
            KroneckerSolver(mut, kl)

    def test_requires_kronecker_landscape(self):
        with pytest.raises(ValidationError):
            KroneckerSolver(UniformMutation(2, 0.1), TabulatedLandscape([1.0, 2.0, 3.0, 4.0]))


class TestImplicitEigenvector:
    @pytest.fixture
    def solved(self):
        kl = make_landscape(7, (4, 8, 2))
        mut = UniformMutation(kl.nu, 0.02)
        res = KroneckerSolver(mut, kl).solve()
        full = dense_solve(mut, TabulatedLandscape(kl.values()))
        return kl, res, full

    def test_value_at(self, solved):
        kl, res, full = solved
        for i in (0, 1, 17, 63):
            assert res.eigenvector.value_at(i) == pytest.approx(
                full.concentrations[i], rel=1e-10
            )

    def test_class_concentrations_dp(self, solved):
        kl, res, full = solved
        np.testing.assert_allclose(
            res.eigenvector.class_concentrations(),
            class_concentrations(full.concentrations, kl.nu),
            atol=1e-12,
        )

    def test_class_extrema_dp(self, solved):
        kl, res, full = solved
        lo, hi = res.eigenvector.class_extrema()
        labels = distance_to_master(kl.nu)
        for k in range(kl.nu + 1):
            cls = full.concentrations[labels == k]
            assert lo[k] == pytest.approx(cls.min(), rel=1e-10)
            assert hi[k] == pytest.approx(cls.max(), rel=1e-10)

    def test_materialize_guard(self):
        """A ν = 100 eigenvector can be queried but never materialized."""
        factors = [np.full(1 << 10, 2.0 ** (-10))] * 10
        vec = KroneckerEigenvector(factors)
        assert vec.nu == 100
        assert vec.value_at(0) > 0
        with pytest.raises(ValidationError):
            vec.materialize()

    def test_normalization(self, solved):
        _, res, _ = solved
        np.testing.assert_allclose(res.eigenvector.class_concentrations().sum(), 1.0)


class TestDecouplingScale:
    def test_nu_24_as_three_groups(self):
        """The paper's scaling argument: one 2²⁴ problem becomes three
        2⁸ problems.  Solve and verify internal consistency."""
        rng = np.random.default_rng(0)
        diags = [rng.random(1 << 8) + 0.5 for _ in range(3)]
        kl = KroneckerLandscape(diags)
        assert kl.nu == 24
        mut = UniformMutation(24, 0.01)
        res = KroneckerSolver(mut, kl).solve()
        assert res.converged
        # λ0 of W = product of subproblem λ0s; each within (fmin, fmax).
        for sub, d in zip(res.sub_results, diags):
            assert d.min() <= sub.eigenvalue <= d.max() + 1e-9
        gamma = res.eigenvector.class_concentrations()
        assert gamma.shape == (25,)
        np.testing.assert_allclose(gamma.sum(), 1.0, atol=1e-9)

    def test_sub_results_exposed(self):
        kl = make_landscape(11, (4, 4))
        res = KroneckerSolver(UniformMutation(4, 0.05), kl).solve()
        assert len(res.sub_results) == 2
        assert res.converged


class TestKroneckerEigenvectorValidation:
    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            KroneckerEigenvector([np.array([0.5, -0.1])])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValidationError):
            KroneckerEigenvector([np.zeros(2)])

    def test_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            KroneckerEigenvector([np.ones(3)])

    def test_index_range(self):
        vec = KroneckerEigenvector([np.ones(4)])
        with pytest.raises(ValidationError):
            vec.value_at(4)

"""Seeded determinism: identical seeds must give byte-identical results.

Differential testing is only trustworthy if reruns are exactly
reproducible — otherwise a flaky bit-flip is indistinguishable from a
broken backend.  Two runs of every iterative solver route on the same
seeded problem must produce *byte-identical* eigenvector/concentration
arrays (not merely allclose).
"""

import numpy as np
import pytest

from repro.model import QuasispeciesModel
from repro.util.rng import as_generator
from repro.verify import ProblemSpec, default_registry, run_product_oracles

ROUTES = [
    ("power", dict(method="power", operator="fmmp")),
    ("power-shifted", dict(method="power", operator="fmmp", shift=True)),
    ("power-xmvp", dict(method="power", operator="xmvp")),
    ("lanczos", dict(method="lanczos")),
    ("arnoldi", dict(method="arnoldi")),
]


def _model(seed: int) -> QuasispeciesModel:
    spec = ProblemSpec(nu=5, p=0.04, landscape="random", seed=seed)
    return QuasispeciesModel(spec.build_landscape(), spec.build_mutation())


@pytest.mark.parametrize("label,kwargs", ROUTES, ids=[r[0] for r in ROUTES])
class TestIterativeSolverDeterminism:
    def test_two_runs_byte_identical(self, label, kwargs):
        a = _model(seed=11).solve(tol=1e-11, **kwargs)
        b = _model(seed=11).solve(tol=1e-11, **kwargs)
        assert a.eigenvalue == b.eigenvalue
        assert a.iterations == b.iterations
        assert a.concentrations.tobytes() == b.concentrations.tobytes()
        assert a.eigenvector.tobytes() == b.eigenvector.tobytes()

    def test_different_seed_different_problem(self, label, kwargs):
        a = _model(seed=11).solve(tol=1e-11, **kwargs)
        b = _model(seed=12).solve(tol=1e-11, **kwargs)
        assert a.concentrations.tobytes() != b.concentrations.tobytes()


class TestSpecBuilderDeterminism:
    def test_landscape_and_mutation_rebuild_identically(self):
        for mutation in ("uniform", "persite", "grouped"):
            spec = ProblemSpec(nu=5, p=0.07, landscape="random", mutation=mutation, seed=3)
            f1 = spec.build_landscape().values()
            f2 = spec.build_landscape().values()
            assert f1.tobytes() == f2.tobytes()
            v = as_generator(0).standard_normal(spec.n)
            q1 = spec.build_mutation().apply(v.copy())
            q2 = spec.build_mutation().apply(v.copy())
            assert q1.tobytes() == q2.tobytes()


class TestHarnessDeterminism:
    def test_product_oracle_errors_reproduce_exactly(self):
        spec = ProblemSpec(nu=4, p=0.08, landscape="random", mutation="persite", seed=5)
        a = run_product_oracles(spec, as_generator(42))
        b = run_product_oracles(spec, as_generator(42))
        assert [(c.name, c.error) for c in a] == [(c.name, c.error) for c in b]

    def test_full_spec_report_reproduces_exactly(self):
        spec = ProblemSpec(nu=4, p=0.03, landscape="kronecker", mutation="grouped", seed=2)
        registry = default_registry()
        a = registry.run_spec(spec, rng=9)
        b = registry.run_spec(spec, rng=9)
        assert a.to_dict() == b.to_dict()

"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.util.validation import (
    check_chain_length,
    check_error_rate,
    check_positive,
    check_power_of_two,
    check_probability_vector,
    check_vector,
)


class TestCheckChainLength:
    def test_accepts_valid(self):
        assert check_chain_length(1) == 1
        assert check_chain_length(25) == 25

    def test_accepts_numpy_integer(self):
        assert check_chain_length(np.int64(7)) == 7

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValidationError):
            check_chain_length(0)
        with pytest.raises(ValidationError):
            check_chain_length(-3)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_chain_length(True)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_chain_length(3.0)

    def test_rejects_above_limit(self):
        with pytest.raises(ValidationError, match="safety limit"):
            check_chain_length(40)

    def test_custom_limit(self):
        assert check_chain_length(100, max_nu=128) == 100


class TestCheckErrorRate:
    def test_accepts_valid_range(self):
        assert check_error_rate(0.01) == 0.01
        assert check_error_rate(0.5) == 0.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValidationError):
            check_error_rate(0.0)

    def test_allow_zero(self):
        assert check_error_rate(0.0, allow_zero=True) == 0.0

    def test_rejects_above_half(self):
        with pytest.raises(ValidationError):
            check_error_rate(0.500001)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_error_rate(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_error_rate(float("nan"))


class TestCheckPositive:
    def test_valid(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid(self, bad):
        with pytest.raises(ValidationError):
            check_positive(bad, "x")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 1024, 1 << 20])
    def test_valid(self, n):
        assert check_power_of_two(n) == n

    @pytest.mark.parametrize("n", [0, 3, 6, -4, 1023])
    def test_invalid(self, n):
        with pytest.raises(ValidationError):
            check_power_of_two(n)

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_power_of_two(4.0)


class TestCheckVector:
    def test_passthrough_float64(self):
        v = np.arange(4, dtype=np.float64)
        out = check_vector(v, 4)
        np.testing.assert_array_equal(out, v)

    def test_converts_ints(self):
        out = check_vector(np.array([1, 2, 3, 4]), 4)
        assert out.dtype == np.float64

    def test_rejects_wrong_length(self):
        with pytest.raises(ValidationError):
            check_vector(np.zeros(3), 4)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_vector(np.zeros((2, 2)), 4)

    def test_rejects_complex(self):
        with pytest.raises(ValidationError):
            check_vector(np.zeros(4, dtype=complex), 4)


class TestCheckProbabilityVector:
    def test_valid(self):
        v = np.full(4, 0.25)
        out = check_probability_vector(v, 4)
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.array([0.5, 0.6, -0.1, 0.0]), 4)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError):
            check_probability_vector(np.full(4, 0.3), 4)

"""Threaded roofline model tests (:mod:`repro.perf.parallel`).

The model gates the PR's acceptance bar — ``modeled_thread_speedup(18,
·, 4) >= 1.8`` — so these tests pin both its *physics* (no modeled
superlinearity, T=1 is exactly the serial roofline, more threads than
panels buy nothing) and its *plumbing* (byte counts equal the serial
fused model's, panel resolution matches the kernel's clamp rules).
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.perf import (
    auto_panels,
    batched_fmmp_costs,
    modeled_thread_crossover,
    modeled_thread_speedup,
    parallel_fmmp_costs,
)
from repro.perf.parallel import DEFAULT_HOST, HostModel


class TestCosts:
    def test_bytes_match_serial_fused_model(self):
        for nu, b in ((10, 1), (14, 4), (18, 16)):
            par = parallel_fmmp_costs(nu, b, threads=4)
            assert par.bytes_moved == batched_fmmp_costs(nu, b).bytes_moved

    def test_single_thread_is_exactly_the_serial_roofline(self):
        par = parallel_fmmp_costs(16, 1, threads=1, panels=1)
        bw = DEFAULT_HOST.single_core_gbs * 1e9
        assert par.panels == 1
        assert par.modeled_time_s == pytest.approx(par.bytes_moved / bw)

    def test_panels_clamped_at_tiny_nu(self):
        par = parallel_fmmp_costs(2, 1, threads=8)
        assert par.panels == 1

    def test_critical_bytes_account_for_idle_threads(self):
        """T > R: extra threads idle, the busiest still moves R/R·⌈R/T⌉
        of the panels — time must not keep shrinking."""
        t4 = parallel_fmmp_costs(18, 1, threads=4, panels=4).modeled_time_s
        t8 = parallel_fmmp_costs(18, 1, threads=8, panels=4).modeled_time_s
        assert t8 >= t4 * 0.99  # no free lunch past T == R

    def test_barriers_only_charged_when_threaded(self):
        serial = parallel_fmmp_costs(16, 1, threads=1, panels=4)
        threaded = parallel_fmmp_costs(16, 1, threads=2, panels=4)
        assert threaded.sweeps == serial.sweeps
        assert threaded.modeled_time_s < serial.modeled_time_s


class TestSpeedup:
    def test_unit_at_one_thread(self):
        assert modeled_thread_speedup(18, 1, 1) == pytest.approx(1.0)

    def test_gate_at_four_threads(self):
        """The PR's acceptance bar, as modeled for the paper sizes."""
        for nu in (18, 19, 20):
            assert modeled_thread_speedup(nu, 1, 4) >= 1.8
        assert modeled_thread_speedup(18, 16, 4) >= 1.8

    def test_never_superlinear(self):
        for t in (2, 4, 8, 16):
            assert modeled_thread_speedup(18, 1, t) <= t

    def test_monotone_in_threads_at_large_nu(self):
        s2 = modeled_thread_speedup(18, 1, 2)
        s4 = modeled_thread_speedup(18, 1, 4)
        assert s4 > s2 > 1.0

    def test_small_nu_is_barrier_dominated(self):
        """At ν = 2 only R = 1 is admissible — threading is modeled as
        a strict loss (barrier cost, zero parallel bytes)."""
        assert modeled_thread_speedup(2, 1, 4) <= 1.0


class TestAutoPanels:
    def test_serial_for_small_transforms(self):
        for nu in (2, 4, 6, 8):
            assert auto_panels(nu, 1, threads=4) == 1

    def test_parallel_for_paper_sizes(self):
        assert auto_panels(18, 1, threads=4) > 1
        assert auto_panels(20, 16, threads=4) > 1

    def test_one_thread_never_panels(self):
        assert auto_panels(18, 1, threads=1) == 1

    def test_respects_max_panels_cap(self):
        from repro.transforms.parallel import max_panels

        assert auto_panels(18, 1, threads=64) <= max_panels(18)


class TestCrossover:
    def test_crossover_at_paper_size(self):
        t = modeled_thread_crossover(18, 1)
        assert t is not None
        assert modeled_thread_speedup(18, 1, t) >= 1.8
        assert t > 1

    def test_no_crossover_for_tiny_nu(self):
        assert modeled_thread_crossover(4, 1) is None

    def test_bad_target_rejected(self):
        with pytest.raises(ValidationError):
            modeled_thread_crossover(18, 1, target_speedup=0.0)


class TestHostModel:
    def test_saturation_is_concave_and_bounded(self):
        host = DEFAULT_HOST
        assert host.saturation(1) == pytest.approx(1.0)
        prev = 1.0
        for t in (2, 4, 8, 16):
            sat = host.saturation(t)
            assert prev < sat < t  # grows, but sub-linearly
            prev = sat

    def test_custom_host_shifts_the_model(self):
        fast_bus = HostModel(
            single_core_gbs=DEFAULT_HOST.single_core_gbs,
            contention=0.0,
            barrier_s=DEFAULT_HOST.barrier_s,
        )
        assert modeled_thread_speedup(18, 1, 4, host=fast_bus) > modeled_thread_speedup(
            18, 1, 4
        )

"""Batched multi-vector operator tests.

The load-bearing property: for every mutation model, eigenproblem form
and stage order, :meth:`BatchedFmmp.matmat` on an ``(N, B)`` block is
bit-for-bit-tolerance equal to stacking the scalar :meth:`Fmmp.matvec`
column by column.  A Hypothesis sweep drives the property over
``ν ∈ [2, 10]``; deterministic tests cover the per-column landscape
mode, column subsetting, and the thread-safety of the scalar operator's
scratch pool.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation, site_factor
from repro.operators import BatchedFmmp, Fmmp
from repro.util.scratch import ScratchPool

common = settings(max_examples=12, deadline=None)


def build_mutation(kind, nu, p, seed):
    if kind == "uniform":
        return UniformMutation(nu, p)
    if kind == "persite":
        rng = np.random.default_rng(seed)
        return PerSiteMutation.from_error_rates(rng.uniform(0.0, 0.4, nu))
    # grouped: one 4-dim stochastic block plus 2x2 site factors
    rng = np.random.default_rng(seed)
    block = rng.uniform(0.1, 1.0, (4, 4))
    block /= block.sum(axis=0, keepdims=True)
    blocks = [block] + [site_factor(p) for _ in range(nu - 2)]
    return GroupedMutation(blocks)


class TestBatchedMatchesScalar:
    """Hypothesis sweep: matmat == column-stacked matvec, all models/forms."""

    @common
    @given(
        st.integers(2, 10),
        st.floats(1e-4, 0.45),
        st.sampled_from(["uniform", "persite", "grouped"]),
        st.sampled_from(["right", "symmetric", "left"]),
        st.integers(0, 1_000),
    )
    def test_matmat_equals_stacked_matvec(self, nu, p, kind, form, seed):
        mutation = build_mutation(kind, nu, p, seed)
        rng = np.random.default_rng(seed + 1)
        b = int(rng.integers(1, 5))
        lands = [
            RandomLandscape(nu, c=4.0, sigma=1.0, seed=seed + j) for j in range(b)
        ]
        batched = BatchedFmmp(mutation, lands, form=form)
        block = rng.standard_normal((1 << nu, b))
        got = batched.matmat(block)
        want = np.stack(
            [
                Fmmp(mutation, lands[j], form=form).matvec(block[:, j])
                for j in range(b)
            ],
            axis=1,
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-13)

    @common
    @given(st.integers(2, 8), st.floats(1e-4, 0.45), st.sampled_from(["eq9", "eq10"]))
    def test_variants_match_scalar(self, nu, p, variant):
        mutation = UniformMutation(nu, p)
        land = SinglePeakLandscape(nu, f_peak=3.0)
        batched = BatchedFmmp(mutation, land, variant=variant)
        rng = np.random.default_rng(nu)
        block = rng.standard_normal((1 << nu, 3))
        got = batched.matmat(block)
        scalar = Fmmp(mutation, land, variant=variant)
        for j in range(3):
            np.testing.assert_allclose(
                got[:, j], scalar.matvec(block[:, j]), rtol=1e-12, atol=1e-13
            )


class TestPerColumnMode:
    def setup_method(self):
        self.nu = 5
        self.mutation = UniformMutation(self.nu, 0.03)
        self.lands = [
            SinglePeakLandscape(self.nu, f_peak=2.0),
            RandomLandscape(self.nu, c=4.0, sigma=1.0, seed=0),
            RandomLandscape(self.nu, c=4.0, sigma=1.0, seed=1),
        ]
        self.op = BatchedFmmp(self.mutation, self.lands, form="right")

    def test_batch_and_flags(self):
        assert self.op.batch == 3
        assert self.op.per_column
        shared = BatchedFmmp(self.mutation, self.lands[0])
        assert shared.batch == 1 and not shared.per_column

    def test_each_column_uses_its_own_landscape(self):
        rng = np.random.default_rng(2)
        block = rng.standard_normal((self.op.n, 3))
        got = self.op.matmat(block)
        for j, land in enumerate(self.lands):
            want = Fmmp(self.mutation, land).matvec(block[:, j])
            np.testing.assert_allclose(got[:, j], want, rtol=1e-12, atol=1e-13)

    def test_column_subsetting_after_deflation(self):
        rng = np.random.default_rng(3)
        block = rng.standard_normal((self.op.n, 2))
        got = self.op.matmat(block, columns=[2, 0])
        np.testing.assert_allclose(
            got[:, 0], Fmmp(self.mutation, self.lands[2]).matvec(block[:, 0])
        )
        np.testing.assert_allclose(
            got[:, 1], Fmmp(self.mutation, self.lands[0]).matvec(block[:, 1])
        )

    def test_matvec_selects_a_column(self):
        rng = np.random.default_rng(4)
        v = rng.standard_normal(self.op.n)
        np.testing.assert_allclose(
            self.op.matvec(v, column=1),
            Fmmp(self.mutation, self.lands[1]).matvec(v),
            rtol=1e-12,
        )

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="columns"):
            self.op.matmat(np.zeros((self.op.n, 2)))

    def test_columns_kwarg_rejected_in_shared_mode(self):
        shared = BatchedFmmp(self.mutation, self.lands[0])
        with pytest.raises(ValidationError, match="per-column"):
            shared.matmat(np.zeros((shared.n, 1)), columns=[0])

    def test_landscape_nu_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="nu"):
            BatchedFmmp(self.mutation, [SinglePeakLandscape(self.nu + 1)])

    def test_empty_landscape_list_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            BatchedFmmp(self.mutation, [])

    def test_buffer_reuse_matches_fresh_allocation(self):
        rng = np.random.default_rng(5)
        block = rng.standard_normal((self.op.n, 3))
        out = np.empty_like(block)
        scratch = np.empty_like(block)
        got = self.op.matmat(block, out=out, scratch=scratch)
        assert got is out
        np.testing.assert_array_equal(got, self.op.matmat(block))


class TestDefaultMatmat:
    """The base-class matmat loops matvec — every operator gains it."""

    def test_base_matmat_loops_matvec(self):
        mutation = UniformMutation(4, 0.05)
        land = SinglePeakLandscape(4)
        op = Fmmp(mutation, land)
        rng = np.random.default_rng(6)
        block = rng.standard_normal((16, 3))
        got = op.matmat(block)
        want = np.stack([op.matvec(block[:, j]) for j in range(3)], axis=1)
        np.testing.assert_allclose(got, want, rtol=1e-13)

    def test_base_matmat_validates_shape(self):
        op = Fmmp(UniformMutation(3, 0.1), SinglePeakLandscape(3))
        with pytest.raises(ValidationError):
            op.matmat(np.zeros(8))
        with pytest.raises(ValidationError):
            op.matmat(np.zeros((7, 2)))

    def test_base_matmat_empty_block(self):
        op = Fmmp(UniformMutation(3, 0.1), SinglePeakLandscape(3))
        out = op.matmat(np.zeros((8, 0)))
        assert out.shape == (8, 0)


class TestScratchPoolThreadSafety:
    """Regression: Fmmp._scratch used to be a shared pair of buffers, so
    concurrent matvec calls on one operator corrupted each other."""

    def test_pool_acquire_release_cycle(self):
        pool = ScratchPool()
        a = pool.acquire((8,))
        b = pool.acquire((8,))
        assert a.shape == (8,) and b.shape == (8,)
        assert pool.idle((8,)) == 0
        pool.release(a, b)
        assert pool.idle((8,)) == 2
        assert pool.acquire((8,)) is b  # LIFO reuse, no realloc
        assert pool.acquire((8,)) is a

    def test_pool_bounds_idle_buffers(self):
        pool = ScratchPool(max_idle=2)
        arrays = [pool.acquire((4,)) for _ in range(5)]
        pool.release(*arrays)
        assert pool.idle((4,)) == 2

    def test_concurrent_matvec_is_correct(self):
        nu = 9
        mutation = UniformMutation(nu, 0.02)
        land = RandomLandscape(nu, c=4.0, sigma=1.0, seed=0)
        op = Fmmp(mutation, land)
        rng = np.random.default_rng(7)
        vecs = [rng.standard_normal(1 << nu) for _ in range(8)]
        expected = [op.matvec(v) for v in vecs]

        results = [[None] * len(vecs) for _ in range(4)]
        errors = []

        def worker(tid):
            try:
                for rep in range(5):
                    for i, v in enumerate(vecs):
                        results[tid][i] = op.matvec(v)
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for tid in range(4):
            for i in range(len(vecs)):
                np.testing.assert_allclose(
                    results[tid][i], expected[i], rtol=1e-12, atol=1e-14
                )

"""Fault-injection tests for the worker pool (satellite 3).

Poisoned workers recover through retries; persistently failing routes
degrade gracefully down the fallback chain with the failure named in the
telemetry; timeouts are enforced and reported.
"""

import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.service import (
    MAX_DENSE_NU,
    SolveJob,
    WorkerPool,
    execute_job,
    fallback_routes,
)
from repro.solvers.reduced import ReducedSolver


class TestFallbackRoutes:
    def test_reduced_jobs_have_no_fallback(self):
        routes = fallback_routes(SolveJob(nu=6, p=0.01))
        assert len(routes) == 1 and routes[0].resolved_method() == "reduced"

    def test_iterative_chain_ends_in_dense_for_small_nu(self):
        job = SolveJob(nu=6, p=0.02, landscape="random", method="lanczos")
        methods = [r.method for r in fallback_routes(job)]
        assert methods[0] == "lanczos"
        assert "power" in methods
        assert methods[-1] == "dense"

    def test_shifted_power_inserted_for_uniform(self):
        job = SolveJob(nu=6, p=0.02, landscape="random", method="arnoldi")
        routes = fallback_routes(job)
        shifted = [r for r in routes if r.method == "power" and r.shift]
        plain = [r for r in routes if r.method == "power" and not r.shift]
        assert shifted and plain

    def test_no_dense_for_large_nu(self):
        job = SolveJob(nu=MAX_DENSE_NU + 2, p=0.02, landscape="random", method="power")
        assert all(r.method != "dense" for r in fallback_routes(job))

    def test_no_shifted_insert_for_nonuniform(self):
        job = SolveJob(nu=5, p=0.02, landscape="random", mutation="persite", method="lanczos")
        assert all(not r.shift for r in fallback_routes(job))


class TestExecuteJob:
    @pytest.mark.service_smoke
    def test_reduced_matches_reduced_solver_bitwise(self):
        values = (2.0, 1.3, 1.1, 1.0, 1.0, 1.0, 1.0)
        job = SolveJob(nu=6, p=0.03, landscape="hamming", class_values=values)
        direct = ReducedSolver(6, 0.03, np.asarray(values)).solve()
        via_pool = execute_job(job)
        assert via_pool.eigenvalue == direct.eigenvalue
        assert via_pool.concentrations.tobytes() == direct.concentrations.tobytes()

    def test_full_route_contracts_to_classes(self):
        job = SolveJob(nu=5, p=0.02, landscape="random", method="power", tol=1e-11)
        result = execute_job(job)
        assert result.concentrations.shape == (6,)
        assert result.converged
        assert float(np.sum(result.concentrations)) == pytest.approx(1.0, abs=1e-10)

    def test_full_and_reduced_agree_on_single_peak(self):
        reduced = execute_job(SolveJob(nu=5, p=0.02))
        dense = execute_job(SolveJob(nu=5, p=0.02, method="dense"))
        np.testing.assert_allclose(dense.concentrations, reduced.concentrations, atol=1e-10)

    def test_shift_invert_route(self):
        job = SolveJob(nu=5, p=0.02, method="shift-invert", tol=1e-10)
        reduced = execute_job(SolveJob(nu=5, p=0.02))
        result = execute_job(job)
        assert result.eigenvalue == pytest.approx(reduced.eigenvalue, abs=1e-8)


class _Poisoned:
    """Fails the first ``n_failures`` calls, then delegates to the real worker."""

    def __init__(self, n_failures: int):
        self.n_failures = n_failures
        self.calls = 0

    def __call__(self, job):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise RuntimeError(f"poisoned call #{self.calls}")
        return execute_job(job)


class TestFaultTolerance:
    @pytest.mark.service_smoke
    def test_poisoned_worker_recovers_via_retry(self):
        poison = _Poisoned(2)
        pool = WorkerPool(1, kind="serial", retries=2, backoff=0.001, solve_fn=poison)
        result, tele = pool.run([SolveJob(nu=5, p=0.02)])[0]
        assert result is not None and tele.status == "solved"
        assert tele.attempts == 3 and len(tele.failures) == 2
        assert not tele.fallback_used  # recovered on the requested route
        assert "poisoned call #1" in tele.failures[0]

    def test_persistent_route_failure_falls_back(self):
        def broken_then_real(job):
            if job.method == "lanczos":
                raise RuntimeError("lanczos backend down")
            return execute_job(job)

        job = SolveJob(nu=5, p=0.02, landscape="random", method="lanczos", tol=1e-10)
        pool = WorkerPool(1, kind="serial", retries=1, backoff=0.001, solve_fn=broken_then_real)
        result, tele = pool.run([job])[0]
        assert result is not None and tele.status == "solved"
        assert tele.fallback_used
        assert tele.route != "lanczos"
        # the original failure is named (once per attempt on that route)
        assert sum("lanczos backend down" in f for f in tele.failures) == 2

    def test_validation_error_not_retried(self):
        calls = {"n": 0}

        def structural(job):
            calls["n"] += 1
            raise ValidationError("structurally impossible")

        pool = WorkerPool(1, kind="serial", retries=3, backoff=0.001, solve_fn=structural)
        result, tele = pool.run([SolveJob(nu=5, p=0.02)])[0]  # reduced: single route
        assert result is None and tele.status == "failed"
        assert calls["n"] == 1  # no retries for structural errors

    def test_every_route_fails_yields_none_with_names(self):
        def always_broken(job):
            raise RuntimeError("worker on fire")

        job = SolveJob(nu=4, p=0.02, landscape="random", method="power", tol=1e-10)
        pool = WorkerPool(1, kind="serial", retries=0, backoff=0.001, solve_fn=always_broken)
        result, tele = pool.run([job])[0]
        assert result is None and tele.status == "failed"
        assert len(tele.failures) == len(fallback_routes(job))
        assert all("worker on fire" in f for f in tele.failures)

    def test_thread_timeout_enforced(self):
        def sleepy(job):
            time.sleep(5.0)

        pool = WorkerPool(
            2, kind="thread", timeout=0.05, retries=0, backoff=0.001, solve_fn=sleepy
        )
        outcomes = pool.run([SolveJob(nu=4, p=0.01), SolveJob(nu=4, p=0.02)])
        for result, tele in outcomes:
            assert result is None and tele.status == "failed"
            assert any("TimeoutError" in f for f in tele.failures)

    def test_thread_pool_matches_serial(self):
        jobs = [SolveJob(nu=6, p=p) for p in (0.01, 0.02, 0.03)]
        serial = WorkerPool(1, kind="serial").run(jobs)
        threaded = WorkerPool(3, kind="thread").run(jobs)
        for (rs, _), (rt, _) in zip(serial, threaded):
            assert rs.concentrations.tobytes() == rt.concentrations.tobytes()

    def test_telemetry_round_trip(self):
        pool = WorkerPool(1, kind="serial")
        _, tele = pool.run([SolveJob(nu=5, p=0.02)])[0]
        from repro.service import JobTelemetry

        again = JobTelemetry.from_dict(tele.to_dict())
        assert again.key == tele.key and again.status == "solved"

    def test_pool_kind_validated(self):
        with pytest.raises(ValidationError):
            WorkerPool(kind="fiber")
        with pytest.raises(ValidationError):
            WorkerPool(0)
        with pytest.raises(ValidationError):
            WorkerPool(retries=-1)
        with pytest.raises(ValidationError):
            WorkerPool(timeout=0.0)


class TestProcessPool:
    def test_process_pool_solves_picklable_jobs(self):
        values = tuple([2.0] + [1.0] * 8)
        jobs = [
            SolveJob(nu=8, p=p, landscape="hamming", class_values=values, method="reduced")
            for p in (0.01, 0.02)
        ]
        outcomes = WorkerPool(2, kind="process", retries=0).run(jobs)
        serial = WorkerPool(1, kind="serial").run(jobs)
        for (rp, tp), (rs, _) in zip(outcomes, serial):
            assert tp.status == "solved"
            assert rp.concentrations.tobytes() == rs.concentrations.tobytes()

"""Tests for the content-addressed result cache (satellite 3).

Covers the LRU eviction order, tolerance-aware hits, and the on-disk
round-trip through :mod:`repro.io`.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.io import load_job_result, save_job_result
from repro.service import JobResult, ResultCache, SolveJob


def _job(p: float, tol: float = 1e-12) -> SolveJob:
    return SolveJob(nu=4, p=p, tol=tol)


def _result(eigenvalue: float, tol: float = 1e-12) -> JobResult:
    return JobResult(
        eigenvalue=eigenvalue,
        concentrations=np.linspace(0.4, 0.0, 5),
        method="reduced",
        iterations=1,
        residual=1e-15,
        converged=True,
        tol=tol,
    )


class TestLRU:
    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            ResultCache(capacity=0)

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        a, b, c = _job(0.01), _job(0.02), _job(0.03)
        cache.store(a, _result(1.0))
        cache.store(b, _result(2.0))
        cache.lookup(a)  # touch a → b is now least recent
        cache.store(c, _result(3.0))  # evicts b
        assert cache.lookup(a)[1] == "hit-memory"
        assert cache.lookup(b)[1] == "miss"
        assert cache.lookup(c)[1] == "hit-memory"
        assert cache.stats.evictions == 1

    def test_keys_ordered_lru_to_mru(self):
        cache = ResultCache(capacity=3)
        a, b = _job(0.01), _job(0.02)
        cache.store(a, _result(1.0))
        cache.store(b, _result(2.0))
        cache.lookup(a)
        assert cache.keys() == [b.cache_key(), a.cache_key()]

    def test_clear_keeps_stats(self):
        cache = ResultCache(capacity=2)
        cache.store(_job(0.01), _result(1.0))
        cache.clear()
        assert len(cache) == 0 and cache.stats.stores == 1


class TestToleranceAwareness:
    def test_tighter_cached_serves_looser_request(self):
        cache = ResultCache()
        cache.store(_job(0.01, tol=1e-12), _result(1.0, tol=1e-12))
        hit, status = cache.lookup(_job(0.01, tol=1e-6))
        assert status == "hit-memory" and hit.tol == 1e-12

    def test_looser_cached_misses_tighter_request(self):
        cache = ResultCache()
        cache.store(_job(0.01, tol=1e-6), _result(1.0, tol=1e-6))
        hit, status = cache.lookup(_job(0.01, tol=1e-12))
        assert hit is None and status == "miss"

    def test_tighter_store_replaces_looser(self):
        cache = ResultCache()
        cache.store(_job(0.01, tol=1e-6), _result(1.0, tol=1e-6))
        cache.store(_job(0.01, tol=1e-12), _result(2.0, tol=1e-12))
        hit, _ = cache.lookup(_job(0.01, tol=1e-12))
        assert hit.eigenvalue == 2.0
        assert cache.stats.replacements == 1

    def test_looser_store_never_overwrites_tighter(self):
        cache = ResultCache()
        cache.store(_job(0.01, tol=1e-12), _result(1.0, tol=1e-12))
        cache.store(_job(0.01, tol=1e-6), _result(9.0, tol=1e-6))
        hit, _ = cache.lookup(_job(0.01, tol=1e-12))
        assert hit.eigenvalue == 1.0

    def test_contains_respects_tol(self):
        cache = ResultCache()
        cache.store(_job(0.01, tol=1e-8), _result(1.0, tol=1e-8))
        assert _job(0.01, tol=1e-6) in cache
        assert _job(0.01, tol=1e-10) not in cache


class TestDiskTier:
    def test_round_trip_via_repro_io(self, tmp_path):
        result = _result(1.7)
        path = str(tmp_path / "result.npz")
        save_job_result(path, result)
        loaded = load_job_result(path)
        assert loaded.eigenvalue == result.eigenvalue
        np.testing.assert_array_equal(loaded.concentrations, result.concentrations)
        assert loaded.method == result.method and loaded.tol == result.tol

    def test_warm_restart_across_instances(self, tmp_path):
        disk = str(tmp_path / "cache")
        first = ResultCache(capacity=8, disk_dir=disk)
        first.store(_job(0.01), _result(1.0))
        # a brand-new cache (fresh process in real life) hits the disk tier
        second = ResultCache(capacity=8, disk_dir=disk)
        hit, status = second.lookup(_job(0.01))
        assert status == "hit-disk" and hit.eigenvalue == 1.0
        # the disk hit was promoted to memory
        assert second.lookup(_job(0.01))[1] == "hit-memory"
        assert second.stats.disk_hits == 1 and second.stats.memory_hits == 1

    def test_eviction_does_not_lose_disk_entry(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ResultCache(capacity=1, disk_dir=disk)
        a, b = _job(0.01), _job(0.02)
        cache.store(a, _result(1.0))
        cache.store(b, _result(2.0))  # evicts a from memory
        hit, status = cache.lookup(a)
        assert status == "hit-disk" and hit.eigenvalue == 1.0

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        disk = tmp_path / "cache"
        disk.mkdir()
        job = _job(0.01)
        (disk / f"{job.cache_key()}.npz").write_bytes(b"not an npz archive")
        cache = ResultCache(disk_dir=str(disk))
        hit, status = cache.lookup(job)
        assert hit is None and status == "miss"


class TestStats:
    def test_counts_add_up(self):
        cache = ResultCache()
        cache.lookup(_job(0.01))  # miss
        cache.store(_job(0.01), _result(1.0))
        cache.lookup(_job(0.01))  # hit
        stats = cache.stats
        assert (stats.misses, stats.memory_hits, stats.stores) == (1, 1, 1)
        assert stats.hits == 1 and stats.lookups == 2
        assert set(stats.to_dict()) == {
            "memory_hits", "disk_hits", "misses", "evictions", "stores", "replacements",
        }

"""Tests for result/sweep persistence."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.io import load_result, load_sweep, save_result, save_sweep
from repro.landscapes import SinglePeakLandscape
from repro.model import QuasispeciesModel
from repro.model.threshold import sweep_error_rates


@pytest.fixture
def result():
    model = QuasispeciesModel(SinglePeakLandscape(8), p=0.01)
    return model.solve("power", tol=1e-11, record_history=True)


@pytest.fixture
def sweep():
    return sweep_error_rates(SinglePeakLandscape(10), np.linspace(0.01, 0.08, 8))


class TestResultRoundtrip:
    def test_all_fields_preserved(self, result, tmp_path):
        path = str(tmp_path / "res.npz")
        save_result(path, result)
        loaded = load_result(path)
        assert loaded.eigenvalue == result.eigenvalue
        assert loaded.iterations == result.iterations
        assert loaded.residual == result.residual
        assert loaded.converged == result.converged
        assert loaded.method == result.method
        np.testing.assert_array_equal(loaded.eigenvector, result.eigenvector)
        np.testing.assert_array_equal(loaded.concentrations, result.concentrations)
        assert len(loaded.history) == len(result.history)
        assert loaded.history[0].iteration == result.history[0].iteration

    def test_empty_history(self, tmp_path):
        model = QuasispeciesModel(SinglePeakLandscape(6), p=0.01)
        res = model.solve("reduced")
        path = str(tmp_path / "red.npz")
        save_result(path, res)
        assert load_result(path).history == []

    def test_wrong_kind_rejected(self, result, sweep, tmp_path):
        path = str(tmp_path / "sweep.npz")
        save_sweep(path, sweep)
        with pytest.raises(ValidationError):
            load_result(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(str(path), data=np.zeros(3))
        with pytest.raises(ValidationError):
            load_result(str(path))


class TestSweepRoundtrip:
    def test_roundtrip(self, sweep, tmp_path):
        path = str(tmp_path / "sweep.npz")
        save_sweep(path, sweep)
        loaded = load_sweep(path)
        assert loaded.nu == sweep.nu
        assert loaded.p_max == sweep.p_max
        np.testing.assert_array_equal(loaded.error_rates, sweep.error_rates)
        np.testing.assert_array_equal(
            loaded.class_concentrations, sweep.class_concentrations
        )

    def test_none_p_max_preserved(self, tmp_path):
        from repro.landscapes import LinearLandscape

        s = sweep_error_rates(LinearLandscape(10), np.linspace(0.01, 0.05, 5))
        assert s.p_max is None
        path = str(tmp_path / "lin.npz")
        save_sweep(path, s)
        assert load_sweep(path).p_max is None

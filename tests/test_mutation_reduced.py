"""Tests for the reduced mutation matrix QΓ (Eq. 14, corrected)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops.classes import error_class_indices, error_class_representatives
from repro.exceptions import ValidationError
from repro.mutation import UniformMutation, reduced_mutation_matrix
from repro.mutation.reduced import reduced_mutation_matrix_reference


class TestAgainstFullMatrix:
    @pytest.mark.parametrize("nu,p", [(3, 0.1), (5, 0.01), (7, 0.2), (8, 0.45)])
    def test_row_d_sums_full_q_over_class_k(self, nu, p):
        """QΓ[d,k] must equal Σ_{j∈Γk} Q[rep_d, j] — the probability that
        the class-d representative mutates into class k."""
        q_full = UniformMutation(nu, p).dense()
        q_red = reduced_mutation_matrix(nu, p)
        reps = error_class_representatives(nu)
        for d in range(nu + 1):
            for k in range(nu + 1):
                expected = q_full[error_class_indices(nu, k), reps[d]].sum()
                assert q_red[d, k] == pytest.approx(expected, abs=1e-13)

    def test_independent_of_representative_choice(self):
        """Any member of Γ_d gives the same row (the σ_{i,i'} symmetry
        underlying Lemma 2)."""
        nu, p = 6, 0.07
        q_full = UniformMutation(nu, p).dense()
        q_red = reduced_mutation_matrix(nu, p)
        rng = np.random.default_rng(0)
        for d in range(nu + 1):
            members = error_class_indices(nu, d)
            i = int(rng.choice(members))
            for k in range(nu + 1):
                expected = q_full[error_class_indices(nu, k), i].sum()
                assert q_red[d, k] == pytest.approx(expected, abs=1e-13)


class TestConvolutionEqualsTripleSum:
    """The fast convolution form equals the literal Eq. (14) sums."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 20), st.floats(1e-4, 0.5))
    def test_property(self, nu, p):
        np.testing.assert_allclose(
            reduced_mutation_matrix(nu, p),
            reduced_mutation_matrix_reference(nu, p),
            atol=1e-13,
        )


class TestStochasticity:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 40), st.floats(0.0, 0.5))
    def test_row_stochastic(self, nu, p):
        """Rows sum to one — a fixed molecule mutates into *some* class.
        (With the paper's printed exponent sign the sums blow up, which
        is how we verified the typo.)"""
        q = reduced_mutation_matrix(nu, p)
        np.testing.assert_allclose(q.sum(axis=1), 1.0, atol=1e-10)
        assert np.all(q >= -1e-15)

    def test_paper_printed_exponent_is_wrong(self):
        """Direct demonstration of the Eq. (14) typo: using the printed
        (1−p) exponent (k+d−2j)−ν produces non-stochastic rows."""
        import math

        nu, p = 5, 0.1
        bad = np.zeros((nu + 1, nu + 1))
        for d in range(nu + 1):
            for k in range(nu + 1):
                for j in range(max(0, k + d - nu), min(k, d) + 1):
                    flips = k + d - 2 * j
                    bad[d, k] += (
                        math.comb(nu - d, k - j)
                        * math.comb(d, j)
                        * p**flips
                        * (1 - p) ** (flips - nu)  # printed exponent
                    )
        assert not np.allclose(bad.sum(axis=1), 1.0)


class TestEdgeCases:
    def test_p_zero_is_identity(self):
        np.testing.assert_array_equal(reduced_mutation_matrix(6, 0.0), np.eye(7))

    def test_p_half_rows_are_binomial(self):
        """At p = 1/2 every sequence is equally likely, so row d is the
        class-size distribution C(ν,k)/2^ν regardless of d."""
        from repro.util.binomial import binomial_row

        nu = 6
        q = reduced_mutation_matrix(nu, 0.5)
        expected = binomial_row(nu) / 2.0**nu
        for d in range(nu + 1):
            np.testing.assert_allclose(q[d], expected, atol=1e-12)

    def test_long_chain_stays_stochastic(self):
        """The log-space evaluation keeps very long chains stochastic."""
        q = reduced_mutation_matrix(100, 0.01)
        np.testing.assert_allclose(q.sum(axis=1), 1.0, atol=1e-9)

    def test_very_long_chain_fast_and_stochastic(self):
        """ν = 1000 (a 2¹⁰⁰⁰-dimensional full problem) must run in
        seconds via the convolution form and stay row stochastic."""
        q = reduced_mutation_matrix(1000, 0.01)
        np.testing.assert_allclose(q.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(q >= 0.0)

    def test_invalid_p(self):
        with pytest.raises(ValidationError):
            reduced_mutation_matrix(5, 0.7)

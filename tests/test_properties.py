"""Hypothesis property suite on the model's mathematical invariants.

These cut across modules: Perron–Frobenius structure, stochasticity,
detailed-balance-like symmetries of the reduced matrix, and monotonicity
of the biology with respect to the model parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.landscapes import RandomLandscape, SinglePeakLandscape, TabulatedLandscape
from repro.model.concentrations import class_concentrations, participation_ratio
from repro.mutation import UniformMutation, reduced_mutation_matrix
from repro.operators import Fmmp
from repro.solvers import PowerIteration, ReducedSolver, dense_solve
from repro.util.binomial import binomial_row

common = settings(max_examples=15, deadline=None)


class TestPerronStructure:
    @common
    @given(st.integers(2, 8), st.floats(1e-3, 0.45), st.integers(0, 10_000))
    def test_perron_vector_strictly_positive(self, nu, p, seed):
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=seed)
        res = dense_solve(mut, ls)
        assert np.all(res.concentrations > 0.0), "Perron vector must be strictly positive"

    @common
    @given(st.integers(2, 8), st.floats(1e-3, 0.45), st.integers(0, 10_000))
    def test_eigenvalue_within_norm_bounds(self, nu, p, seed):
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=seed)
        res = dense_solve(mut, ls)
        lower = (1.0 - 2.0 * p) ** nu * ls.fmin
        assert lower - 1e-12 <= res.eigenvalue <= ls.fmax + 1e-12

    @common
    @given(st.integers(2, 7), st.floats(1e-3, 0.4))
    def test_w_maps_positive_to_positive(self, nu, p):
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, seed=0)
        op = Fmmp(mut, ls)
        v = np.random.default_rng(1).random(mut.n) + 0.01
        assert np.all(op.matvec(v) > 0.0)

    @common
    @given(st.integers(0, 10_000))
    def test_start_vector_independence(self, seed):
        """Power iteration converges to the same Perron vector from any
        positive start (uniqueness via Perron–Frobenius)."""
        nu, p = 7, 0.02
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=5)
        op = Fmmp(mut, ls)
        rng = np.random.default_rng(seed)
        start = rng.random(mut.n) + 0.01
        a = PowerIteration(op, tol=1e-13).solve(start)
        b = PowerIteration(op, tol=1e-13).solve(ls.start_vector())
        np.testing.assert_allclose(a.eigenvector, b.eigenvector, atol=1e-10)


class TestMonotonicity:
    @common
    @given(st.floats(1.2, 5.0), st.floats(0.1, 2.0))
    def test_higher_peak_more_master(self, f_peak, delta):
        """Raising the master's fitness concentrates the population."""
        nu, p = 8, 0.02
        low = ReducedSolver(nu, p, SinglePeakLandscape(nu, f_peak, 1.0)).solve()
        high = ReducedSolver(nu, p, SinglePeakLandscape(nu, f_peak + delta, 1.0)).solve()
        assert high.concentrations[0] > low.concentrations[0]
        assert high.eigenvalue > low.eigenvalue

    @common
    @given(st.floats(0.002, 0.2), st.floats(1.01, 3.0))
    def test_higher_error_rate_less_master(self, p, ratio):
        nu = 10
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        lo = ReducedSolver(nu, p, ls).solve()
        hi = ReducedSolver(nu, min(0.5, p * ratio), ls).solve()
        assert hi.concentrations[0] <= lo.concentrations[0] + 1e-12

    @common
    @given(st.floats(0.001, 0.1))
    def test_flat_landscape_gives_uniform(self, p):
        """Equal fitness ⇒ bistochastic W ⇒ exactly uniform quasispecies
        (the paper's 'not at all surprising' special case)."""
        nu = 6
        ls = TabulatedLandscape(np.full(1 << nu, 1.7))
        mut = UniformMutation(nu, p)
        res = dense_solve(mut, ls)
        np.testing.assert_allclose(res.concentrations, 1.0 / (1 << nu), atol=1e-12)
        assert res.eigenvalue == pytest.approx(1.7, rel=1e-12)


class TestReducedMatrixSymmetry:
    @common
    @given(st.integers(1, 30), st.floats(1e-4, 0.5))
    def test_flow_balance(self, nu, p):
        """C(ν,d)·QΓ[d,k] = C(ν,k)·QΓ[k,d]: total probability flow
        between classes is symmetric because Q itself is symmetric."""
        q = reduced_mutation_matrix(nu, p)
        sizes = binomial_row(nu)
        flow = sizes[:, None] * q
        np.testing.assert_allclose(flow, flow.T, rtol=1e-9, atol=1e-300)

    @common
    @given(st.integers(1, 25), st.floats(1e-4, 0.49))
    def test_stationary_distribution_of_reduced_chain(self, nu, p):
        """With flat fitness the reduced chain's stationary law is the
        binomial class-size distribution."""
        q = reduced_mutation_matrix(nu, p)
        sizes = binomial_row(nu) / 2.0**nu
        np.testing.assert_allclose(sizes @ q, sizes, atol=1e-10)


class TestConcentrationInvariants:
    @common
    @given(st.integers(1, 10), st.integers(0, 10_000))
    def test_class_concentrations_partition_mass(self, nu, seed):
        x = np.random.default_rng(seed).random(1 << nu)
        gamma = class_concentrations(x, nu)
        assert gamma.sum() == pytest.approx(x.sum(), rel=1e-12)
        assert gamma.shape == (nu + 1,)

    @common
    @given(st.integers(2, 12), st.integers(0, 10_000))
    def test_participation_ratio_bounds(self, n_exp, seed):
        n = 1 << n_exp
        x = np.random.default_rng(seed).random(n)
        pr = participation_ratio(x)
        assert 1.0 - 1e-9 <= pr <= n + 1e-9

"""Tests for the truncated-Walsh approximative operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import PerSiteMutation, UniformMutation
from repro.operators import Fmmp, TruncatedWalsh
from repro.solvers import PowerIteration
from repro.util.binomial import binomial_row


@pytest.fixture
def problem():
    nu, p = 8, 0.03
    return UniformMutation(nu, p), RandomLandscape(nu, c=5.0, sigma=1.0, seed=6)


class TestConstruction:
    def test_rank_formula(self, problem):
        mut, ls = problem
        op = TruncatedWalsh(mut, ls, 3)
        assert op.rank == int(binomial_row(8)[:4].sum())
        assert op.rank == TruncatedWalsh.rank_for_nu(8, 3)
        assert 0 < op.retained_fraction < 1

    def test_rejects_per_site(self):
        mut = PerSiteMutation.from_error_rates([0.01, 0.02])
        ls = RandomLandscape(2, seed=0)
        with pytest.raises(ValidationError):
            TruncatedWalsh(mut, ls, 1)

    def test_rejects_bad_kmax(self, problem):
        mut, ls = problem
        with pytest.raises(ValidationError):
            TruncatedWalsh(mut, ls, 9)


class TestAccuracy:
    def test_full_kmax_is_exact(self, problem):
        mut, ls = problem
        v = np.random.default_rng(0).random(mut.n)
        exact = Fmmp(mut, ls).matvec(v)
        approx = TruncatedWalsh(mut, ls, mut.nu).matvec(v)
        np.testing.assert_allclose(approx, exact, atol=1e-11)
        assert TruncatedWalsh(mut, ls, mut.nu).error_bound() == 0.0

    def test_error_within_a_priori_bound(self, problem):
        """The headline: ‖(Q − Q_k)u‖₂ <= (1−2p)^{k+1}·‖u‖₂ for every
        k — a certificate Xmvp's truncation lacks."""
        mut, ls = problem
        rng = np.random.default_rng(1)
        u = rng.standard_normal(mut.n)
        # Compare the *Q parts*: apply with flat landscape to isolate Q.
        from repro.landscapes import TabulatedLandscape

        flat = TabulatedLandscape(np.ones(mut.n))
        exact = Fmmp(mut, flat).matvec(u)
        for k in range(mut.nu):
            approx = TruncatedWalsh(mut, flat, k).matvec(u)
            err = np.linalg.norm(approx - exact)
            bound = TruncatedWalsh(mut, flat, k).error_bound() * np.linalg.norm(u)
            assert err <= bound * (1 + 1e-12), f"k={k}: {err} > {bound}"

    def test_error_decreases_geometrically(self, problem):
        mut, ls = problem
        v = np.random.default_rng(2).random(mut.n)
        exact = Fmmp(mut, ls).matvec(v)
        errs = []
        for k in range(mut.nu + 1):
            errs.append(np.linalg.norm(TruncatedWalsh(mut, ls, k).matvec(v) - exact))
        assert all(a >= b - 1e-15 for a, b in zip(errs, errs[1:]))
        # Roughly geometric with ratio (1−2p).
        assert errs[4] < errs[0] * (1 - 2 * mut.p) ** 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 8), st.floats(0.01, 0.3))
    def test_mass_bias_bounded(self, nu, p):
        """Truncation breaks exact stochasticity only within the bound."""
        mut = UniformMutation(nu, p)
        from repro.landscapes import TabulatedLandscape

        flat = TabulatedLandscape(np.ones(1 << nu))
        op = TruncatedWalsh(mut, flat, max(0, nu - 2))
        v = np.random.default_rng(0).random(1 << nu)
        drift = abs(op.matvec(v).sum() - v.sum())
        assert drift <= op.error_bound() * np.linalg.norm(v) * np.sqrt(1 << nu) + 1e-12


class TestInsideSolver:
    def test_power_iteration_converges_to_nearby_answer(self, problem):
        mut, ls = problem
        exact = PowerIteration(Fmmp(mut, ls), tol=1e-12).solve(
            ls.start_vector(), landscape=ls
        )
        approx = PowerIteration(TruncatedWalsh(mut, ls, 5), tol=1e-12).solve(
            ls.start_vector(), landscape=ls
        )
        err = np.abs(approx.concentrations - exact.concentrations).max()
        bound_scale = TruncatedWalsh(mut, ls, 5).error_bound()
        assert err < 10 * bound_scale, (err, bound_scale)

    def test_forms_consistent(self, problem):
        mut, ls = problem
        v = np.random.default_rng(3).random(mut.n)
        from repro.operators import dense_w

        for form in ("right", "symmetric", "left"):
            full = TruncatedWalsh(mut, ls, mut.nu, form=form).matvec(v)
            np.testing.assert_allclose(full, dense_w(mut, ls, form) @ v, atol=1e-10)

    def test_input_not_mutated(self, problem):
        mut, ls = problem
        v = np.random.default_rng(4).random(mut.n)
        orig = v.copy()
        for form in ("right", "symmetric", "left"):
            TruncatedWalsh(mut, ls, 4, form=form).matvec(v)
            np.testing.assert_array_equal(v, orig)

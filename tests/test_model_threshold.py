"""Tests for error-threshold sweeps (Fig. 1 machinery)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import LinearLandscape, RandomLandscape, SinglePeakLandscape
from repro.model.threshold import ThresholdSweep, detect_error_threshold, sweep_error_rates


class TestSweep:
    def test_single_peak_nu20_paper_threshold(self):
        """Fig. 1 left: ν = 20, f0 = 2, rest 1 ⇒ p_max ≈ 0.035."""
        ls = SinglePeakLandscape(20, 2.0, 1.0)
        rates = np.linspace(0.001, 0.09, 90)
        sweep = sweep_error_rates(ls, rates)
        assert sweep.p_max is not None
        assert 0.025 <= sweep.p_max <= 0.045, f"p_max={sweep.p_max}"

    def test_linear_landscape_no_threshold(self):
        """Fig. 1 right: the linear landscape transitions smoothly — no
        threshold inside the swept range."""
        ls = LinearLandscape(20, 2.0, 1.0)
        rates = np.linspace(0.001, 0.09, 90)
        sweep = sweep_error_rates(ls, rates)
        assert sweep.p_max is None

    def test_master_curve_monotone_decreasing(self):
        ls = SinglePeakLandscape(15, 2.0, 1.0)
        sweep = sweep_error_rates(ls, np.linspace(0.001, 0.08, 40))
        g0 = sweep.master_curve()
        assert np.all(np.diff(g0) <= 1e-9)

    def test_above_threshold_distribution_is_uniform(self):
        """Deviations are judged at the distribution's scale: the tiny
        single-member classes approach their 2^{−ν} values only
        asymptotically for finite ν (invisible in Fig. 1)."""
        from repro.model.concentrations import uniform_class_concentrations

        ls = SinglePeakLandscape(20, 2.0, 1.0)
        sweep = sweep_error_rates(ls, np.linspace(0.001, 0.09, 90))
        last = sweep.class_concentrations[-1]
        uni = uniform_class_concentrations(20)
        np.testing.assert_allclose(last, uni, atol=0.02 * uni.max())

    def test_gamma_pairs_meet_at_threshold(self):
        """Γ_k and Γ_{ν−k} have equal cardinality, so their cumulative
        concentrations coincide once the distribution is uniform (the
        color pairing of Fig. 1) — at plotting resolution."""
        nu = 20
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        sweep = sweep_error_rates(ls, np.linspace(0.001, 0.09, 45))
        last = sweep.class_concentrations[-1]
        scale = last.max()
        for k in range(nu + 1):
            assert last[k] == pytest.approx(last[nu - k], abs=0.01 * scale)

    def test_p_zero_point(self):
        ls = SinglePeakLandscape(10)
        sweep = sweep_error_rates(ls, np.array([0.0, 0.01]))
        np.testing.assert_array_equal(
            sweep.class_concentrations[0], [1.0] + [0.0] * 10
        )

    def test_rejects_general_landscape(self):
        with pytest.raises(ValidationError):
            sweep_error_rates(RandomLandscape(6, seed=0), np.array([0.01]))

    def test_rejects_non_increasing_grid(self):
        with pytest.raises(ValidationError):
            sweep_error_rates(SinglePeakLandscape(8), np.array([0.02, 0.01]))

    def test_series_accessor(self):
        ls = SinglePeakLandscape(8)
        sweep = sweep_error_rates(ls, np.linspace(0.01, 0.05, 5))
        assert sweep.series(0).shape == (5,)
        with pytest.raises(ValidationError):
            sweep.series(9)


class TestDetector:
    def _mk(self, nu, rows, rates=None):
        rows = np.asarray(rows, dtype=float)
        rates = np.linspace(0.01, 0.05, rows.shape[0]) if rates is None else rates
        return ThresholdSweep(nu=nu, error_rates=rates, class_concentrations=rows)

    def test_never_uniform(self):
        rows = np.tile([1.0, 0.0, 0.0], (5, 1))
        assert detect_error_threshold(self._mk(2, rows)) is None

    def test_threshold_in_middle(self):
        from repro.model.concentrations import uniform_class_concentrations

        uni = uniform_class_concentrations(2)
        ordered = np.array([0.9, 0.09, 0.01])
        rows = np.vstack([ordered, ordered, uni, uni, uni])
        sweep = self._mk(2, rows)
        pm = detect_error_threshold(sweep)
        assert pm == pytest.approx(sweep.error_rates[2])

    def test_uniform_only_at_last_point_not_a_threshold(self):
        from repro.model.concentrations import uniform_class_concentrations

        uni = uniform_class_concentrations(2)
        ordered = np.array([0.9, 0.09, 0.01])
        rows = np.vstack([ordered, ordered, ordered, uni])
        assert detect_error_threshold(self._mk(2, rows)) is None

    def test_threshold_scales_inversely_with_nu(self):
        """Classic theory: p_max ≈ ln(σ)/ν — longer chains have smaller
        thresholds."""
        thresholds = {}
        for nu in (10, 20):
            sweep = sweep_error_rates(
                SinglePeakLandscape(nu, 2.0, 1.0), np.linspace(0.002, 0.12, 60)
            )
            thresholds[nu] = sweep.p_max
        assert thresholds[10] is not None and thresholds[20] is not None
        assert thresholds[20] < thresholds[10]

    def test_higher_peak_higher_threshold(self):
        """p_max grows with the superiority σ₀ = f_peak/f_rest (classic
        p_max ≈ ln σ₀/ν); the sweep range must cover ln(10)/15 ≈ 0.15
        plus finite-size tail for the high peak."""
        s_low = sweep_error_rates(
            SinglePeakLandscape(15, 2.0, 1.0), np.linspace(0.002, 0.3, 150)
        )
        s_high = sweep_error_rates(
            SinglePeakLandscape(15, 10.0, 1.0), np.linspace(0.002, 0.3, 150)
        )
        assert s_low.p_max is not None and s_high.p_max is not None
        assert s_high.p_max > s_low.p_max

"""Tests for the Wright–Fisher finite-population simulator."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.population import WrightFisher
from repro.solvers import dense_solve


@pytest.fixture
def small_model():
    nu, p = 6, 0.01
    return UniformMutation(nu, p), SinglePeakLandscape(nu, 2.0, 1.0)


class TestMechanics:
    def test_population_size_conserved(self, small_model):
        mut, ls = small_model
        wf = WrightFisher(mut, ls, 333, seed=0)
        for _ in range(20):
            counts = wf.step()
            assert int(counts.sum()) == 333
            assert np.all(counts >= 0)

    def test_starts_all_master(self, small_model):
        mut, ls = small_model
        wf = WrightFisher(mut, ls, 100, seed=0)
        assert wf.counts[0] == 100 and wf.counts[1:].sum() == 0
        assert wf.mean_fitness() == pytest.approx(ls.fmax)

    def test_reset_with_counts(self, small_model):
        mut, ls = small_model
        wf = WrightFisher(mut, ls, 10, seed=0)
        c = np.zeros(mut.n, dtype=np.int64)
        c[3] = 10
        wf.reset(c)
        assert wf.counts[3] == 10

    def test_reset_validation(self, small_model):
        mut, ls = small_model
        wf = WrightFisher(mut, ls, 10, seed=0)
        with pytest.raises(ValidationError):
            wf.reset(np.zeros(mut.n, dtype=np.int64))  # wrong total
        with pytest.raises(ValidationError):
            wf.reset(np.zeros(3, dtype=np.int64))

    def test_reproducible_by_seed(self, small_model):
        mut, ls = small_model
        a = WrightFisher(mut, ls, 200, seed=42)
        b = WrightFisher(mut, ls, 200, seed=42)
        for _ in range(10):
            np.testing.assert_array_equal(a.step(), b.step())

    def test_offspring_distribution_normalized(self, small_model):
        mut, ls = small_model
        wf = WrightFisher(mut, ls, 50, seed=1)
        wf.step()
        pi = wf.offspring_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_bad_population_size(self, small_model):
        mut, ls = small_model
        with pytest.raises(ValidationError):
            WrightFisher(mut, ls, 0)


class TestInfinitePopulationLimit:
    def test_large_population_tracks_eigenvector(self, small_model):
        """Time-averaged frequencies at large M approach the
        deterministic quasispecies (the Eq. 1 infinite-population
        limit)."""
        mut, ls = small_model
        ref = dense_solve(mut, ls)
        wf = WrightFisher(mut, ls, 200_000, seed=7)
        stats = wf.run(300, burn_in=100)
        # Class-level agreement (per-sequence needs far longer averages).
        from repro.model.concentrations import class_concentrations

        np.testing.assert_allclose(
            stats.mean_class_concentrations,
            class_concentrations(ref.concentrations, mut.nu),
            atol=0.01,
        )
        assert stats.mean_fitness == pytest.approx(ref.eigenvalue, rel=0.02)

    def test_fluctuations_shrink_with_population(self, small_model):
        """Std of the master frequency scales down with M (≈ M^{-1/2})."""
        mut, ls = small_model

        def master_std(m, seed):
            wf = WrightFisher(mut, ls, m, seed=seed)
            wf.run(50, burn_in=50)  # equilibrate
            vals = []
            for _ in range(100):
                wf.step()
                vals.append(wf.frequencies[0])
            return float(np.std(vals))

        small = master_std(500, 3)
        large = master_std(50_000, 3)
        assert large < small / 3.0


class TestFinitePopulationThreshold:
    def test_master_survives_below_threshold(self, small_model):
        mut, ls = small_model  # p = 0.01, threshold ~ ln2/6 ≈ 0.115
        wf = WrightFisher(mut, ls, 5_000, seed=11)
        stats = wf.run(200)
        assert stats.master_extinction_generation is None
        assert stats.mean_class_concentrations[0] > 0.2

    def test_error_catastrophe_above_threshold(self):
        """Far above the threshold the master class drowns in mutants."""
        nu = 6
        mut = UniformMutation(nu, 0.4)
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        wf = WrightFisher(mut, ls, 2_000, seed=5)
        stats = wf.run(200, burn_in=50)
        from repro.model.concentrations import uniform_class_concentrations

        np.testing.assert_allclose(
            stats.mean_class_concentrations,
            uniform_class_concentrations(nu),
            atol=0.05,
        )

    def test_small_population_loses_master_earlier(self):
        """Nowak–Schuster: drift in small populations kills the master
        near the deterministic threshold where large ones keep it."""
        nu, p = 8, 0.075  # just below ln2/8 ≈ 0.0866
        mut = UniformMutation(nu, p)
        ls = SinglePeakLandscape(nu, 2.0, 1.0)
        extinct_small = 0
        extinct_large = 0
        for seed in range(6):
            small = WrightFisher(mut, ls, 30, seed=seed).run(300)
            large = WrightFisher(mut, ls, 30_000, seed=seed).run(300)
            extinct_small += small.master_extinction_generation is not None
            extinct_large += large.master_extinction_generation is not None
        assert extinct_small > extinct_large
        assert extinct_large == 0

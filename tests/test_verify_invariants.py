"""Per-invariant property tests for the metamorphic catalogue.

Each catalogued identity is exercised on its own, against
hypothesis-driven problem specs, so a failure pinpoints the exact paper
equation that broke.  (The registry-level sweep in
``test_verify_registry.py`` covers the combined run.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import as_generator
from repro.verify import INVARIANTS, ProblemSpec
from repro.verify.invariants import relative_error

sweep = settings(max_examples=10, deadline=None)

BY_NAME = {inv.name: inv for inv in INVARIANTS}


def run_one(name: str, spec: ProblemSpec, seed: int = 0):
    inv = BY_NAME[name]
    assert inv.applies(spec), f"{name} should apply to {spec.label()}"
    error, details = inv.run(spec, as_generator(seed))
    assert error <= inv.tolerance, f"{name}: {error:.3e} > {inv.tolerance:g} ({details})"
    return error


class TestCatalogueShape:
    def test_every_invariant_names_its_equation(self):
        for inv in INVARIANTS:
            assert inv.equation, inv.name
            assert inv.description, inv.name

    def test_names_unique(self):
        names = [inv.name for inv in INVARIANTS]
        assert len(names) == len(set(names))

    def test_exact_invariants_use_machine_tolerance(self):
        for inv in INVARIANTS:
            if inv.exact:
                assert inv.tolerance <= 1e-12, inv.name


class TestRelativeError:
    def test_zero_for_identical(self):
        v = np.arange(5, dtype=float)
        assert relative_error(v, v) == 0.0

    def test_scale_free(self):
        a = np.array([1.0, 2.0])
        assert relative_error(a, a * (1 + 1e-10)) == pytest.approx(1e-10, rel=1e-3)

    def test_zero_vectors(self):
        z = np.zeros(4)
        assert relative_error(z, z) == 0.0


class TestProductIdentities:
    @sweep
    @given(nu=st.integers(2, 10), p=st.floats(1e-4, 0.5), seed=st.integers(0, 500))
    def test_fmmp_dense_equivalence(self, nu, p, seed):
        run_one("fmmp-dense-equivalence", ProblemSpec(nu=nu, p=p, seed=seed), seed)

    @sweep
    @given(
        nu=st.integers(2, 10),
        p=st.floats(1e-4, 0.5),
        mutation=st.sampled_from(("uniform", "persite", "grouped")),
        seed=st.integers(0, 500),
    )
    def test_fmmp_variant_agreement(self, nu, p, mutation, seed):
        spec = ProblemSpec(nu=nu, p=p, landscape="random", mutation=mutation, seed=seed)
        run_one("fmmp-variant-agreement", spec, seed)

    @sweep
    @given(nu=st.integers(2, 10), p=st.floats(1e-4, 0.5), seed=st.integers(0, 500))
    def test_fmmp_spectral_equivalence(self, nu, p, seed):
        run_one("fmmp-spectral-equivalence", ProblemSpec(nu=nu, p=p, seed=seed), seed)

    @sweep
    @given(nu=st.integers(2, 8), p=st.floats(1e-4, 0.5), seed=st.integers(0, 500))
    def test_xmvp_exactness(self, nu, p, seed):
        run_one("xmvp-exactness", ProblemSpec(nu=nu, p=p, landscape="random", seed=seed), seed)

    @sweep
    @given(nu=st.integers(1, 10), p=st.floats(0.0, 0.5), seed=st.integers(0, 500))
    def test_column_stochasticity(self, nu, p, seed):
        run_one("q-column-stochastic", ProblemSpec(nu=nu, p=p, seed=seed), seed)

    @sweep
    @given(nu=st.integers(2, 10), seed=st.integers(0, 500))
    def test_fwht_involution(self, nu, seed):
        run_one("fwht-involution", ProblemSpec(nu=nu, p=0.01, seed=seed), seed)

    @sweep
    @given(nu=st.integers(2, 8), p=st.floats(1e-4, 0.45), seed=st.integers(0, 500))
    def test_q_inverse_roundtrip(self, nu, p, seed):
        run_one("q-inverse-roundtrip", ProblemSpec(nu=nu, p=p, seed=seed), seed)


class TestShiftIdentities:
    @sweep
    @given(nu=st.integers(2, 8), p=st.floats(1e-4, 0.5), seed=st.integers(0, 500))
    def test_shift_safety(self, nu, p, seed):
        spec = ProblemSpec(nu=nu, p=p, landscape="random", seed=seed)
        run_one("shift-safety", spec, seed)

    @sweep
    @given(nu=st.integers(2, 8), p=st.floats(1e-4, 0.5), seed=st.integers(0, 500))
    def test_shifted_product_exactness(self, nu, p, seed):
        run_one("shifted-product-exactness", ProblemSpec(nu=nu, p=p, seed=seed), seed)

    @sweep
    @given(nu=st.integers(2, 8), p=st.floats(1e-4, 0.5), seed=st.integers(0, 500))
    def test_shift_invert_exactness(self, nu, p, seed):
        run_one("shift-invert-exactness", ProblemSpec(nu=nu, p=p, seed=seed), seed)


class TestSolverIdentities:
    @sweep
    @given(
        nu=st.integers(2, 8),
        p=st.floats(1e-4, 0.5),
        landscape=st.sampled_from(("single-peak", "linear", "flat")),
        seed=st.integers(0, 500),
    )
    def test_lemma2_class_recovery(self, nu, p, landscape, seed):
        spec = ProblemSpec(nu=nu, p=p, landscape=landscape, seed=seed)
        run_one("lemma2-class-recovery", spec, seed)

    @sweep
    @given(
        nu=st.integers(2, 8),
        p=st.floats(1e-4, 0.5),
        mutation=st.sampled_from(("uniform", "grouped")),
        seed=st.integers(0, 500),
    )
    def test_kronecker_factorization(self, nu, p, mutation, seed):
        spec = ProblemSpec(nu=nu, p=p, landscape="kronecker", mutation=mutation, seed=seed)
        run_one("kronecker-factorization", spec, seed)

    @sweep
    @given(nu=st.integers(2, 7), p=st.floats(1e-3, 0.45), seed=st.integers(0, 500))
    def test_mean_fitness_identity(self, nu, p, seed):
        spec = ProblemSpec(nu=nu, p=p, landscape="random", seed=seed)
        run_one("mean-fitness-identity", spec, seed)


@pytest.mark.verify_smoke
class TestCatalogueSmoke:
    """One representative spec per invariant — the fast tier-1 sweep."""

    @pytest.mark.parametrize("inv", INVARIANTS, ids=lambda i: i.name)
    def test_invariant_holds_on_representative_spec(self, inv):
        candidates = [
            ProblemSpec(nu=4, p=0.03),
            ProblemSpec(nu=4, p=0.03, landscape="random", mutation="persite", seed=1),
            ProblemSpec(nu=4, p=0.03, landscape="kronecker", mutation="grouped", seed=2),
            ProblemSpec(nu=4, p=0.03, landscape="kronecker", seed=2),
            ProblemSpec(nu=4, p=0.03, landscape="flat"),
        ]
        spec = next((s for s in candidates if inv.applies(s)), None)
        assert spec is not None, f"no representative spec for {inv.name}"
        error, details = inv.run(spec, as_generator(0))
        assert error <= inv.tolerance, f"{inv.name}: {error:.3e} ({details})"

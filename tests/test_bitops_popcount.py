"""Unit and property tests for repro.bitops.popcount."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitops.popcount import (
    distance_to_master,
    hamming_distance,
    hamming_matrix,
    popcount,
)
from repro.exceptions import ValidationError


class TestPopcount:
    def test_scalar(self):
        assert popcount(0) == 0
        assert popcount(1) == 1
        assert popcount(0b1011) == 3
        assert popcount((1 << 63) - 1) == 63

    def test_scalar_returns_python_int(self):
        assert isinstance(popcount(7), int)

    def test_array(self):
        arr = np.array([0, 1, 2, 3, 255], dtype=np.int64)
        np.testing.assert_array_equal(popcount(arr), [0, 1, 1, 2, 8])

    def test_preserves_shape(self):
        arr = np.arange(16, dtype=np.uint32).reshape(4, 4)
        assert popcount(arr).shape == (4, 4)

    def test_rejects_floats(self):
        with pytest.raises(ValidationError):
            popcount(np.array([1.0]))

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            popcount(np.array([-1]))

    @given(st.integers(0, 2**63 - 1))
    def test_matches_bin_count(self, x):
        assert popcount(x) == bin(x).count("1")

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=50))
    def test_vectorized_matches_scalar(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        expected = [bin(x).count("1") for x in xs]
        np.testing.assert_array_equal(popcount(arr), expected)


class TestHammingDistance:
    def test_identity_is_zero(self):
        assert hamming_distance(12345, 12345) == 0

    def test_known_pairs(self):
        assert hamming_distance(0b0000, 0b1111) == 4
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(0b1010, 0b1000) == 1

    def test_symmetry_vectorized(self):
        i = np.arange(64)
        j = np.arange(64)[::-1].copy()
        np.testing.assert_array_equal(hamming_distance(i, j), hamming_distance(j, i))

    def test_broadcasting(self):
        i = np.arange(8)[:, None]
        j = np.arange(8)[None, :]
        d = hamming_distance(i, j)
        assert d.shape == (8, 8)
        assert d[3, 3] == 0

    @given(st.integers(0, 1023), st.integers(0, 1023), st.integers(0, 1023))
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


class TestDistanceToMaster:
    def test_nu2(self):
        np.testing.assert_array_equal(distance_to_master(2), [0, 1, 1, 2])

    def test_class_sizes_are_binomial(self):
        d = distance_to_master(6)
        sizes = np.bincount(d, minlength=7)
        np.testing.assert_array_equal(sizes, [1, 6, 15, 20, 15, 6, 1])


class TestHammingMatrix:
    def test_nu2_matrix(self):
        m = hamming_matrix(2)
        expected = np.array(
            [[0, 1, 1, 2], [1, 0, 2, 1], [1, 2, 0, 1], [2, 1, 1, 0]]
        )
        np.testing.assert_array_equal(m, expected)

    def test_symmetric_zero_diagonal(self):
        m = hamming_matrix(5)
        np.testing.assert_array_equal(m, m.T)
        np.testing.assert_array_equal(np.diag(m), 0)

    def test_guard(self):
        with pytest.raises(ValidationError):
            hamming_matrix(20)

"""Tests for the replicator–mutator ODE (Eq. 1) — the physical ground truth."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.model.ode import QuasispeciesODE, integrate_to_stationary
from repro.mutation import PerSiteMutation, UniformMutation
from repro.solvers import dense_solve


@pytest.fixture
def system():
    nu, p = 6, 0.02
    mut = UniformMutation(nu, p)
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=9)
    return mut, ls


class TestRhs:
    def test_tangent_to_simplex(self, system):
        """Σ ẋ = 0: the flow preserves total concentration (this is what
        the Φ·x dilution term is for)."""
        mut, ls = system
        ode = QuasispeciesODE(mut, ls)
        rng = np.random.default_rng(0)
        x = rng.random(ode.n)
        x /= x.sum()
        assert abs(ode.rhs(x).sum()) < 1e-12

    def test_flux_is_mean_fitness(self, system):
        mut, ls = system
        ode = QuasispeciesODE(mut, ls)
        x = np.full(ode.n, 1.0 / ode.n)
        assert ode.flux(x) == pytest.approx(ls.values().mean())

    def test_eigenvector_is_fixed_point(self, system):
        """At the Perron vector, ẋ = W·x − λ₀·x = 0."""
        mut, ls = system
        ref = dense_solve(mut, ls)
        ode = QuasispeciesODE(mut, ls)
        assert np.abs(ode.rhs(ref.concentrations)).max() < 1e-9

    def test_mismatched_nu(self):
        with pytest.raises(ValidationError):
            QuasispeciesODE(UniformMutation(4, 0.1), RandomLandscape(5, seed=0))


class TestIntegration:
    def test_stationary_matches_eigenvector(self, system):
        """The paper's entire premise: the long-time limit of Eq. (1) is
        the dominant eigenvector of W."""
        mut, ls = system
        ref = dense_solve(mut, ls)
        x, steps = integrate_to_stationary(mut, ls, dt=0.05, tol=1e-10)
        assert steps > 0
        np.testing.assert_allclose(x, ref.concentrations, atol=1e-8)

    def test_master_start_default(self, system):
        mut, ls = system
        ode = QuasispeciesODE(mut, ls)
        x0 = ode.master_start()
        assert x0[0] == 1.0 and x0.sum() == 1.0

    def test_integrate_stays_on_simplex(self, system):
        mut, ls = system
        ode = QuasispeciesODE(mut, ls)
        x, _ = ode.integrate(t_end=5.0, dt=0.05)
        assert x.min() >= 0.0
        assert x.sum() == pytest.approx(1.0)

    def test_trajectory_recording(self, system):
        mut, ls = system
        ode = QuasispeciesODE(mut, ls)
        _, traj = ode.integrate(t_end=1.0, dt=0.1, record_every=2)
        assert len(traj) == 5
        for snap in traj:
            assert snap.sum() == pytest.approx(1.0)

    def test_general_mutation_model(self):
        """The ODE works with the generalized (per-site) processes too —
        end-to-end check of Sec. 2.2 against the eigensolver."""
        rates = [0.01, 0.03, 0.02, 0.05, 0.01]
        mut = PerSiteMutation.from_error_rates(rates)
        ls = SinglePeakLandscape(5, 3.0, 1.0)
        ref = dense_solve(mut, ls)
        x, _ = integrate_to_stationary(mut, ls, dt=0.05, tol=1e-10)
        np.testing.assert_allclose(x, ref.concentrations, atol=1e-8)

    def test_invalid_dt(self, system):
        mut, ls = system
        with pytest.raises(ValidationError):
            QuasispeciesODE(mut, ls).integrate(dt=0.0)

    def test_invalid_x0(self, system):
        mut, ls = system
        with pytest.raises(ValidationError):
            integrate_to_stationary(mut, ls, x0=np.full(mut.n, 0.5))

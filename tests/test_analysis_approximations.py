"""Tests: classic first-order theory vs the exact solvers."""

import numpy as np
import pytest

from repro.analysis.approximations import (
    classic_threshold,
    master_fidelity,
    no_backmutation_growth,
    no_backmutation_master_frequency,
)
from repro.exceptions import ValidationError
from repro.landscapes import SinglePeakLandscape
from repro.solvers import ReducedSolver


class TestFormulas:
    def test_fidelity(self):
        assert master_fidelity(10, 0.01) == pytest.approx(0.99**10)
        assert master_fidelity(5, 0.0) == 1.0

    def test_threshold_forms_agree_for_small_rates(self):
        exact = classic_threshold(50, 2.0)
        first = classic_threshold(50, 2.0, first_order=True)
        assert exact == pytest.approx(first, rel=0.01)

    def test_threshold_monotonicity(self):
        assert classic_threshold(20, 4.0) > classic_threshold(20, 2.0)
        assert classic_threshold(40, 2.0) < classic_threshold(20, 2.0)

    def test_superiority_validation(self):
        with pytest.raises(ValidationError):
            classic_threshold(10, 1.0)
        with pytest.raises(ValidationError):
            no_backmutation_master_frequency(10, 0.01, 0.5)

    def test_frequency_clipped_above_threshold(self):
        nu, sigma = 20, 2.0
        p_above = classic_threshold(nu, sigma) * 1.5
        assert no_backmutation_master_frequency(nu, p_above, sigma) == 0.0


class TestAgainstExactSolver:
    @pytest.mark.parametrize("nu,sigma", [(20, 2.0), (30, 4.0)])
    def test_master_frequency_accurate_deep_in_ordered_phase(self, nu, sigma):
        ls = SinglePeakLandscape(nu, sigma, 1.0)
        p = classic_threshold(nu, sigma) * 0.3  # deep below threshold
        exact = ReducedSolver(nu, p, ls).solve().concentrations[0]
        approx = no_backmutation_master_frequency(nu, p, sigma)
        assert approx == pytest.approx(exact, rel=0.05)

    def test_master_frequency_fails_near_threshold(self):
        """The exact machinery quantifies where first-order theory
        breaks: within ~10 % of p_max the relative error blows up."""
        nu, sigma = 20, 2.0
        ls = SinglePeakLandscape(nu, sigma, 1.0)
        p = classic_threshold(nu, sigma) * 0.97
        exact = ReducedSolver(nu, p, ls).solve().concentrations[0]
        approx = no_backmutation_master_frequency(nu, p, sigma)
        assert abs(approx - exact) / exact > 0.25

    def test_growth_approximation_below_threshold(self):
        nu, sigma = 16, 3.0
        ls = SinglePeakLandscape(nu, sigma, 1.0)
        p = classic_threshold(nu, sigma) * 0.4
        exact = ReducedSolver(nu, p, ls).solve().eigenvalue
        approx = no_backmutation_growth(ls, p)
        assert approx == pytest.approx(exact, rel=0.03)

    def test_classic_threshold_brackets_detected_threshold(self):
        """The analytic p_max and the bisection-detected one agree to
        within the finite-size smearing."""
        from repro.model.antiviral import find_threshold

        nu, sigma = 16, 2.0
        detected = find_threshold(SinglePeakLandscape(nu, sigma, 1.0), tol_p=1e-3)
        analytic = classic_threshold(nu, sigma)
        assert detected == pytest.approx(analytic, rel=0.25)

    def test_growth_floor_above_threshold(self):
        nu, sigma = 16, 2.0
        ls = SinglePeakLandscape(nu, sigma, 1.0)
        p = classic_threshold(nu, sigma) * 2.0
        assert no_backmutation_growth(ls, p) == ls.f_rest
        exact = ReducedSolver(nu, p, ls).solve().eigenvalue
        assert exact == pytest.approx(ls.f_rest, rel=0.05)

"""Tests for the simulated device runtime: profiles, buffers, launches."""

import numpy as np
import pytest

from repro.device import (
    Device,
    DeviceBuffer,
    HardwareProfile,
    INTEL_I5_750,
    INTEL_I5_750_SINGLE_CORE,
    TESLA_C2050,
)
from repro.device.kernel import Kernel, KernelCosts
from repro.device.kernels import scale_kernel
from repro.exceptions import DeviceError


class TestHardwareProfile:
    def test_roofline_bandwidth_bound(self):
        prof = HardwareProfile("t", mem_bandwidth_gbs=100.0, peak_gflops=1000.0)
        # 1 GB of traffic, trivial flops: bandwidth-bound at 10 ms.
        assert prof.kernel_time(1e9, 1.0) == pytest.approx(0.01)

    def test_roofline_compute_bound(self):
        prof = HardwareProfile("t", mem_bandwidth_gbs=1000.0, peak_gflops=10.0)
        assert prof.kernel_time(8.0, 1e9) == pytest.approx(0.1)

    def test_launch_overhead_added(self):
        prof = HardwareProfile(
            "t", mem_bandwidth_gbs=100.0, peak_gflops=100.0, launch_overhead_s=1e-3
        )
        assert prof.kernel_time(0.0, 0.0) == pytest.approx(1e-3)

    def test_transfer_time_zero_for_host_memory(self):
        assert INTEL_I5_750.transfer_time(1e9) == 0.0

    def test_transfer_time_pcie(self):
        t = TESLA_C2050.transfer_time(6e9)
        assert t == pytest.approx(1.0)

    def test_presets_sensible(self):
        assert TESLA_C2050.mem_bandwidth_gbs > INTEL_I5_750.mem_bandwidth_gbs
        assert INTEL_I5_750.peak_gflops > INTEL_I5_750_SINGLE_CORE.peak_gflops

    def test_validation(self):
        with pytest.raises(Exception):
            HardwareProfile("bad", mem_bandwidth_gbs=-1.0, peak_gflops=1.0)
        with pytest.raises(Exception):
            HardwareProfile("bad", mem_bandwidth_gbs=1.0, peak_gflops=1.0, efficiency=0.0)


class TestDeviceBuffer:
    def test_roundtrip(self):
        buf = DeviceBuffer("x", 4)
        buf.write(np.arange(4))
        np.testing.assert_array_equal(buf.read(), [0, 1, 2, 3])

    def test_wrong_size_write(self):
        with pytest.raises(DeviceError):
            DeviceBuffer("x", 4).write(np.zeros(5))

    def test_released_buffer_unusable(self):
        buf = DeviceBuffer("x", 4)
        buf.release()
        with pytest.raises(DeviceError):
            buf.read()

    def test_zero_size_rejected(self):
        with pytest.raises(DeviceError):
            DeviceBuffer("x", 0)


class TestDeviceLifecycle:
    def test_alloc_free(self):
        dev = Device(TESLA_C2050)
        dev.alloc("x", 8)
        assert dev.buffer("x").size == 8
        dev.free("x")
        with pytest.raises(DeviceError):
            dev.buffer("x")

    def test_double_alloc_rejected(self):
        dev = Device(TESLA_C2050)
        dev.alloc("x", 8)
        with pytest.raises(DeviceError):
            dev.alloc("x", 8)

    def test_free_unknown_rejected(self):
        with pytest.raises(DeviceError):
            Device(TESLA_C2050).free("nope")


class TestTransfersAccounting:
    def test_to_from_device_accounts_bytes_and_time(self):
        dev = Device(TESLA_C2050)
        dev.alloc("x", 1024)
        dev.to_device("x", np.ones(1024))
        out = dev.from_device("x")
        np.testing.assert_array_equal(out, 1.0)
        acct = dev.accounting
        assert acct.bytes_transferred == 2 * 1024 * 8
        assert acct.transfer_time_s == pytest.approx(2 * 1024 * 8 / 6e9)

    def test_read_scalar(self):
        dev = Device(TESLA_C2050)
        dev.alloc("x", 4)
        dev.to_device("x", np.array([7.0, 1.0, 2.0, 3.0]))
        before = dev.accounting.bytes_transferred
        assert dev.read_scalar("x", 0) == 7.0
        assert dev.accounting.bytes_transferred == before + 8.0

    def test_cpu_profile_transfers_free(self):
        dev = Device(INTEL_I5_750)
        dev.alloc("x", 128)
        dev.to_device("x", np.zeros(128))
        assert dev.accounting.transfer_time_s == 0.0


class TestLaunch:
    def test_scale_kernel_executes(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 8)
        dev.to_device("v", np.arange(8))
        dev.launch(scale_kernel, 8, {"alpha": 2.0})
        np.testing.assert_array_equal(dev.from_device("v"), 2.0 * np.arange(8))

    def test_accounting_matches_cost_spec(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 16)
        dev.launch(scale_kernel, 16, {"alpha": 1.0})
        acct = dev.accounting
        assert acct.launches == 1
        assert acct.bytes_moved == 16 * scale_kernel.costs.bytes_per_item
        assert acct.flops == 16 * scale_kernel.costs.flops_per_item

    def test_binding_remaps_buffers(self):
        dev = Device(TESLA_C2050)
        dev.alloc("other", 4)
        dev.to_device("other", np.ones(4))
        dev.launch(scale_kernel, 4, {"alpha": 3.0}, binding={"v": "other"})
        np.testing.assert_array_equal(dev.from_device("other"), 3.0)

    def test_missing_buffer_rejected(self):
        dev = Device(TESLA_C2050)
        with pytest.raises(DeviceError):
            dev.launch(scale_kernel, 4, {"alpha": 1.0})

    def test_zero_global_size_rejected(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 4)
        with pytest.raises(DeviceError):
            dev.launch(scale_kernel, 0, {"alpha": 1.0})

    def test_reset_accounting(self):
        dev = Device(TESLA_C2050)
        dev.alloc("v", 4)
        dev.launch(scale_kernel, 4, {"alpha": 1.0})
        dev.reset_accounting()
        assert dev.accounting.launches == 0
        assert dev.modeled_time_s == 0.0


class TestValidationMode:
    def test_catches_divergent_batch_implementation(self):
        """A kernel whose batch path disagrees with its scalar spec must
        be flagged — this is the mechanism proving Algorithm-2 fidelity."""

        def scalar(i, state, params):
            return {("v", i): state["v"][i] + 1.0}

        def bad_batch(ids, buffers, params):
            buffers["v"][ids] += 2.0  # wrong!

        bad = Kernel("bad", scalar, bad_batch, KernelCosts(16.0, 1.0), ("v",))
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 8)
        with pytest.raises(DeviceError, match="divergence"):
            dev.launch(bad, 8)

    def test_catches_overlapping_writes(self):
        def scalar(i, state, params):
            return {("v", 0): 1.0}  # every item writes index 0 (same value)

        def batch(ids, buffers, params):
            buffers["v"][0] = 1.0

        overlapping = Kernel("overlap", scalar, batch, KernelCosts(8.0, 0.0), ("v",))
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 8)
        with pytest.raises(DeviceError, match="overlapping"):
            dev.launch(overlapping, 8)

    def test_passes_correct_kernel(self):
        dev = Device(TESLA_C2050, validate=True)
        dev.alloc("v", 64)
        dev.to_device("v", np.random.default_rng(0).random(64))
        dev.launch(scale_kernel, 64, {"alpha": 1.5})  # must not raise

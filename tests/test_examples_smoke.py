"""Smoke tests for the example scripts.

The fast examples are executed end to end (they are part of the public
deliverable and must keep running); the long-running ones are compiled
and import-checked so a syntax or API drift still fails the suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = ["quickstart.py", "general_mutation.py", "rna_alphabet.py", "batch_sweep.py"]
SLOW = [
    "antiviral_planning.py",
    "error_threshold.py",
    "kronecker_long_chain.py",
    "gpu_simulation.py",
    "ode_dynamics.py",
    "finite_population.py",
    "convergence_analysis.py",
]


def test_every_example_is_listed():
    on_disk = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert on_disk == sorted(FAST + SLOW), "keep the smoke-test lists in sync"


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their results"


@pytest.mark.parametrize("name", FAST + SLOW)
def test_example_compiles(name, tmp_path):
    py_compile.compile(str(EXAMPLES / name), cfile=str(tmp_path / (name + "c")), doraise=True)

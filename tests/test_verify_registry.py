"""Registry-level tests for the differential verification subsystem.

These drive the *same* :class:`repro.verify.OracleRegistry` the
``repro-quasispecies verify`` CLI runs, so pytest and the CLI can never
disagree about what "the backends agree" means.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import load_verification_report, save_verification_report
from repro.util.rng import as_generator
from repro.verify import (
    GRID_NAMES,
    LANDSCAPE_KINDS,
    MUTATION_KINDS,
    ProblemSpec,
    build_grid,
    default_registry,
    invariant_names,
    run_product_oracles,
    run_verification,
    solver_routes,
)
from repro.verify.report import VerificationReport

sweep = settings(max_examples=12, deadline=None)


# --------------------------------------------------------------- smoke tier
@pytest.mark.verify_smoke
class TestSmokeTier:
    """The sub-second tier-1 gate: the whole registry on the smoke grid."""

    def test_smoke_grid_fully_passes(self):
        report = run_verification("smoke")
        assert report.passed, [v.describe() for v in report.violations()]
        assert report.total_checks > 50

    def test_smoke_grid_covers_every_mutation_family(self):
        kinds = {s.mutation for s in build_grid("smoke")}
        assert kinds == set(MUTATION_KINDS)


# --------------------------------------------------------- hypothesis sweep
class TestExactPairsProperty:
    """Satellite: exact-equivalence pairs agree to <= 1e-12 relative error
    across nu in [2, 10], p in (0, 0.5), every landscape family."""

    @sweep
    @given(
        nu=st.integers(2, 10),
        p=st.floats(1e-4, 0.499),
        landscape=st.sampled_from(LANDSCAPE_KINDS),
        seed=st.integers(0, 1000),
    )
    def test_product_oracles_machine_exact(self, nu, p, landscape, seed):
        spec = ProblemSpec(nu=nu, p=p, landscape=landscape, seed=seed)
        results = run_product_oracles(spec, as_generator(seed))
        assert results, "at least one comparable product backend"
        for check in results:
            assert check.passed, f"{check.name}: {check.error:.3e} ({check.details})"
            assert check.error <= 1e-12

    @sweep
    @given(
        nu=st.integers(2, 8),
        p=st.floats(1e-4, 0.499),
        mutation=st.sampled_from(MUTATION_KINDS),
        seed=st.integers(0, 1000),
    )
    def test_exact_invariants_hold(self, nu, p, mutation, seed):
        spec = ProblemSpec(nu=nu, p=p, mutation=mutation, landscape="random", seed=seed)
        registry = default_registry()
        for check in registry.run_invariants(spec, as_generator(seed)):
            if check.exact:
                assert check.passed, f"{check.name}: {check.error:.3e}"


# --------------------------------------------------------------- enumeration
class TestRouteEnumeration:
    def test_uniform_single_peak_has_all_core_routes(self):
        from repro.model import QuasispeciesModel
        from repro.landscapes import SinglePeakLandscape

        labels = [
            r.label for r in solver_routes(QuasispeciesModel(SinglePeakLandscape(5), p=0.03))
        ]
        for expected in (
            "Pi(Fmmp)",
            "Pi(Fmmp, shifted)",
            "Pi(Xmvp(nu))",
            "Lanczos",
            "Arnoldi",
            "Dense",
            "Reduced(nu+1)",
        ):
            assert expected in labels

    def test_nonuniform_drops_uniform_only_routes(self):
        from repro.model import QuasispeciesModel
        from repro.verify.spec import ProblemSpec

        spec = ProblemSpec(nu=4, p=0.05, landscape="random", mutation="persite", seed=1)
        model = QuasispeciesModel(spec.build_landscape(), spec.build_mutation())
        labels = [r.label for r in solver_routes(model)]
        assert "Pi(Xmvp(nu))" not in labels
        assert "Reduced(nu+1)" not in labels
        assert all("shifted" not in label for label in labels)

    def test_kronecker_route_present_for_kronecker_landscape(self):
        from repro.model import QuasispeciesModel

        spec = ProblemSpec(nu=4, p=0.03, landscape="kronecker", seed=2)
        model = QuasispeciesModel(spec.build_landscape(), spec.build_mutation())
        labels = [r.label for r in solver_routes(model)]
        assert "Kronecker" in labels

    def test_every_paper_exactness_claim_has_an_invariant(self):
        """Acceptance criterion: Fmmp, shifted product, shift-invert,
        Lemma-2 reduction, and Kronecker factorization each map to a
        registry invariant."""
        names = set(invariant_names())
        assert {
            "fmmp-dense-equivalence",  # Eqs. 9-10 / Algorithm 1
            "shifted-product-exactness",  # Sec. 3 conservative shift
            "shift-invert-exactness",  # Sec. 3 FWHT shift-and-invert
            "lemma2-class-recovery",  # Lemma 2 / Eq. 14
            "kronecker-factorization",  # Sec. 5.2
            "xmvp-exactness",  # baseline [10]
            "fmmp-spectral-equivalence",  # Sec. 2 eigendecomposition
        } <= names

    def test_invariant_applicability_filters(self):
        registry = default_registry()
        uniform = ProblemSpec(nu=4, p=0.05)
        grouped = ProblemSpec(nu=4, p=0.05, mutation="grouped", landscape="random")
        assert "xmvp-exactness" in registry.check_names_for(uniform)
        assert "xmvp-exactness" not in registry.check_names_for(grouped)


# ------------------------------------------------------------ fault injection
class TestFaultInjection:
    """A deliberately broken backend must be caught and *named*."""

    def test_sign_error_in_fmmp_is_named(self, monkeypatch):
        from repro.operators.fmmp import Fmmp

        original = Fmmp.matvec

        def broken(self, v):
            out = original(self, v)
            out[0] = -out[0]  # single sign error in the master coordinate
            return out

        monkeypatch.setattr(Fmmp, "matvec", broken)
        report = run_verification("smoke", solvers=False)
        assert not report.passed
        assert "fmmp-dense-equivalence" in report.violated_names()

    def test_wrong_shift_is_named(self, monkeypatch):
        import repro.verify.invariants as inv_mod

        monkeypatch.setattr(
            inv_mod, "conservative_shift", lambda mut, ls: ls.fmax * 2.0
        )
        registry = default_registry()
        spec = ProblemSpec(nu=4, p=0.02)
        checks = registry.run_invariants(spec, as_generator(0))
        failed = {c.name for c in checks if not c.passed}
        assert "shift-safety" in failed

    def test_broken_backend_exception_is_reported_not_raised(self, monkeypatch):
        from repro.operators import xmvp as xmvp_mod

        def boom(self, v):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(xmvp_mod.Xmvp, "matvec", boom)
        spec = ProblemSpec(nu=4, p=0.02)
        results = run_product_oracles(spec, as_generator(0))
        bad = [c for c in results if "xmvp" in c.name]
        assert bad and not bad[0].passed
        assert "injected fault" in bad[0].details


# ------------------------------------------------------------- report plumbing
class TestReportPlumbing:
    def test_grid_names_buildable(self):
        for name in GRID_NAMES:
            specs = build_grid(name, nu=3, count=3)
            assert specs and all(isinstance(s, ProblemSpec) for s in specs)

    def test_json_roundtrip(self, tmp_path):
        report = run_verification("smoke", solvers=False)
        path = str(tmp_path / "report.json")
        save_verification_report(path, report)
        loaded = load_verification_report(path)
        assert isinstance(loaded, VerificationReport)
        assert loaded.passed == report.passed
        assert loaded.total_checks == report.total_checks
        assert loaded.check_names() == report.check_names()

    def test_violated_names_sorted_unique(self):
        report = run_verification("smoke", solvers=False)
        names = report.violated_names()
        assert names == sorted(set(names))

    def test_registry_probe_stream_is_seeded(self):
        spec = ProblemSpec(nu=4, p=0.03, landscape="random", seed=5)
        registry = default_registry()
        a = registry.run_spec(spec, rng=7, solvers=False)
        b = registry.run_spec(spec, rng=7, solvers=False)
        assert [c.error for c in a.checks] == [c.error for c in b.checks]

    def test_random_grid_respects_count_and_bounds(self):
        specs = build_grid("random", nu=5, count=11, seed=3)
        assert len(specs) == 11
        assert all(1 <= s.nu <= 5 for s in specs)
        assert all(0.0 < s.p <= 0.5 for s in specs)

"""Unit and property tests for error classes and XOR masks."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitops.classes import (
    error_class_indices,
    error_class_labels,
    error_class_representatives,
    error_class_sizes,
    masks_by_popcount,
    masks_up_to_distance,
)
from repro.bitops.popcount import hamming_distance, popcount
from repro.exceptions import ValidationError


class TestErrorClassIndices:
    def test_master_class_zero(self):
        np.testing.assert_array_equal(error_class_indices(4, 0), [0])

    def test_class_one_is_single_bits(self):
        np.testing.assert_array_equal(error_class_indices(4, 1), [1, 2, 4, 8])

    def test_sizes_match_binomials(self):
        nu = 7
        for k in range(nu + 1):
            assert len(error_class_indices(nu, k)) == math.comb(nu, k)

    def test_classes_partition_space(self):
        nu = 6
        all_idx = np.concatenate([error_class_indices(nu, k) for k in range(nu + 1)])
        assert sorted(all_idx) == list(range(1 << nu))

    def test_centered_class_is_xor_translate(self):
        nu, k, center = 5, 2, 0b10110
        cls = error_class_indices(nu, k, center)
        np.testing.assert_array_equal(
            np.sort(hamming_distance(cls, np.full(len(cls), center))), k
        )
        assert len(cls) == math.comb(nu, k)

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            error_class_indices(4, 5)

    def test_invalid_center(self):
        with pytest.raises(ValidationError):
            error_class_indices(4, 1, 16)


class TestLabelsSizesRepresentatives:
    def test_labels_match_popcount(self):
        nu = 8
        np.testing.assert_array_equal(
            error_class_labels(nu), popcount(np.arange(1 << nu))
        )

    def test_sizes(self):
        np.testing.assert_array_equal(error_class_sizes(4), [1, 4, 6, 4, 1])

    def test_representatives_have_right_distance(self):
        nu = 10
        reps = error_class_representatives(nu)
        assert len(reps) == nu + 1
        for k, r in enumerate(reps):
            assert popcount(int(r)) == k


class TestMasks:
    def test_popcount_zero(self):
        np.testing.assert_array_equal(masks_by_popcount(5, 0), [0])

    def test_popcount_one_is_powers_of_two(self):
        np.testing.assert_array_equal(masks_by_popcount(5, 1), [1, 2, 4, 8, 16])

    def test_full_popcount(self):
        np.testing.assert_array_equal(masks_by_popcount(5, 5), [31])

    def test_counts_and_increasing(self):
        nu = 8
        for k in range(nu + 1):
            m = masks_by_popcount(nu, k)
            assert len(m) == math.comb(nu, k)
            assert np.all(np.diff(m) > 0), "Gosper enumeration must be increasing"
            np.testing.assert_array_equal(popcount(m), k)

    @given(st.integers(1, 12), st.data())
    def test_masks_property(self, nu, data):
        k = data.draw(st.integers(0, nu))
        m = masks_by_popcount(nu, k)
        assert len(set(int(x) for x in m)) == math.comb(nu, k)
        assert all(0 <= int(x) < (1 << nu) for x in m)

    def test_up_to_distance(self):
        groups = masks_up_to_distance(6, 3)
        assert len(groups) == 4
        total = sum(len(g) for g in groups)
        assert total == sum(math.comb(6, k) for k in range(4))

    def test_up_to_distance_invalid(self):
        with pytest.raises(ValidationError):
            masks_up_to_distance(4, 5)

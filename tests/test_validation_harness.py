"""Tests for the cross-solver consistency harness."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import PerSiteMutation
from repro.validation import crosscheck


class TestCrosscheck:
    def test_random_landscape_consistent(self):
        report = crosscheck(RandomLandscape(8, c=5.0, sigma=1.0, seed=2), p=0.01)
        assert report.consistent
        labels = [o.label for o in report.outcomes]
        assert "Pi(Fmmp)" in labels and "Pi(Xmvp(nu))" in labels
        assert "Dense" in labels  # nu <= 10
        assert report.max_eigenvalue_spread < 1e-8
        assert report.max_concentration_spread < 1e-8

    def test_hamming_landscape_includes_reduced(self):
        report = crosscheck(SinglePeakLandscape(8), p=0.01)
        assert report.consistent
        assert any(o.label.startswith("Reduced") for o in report.outcomes)

    def test_per_site_mutation_routes(self):
        mut = PerSiteMutation.from_error_rates([0.01, 0.03, 0.02, 0.01, 0.02, 0.04])
        report = crosscheck(RandomLandscape(6, seed=1), mut)
        assert report.consistent
        labels = [o.label for o in report.outcomes]
        assert "Pi(Xmvp(nu))" not in labels, "xmvp needs the uniform model"
        assert all("shifted" not in lbl for lbl in labels)

    def test_summary_rows_shape(self):
        report = crosscheck(RandomLandscape(7, seed=3), p=0.02)
        rows = report.summary_rows()
        assert len(rows) == len(report.outcomes)
        assert all(len(r) == 4 for r in rows)

    def test_needs_model_inputs(self):
        with pytest.raises(ValidationError):
            crosscheck(RandomLandscape(6, seed=0))  # neither mutation nor p

    def test_large_nu_skips_dense(self):
        report = crosscheck(RandomLandscape(11, seed=4), p=0.01, tol=1e-10, accept=1e-6)
        assert report.consistent
        assert all(o.label != "Dense" for o in report.outcomes)


class TestCrosscheckCli:
    def test_command_runs_consistent(self, capsys):
        from repro.cli import main

        assert main(["crosscheck", "--nu", "8", "--p", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "consistent" in out and "Pi(Fmmp)" in out

    def test_hamming_landscape_cli(self, capsys):
        from repro.cli import main

        assert main(["crosscheck", "--landscape", "single-peak", "--nu", "8",
                     "--peak", "2.0"]) == 0
        assert "Reduced" in capsys.readouterr().out

"""Tests for the batch planner: dedup, grouping, cost ordering."""

import pytest

from repro.service import SolveJob, estimate_cost, plan_batch


def _reduced(p: float, **kw) -> SolveJob:
    return SolveJob(nu=8, p=p, **kw)  # single-peak + uniform → reduced


def _full(p: float, **kw) -> SolveJob:
    kw.setdefault("landscape", "random")
    return SolveJob(nu=8, p=p, method="power", **kw)


class TestDedup:
    def test_duplicates_collapse(self):
        jobs = [_reduced(0.01), _reduced(0.02), _reduced(0.01)]
        plan = plan_batch(jobs)
        assert plan.n_unique == 2 and plan.n_duplicates == 1
        assert plan.index_map == [0, 1, 0]
        assert plan.multiplicity(0) == 2 and plan.multiplicity(1) == 1

    def test_tol_differences_are_distinct_jobs(self):
        # dedup keys on the full content hash: different tol = different job
        jobs = [_reduced(0.01, tol=1e-12), _reduced(0.01, tol=1e-6)]
        assert plan_batch(jobs).n_unique == 2

    def test_empty_batch(self):
        plan = plan_batch([])
        assert plan.n_jobs == 0 and plan.order == []


class TestOrdering:
    def test_reduced_groups_run_first(self):
        jobs = [_full(0.01), _reduced(0.02), _full(0.03)]
        plan = plan_batch(jobs)
        order = plan.order
        # the reduced job (unique index 1) must come before both full jobs
        assert order.index(1) == 0

    def test_cheaper_groups_first_within_tier(self):
        small = SolveJob(nu=4, p=0.01, landscape="random", method="power")
        big = SolveJob(nu=10, p=0.01, landscape="random", method="power")
        plan = plan_batch([big, small])
        assert plan.order == [1, 0]

    def test_deterministic(self):
        jobs = [_full(0.01), _reduced(0.02), _full(0.03), _reduced(0.02)]
        a, b = plan_batch(jobs), plan_batch(jobs)
        assert a.order == b.order and a.index_map == b.index_map


class TestGrouping:
    def test_shared_operator_one_group(self):
        # same ν, p, mutation family, seed → one operator group
        a = _full(0.02, mutation="persite", seed=3)
        b = _full(0.02, mutation="persite", seed=3, operator="fmmp", form="left")
        plan = plan_batch([a, b])
        assert len(plan.groups) == 1
        assert sorted(plan.groups[0].indices) == [0, 1]

    def test_different_p_different_groups(self):
        plan = plan_batch([_full(0.02), _full(0.03)])
        assert len(plan.groups) == 2

    def test_group_of(self):
        plan = plan_batch([_full(0.02), _reduced(0.01)])
        assert plan.group_of(0).reduced is False
        assert plan.group_of(1).reduced is True
        with pytest.raises(IndexError):
            plan.group_of(99)

    def test_to_dict_summary(self):
        plan = plan_batch([_reduced(0.01), _reduced(0.01), _full(0.02)])
        summary = plan.to_dict()
        assert summary["jobs"] == 3
        assert summary["unique_jobs"] == 2
        assert summary["duplicates"] == 1
        assert summary["reduced_jobs"] == 1


class TestCostModel:
    def test_reduced_far_cheaper_than_full(self):
        assert estimate_cost(_reduced(0.01)) < estimate_cost(_full(0.01)) / 100

    def test_dense_scales_with_n_cubed(self):
        small = SolveJob(nu=4, p=0.01, landscape="random", method="dense")
        big = SolveJob(nu=8, p=0.01, landscape="random", method="dense")
        assert estimate_cost(big) / estimate_cost(small) == pytest.approx(16.0**3)

    def test_kronecker_cheaper_than_dense(self):
        kron = SolveJob(nu=8, p=0.01, landscape="kronecker", mutation="grouped")
        dense = SolveJob(nu=8, p=0.01, landscape="random", method="dense")
        assert estimate_cost(kron) < estimate_cost(dense)

    def test_xmvp_dmax_defaults(self):
        job = SolveJob(nu=6, p=0.01, landscape="random", method="power", operator="xmvp")
        assert estimate_cost(job) > 0

"""Tests for the Arnoldi solver on non-symmetric problems."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes import RandomLandscape
from repro.mutation import PerSiteMutation, UniformMutation, site_factor
from repro.operators import Fmmp
from repro.solvers import Arnoldi, PowerIteration, dense_solve


@pytest.fixture
def asymmetric_problem():
    """Per-site mutation with strong asymmetric rates: Q (hence W in any
    form) is genuinely non-symmetric."""
    nu = 7
    factors = [site_factor(0.01 + 0.01 * s, 0.05 + 0.02 * s) for s in range(nu)]
    mut = PerSiteMutation(factors)
    assert not mut.is_symmetric
    ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=19)
    return mut, ls, dense_solve(mut, ls)


class TestCorrectness:
    def test_matches_dense_on_asymmetric_w(self, asymmetric_problem):
        mut, ls, ref = asymmetric_problem
        op = Fmmp(mut, ls, form="right")
        res = Arnoldi(op, tol=1e-11).solve(ls.start_vector(), landscape=ls, form="right")
        assert res.eigenvalue == pytest.approx(ref.eigenvalue, abs=1e-8)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-7)

    def test_matches_dense_on_symmetric_case(self):
        nu, p = 7, 0.02
        mut = UniformMutation(nu, p)
        ls = RandomLandscape(nu, c=5.0, sigma=1.0, seed=2)
        ref = dense_solve(mut, ls)
        op = Fmmp(mut, ls, form="right")
        res = Arnoldi(op, tol=1e-11).solve(ls.start_vector(), landscape=ls)
        np.testing.assert_allclose(res.concentrations, ref.concentrations, atol=1e-8)

    def test_fewer_matvecs_than_power_iteration(self, asymmetric_problem):
        mut, ls, _ = asymmetric_problem
        op = Fmmp(mut, ls, form="right")
        arn = Arnoldi(op, tol=1e-10).solve(ls.start_vector())
        pi = PowerIteration(op, tol=1e-10).solve(ls.start_vector())
        assert arn.iterations < pi.iterations


class TestFailureModes:
    def test_basis_cap_raises(self, asymmetric_problem):
        mut, ls, _ = asymmetric_problem
        op = Fmmp(mut, ls, form="right")
        with pytest.raises(ConvergenceError):
            Arnoldi(op, tol=1e-15, max_basis=3).solve(ls.start_vector())

    def test_no_raise_mode(self, asymmetric_problem):
        mut, ls, _ = asymmetric_problem
        op = Fmmp(mut, ls, form="right")
        res = Arnoldi(op, tol=1e-15, max_basis=3).solve(
            ls.start_vector(), raise_on_fail=False
        )
        assert not res.converged

    def test_zero_start_rejected(self, asymmetric_problem):
        mut, ls, _ = asymmetric_problem
        op = Fmmp(mut, ls, form="right")
        with pytest.raises(ValidationError):
            Arnoldi(op).solve(np.zeros(op.n))

    def test_small_basis_rejected(self, asymmetric_problem):
        mut, ls, _ = asymmetric_problem
        with pytest.raises(ValidationError):
            Arnoldi(Fmmp(mut, ls), max_basis=1)

"""Tests for the canonical job specs and content hashing."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.service import (
    JOB_METHODS,
    JobResult,
    ProblemSpec,
    SolveJob,
    canonical_payload,
    content_hash,
)
from repro.verify import spec as verify_spec


class TestCanonicalPayload:
    def test_floats_hash_exactly(self):
        # 0.1 + 0.2 != 0.3 — float.hex canonicalization must keep them apart
        assert content_hash(0.1 + 0.2) != content_hash(0.3)
        assert canonical_payload(0.5) == (0.5).hex()

    def test_numpy_scalars_and_arrays(self):
        assert canonical_payload(np.float64(0.5)) == (0.5).hex()
        assert canonical_payload(np.int64(3)) == 3
        assert canonical_payload(np.array([1.0, 2.0])) == [(1.0).hex(), (2.0).hex()]

    def test_tuples_and_lists_agree(self):
        assert content_hash((1, 2.0, "x")) == content_hash([1, 2.0, "x"])

    def test_dict_key_order_irrelevant(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_unhashable_type_raises(self):
        with pytest.raises(ValidationError):
            canonical_payload(object())

    def test_digest_is_stable(self):
        # the exact digest is part of the on-disk cache contract
        a = content_hash({"nu": 4, "p": 0.01})
        b = content_hash({"nu": 4, "p": 0.01})
        assert a == b and len(a) == 64


class TestSharedProblemSpec:
    def test_verify_spec_is_the_service_spec(self):
        # satellite 1: one shared source of truth, no parallel definitions
        assert verify_spec.ProblemSpec is ProblemSpec
        assert verify_spec.LANDSCAPE_KINDS == ("single-peak", "linear", "flat", "random", "kronecker")

    def test_content_key_deterministic(self):
        a = ProblemSpec(nu=5, p=0.03, landscape="random", seed=7)
        b = ProblemSpec(nu=5, p=0.03, landscape="random", seed=7)
        assert a.content_key() == b.content_key()
        assert a.content_key() != a.with_(seed=8).content_key()


class TestSolveJobValidation:
    def test_defaults_valid(self):
        job = SolveJob(nu=6, p=0.01)
        assert job.n == 64 and job.method == "auto"

    def test_hamming_requires_class_values(self):
        with pytest.raises(ValidationError):
            SolveJob(nu=4, p=0.01, landscape="hamming")

    def test_hamming_class_values_length_checked(self):
        with pytest.raises(ValidationError):
            SolveJob(nu=4, p=0.01, landscape="hamming", class_values=(1.0, 2.0))

    def test_class_values_coerced_to_float_tuple(self):
        job = SolveJob(nu=2, p=0.01, landscape="hamming", class_values=[2, 1, 1])
        assert job.class_values == (2.0, 1.0, 1.0)

    def test_class_values_rejected_for_named_landscapes(self):
        with pytest.raises(ValidationError):
            SolveJob(nu=2, p=0.01, landscape="single-peak", class_values=(2.0, 1.0, 1.0))

    def test_bad_method_rejected(self):
        with pytest.raises(ValidationError):
            SolveJob(nu=4, p=0.01, method="magic")

    def test_bad_tol_rejected(self):
        with pytest.raises(ValidationError):
            SolveJob(nu=4, p=0.01, tol=0.0)

    def test_dmax_range_checked(self):
        with pytest.raises(ValidationError):
            SolveJob(nu=4, p=0.01, dmax=9)


class TestContentKeys:
    def test_cache_key_ignores_accuracy_knobs(self):
        a = SolveJob(nu=6, p=0.02, tol=1e-12, max_iterations=1000, tag="x")
        b = SolveJob(nu=6, p=0.02, tol=1e-6, max_iterations=50, tag="y")
        assert a.cache_key() == b.cache_key()
        assert a.content_key() != b.content_key()

    def test_cache_key_sees_route(self):
        a = SolveJob(nu=6, p=0.02, method="power")
        b = SolveJob(nu=6, p=0.02, method="lanczos")
        assert a.cache_key() != b.cache_key()

    def test_operator_key_groups_shared_mutation(self):
        a = SolveJob(nu=6, p=0.02, landscape="random", mutation="persite", seed=3, method="power")
        b = SolveJob(nu=6, p=0.02, landscape="kronecker", mutation="persite", seed=3, method="lanczos")
        c = SolveJob(nu=6, p=0.03, landscape="random", mutation="persite", seed=3, method="power")
        assert a.operator_key() == b.operator_key()  # same operator, different problems
        assert a.operator_key() != c.operator_key()  # different p → different operator


class TestRouteResolution:
    def test_auto_dispatch(self):
        assert SolveJob(nu=6, p=0.02).resolved_method() == "reduced"
        assert SolveJob(nu=6, p=0.02, landscape="random").resolved_method() == "power"
        assert (
            SolveJob(nu=6, p=0.02, landscape="kronecker", mutation="grouped").resolved_method()
            == "kronecker"
        )

    def test_explicit_method_wins(self):
        assert SolveJob(nu=6, p=0.02, method="dense").resolved_method() == "dense"

    def test_all_job_methods_constructible(self):
        for method in JOB_METHODS:
            SolveJob(nu=4, p=0.02, landscape="random", method=method)


class TestSerialization:
    def test_round_trip(self):
        job = SolveJob(
            nu=4, p=0.03, landscape="hamming", class_values=(2.0, 1.0, 1.0, 1.0, 1.0),
            method="reduced", tol=1e-10, tag="sweep",
        )
        again = SolveJob.from_dict(job.to_dict())
        assert again == job
        assert again.content_key() == job.content_key()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValidationError):
            SolveJob.from_dict({"nu": 4, "p": 0.01, "speed": "ludicrous"})

    def test_from_problem(self):
        spec = ProblemSpec(nu=5, p=0.04, landscape="random", mutation="persite", seed=2)
        job = SolveJob.from_problem(spec, method="power", tol=1e-9)
        assert (job.nu, job.p, job.seed, job.method, job.tol) == (5, 0.04, 2, "power", 1e-9)
        assert job.problem() == spec

    def test_job_result_round_trip(self):
        result = JobResult(
            eigenvalue=1.9,
            concentrations=np.array([0.7, 0.2, 0.1]),
            method="reduced",
            iterations=1,
            residual=1e-15,
            converged=True,
            tol=1e-12,
        )
        again = JobResult.from_dict(result.to_dict())
        assert again.eigenvalue == result.eigenvalue
        np.testing.assert_array_equal(again.concentrations, result.concentrations)
        assert again.converged and again.tol == result.tol


class TestBuilders:
    def test_hamming_landscape_build(self):
        job = SolveJob(nu=3, p=0.01, landscape="hamming", class_values=(3.0, 1.0, 1.0, 1.0))
        ls = job.build_landscape()
        np.testing.assert_array_equal(ls.class_values(), [3.0, 1.0, 1.0, 1.0])

    def test_named_builds_match_problem_spec(self):
        job = SolveJob(nu=4, p=0.05, landscape="random", mutation="persite", seed=6)
        spec = job.problem()
        np.testing.assert_array_equal(
            job.build_landscape().values(), spec.build_landscape().values()
        )

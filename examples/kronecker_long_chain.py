"""Kronecker landscapes — quasispecies for chain length ν = 100.

The paper (Sec. 5.2): "the quasispecies model for a chain length ν = 100
(which occurs in existing viruses of interest) is by far out of reach of
any of the currently available computational technology.  However, for a
Kronecker fitness landscape with g = 4 it could be reduced to four
subproblems of dimension 2²⁵."

This example does exactly that (with g = 10 groups of 10 sites to keep
the demo snappy): solves the decoupled subproblems, then queries the
*implicit* eigenvector — cumulative error-class concentrations and the
per-class min/max concentrations the paper proposes as an
error-threshold diagnostic — without ever materializing 2¹⁰⁰ values.

Run:  python examples/kronecker_long_chain.py
"""

import numpy as np

from repro.landscapes import KroneckerLandscape
from repro.mutation import UniformMutation
from repro.solvers import KroneckerSolver

NU = 100
GROUPS = 10
P = 0.005
SEED = 7


def main() -> None:
    bits = NU // GROUPS
    rng = np.random.default_rng(SEED)
    # Each group: a rugged factor with a locally fit "wild type" state 0.
    diagonals = []
    for _ in range(GROUPS):
        d = rng.random(1 << bits) + 0.5
        d[0] = 2.0
        diagonals.append(d)
    landscape = KroneckerLandscape(diagonals)
    print(f"landscape: nu={landscape.nu}, groups={landscape.group_sizes}")
    print(f"degrees of freedom: {landscape.degrees_of_freedom} "
          f"(vs nu+1={NU + 1} for Hamming landscapes; full would be 2^{NU})")
    print(f"full problem size: 2^{NU} ≈ {2.0**NU:.2e} sequences\n")

    solver = KroneckerSolver(UniformMutation(NU, P), landscape)
    result = solver.solve()
    print(f"dominant eigenvalue (mean fitness): {result.eigenvalue:.6f}")
    print("subproblem eigenvalues:",
          " ".join(f"{r.eigenvalue:.4f}" for r in result.sub_results))

    vec = result.eigenvector
    print(f"\nmaster-sequence concentration x_0 = {vec.value_at(0):.3e}")

    gamma = vec.class_concentrations()
    print("\ncumulative error-class concentrations (first 12 classes):")
    for k in range(12):
        print(f"  [Gamma_{k:<2d}] = {gamma[k]:.4e}")
    print(f"  (all {NU + 1} classes sum to {gamma.sum():.6f})")

    lo, hi = vec.class_extrema()
    print("\nper-class single-sequence concentration ranges (threshold diagnostic):")
    for k in (0, 1, 5, 20, 50):
        print(f"  Gamma_{k:<2d}: min {lo[k]:.3e}   max {hi[k]:.3e}   spread {hi[k] / lo[k]:.2f}x")
    print(
        "\nAn ordered distribution (spread >> 1 within classes, mass near the "
        "master) — all read off an eigenvector that was never materialized."
    )


if __name__ == "__main__":
    main()

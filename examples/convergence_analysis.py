"""Convergence analysis — the spectral gap in action (paper Sec. 3).

The power iteration converges at rate λ₁/λ₀ and the paper's shift
improves this to (λ₁−μ)/(λ₀−μ).  This example measures all of it on a
random landscape:

* the true gap via deflation (one extra stored vector),
* the empirical rate from the solver's residual history,
* the predicted vs actual iteration counts, plain and shifted,
* and how the gap collapses — and the solver slows — near the error
  threshold of a single-peak landscape.

Run:  python examples/convergence_analysis.py
"""

import numpy as np

from repro.analysis.spectral import (
    estimate_rate_from_history,
    predicted_iterations,
    spectral_gap,
)
from repro.analysis.statistics import summarize
from repro.landscapes import RandomLandscape, SinglePeakLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp, ShiftedOperator
from repro.operators.shifted import conservative_shift
from repro.solvers import PowerIteration, dense_solve

NU = 10
P = 0.02


def main() -> None:
    mut = UniformMutation(NU, P)
    ls = RandomLandscape(NU, c=5.0, sigma=1.0, seed=23)
    op = Fmmp(mut, ls, form="symmetric")
    ref = dense_solve(mut, ls, form="symmetric")

    gap = spectral_gap(op, ref.eigenvalue, ref.eigenvector)
    print(f"dominant eigenvalue     lambda_0 = {ref.eigenvalue:.8f}")
    print(f"spectral gap (deflated) lambda_1/lambda_0 = {gap:.6f}")

    start = np.sqrt(ls.values())
    plain = PowerIteration(op, tol=1e-12, record_history=True).solve(start)
    rate = estimate_rate_from_history(plain.history)
    print(f"\nplain power iteration   : {plain.iterations} iterations")
    print(f"empirical rate           : {rate:.6f} (theory: {gap:.6f})")

    mu = conservative_shift(mut, ls)
    shifted = PowerIteration(ShiftedOperator(op, mu), tol=1e-12, record_history=True).solve(start)
    shifted_rate = estimate_rate_from_history(shifted.history)
    print(f"\nshifted (mu = {mu:.3e}) : {shifted.iterations} iterations "
          f"({1 - shifted.iterations / plain.iterations:.0%} saved; paper: ~10%+)")
    print(f"shifted empirical rate   : {shifted_rate:.6f}")

    anchor = plain.history[4]
    remaining = predicted_iterations(rate, start_residual=anchor.residual, tol=1e-12)
    print(f"\nprediction check: from iteration 5 the rate model forecasts "
          f"{remaining} more iterations; the solver used {plain.iterations - 5}.")

    print("\n--- gap collapse near the error threshold (single peak) ---")
    sp = SinglePeakLandscape(NU, 2.0, 1.0)
    print("     p    lambda1/lambda0   iterations   phase")
    for p in (0.01, 0.04, 0.0675, 0.1):
        m = UniformMutation(NU, p)
        o = Fmmp(m, sp, form="symmetric")
        r = dense_solve(m, sp, form="symmetric")
        g = spectral_gap(o, r.eigenvalue, r.eigenvector, tol=1e-8)
        pi = PowerIteration(o, tol=1e-10, max_iterations=10**6).solve(np.sqrt(sp.values()))
        s = summarize(r.concentrations, NU)
        phase = "ordered" if s.is_ordered else "delocalized"
        print(f"  {p:.4f}      {g:.6f}      {pi.iterations:8d}   {phase}")
    print(
        "\nThe solver is slowest exactly at the threshold — the spectral "
        "degeneracy that drives the Fig. 1 collapse also sets the cost of "
        "computing it."
    )


if __name__ == "__main__":
    main()

"""Generalized mutation processes (paper Sec. 2.2).

The uniform-error-rate assumption is the quasispecies model's oldest
criticism.  The fast solver never needed it: this example builds three
increasingly general mutation processes on the same rugged landscape and
compares the stationary distributions —

1. the classic uniform model (every site flips with probability p),
2. per-site rates with a mutational hot spot and a repair-biased site,
3. grouped (Eq. 11) factors where two adjacent sites mutate dependently
   (double mutations suppressed).

All three run through the same Θ(N log₂ N) machinery.

Run:  python examples/general_mutation.py
"""

import numpy as np

from repro.landscapes import RandomLandscape
from repro.model import QuasispeciesModel, class_concentrations
from repro.mutation import GroupedMutation, PerSiteMutation, UniformMutation, site_factor

NU = 12
P = 0.02
SEED = 42


def correlated_pair_block(p: float) -> np.ndarray:
    """4×4 column-stochastic block for two linked sites: single flips at
    rate p each, simultaneous double flips suppressed entirely."""
    return np.array(
        [
            [1 - 2 * p, p, p, 0.0],
            [p, 1 - 2 * p, 0.0, p],
            [p, 0.0, 1 - 2 * p, p],
            [0.0, p, p, 1 - 2 * p],
        ]
    )


def main() -> None:
    landscape = RandomLandscape(NU, c=5.0, sigma=1.0, seed=SEED)

    # 1. Uniform.
    uniform = UniformMutation(NU, P)

    # 2. Per-site: site 3 is a mutational hot spot (10x), site 7 has a
    #    strong 1->0 repair bias.
    factors = [site_factor(P) for _ in range(NU)]
    factors[3] = site_factor(10 * P)
    factors[7] = site_factor(P, 10 * P)
    per_site = PerSiteMutation(factors)

    # 3. Grouped: the two most significant sites form a correlated pair;
    #    the remaining 10 sites stay independent (paper ⊗ order: the
    #    pair block first = most significant bits).
    grouped = GroupedMutation([correlated_pair_block(P)] + [site_factor(P)] * (NU - 2))

    print(f"random landscape (Eq. 13) nu={NU}, c=5, sigma=1, seed={SEED}\n")
    results = {}
    for label, mutation in [
        ("uniform", uniform),
        ("per-site (hot spot + repair)", per_site),
        ("grouped (correlated pair)", grouped),
    ]:
        model = QuasispeciesModel(landscape, mutation)
        res = model.solve("power", tol=1e-12)
        results[label] = res
        gamma = class_concentrations(res.concentrations, NU)
        print(f"{label:30s} lambda_0 = {res.eigenvalue:.6f}  iters = {res.iterations:4d}")
        print(f"{'':30s} [G0..G4] = " + " ".join(f"{g:.4f}" for g in gamma[:5]))

    # The generalizations matter: distributions measurably differ.
    base = results["uniform"].concentrations
    for label in ("per-site (hot spot + repair)", "grouped (correlated pair)"):
        delta = np.abs(results[label].concentrations - base).max()
        print(f"\nmax concentration shift vs uniform [{label}]: {delta:.2e}")

    print(
        "\nSame Θ(N log N) solver for all three — the generality the "
        "approximative methods of the prior literature cannot reach."
    )


if __name__ == "__main__":
    main()

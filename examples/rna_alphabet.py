"""Four-letter RNA alphabet (the Sec. 5.2 extension, implemented).

The paper notes that for Kronecker-structured models it is "relatively
easy to extend the quasispecies model beyond a binary alphabet to the
full four element RNA alphabet".  This example does it: each nucleotide
is a 2-bit Kronecker group with a 4×4 Kimura two-parameter substitution
block (transitions A↔G / C↔U at rate alpha, transversions at beta), and
the standard solvers run unchanged.

We model a 6-nucleotide RNA (ν = 12 bits, 4⁶ = 4096 sequences) with a
fit wild-type sequence and compare a transition-biased virus (alpha ≫
beta, the biologically typical case) with an unbiased one.

Run:  python examples/rna_alphabet.py
"""

import numpy as np

from repro.landscapes import TabulatedLandscape
from repro.model import QuasispeciesModel
from repro.mutation import NUCLEOTIDE_ORDER, rna_mutation

LENGTH = 6  # nucleotides; chain length in bits is 2 * LENGTH


def decode(i: int, length: int) -> str:
    """Sequence index -> letters (first block = 5'-most nucleotide)."""
    letters = []
    for pos in range(length):
        shift = 2 * (length - 1 - pos)
        letters.append(NUCLEOTIDE_ORDER[(i >> shift) & 0b11])
    return "".join(letters)


def main() -> None:
    n = 4**LENGTH
    rng = np.random.default_rng(11)
    fitness = rng.random(n) * 0.5 + 0.75
    fitness[0] = 3.0  # wild type: AAAAAA
    landscape = TabulatedLandscape(fitness)

    for label, alpha, beta in [
        ("transition-biased (alpha=0.02, beta=0.002)", 0.02, 0.002),
        ("unbiased Jukes-Cantor (alpha=beta=0.008)", 0.008, None),
    ]:
        mutation = rna_mutation(length=LENGTH, alpha=alpha, beta=beta)
        model = QuasispeciesModel(landscape, mutation)
        res = model.solve("power", tol=1e-12)
        x = res.concentrations
        print(f"== {label} ==")
        print(f"  lambda_0 = {res.eigenvalue:.6f}   iterations = {res.iterations}")
        top = np.argsort(x)[::-1][:6]
        for i in top:
            print(f"    {decode(int(i), LENGTH)}  {x[i]:.5f}")
        # Mutational cloud structure: single-transition neighbors of the
        # wild type vs single-transversion neighbors.
        transitions = [0b01 << (2 * pos) for pos in range(LENGTH)]
        transversions = [0b10 << (2 * pos) for pos in range(LENGTH)]
        t_mass = sum(x[i] for i in transitions)
        v_mass = sum(x[i] for i in transversions)
        print(f"  mass on transition neighbors   : {t_mass:.5f}")
        print(f"  mass on transversion neighbors : {v_mass:.5f}"
              f"   (ratio {t_mass / v_mass:.1f}x)\n")

    print(
        "Transition bias reshapes the quasispecies cloud — a structure the "
        "binary uniform-rate model cannot express, available here at the "
        "same Θ(N·Σ 2^{g_i}) cost."
    )


if __name__ == "__main__":
    main()

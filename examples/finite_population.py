"""Finite populations — stochastic Wright–Fisher vs the deterministic limit.

Eq. (1) describes an infinite population; real viral populations are
finite and drift matters (the paper's reference [11], Nowak & Schuster
1989, is about exactly this).  This example simulates Wright–Fisher
dynamics with the library's fast mutation/selection kernel and shows

1. convergence of the time-averaged distribution to the eigenvector
   solution as the population grows, and
2. the finite-population error catastrophe: near the deterministic
   threshold, small populations lose the master sequence to drift while
   large ones keep it.

Run:  python examples/finite_population.py
"""

import numpy as np

from repro.landscapes import SinglePeakLandscape
from repro.model.concentrations import class_concentrations
from repro.mutation import UniformMutation
from repro.population import WrightFisher
from repro.solvers import ReducedSolver

NU = 10
P = 0.02


def main() -> None:
    landscape = SinglePeakLandscape(NU, 2.0, 1.0)
    mutation = UniformMutation(NU, P)
    det = ReducedSolver(NU, P, landscape).solve()
    print(f"deterministic [Gamma_0] = {det.concentrations[0]:.4f} "
          f"(lambda_0 = {det.eigenvalue:.5f})\n")

    print("1) infinite-population limit: time-averaged [Gamma_0] vs population size")
    for m in (100, 1_000, 10_000, 100_000):
        wf = WrightFisher(mutation, landscape, m, seed=1)
        stats = wf.run(400, burn_in=100)
        g0 = stats.mean_class_concentrations[0]
        print(f"   M = {m:>7d}: [Gamma_0] = {g0:.4f}   "
              f"mean fitness = {stats.mean_fitness:.5f}   "
              f"|error| = {abs(g0 - det.concentrations[0]):.4f}")

    print("\n2) finite-population error catastrophe near the threshold")
    p_near = 0.065  # deterministic threshold ~ ln2/10 = 0.069
    mut_near = UniformMutation(NU, p_near)
    print(f"   p = {p_near} (deterministic threshold ~ {np.log(2) / NU:.3f})")
    for m in (30, 300, 30_000):
        extinctions = 0
        trials = 8
        for seed in range(trials):
            wf = WrightFisher(mut_near, landscape, m, seed=seed)
            stats = wf.run(400)
            extinctions += stats.master_extinction_generation is not None
        print(f"   M = {m:>6d}: master extinct in {extinctions}/{trials} runs")

    print(
        "\nSmall populations cross into the error catastrophe below the "
        "deterministic p_max — drift effectively lowers the threshold "
        "(Nowak & Schuster 1989, the paper's ref. [11])."
    )


if __name__ == "__main__":
    main()

"""Batch solving through the solver service — manifests, cache, fallback.

Builds an error-threshold sweep manifest with deliberate duplicates,
submits it to :class:`repro.service.SolverService`, and shows what the
service layer buys you:

* duplicates are answered by a single physical solve (content hashing),
* re-submitting the batch is served entirely from the result cache,
* a looser-tolerance request is satisfied by the tighter cached solve.

The same manifest can be run from the shell:

    repro-quasispecies batch manifest.json --cache-dir .repro-cache

Run:  python examples/batch_sweep.py
"""

import numpy as np

from repro.service import SolveJob, SolverService

NU = 16  # chain length (the reduced route solves in (nu+1) dimensions)


def main() -> None:
    # A sweep manifest: 20 grid points, then 10 repeated "favourites" —
    # the shape of a study that revisits the interesting region.
    rates = np.linspace(0.002, 0.04, 20)
    values = tuple([2.0] + [1.0] * NU)  # single-peak class fitness values
    jobs = [
        SolveJob(nu=NU, p=float(p), landscape="hamming", class_values=values,
                 method="reduced", tol=1e-12)
        for p in rates
    ]
    jobs += jobs[5:15]  # 10 duplicates

    service = SolverService(kind="serial", capacity=64)
    report = service.submit(jobs)
    print(f"submitted {report.n_jobs} jobs "
          f"({report.n_duplicates} duplicates collapsed by the scheduler)")
    print(f"cold batch: {report.n_solved} solved, {report.n_cached} from cache "
          f"[{report.wall_seconds * 1e3:.1f} ms]")

    print("\np        lambda_0     Gamma_0   route")
    for i in (0, 9, 19):
        job, result, tele = report.entry(i)
        print(f"{job.p:<8.4f} {result.eigenvalue:<12.8f} "
              f"{result.concentrations[0]:<9.5f} {tele.route}")

    # Re-submit: the cache answers everything, zero new solves.
    warm = service.submit(jobs)
    print(f"\nwarm batch: {warm.n_solved} solved, {warm.n_cached} from cache "
          f"[{warm.wall_seconds * 1e3:.1f} ms]")

    # Tolerance awareness: a looser request is served by the tighter
    # cached solve (a tighter answer is strictly better).
    loose = service.submit([jobs[0].with_(tol=1e-8)])
    print(f"loose-tolerance request: "
          f"{'cache hit' if loose.n_cached == 1 else 'solved'} "
          f"(cached tol={loose.results[0].tol:g} satisfies tol=1e-8)")

    stats = service.cache.stats
    print(f"\ncache accounting: {stats.memory_hits} memory hits, "
          f"{stats.misses} misses, {stats.stores} stores, "
          f"{stats.evictions} evictions")


if __name__ == "__main__":
    main()

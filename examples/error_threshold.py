"""Error-threshold study — regenerates the content of the paper's Fig. 1.

Sweeps the error rate p for two ν = 20 landscapes and prints the
cumulative error-class concentration curves:

* single peak (f0 = 2, rest 1): sharp error threshold at p_max ≈ 0.035 —
  above it the population collapses into random replication;
* linear decay (f0 = 2 → fν = 1): smooth transition, no threshold.

The sudden transition is the phenomenon behind mutagenesis-based
antiviral strategies (Eigen 2002): real RNA virus error rates sit close
to the critical value, and drugs can push them over it.

Run:  python examples/error_threshold.py
"""

import numpy as np

from repro.landscapes import LinearLandscape, SinglePeakLandscape
from repro.model.threshold import sweep_error_rates

NU = 20
RATES = np.linspace(0.0025, 0.09, 36)
SHOWN = (0, 1, 2, 5, 10)


def show(landscape, title: str) -> None:
    sweep = sweep_error_rates(landscape, RATES)
    print(f"\n=== {title} ===")
    header = "      p  " + "".join(f"  [G{k:<2d}]   " for k in SHOWN)
    print(header)
    for i, p in enumerate(sweep.error_rates):
        row = sweep.class_concentrations[i]
        cells = "".join(f"{row[k]:9.5f} " for k in SHOWN)
        print(f"  {p:.4f} {cells}")
    if sweep.p_max is not None:
        print(f"--> error threshold detected at p_max = {sweep.p_max:.4f} (paper: ~0.035)")
    else:
        print("--> no error threshold: smooth transition into the uniform distribution")


def main() -> None:
    show(SinglePeakLandscape(NU, 2.0, 1.0), "single-peak landscape, nu=20 (Fig. 1 left)")
    show(LinearLandscape(NU, 2.0, 1.0), "linear landscape, nu=20 (Fig. 1 right)")

    # Threshold scaling check: the classic estimate p_max ~ ln(sigma)/nu.
    print("\nthreshold vs chain length (single peak, f0=2):")
    for nu in (10, 15, 20, 30):
        sweep = sweep_error_rates(
            SinglePeakLandscape(nu, 2.0, 1.0), np.linspace(0.002, 0.2, 120)
        )
        predicted = np.log(2.0) / nu
        got = f"{sweep.p_max:.4f}" if sweep.p_max else "none in range"
        print(f"  nu={nu:3d}: detected {got}   (ln(2)/nu = {predicted:.4f})")


if __name__ == "__main__":
    main()

"""Lethal mutagenesis — the antiviral application the paper motivates.

Sec. 1.1: "This sudden change from an ordered distribution to random
replication is of potential interest as a building block for new
antiviral strategies because the error rates of RNA viruses are usually
close to this critical value and an increase of p is possible by the
use of pharmaceutical drugs."

This example plays pharmacologist: for viruses with different fitness
landscapes and natural error rates, locate the error threshold by
bisection and compute the mutagenic fold increase needed to push the
population into the error catastrophe — then verify the prediction by
simulating a finite population at the recommended dose.

Run:  python examples/antiviral_planning.py
"""

import numpy as np

from repro.landscapes import LinearLandscape, SinglePeakLandscape
from repro.model.antiviral import mutagenesis_margin
from repro.mutation import UniformMutation
from repro.population import WrightFisher

NU = 16


def main() -> None:
    cases = [
        ("sharp-peak virus, low natural error rate", SinglePeakLandscape(NU, 2.0, 1.0), 0.015),
        ("sharp-peak virus, near-critical error rate", SinglePeakLandscape(NU, 2.0, 1.0), 0.038),
        ("strongly superior wild type", SinglePeakLandscape(NU, 8.0, 1.0), 0.03),
        ("smooth (linear) landscape", LinearLandscape(NU, 2.0, 1.0), 0.02),
    ]
    for label, landscape, p in cases:
        a = mutagenesis_margin(landscape, p)
        print(f"== {label} ==")
        print(f"   natural error rate   p       = {a.p_current:.4f}")
        print(f"   master concentration [G0]    = {a.master_concentration:.4f}")
        if a.treatable:
            print(f"   error threshold      p_max   = {a.p_max:.4f}")
            if a.margin > 0:
                print(f"   required mutagenic dose      : +{a.margin:.4f} "
                      f"({a.fold_increase:.2f}x fold increase)")
            else:
                print("   already past the threshold — population delocalized")
        else:
            print("   no sharp threshold: mutagenesis degrades fitness only "
                  "gradually on this landscape")
        print()

    # Verify the plan stochastically: dose a finite population at 1.2x
    # the computed requirement and watch the master class collapse.
    landscape = SinglePeakLandscape(NU, 2.0, 1.0)
    a = mutagenesis_margin(landscape, 0.015)
    dose = a.p_max * 1.2
    print(f"verification: Wright-Fisher (M = 5000) at p = 0.015 vs dosed p = {dose:.4f}")
    for label, p in (("untreated", 0.015), ("treated", dose)):
        wf = WrightFisher(UniformMutation(NU, p), landscape, 5_000, seed=7)
        stats = wf.run(200, burn_in=50)
        extinct = stats.master_extinction_generation
        print(f"   {label:9s}: mean [G0] = {stats.mean_class_concentrations[0]:.4f}"
              + (f", master extinct at generation {int(extinct)}" if extinct else
                 ", master persists"))

    print(
        "\nThe treated population crosses the error threshold and loses the "
        "wild type — the mutagenesis strategy the quasispecies model "
        "suggests, computed with the fast solvers."
    )


if __name__ == "__main__":
    main()

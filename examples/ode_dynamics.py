"""Replicator–mutator dynamics (paper Eq. 1) vs the eigenvector solution.

The quasispecies is *defined* as the stationary distribution of the
nonlinear ODE system

    dx_i/dt = Σ_j f_j Q_{i,j} x_j − x_i Φ(t),

and the paper's whole enterprise rests on the classical reduction of
that fixed point to a dominant-eigenvector problem.  This example
integrates the dynamics directly (starting from a pure master-sequence
population, x_0 = 1) using the same fast matvec, watches the population
structure evolve, and confirms the long-time limit matches the
eigensolver to solver precision — with the mean fitness Φ converging to
the dominant eigenvalue λ₀.

Run:  python examples/ode_dynamics.py
"""

import numpy as np

from repro.landscapes import RandomLandscape
from repro.model import class_concentrations
from repro.model.ode import QuasispeciesODE
from repro.mutation import UniformMutation
from repro.solvers import dense_solve

NU = 10
P = 0.02
SEED = 5


def main() -> None:
    mutation = UniformMutation(NU, P)
    landscape = RandomLandscape(NU, c=5.0, sigma=1.0, seed=SEED)
    ode = QuasispeciesODE(mutation, landscape)

    eigen = dense_solve(mutation, landscape)
    print(f"eigensolver: lambda_0 = {eigen.eigenvalue:.8f}\n")

    x = ode.master_start()
    dt, t = 0.05, 0.0
    print("   t      Phi(t)     [G0]     [G1]     [G2]   |x - x*|_1")
    checkpoints = {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}
    while t < 50.0 + 1e-9:
        if abs(t - round(t, 1)) < 1e-9 and (round(t, 1) in checkpoints or t == 0.0):
            gamma = class_concentrations(x, NU)
            drift = np.abs(x - eigen.concentrations).sum()
            print(
                f"{t:6.1f}  {ode.flux(x):.6f} {gamma[0]:9.4f}{gamma[1]:9.4f}"
                f"{gamma[2]:9.4f}   {drift:.3e}"
            )
        x = ode.step_rk4(x, dt)
        t += dt

    final_gap = abs(ode.flux(x) - eigen.eigenvalue)
    print(f"\nfinal |Phi - lambda_0| = {final_gap:.2e}")
    print(f"final |x - x*|_1       = {np.abs(x - eigen.concentrations).sum():.2e}")
    print(
        "\nThe dynamics converge to the Perron eigenvector and the dilution "
        "flux to the dominant eigenvalue — the Bernoulli change of variables "
        "that turns Eq. (1) into the eigenproblem the fast solver attacks."
    )


if __name__ == "__main__":
    main()

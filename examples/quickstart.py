"""Quickstart — solve a quasispecies model in a few lines.

Builds the classic single-peak landscape for chain length ν = 14
(N = 16384 sequences), solves for the stationary distribution, and
prints the headline biological readouts.

Run:  python examples/quickstart.py
"""

from repro import QuasispeciesModel
from repro.landscapes import SinglePeakLandscape
from repro.model.concentrations import dominant_sequence, participation_ratio

NU = 14  # chain length; the problem has 2**14 = 16384 sequences
P = 0.01  # per-site error rate


def main() -> None:
    landscape = SinglePeakLandscape(NU, f_peak=2.0, f_rest=1.0)
    model = QuasispeciesModel(landscape, p=P)

    # 'auto' picks the structurally best solver — here the exact (ν+1)
    # reduction of Sec. 5.1, because the landscape is Hamming-based.
    result = model.solve()
    print(f"solver        : {result.method}")
    print(f"mean fitness  : lambda_0 = {result.eigenvalue:.6f}")
    print(f"residual      : {result.residual:.2e}")

    gamma = model.class_concentrations(result)
    print("\ncumulative error-class concentrations [Gamma_k]:")
    for k, g in enumerate(gamma):
        bar = "#" * int(60 * g)
        print(f"  k={k:2d}  {g:10.6f}  {bar}")

    # The same model solved with the general-purpose fast solver
    # (shifted power iteration on the Fmmp product) — identical answer.
    full = model.solve("power", shift=True, tol=1e-12)
    x = full.concentrations
    idx, conc = dominant_sequence(x)
    print(f"\nfull solver   : {full.method} ({full.iterations} iterations)")
    print(f"dominant seq  : X_{idx} at concentration {conc:.4f}")
    print(f"effective #occupied sequences (participation ratio): {participation_ratio(x):.1f}")
    print(f"agreement with reduced solver: |d lambda| = {abs(full.eigenvalue - result.eigenvalue):.2e}")


if __name__ == "__main__":
    main()

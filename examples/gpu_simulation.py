"""Simulated-GPU power iteration (paper Sec. 4).

Runs the complete Pi(Fmmp) pipeline through the simulated OpenCL-style
device — every butterfly stage is a launch of the paper's Algorithm 2
kernel, norms are tree reductions, host↔device transfers are charged —
on both hardware profiles of the paper (Tesla C2050 GPU, Intel i5-750
CPU), and prints the modeled times, the kernel-time breakdown, and the
resulting speedups.

Numerics are real: the example cross-checks the device result against
the host solver.

Run:  python examples/gpu_simulation.py
"""

import numpy as np

from repro.device import (
    Device,
    DevicePowerIteration,
    INTEL_I5_750,
    INTEL_I5_750_SINGLE_CORE,
    TESLA_C2050,
)
from repro.landscapes import RandomLandscape
from repro.mutation import UniformMutation
from repro.operators import Fmmp
from repro.perf import PipelineCostModel
from repro.reporting import format_seconds
from repro.solvers import PowerIteration

NU = 14
P = 0.01
TOL = 1e-12


def main() -> None:
    mut = UniformMutation(NU, P)
    landscape = RandomLandscape(NU, c=5.0, sigma=1.0, seed=3)

    # Host reference.
    host = PowerIteration(Fmmp(mut, landscape), tol=TOL).solve(
        landscape.start_vector(), landscape=landscape
    )
    print(f"host Pi(Fmmp): {host.iterations} iterations, lambda_0 = {host.eigenvalue:.8f}\n")

    reports = {}
    for profile in (TESLA_C2050, INTEL_I5_750, INTEL_I5_750_SINGLE_CORE):
        device = Device(profile)
        rep = DevicePowerIteration(device, mut, landscape, operator="fmmp", tol=TOL).run()
        reports[profile.name] = rep
        err = np.abs(rep.result.concentrations - host.concentrations).max()
        print(f"== {profile.name} ==")
        print(f"  iterations        : {rep.result.iterations} (identical numerics; max |dx| vs host = {err:.1e})")
        print(f"  kernel launches   : {rep.launches}")
        print(f"  modeled kernel    : {format_seconds(rep.modeled_kernel_s)}")
        print(f"  modeled transfers : {format_seconds(rep.modeled_transfer_s)}")
        print(f"  modeled total     : {format_seconds(rep.modeled_total_s)}")
        mv = rep.time_by_class["matvec"]
        rd = rep.time_by_class["reduction"]
        print(f"  matvec/reduction  : {format_seconds(mv)} / {format_seconds(rd)} "
              f"(reduction share {rep.reduction_fraction:.1%})\n")

    gpu = reports[TESLA_C2050.name].modeled_total_s
    cpu1 = reports[INTEL_I5_750_SINGLE_CORE.name].modeled_total_s
    print(f"modeled GPU speedup over 1 CPU core at nu={NU}: {cpu1 / gpu:.1f}x")

    # Scale the same pipeline analytically to the paper's largest size.
    iters25 = host.iterations + (25 - NU)  # counts grow ~ +1 per nu here
    t_gpu25 = PipelineCostModel(25, "fmmp").total_time(TESLA_C2050, iters25)
    t_cpu25 = PipelineCostModel(25, "xmvp", 25, fused_xmvp=True).total_time(
        INTEL_I5_750_SINGLE_CORE, iters25
    )
    print(f"\nanalytic extension to nu=25 (the paper's headline point):")
    print(f"  GPU-Pi(Fmmp)        : {format_seconds(t_gpu25)}")
    print(f"  CPU-Pi(Xmvp(25))    : {format_seconds(t_cpu25)}")
    print(f"  speedup             : {t_cpu25 / t_gpu25:.2e}  (paper: ~2e7)")


if __name__ == "__main__":
    main()

"""Shim for legacy editable installs (`pip install -e . --no-build-isolation`).

The environment has setuptools but no `wheel` package, so the PEP 517
editable path (which needs `bdist_wheel`) is unavailable; this file lets
pip fall back to `setup.py develop`.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""The oracle registry: one object that knows every check for a spec.

The registry is the tentpole artifact of the verification subsystem.  It
combines the three check sources into one per-spec run:

1. the **metamorphic invariant catalogue**
   (:data:`repro.verify.invariants.INVARIANTS`) — paper identities as
   reusable checks,
2. the **product-oracle tier**
   (:func:`repro.verify.oracles.run_product_oracles`) — every ``W·v``
   backend cross-compared at machine precision,
3. the **solver-oracle tier**
   (:func:`repro.verify.oracles.run_solver_oracles`) — every eigenpair
   route cross-compared at its agreement class.

Both pytest (``tests/test_verify_*.py``) and the CLI
(``repro-quasispecies verify``) drive the *same* registry, so there is a
single source of truth for what "the backends agree" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import as_generator
from repro.verify.invariants import INVARIANTS, Invariant
from repro.verify.oracles import (
    PRODUCT_TOL,
    run_product_oracles,
    run_solver_oracles,
)
from repro.verify.report import CheckResult, SpecReport
from repro.verify.spec import ProblemSpec

__all__ = ["OracleRegistry", "default_registry"]


@dataclass
class OracleRegistry:
    """Enumerates and runs every check applicable to a problem spec.

    Parameters
    ----------
    invariants:
        The metamorphic invariant catalogue (defaults to the full
        paper-identity catalogue).
    product_probes:
        Number of shared random probe vectors for the product tier.
    product_tol:
        Pairwise tolerance for the exact product tier.
    solver_tol:
        Iteration tolerance passed to every iterative route.
    solver_accept:
        Acceptance threshold for pairs involving an iterative route.
    direct_accept:
        Acceptance threshold for direct/direct route pairs.
    run_solvers:
        Set ``False`` to skip the (more expensive) solver tier — used by
        quick smoke sessions and the product-only property tests.
    threads:
        Panel-engine threads behind the ``fmmp-parallel`` product oracle
        (1 still runs the panel-partitioned kernel, single-threaded).
    """

    invariants: tuple[Invariant, ...] = INVARIANTS
    product_probes: int = 3
    product_tol: float = PRODUCT_TOL
    solver_tol: float = 1e-11
    solver_accept: float = 1e-7
    direct_accept: float = 1e-9
    threads: int = 1
    extra_checks: list = field(default_factory=list)

    # --------------------------------------------------------- enumeration
    def invariants_for(self, spec: ProblemSpec) -> list[Invariant]:
        """The subset of the catalogue applicable to ``spec``."""
        return [inv for inv in self.invariants if inv.applies(spec)]

    def check_names_for(self, spec: ProblemSpec) -> list[str]:
        """Names of every invariant applicable to ``spec`` (invariant tier
        only — oracle-pair names depend on which backends construct)."""
        return [inv.name for inv in self.invariants_for(spec)]

    # --------------------------------------------------------------- runs
    def run_invariants(
        self, spec: ProblemSpec, rng: np.random.Generator
    ) -> list[CheckResult]:
        """Run every applicable catalogue invariant against ``spec``."""
        results: list[CheckResult] = []
        for inv in self.invariants_for(spec):
            try:
                error, details = inv.run(spec, rng)
                results.append(
                    CheckResult(
                        name=inv.name,
                        kind="invariant",
                        passed=error <= inv.tolerance,
                        error=error,
                        tolerance=inv.tolerance,
                        equation=inv.equation,
                        details=details,
                        exact=inv.exact,
                    )
                )
            except Exception as exc:  # noqa: BLE001 - a crash is a finding
                results.append(
                    CheckResult(
                        name=inv.name,
                        kind="invariant",
                        passed=False,
                        error=float("nan"),
                        tolerance=inv.tolerance,
                        equation=inv.equation,
                        details=f"check raised {type(exc).__name__}: {exc}",
                        exact=inv.exact,
                    )
                )
        return results

    def run_spec(
        self,
        spec: ProblemSpec,
        *,
        rng: np.random.Generator | int | None = None,
        solvers: bool = True,
    ) -> SpecReport:
        """Run all three check tiers against one spec."""
        rng = as_generator(spec.seed if rng is None else rng)
        checks = self.run_invariants(spec, rng)
        checks += run_product_oracles(
            spec,
            rng,
            tolerance=self.product_tol,
            probes=self.product_probes,
            threads=self.threads,
        )
        if solvers:
            checks += run_solver_oracles(
                spec,
                tol=self.solver_tol,
                accept=self.solver_accept,
                direct_accept=self.direct_accept,
            )
        return SpecReport(spec=spec, checks=checks)


def default_registry(**overrides) -> OracleRegistry:
    """The registry with the full catalogue and paper tolerances."""
    return OracleRegistry(**overrides)

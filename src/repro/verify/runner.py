"""Grid runner: drive the registry over a named parameter grid.

:func:`run_verification` is what both the ``repro-quasispecies verify``
CLI subcommand and the smoke-tier pytest entry point call.  It returns a
:class:`~repro.verify.report.VerificationReport`, whose ``passed``
aggregate determines the process exit code.
"""

from __future__ import annotations

from typing import Callable

from repro.util.rng import as_generator
from repro.verify.registry import OracleRegistry, default_registry
from repro.verify.report import SpecReport, VerificationReport
from repro.verify.spec import ProblemSpec, build_grid

__all__ = ["run_verification", "verify_specs"]


def verify_specs(
    specs: list[ProblemSpec],
    *,
    registry: OracleRegistry | None = None,
    seed: int = 0,
    solvers: bool = True,
    progress: Callable[[int, int, SpecReport], None] | None = None,
) -> list[SpecReport]:
    """Run the registry over an explicit spec list."""
    registry = registry or default_registry()
    rng = as_generator(seed)
    reports: list[SpecReport] = []
    for i, spec in enumerate(specs):
        rep = registry.run_spec(spec, rng=rng, solvers=solvers)
        reports.append(rep)
        if progress is not None:
            progress(i + 1, len(specs), rep)
    return reports


def run_verification(
    grid: str = "small",
    *,
    nu: int = 6,
    seed: int = 0,
    count: int = 25,
    registry: OracleRegistry | None = None,
    solvers: bool = True,
    progress: Callable[[int, int, SpecReport], None] | None = None,
) -> VerificationReport:
    """Run the full registry over a named grid.

    Parameters
    ----------
    grid:
        One of :data:`repro.verify.spec.GRID_NAMES`.
    nu:
        Pivot chain length for the ``small``/``full`` grids and the upper
        bound for ``random``.
    seed:
        Seed for the probe-vector stream and the ``random`` grid.
    count:
        Number of specs for the ``random`` grid.
    solvers:
        ``False`` skips the solver-oracle tier (product + invariant
        tiers only) — the smoke configuration.
    progress:
        Optional ``(done, total, spec_report)`` callback, called after
        each spec finishes (the CLI uses it for live output).
    """
    specs = build_grid(grid, nu=nu, count=count, seed=seed)
    reports = verify_specs(
        specs, registry=registry, seed=seed, solvers=solvers, progress=progress
    )
    return VerificationReport(grid=grid, nu=nu, seed=seed, spec_reports=reports)

"""Grid runner: drive the registry over a named parameter grid.

:func:`run_verification` is what both the ``repro-quasispecies verify``
CLI subcommand and the smoke-tier pytest entry point call.  It returns a
:class:`~repro.verify.report.VerificationReport`, whose ``passed``
aggregate determines the process exit code.

Spec lists are routed through the service layer's batch planner
(:func:`repro.service.scheduler.plan_batch`): duplicate specs are
verified once and share a single :class:`SpecReport`, and unique specs
run in the planner's cheap-first order (reduced ν+1 problems before full
2^ν ones) so failures in fast configurations surface early.  Each unique
spec gets its own probe-vector stream derived deterministically from
``(seed, spec content hash)``, which keeps reruns byte-identical *and*
makes the per-spec results independent of grid order or duplication.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.verify.registry import OracleRegistry, default_registry
from repro.verify.report import SpecReport, VerificationReport
from repro.verify.spec import ProblemSpec, build_grid

__all__ = ["run_verification", "spec_rng", "verify_specs"]


def spec_rng(spec: ProblemSpec, seed: int) -> np.random.Generator:
    """Deterministic per-spec probe-vector stream.

    The stream is seeded from ``seed`` plus the spec's content hash, so
    it does not depend on where the spec sits in the grid — verifying a
    spec alone, in a different order, or deduplicated from a grid with
    repeats all consume the identical stream.
    """
    # Deferred import: repro.verify.spec re-exports the canonical spec
    # machinery from repro.service.jobspec, so bind lazily to keep the
    # import graph acyclic if service ever grows a verify dependency.
    from repro.service.jobspec import SolveJob

    key = SolveJob.from_problem(spec).cache_key()
    return np.random.default_rng(
        [int(seed) & 0xFFFFFFFF, int(key[:16], 16)]
    )


def verify_specs(
    specs: list[ProblemSpec],
    *,
    registry: OracleRegistry | None = None,
    seed: int = 0,
    solvers: bool = True,
    progress: Callable[[int, int, SpecReport], None] | None = None,
) -> list[SpecReport]:
    """Run the registry over an explicit spec list.

    The list is planned by :func:`repro.service.scheduler.plan_batch`:
    duplicates collapse onto one verification run (sharing the report
    object) and unique specs execute in scheduler order.  Returned
    reports are aligned with the *original* ``specs`` list.  The
    ``progress`` callback fires once per unique spec with
    ``(done, n_unique, report)``.
    """
    from repro.service.jobspec import SolveJob
    from repro.service.scheduler import plan_batch

    registry = registry or default_registry()
    plan = plan_batch([SolveJob.from_problem(spec) for spec in specs])
    # plan.unique_jobs[k] came from the first spec whose job hashed to
    # slot k; recover that spec so landscape objects build identically.
    first_spec: dict[int, ProblemSpec] = {}
    for i, uidx in enumerate(plan.index_map):
        first_spec.setdefault(uidx, specs[i])

    unique_reports: dict[int, SpecReport] = {}
    for done, uidx in enumerate(plan.order, start=1):
        spec = first_spec[uidx]
        rep = registry.run_spec(spec, rng=spec_rng(spec, seed), solvers=solvers)
        unique_reports[uidx] = rep
        if progress is not None:
            progress(done, plan.n_unique, rep)
    return [unique_reports[uidx] for uidx in plan.index_map]


def run_verification(
    grid: str = "small",
    *,
    nu: int = 6,
    seed: int = 0,
    count: int = 25,
    registry: OracleRegistry | None = None,
    solvers: bool = True,
    threads: int | None = None,
    progress: Callable[[int, int, SpecReport], None] | None = None,
) -> VerificationReport:
    """Run the full registry over a named grid.

    Parameters
    ----------
    grid:
        One of :data:`repro.verify.spec.GRID_NAMES`.
    nu:
        Pivot chain length for the ``small``/``full`` grids and the upper
        bound for ``random``.
    seed:
        Seed for the probe-vector streams and the ``random`` grid.
    count:
        Number of specs for the ``random`` grid.
    solvers:
        ``False`` skips the solver-oracle tier (product + invariant
        tiers only) — the smoke configuration.
    threads:
        Panel-engine threads behind the ``fmmp-parallel`` product
        oracle (``None`` → ``REPRO_NUM_THREADS`` or 1).  Ignored when
        an explicit ``registry`` is passed — the registry carries its
        own thread count.
    progress:
        Optional ``(done, total, spec_report)`` callback, called after
        each unique spec finishes (the CLI uses it for live output).
    """
    if registry is None:
        from repro.transforms.parallel import resolve_threads

        registry = default_registry(threads=resolve_threads(threads))
    specs = build_grid(grid, nu=nu, count=count, seed=seed)
    reports = verify_specs(
        specs, registry=registry, seed=seed, solvers=solvers, progress=progress
    )
    return VerificationReport(grid=grid, nu=nu, seed=seed, spec_reports=reports)

"""Machine-readable verification report containers.

The whole harness funnels into three nested dataclasses:

``CheckResult``
    One invariant or oracle-pair comparison on one problem spec.
``SpecReport``
    All checks run against one :class:`~repro.verify.spec.ProblemSpec`.
``VerificationReport``
    A whole grid run — what ``repro-quasispecies verify`` serializes to
    JSON (via :func:`repro.io.save_verification_report`) and what the
    exit code is derived from.

Every container round-trips through plain dicts (``to_dict`` /
``from_dict``) so reports survive JSON serialization losslessly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.exceptions import ValidationError
from repro.verify.spec import ProblemSpec

__all__ = ["CheckResult", "SpecReport", "VerificationReport", "Violation"]

#: the three sources a check can come from
CHECK_KINDS = ("invariant", "product-oracle", "solver-oracle")


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check against one problem spec.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"fmmp-dense-equivalence"`` or
        ``"oracle-product:fmmp-eq9~distributed"``.
    kind:
        ``"invariant"``, ``"product-oracle"``, or ``"solver-oracle"``.
    passed:
        Whether the check held within tolerance.
    error:
        The measured discrepancy (relative, unless stated in details).
    tolerance:
        The acceptance threshold the error was compared against.
    equation:
        Paper reference the check encodes (e.g. ``"Eq. 9"``).
    details:
        Free-form human-readable context (worst pair, vector index, …).
    exact:
        ``True`` for mathematically exact identities (machine-precision
        tolerance), ``False`` for iteration-tolerance agreements.
    """

    name: str
    kind: str
    passed: bool
    error: float
    tolerance: float
    equation: str = ""
    details: str = ""
    exact: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        return cls(**data)


@dataclass
class SpecReport:
    """All check outcomes for one problem spec."""

    spec: ProblemSpec
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpecReport":
        return cls(
            spec=ProblemSpec.from_dict(data["spec"]),
            checks=[CheckResult.from_dict(c) for c in data.get("checks", [])],
        )


@dataclass(frozen=True)
class Violation:
    """One failed check, paired with the spec it failed on."""

    spec: ProblemSpec
    check: CheckResult

    def describe(self) -> str:
        return (
            f"{self.check.name} violated on [{self.spec.label()}]: "
            f"error {self.check.error:.3e} > tol {self.check.tolerance:.1e}"
            + (f" ({self.check.details})" if self.check.details else "")
        )


@dataclass
class VerificationReport:
    """A full verification session over a grid of problem specs."""

    grid: str
    nu: int
    seed: int
    spec_reports: list[SpecReport] = field(default_factory=list)

    # ---------------------------------------------------------- aggregates
    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.spec_reports)

    @property
    def total_checks(self) -> int:
        return sum(len(r.checks) for r in self.spec_reports)

    @property
    def total_failures(self) -> int:
        return sum(len(r.failures) for r in self.spec_reports)

    def violations(self) -> list[Violation]:
        """Every failed check, in grid order."""
        out: list[Violation] = []
        for rep in self.spec_reports:
            out.extend(Violation(rep.spec, c) for c in rep.failures)
        return out

    def violated_names(self) -> list[str]:
        """Sorted unique names of violated invariants/oracles — the field
        the acceptance criterion keys on."""
        return sorted({v.check.name for v in self.violations()})

    def check_names(self) -> list[str]:
        """Sorted unique names of every check that ran."""
        names: set[str] = set()
        for rep in self.spec_reports:
            names.update(c.name for c in rep.checks)
        return sorted(names)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "kind": "repro.VerificationReport.v1",
            "grid": self.grid,
            "nu": self.nu,
            "seed": self.seed,
            "passed": self.passed,
            "total_checks": self.total_checks,
            "total_failures": self.total_failures,
            "violated": self.violated_names(),
            "specs": [r.to_dict() for r in self.spec_reports],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerificationReport":
        if data.get("kind") != "repro.VerificationReport.v1":
            raise ValidationError(
                f"not a verification report: kind={data.get('kind')!r}"
            )
        return cls(
            grid=str(data["grid"]),
            nu=int(data["nu"]),
            seed=int(data["seed"]),
            spec_reports=[SpecReport.from_dict(s) for s in data.get("specs", [])],
        )

"""Differential verification subsystem (cross-backend oracle harness).

This package is the repo's safety net for the paper's exactness claims:
every solver route, product backend, mutation family, and landscape
structure is cross-checked against independent implementations and
against metamorphic identities taken directly from the paper's
equations.

Layers
------
:mod:`repro.verify.spec`
    Declarative problem specs and named parameter grids.
:mod:`repro.verify.invariants`
    The metamorphic invariant catalogue (paper identities as checks).
:mod:`repro.verify.oracles`
    Product-tier and solver-tier oracle enumeration.
:mod:`repro.verify.registry`
    The :class:`OracleRegistry` combining all three check sources.
:mod:`repro.verify.runner`
    Grid runner producing a :class:`VerificationReport`.
:mod:`repro.verify.report`
    Machine-readable report containers (JSON round-trip safe).

Entry points: ``repro-quasispecies verify`` (CLI) and the
``tests/test_verify_*.py`` pytest modules — both drive the same
registry.
"""

from repro.verify.invariants import INVARIANTS, Invariant, invariant_names
from repro.verify.oracles import (
    ProductOracle,
    SolverRoute,
    product_oracles,
    run_product_oracles,
    run_solver_oracles,
    solver_routes,
)
from repro.verify.registry import OracleRegistry, default_registry
from repro.verify.report import (
    CheckResult,
    SpecReport,
    VerificationReport,
    Violation,
)
from repro.verify.runner import run_verification, verify_specs
from repro.verify.spec import (
    GRID_NAMES,
    LANDSCAPE_KINDS,
    MUTATION_KINDS,
    ProblemSpec,
    build_grid,
    full_grid,
    random_grid,
    small_grid,
    smoke_grid,
)

__all__ = [
    "INVARIANTS",
    "Invariant",
    "invariant_names",
    "ProductOracle",
    "SolverRoute",
    "product_oracles",
    "run_product_oracles",
    "run_solver_oracles",
    "solver_routes",
    "OracleRegistry",
    "default_registry",
    "CheckResult",
    "SpecReport",
    "VerificationReport",
    "Violation",
    "run_verification",
    "verify_specs",
    "GRID_NAMES",
    "LANDSCAPE_KINDS",
    "MUTATION_KINDS",
    "ProblemSpec",
    "build_grid",
    "full_grid",
    "random_grid",
    "small_grid",
    "smoke_grid",
]

"""Oracle enumeration: every backend that must agree, and how tightly.

Two tiers of oracles, mirroring the paper's two layers of exactness
claims:

**Product oracles** — independent implementations of the *same* matrix
product ``W·v`` (right form).  These are mathematically identical, so
every pair must agree to machine precision on arbitrary probe vectors:

* ``fmmp-eq9`` / ``fmmp-eq10`` — the butterfly, both stage orders,
* ``fmmp-batched`` — the stage-fused multi-vector kernel
  (:class:`~repro.operators.batched.BatchedFmmp`): the probe rides one
  column of a genuine multi-column block, so column isolation and the
  folded diagonal scalings are checked per probe,
* ``fmmp-parallel`` — the panel-partitioned shared-memory butterfly
  (:mod:`repro.transforms.parallel`), exercised with an explicit panel
  split (and, with ``threads > 1``, real engine workers): the panel
  engine's contract is *bitwise* identity with the fused serial kernel,
  so the oracle must also sit inside the machine-precision tier,
* ``xmvp`` — the XOR-based product of [10] with ``dmax = ν``,
* ``smvp`` — the dense ``Θ(N²)`` baseline (small ν),
* ``spectral`` — ``Q·v = V Λ V v`` via the FWHT (uniform model),
* ``device`` — the Algorithm-2 stage kernels on the simulated device,
* ``distributed`` — the hypercube butterfly over partitioned blocks.

**Solver oracles** — full eigenpair routes.  Direct routes (dense,
reduced, Kronecker) agree to eigendecomposition accuracy; any pair
involving an iterative route agrees to iteration tolerance.

:func:`solver_routes` is also the single source of truth behind
``repro.validation.crosscheck`` (the user-facing ``crosscheck`` CLI), so
the cross-check command and the verification registry can never drift
apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.landscapes.kronecker import KroneckerLandscape
from repro.model.concentrations import class_concentrations
from repro.model.quasispecies import QuasispeciesModel
from repro.mutation.spectral import apply_uniform_q_spectral
from repro.mutation.uniform import UniformMutation
from repro.operators.fmmp import Fmmp
from repro.operators.smvp import Smvp
from repro.operators.xmvp import Xmvp
from repro.solvers.kron_solver import KroneckerSolveResult
from repro.verify.invariants import DENSE_NU, relative_error
from repro.verify.report import CheckResult
from repro.verify.spec import ProblemSpec

__all__ = [
    "ProductOracle",
    "SolverRoute",
    "product_oracles",
    "solver_routes",
    "run_product_oracles",
    "run_solver_oracles",
]

#: pairwise tolerance for product oracles (exact identities)
PRODUCT_TOL = 1e-12


@dataclass(frozen=True)
class ProductOracle:
    """One implementation of the right-form product ``W·v``."""

    label: str
    matvec: Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SolverRoute:
    """One full solver route for the dominant eigenpair.

    Attributes
    ----------
    label:
        Display name, e.g. ``"Pi(Fmmp)"`` (kept stable — the crosscheck
        CLI and its tests show these labels).
    kind:
        ``"direct"`` (eigendecomposition-exact) or ``"iterative"``
        (converges to a requested tolerance).
    kwargs:
        Arguments for :meth:`QuasispeciesModel.solve`.
    """

    label: str
    kind: str
    kwargs: dict


# ------------------------------------------------------------ product tier
def product_oracles(spec: ProblemSpec, *, threads: int = 1) -> list[ProductOracle]:
    """Every product backend applicable to ``spec`` (right form).

    ``threads`` sizes the panel engine behind the ``fmmp-parallel``
    oracle (1 still exercises the panel-partitioned kernel, just on the
    calling thread)."""
    mutation = spec.build_mutation()
    landscape = spec.build_landscape()
    f = landscape.values()
    oracles: list[ProductOracle] = [
        ProductOracle(
            "fmmp-eq9", Fmmp(mutation, landscape, variant="eq9").matvec
        ),
        ProductOracle(
            "fmmp-eq10", Fmmp(mutation, landscape, variant="eq10").matvec
        ),
        ProductOracle("fmmp-batched", _batched_matvec(mutation, landscape)),
        ProductOracle(
            "fmmp-parallel", _parallel_matvec(mutation, landscape, threads)
        ),
    ]
    if isinstance(mutation, UniformMutation):
        oracles.append(
            ProductOracle("xmvp", Xmvp(mutation, landscape, dmax=spec.nu).matvec)
        )
        nu, p = spec.nu, spec.p

        def spectral(v: np.ndarray, _nu=nu, _p=p, _f=f) -> np.ndarray:
            return apply_uniform_q_spectral(_f * v, _nu, _p)

        oracles.append(ProductOracle("spectral", spectral))
    if spec.nu <= DENSE_NU:
        oracles.append(ProductOracle("smvp", Smvp(mutation, landscape).matvec))
    if spec.mutation in ("uniform", "persite"):
        oracles.append(ProductOracle("distributed", _distributed_matvec(mutation, f)))
        if spec.nu <= DENSE_NU:
            oracles.append(ProductOracle("device", _device_matvec(mutation, f)))
    return oracles


def _batched_matvec(mutation, landscape) -> Callable[[np.ndarray], np.ndarray]:
    """Probe the multi-vector kernel through a genuine multi-column block.

    The probe rides column 0 of a 3-column block (the companions are
    scaled/shifted copies), so the check exercises column isolation and
    the folded diagonal scalings — a ``matmat`` that leaked state across
    columns would corrupt the extracted probe column.
    """
    from repro.operators.batched import BatchedFmmp

    op = BatchedFmmp(mutation, landscape, form="right")

    def matvec(v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        block = np.stack([v, -0.5 * v, v + 1.0], axis=1)
        return op.matmat(block)[:, 0].copy()

    return matvec


def _parallel_matvec(
    mutation, landscape, threads: int
) -> Callable[[np.ndarray], np.ndarray]:
    """Probe the panel-parallel butterfly engine.

    An explicit panel count (clamped for tiny ν) forces the
    panel-partitioned sweep schedule even at ``threads = 1``; with more
    threads the same schedule runs on real barrier-synchronized workers.
    Either way the result must match the serial kernels to machine
    precision (the engine's own contract is stronger: bitwise).
    """
    op = Fmmp(
        mutation,
        landscape,
        form="right",
        threads=threads,
        panels=4 if threads <= 1 else None,
    )

    def matvec(v: np.ndarray) -> np.ndarray:
        return op.matvec(np.asarray(v, dtype=np.float64))

    return matvec


def _distributed_matvec(mutation, f: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    from repro.distributed.cluster import gpu_cluster
    from repro.distributed.fmmp import DistributedFmmp
    from repro.distributed.partition import PartitionedVector

    ranks = min(4, mutation.n // 2)
    op = DistributedFmmp(gpu_cluster(ranks), mutation.factors_per_bit())

    def matvec(v: np.ndarray) -> np.ndarray:
        pv = PartitionedVector.scatter(f * np.asarray(v, dtype=np.float64), ranks)
        return op.apply(pv).gather()

    return matvec


def _device_matvec(mutation, f: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    from repro.device.kernels.fmmp_kernel import fmmp_stage_kernel
    from repro.device.profile import TESLA_C2050
    from repro.device.runtime import Device

    factors = mutation.factors_per_bit()
    n = mutation.n

    def matvec(v: np.ndarray) -> np.ndarray:
        dev = Device(TESLA_C2050, record_launches=False)
        dev.alloc("v", n)
        try:
            dev.to_device("v", f * np.asarray(v, dtype=np.float64))
            for s, m in enumerate(factors):
                dev.launch(
                    fmmp_stage_kernel,
                    n // 2,
                    {
                        "span": 1 << s,
                        "m00": m[0, 0],
                        "m01": m[0, 1],
                        "m10": m[1, 0],
                        "m11": m[1, 1],
                    },
                    binding={"v": "v"},
                )
            return dev.from_device("v")
        finally:
            dev.free("v")

    return matvec


def run_product_oracles(
    spec: ProblemSpec,
    rng: np.random.Generator,
    *,
    tolerance: float = PRODUCT_TOL,
    probes: int = 3,
    threads: int = 1,
) -> list[CheckResult]:
    """Compare every product backend against the ``fmmp-eq9`` reference.

    One :class:`CheckResult` per (reference, other) pair — the registry's
    *exact-equivalence* tier.  ``threads`` feeds the ``fmmp-parallel``
    oracle's panel engine.
    """
    oracles = product_oracles(spec, threads=threads)
    reference = oracles[0]
    vs = rng.standard_normal((probes, spec.n))
    vs[0] = np.abs(vs[0]) + 1e-3
    ref_outs = [reference.matvec(v.copy()) for v in vs]
    results: list[CheckResult] = []
    for other in oracles[1:]:
        try:
            err = max(
                relative_error(other.matvec(v.copy()), ref)
                for v, ref in zip(vs, ref_outs)
            )
            results.append(
                CheckResult(
                    name=f"oracle-product:{reference.label}~{other.label}",
                    kind="product-oracle",
                    passed=err <= tolerance,
                    error=err,
                    tolerance=tolerance,
                    equation="Eqs. 9-10 (exact product equivalence)",
                    details=f"{probes} shared probe vectors",
                )
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
            results.append(
                CheckResult(
                    name=f"oracle-product:{reference.label}~{other.label}",
                    kind="product-oracle",
                    passed=False,
                    error=float("nan"),
                    tolerance=tolerance,
                    equation="Eqs. 9-10 (exact product equivalence)",
                    details=f"backend raised {type(exc).__name__}: {exc}",
                )
            )
    return results


# ------------------------------------------------------------- solver tier
def solver_routes(model: QuasispeciesModel) -> list[SolverRoute]:
    """Every eigenpair route applicable to ``model``'s structure."""
    routes: list[SolverRoute] = [
        SolverRoute("Pi(Fmmp)", "iterative", dict(method="power", operator="fmmp")),
        SolverRoute(
            "Pi(Fmmp, shifted)", "iterative", dict(method="power", operator="fmmp", shift=True)
        ),
        SolverRoute("Arnoldi", "iterative", dict(method="arnoldi")),
    ]
    if model.mutation.is_symmetric:
        # Lanczos needs the symmetric form F^1/2 Q F^1/2, which exists
        # only for symmetric mutation models.
        routes.insert(2, SolverRoute("Lanczos", "iterative", dict(method="lanczos")))
    if isinstance(model.mutation, UniformMutation):
        routes.insert(
            1, SolverRoute("Pi(Xmvp(nu))", "iterative", dict(method="power", operator="xmvp"))
        )
    else:
        # The conservative shift formula needs the uniform model.
        routes = [r for r in routes if "shifted" not in r.label]
    if model.nu <= DENSE_NU:
        routes.append(SolverRoute("Dense", "direct", dict(method="dense")))
    if model.landscape.is_error_class_landscape and isinstance(model.mutation, UniformMutation):
        routes.append(SolverRoute("Reduced(nu+1)", "direct", dict(method="reduced")))
    if isinstance(model.landscape, KroneckerLandscape):
        try:
            from repro.solvers.kron_solver import KroneckerSolver

            KroneckerSolver(model.mutation, model.landscape)
        except Exception:  # noqa: BLE001 - incompatible grouping
            pass
        else:
            routes.append(SolverRoute("Kronecker", "direct", dict(method="kronecker")))
    # Degenerate corner: p = 0 on a flat landscape makes W = c·I; the
    # conservative shift annihilates W exactly, so the shifted route is
    # structurally inapplicable (a typed error by design, not an oracle).
    p = model.uniform_p
    if p == 0.0 and model.landscape.fmin == model.landscape.fmax:
        routes = [r for r in routes if "shifted" not in r.label]
    return routes


def _identity_mutation(mutation) -> bool:
    """True when ``Q = I`` exactly (the error-free corner ``p = 0``)."""
    if isinstance(mutation, UniformMutation):
        return mutation.p == 0.0
    factors = getattr(mutation, "factors_per_bit", None)
    if factors is None:
        return False
    try:
        return all(np.array_equal(f, np.eye(f.shape[0])) for f in factors())
    except Exception:  # noqa: BLE001 - structure probe only
        return False


def _perron_degenerate(model: QuasispeciesModel) -> bool:
    """True when the dominant eigenspace of ``W`` is degenerate.

    Happens only at ``p = 0`` on a flat landscape: ``W = c·I`` and every
    distribution is a fixed point.  The dominant *eigenvalue* is still
    well-defined (``c``); the eigenvector direction is not, so
    cross-route comparison must drop to eigenvalues only.
    """
    return (
        model.landscape.fmin == model.landscape.fmax
        and _identity_mutation(model.mutation)
    )


def _route_gamma(res, nu: int) -> np.ndarray:
    """Error-class concentrations from any route's result."""
    if isinstance(res, KroneckerSolveResult):
        return res.eigenvector.class_concentrations()
    conc = res.concentrations
    if conc.shape[0] == nu + 1:
        return conc
    return class_concentrations(conc, nu)


def run_solver_oracles(
    spec: ProblemSpec,
    *,
    tol: float = 1e-11,
    accept: float = 1e-7,
    direct_accept: float = 1e-9,
) -> list[CheckResult]:
    """Solve via every applicable route; compare all pairs.

    Direct/direct pairs must agree to ``direct_accept``; any pair with an
    iterative member to ``accept`` (the iteration-tolerance class).
    """
    model = QuasispeciesModel(spec.build_landscape(), spec.build_mutation())
    routes = solver_routes(model)
    eigenvalue_only = _perron_degenerate(model)
    outcomes: list[tuple[SolverRoute, float, np.ndarray] | tuple[SolverRoute, Exception]] = []
    for route in routes:
        try:
            res = model.solve(tol=tol, **route.kwargs)
            outcomes.append((route, float(res.eigenvalue), _route_gamma(res, spec.nu)))
        except Exception as exc:  # noqa: BLE001 - a failing route is a finding
            outcomes.append((route, exc))

    results: list[CheckResult] = []
    good = [o for o in outcomes if len(o) == 3]
    for o in outcomes:
        if len(o) == 2:
            route, exc = o
            results.append(
                CheckResult(
                    name=f"oracle-solver:{route.label}",
                    kind="solver-oracle",
                    passed=False,
                    error=float("nan"),
                    tolerance=accept,
                    equation="cross-route agreement",
                    details=f"route raised {type(exc).__name__}: {exc}",
                    exact=False,
                )
            )
    for i in range(len(good)):
        for j in range(i + 1, len(good)):
            ra, la, ga = good[i]
            rb, lb, gb = good[j]
            pair_tol = (
                direct_accept if ra.kind == "direct" and rb.kind == "direct" else accept
            )
            scale = max(abs(la), abs(lb), 1e-300)
            err = abs(la - lb) / scale
            details = f"{ra.kind}/{rb.kind} pair"
            if eigenvalue_only:
                details += " (eigenvalue only: degenerate Perron direction, W = c*I)"
            else:
                err = max(err, relative_error(ga, gb))
            results.append(
                CheckResult(
                    name=f"oracle-solver:{ra.label}~{rb.label}",
                    kind="solver-oracle",
                    passed=err <= pair_tol,
                    error=err,
                    tolerance=pair_tol,
                    equation="cross-route agreement",
                    details=details,
                    exact=ra.kind == "direct" and rb.kind == "direct",
                )
            )
    return results

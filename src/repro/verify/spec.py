"""Parameter grids for the verification harness.

A :class:`ProblemSpec` is a *declarative* description of one quasispecies
problem — chain length, error rate, landscape family, mutation family,
seed — from which the harness deterministically builds the concrete
landscape/mutation objects.  Keeping the spec declarative (plain scalars
and strings) makes verification reports machine-readable and lets the
same spec be rebuilt identically inside pytest, the CLI, and benchmarks.

The spec itself (and its deterministic content hashing) lives in
:mod:`repro.service.jobspec` — the canonical single source of truth
shared with the solver service layer — and is re-exported here
unchanged, so existing ``repro.verify.spec`` imports keep working.

Grids
-----
:func:`smoke_grid`
    A handful of specs for the tier-1 CI smoke run (sub-second).
:func:`small_grid`
    Every (landscape × mutation) family combination at a few
    representative ``(ν, p)`` points — the default for
    ``repro-quasispecies verify``.
:func:`full_grid`
    Exhaustive small-ν sweep, degenerate corners (``p = 0``,
    ``p = 1/2``, flat landscapes, ``ν = 1``) included.
:func:`random_grid`
    Seeded random specs for fuzz-style verification sessions.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.service.jobspec import (
    LANDSCAPE_KINDS,
    MUTATION_KINDS,
    ProblemSpec,
    split_groups,
)
from repro.util.rng import as_generator
from repro.util.validation import check_chain_length

__all__ = [
    "LANDSCAPE_KINDS",
    "MUTATION_KINDS",
    "ProblemSpec",
    "split_groups",
    "smoke_grid",
    "small_grid",
    "full_grid",
    "random_grid",
    "build_grid",
    "GRID_NAMES",
]


# ---------------------------------------------------------------- grids
def smoke_grid() -> list[ProblemSpec]:
    """Minimal grid for the tier-1 smoke tier (fast, still crosses every
    mutation family and the three landscape structure classes)."""
    return [
        ProblemSpec(nu=4, p=0.02, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=4, p=0.05, landscape="random", mutation="persite", seed=1),
        ProblemSpec(nu=4, p=0.03, landscape="kronecker", mutation="grouped", seed=2),
        ProblemSpec(nu=3, p=0.1, landscape="linear", mutation="uniform"),
    ]


def small_grid(nu: int = 6) -> list[ProblemSpec]:
    """Every (landscape × mutation) family at representative ``(ν, p)``.

    ``nu`` is the *pivot* chain length; smaller chains (including the
    degenerate ν = 1) ride along.
    """
    nu = check_chain_length(nu)
    specs: list[ProblemSpec] = []
    p_values = (0.005, 0.05, 0.25)
    for landscape in LANDSCAPE_KINDS:
        for mutation in MUTATION_KINDS:
            for i, p in enumerate(p_values):
                specs.append(
                    ProblemSpec(
                        nu=nu,
                        p=p,
                        landscape=landscape,
                        mutation=mutation,
                        seed=i,
                    )
                )
    # Degenerate corners at the pivot size plus tiny chains.
    specs += [
        ProblemSpec(nu=nu, p=0.0, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=nu, p=0.5, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=nu, p=0.05, landscape="flat", mutation="uniform"),
        ProblemSpec(nu=1, p=0.05, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=2, p=0.1, landscape="random", mutation="persite", seed=7),
    ]
    return specs


def full_grid(nu: int = 6) -> list[ProblemSpec]:
    """Exhaustive sweep over ν = 1 … ``nu`` and a dense error-rate set."""
    nu = check_chain_length(nu)
    specs: list[ProblemSpec] = []
    p_values = (0.0, 0.001, 0.01, 0.05, 0.15, 0.3, 0.45, 0.5)
    for chain in range(1, nu + 1):
        for landscape in LANDSCAPE_KINDS:
            for mutation in MUTATION_KINDS:
                for i, p in enumerate(p_values):
                    specs.append(
                        ProblemSpec(
                            nu=chain,
                            p=p,
                            landscape=landscape,
                            mutation=mutation,
                            seed=i + chain,
                        )
                    )
    return specs


def random_grid(count: int = 25, *, nu: int = 8, seed: int = 0) -> list[ProblemSpec]:
    """``count`` seeded random specs with ν ≤ ``nu``."""
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    rng = as_generator(seed)
    specs = []
    for i in range(count):
        specs.append(
            ProblemSpec(
                nu=int(rng.integers(1, nu + 1)),
                p=float(rng.uniform(1e-4, 0.5)),
                landscape=str(rng.choice(LANDSCAPE_KINDS)),
                mutation=str(rng.choice(MUTATION_KINDS)),
                peak=float(rng.uniform(1.5, 6.0)),
                floor=1.0,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return specs


GRID_NAMES = ("smoke", "small", "full", "random")


def build_grid(name: str, *, nu: int = 6, count: int = 25, seed: int = 0) -> list[ProblemSpec]:
    """Build a named grid (``smoke``/``small``/``full``/``random``)."""
    if name == "smoke":
        return smoke_grid()
    if name == "small":
        return small_grid(nu)
    if name == "full":
        return full_grid(nu)
    if name == "random":
        return random_grid(count, nu=nu, seed=seed)
    raise ValidationError(f"unknown grid {name!r}; expected one of {GRID_NAMES}")

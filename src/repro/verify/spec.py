"""Problem specifications and parameter grids for the verification harness.

A :class:`ProblemSpec` is a *declarative* description of one quasispecies
problem — chain length, error rate, landscape family, mutation family,
seed — from which the harness deterministically builds the concrete
landscape/mutation objects.  Keeping the spec declarative (plain scalars
and strings) makes verification reports machine-readable and lets the
same spec be rebuilt identically inside pytest, the CLI, and benchmarks.

Grids
-----
:func:`smoke_grid`
    A handful of specs for the tier-1 CI smoke run (sub-second).
:func:`small_grid`
    Every (landscape × mutation) family combination at a few
    representative ``(ν, p)`` points — the default for
    ``repro-quasispecies verify``.
:func:`full_grid`
    Exhaustive small-ν sweep, degenerate corners (``p = 0``,
    ``p = 1/2``, flat landscapes, ``ν = 1``) included.
:func:`random_grid`
    Seeded random specs for fuzz-style verification sessions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes import (
    HammingLandscape,
    KroneckerLandscape,
    LinearLandscape,
    RandomLandscape,
    SinglePeakLandscape,
)
from repro.landscapes.base import FitnessLandscape
from repro.mutation import (
    GroupedMutation,
    MutationModel,
    PerSiteMutation,
    UniformMutation,
    site_factor,
)
from repro.util.rng import as_generator
from repro.util.validation import check_chain_length, check_error_rate

__all__ = [
    "LANDSCAPE_KINDS",
    "MUTATION_KINDS",
    "ProblemSpec",
    "split_groups",
    "smoke_grid",
    "small_grid",
    "full_grid",
    "random_grid",
    "build_grid",
    "GRID_NAMES",
]

LANDSCAPE_KINDS = ("single-peak", "linear", "flat", "random", "kronecker")
MUTATION_KINDS = ("uniform", "persite", "grouped")


def split_groups(nu: int, max_group: int = 3) -> tuple[int, ...]:
    """Deterministic split of ``ν`` bits into groups of size ≤ ``max_group``.

    Used to give Kronecker landscapes and grouped mutation models a
    reproducible structure for any chain length.
    """
    nu = check_chain_length(nu)
    if max_group < 1:
        raise ValidationError(f"max_group must be >= 1, got {max_group}")
    groups: list[int] = []
    left = nu
    while left > 0:
        g = min(max_group, left)
        groups.append(g)
        left -= g
    return tuple(groups)


@dataclass(frozen=True)
class ProblemSpec:
    """One verification problem, fully determined by plain scalars.

    Attributes
    ----------
    nu:
        Chain length ``ν`` (``N = 2**ν``).
    p:
        Nominal per-site error rate; per-site/grouped models derive
        their (seeded) heterogeneous rates from it.
    landscape:
        One of :data:`LANDSCAPE_KINDS`.
    mutation:
        One of :data:`MUTATION_KINDS`.
    peak, floor:
        Master / background fitness used by the structured landscapes.
    seed:
        Seed for every random ingredient (random landscape values,
        per-site rate jitter, grouped-block mixing).
    """

    nu: int
    p: float
    landscape: str = "single-peak"
    mutation: str = "uniform"
    peak: float = 2.0
    floor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_chain_length(self.nu)
        check_error_rate(self.p, allow_zero=True)
        if self.landscape not in LANDSCAPE_KINDS:
            raise ValidationError(
                f"landscape must be one of {LANDSCAPE_KINDS}, got {self.landscape!r}"
            )
        if self.mutation not in MUTATION_KINDS:
            raise ValidationError(
                f"mutation must be one of {MUTATION_KINDS}, got {self.mutation!r}"
            )

    # --------------------------------------------------------------- label
    @property
    def n(self) -> int:
        return 1 << self.nu

    def label(self) -> str:
        """Compact human-readable identifier used in reports."""
        return (
            f"nu={self.nu} p={self.p:g} landscape={self.landscape} "
            f"mutation={self.mutation} seed={self.seed}"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        return cls(**data)

    def with_(self, **changes) -> "ProblemSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------ builders
    def build_landscape(self) -> FitnessLandscape:
        """Materialize the landscape object this spec describes."""
        if self.landscape == "single-peak":
            return SinglePeakLandscape(self.nu, self.peak, self.floor)
        if self.landscape == "linear":
            return LinearLandscape(self.nu, self.peak, self.floor)
        if self.landscape == "flat":
            # Flat is a (degenerate) error-class landscape: phi(k) = floor.
            return HammingLandscape(self.nu, [self.floor] * (self.nu + 1))
        if self.landscape == "random":
            return RandomLandscape(
                self.nu,
                c=max(self.peak, 1.5),
                sigma=min(1.0, max(self.peak, 1.5) / 3.0),
                seed=self.seed,
            )
        # kronecker
        rng = as_generator(self.seed)
        diagonals = [
            self.floor + (self.peak - self.floor) * rng.random(1 << g) + 0.1
            for g in split_groups(self.nu)
        ]
        return KroneckerLandscape(diagonals)

    def build_mutation(self) -> MutationModel:
        """Materialize the mutation model this spec describes."""
        if self.mutation == "uniform":
            return UniformMutation(self.nu, self.p)
        rng = as_generator(self.seed + 1)
        if self.mutation == "persite":
            factors = []
            for _ in range(self.nu):
                p01 = self._jitter_rate(rng)
                p10 = self._jitter_rate(rng)
                factors.append(site_factor(p01, p10))
            return PerSiteMutation(factors)
        # grouped: per-group blocks = convex mix of a product-of-sites
        # block with a random column-stochastic matrix, so the blocks are
        # genuinely non-product (exercising the Kronecker contraction).
        blocks = []
        for g in split_groups(self.nu):
            block = np.ones((1, 1))
            for _ in range(g):
                block = np.kron(block, site_factor(self._jitter_rate(rng), self._jitter_rate(rng)))
            noise = rng.random((1 << g, 1 << g)) + 1e-3
            noise /= noise.sum(axis=0, keepdims=True)
            blocks.append(0.9 * block + 0.1 * noise)
        return GroupedMutation(blocks)

    def _jitter_rate(self, rng: np.random.Generator) -> float:
        """A per-site rate near ``p`` (equal to ``p`` at the degenerate
        corners so p = 0 / p = 1/2 stay exactly degenerate)."""
        if self.p in (0.0, 0.5):
            return self.p
        lo = 0.5 * self.p
        hi = min(0.5, 1.5 * self.p)
        return float(lo + (hi - lo) * rng.random())


# ---------------------------------------------------------------- grids
def smoke_grid() -> list[ProblemSpec]:
    """Minimal grid for the tier-1 smoke tier (fast, still crosses every
    mutation family and the three landscape structure classes)."""
    return [
        ProblemSpec(nu=4, p=0.02, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=4, p=0.05, landscape="random", mutation="persite", seed=1),
        ProblemSpec(nu=4, p=0.03, landscape="kronecker", mutation="grouped", seed=2),
        ProblemSpec(nu=3, p=0.1, landscape="linear", mutation="uniform"),
    ]


def small_grid(nu: int = 6) -> list[ProblemSpec]:
    """Every (landscape × mutation) family at representative ``(ν, p)``.

    ``nu`` is the *pivot* chain length; smaller chains (including the
    degenerate ν = 1) ride along.
    """
    nu = check_chain_length(nu)
    specs: list[ProblemSpec] = []
    p_values = (0.005, 0.05, 0.25)
    for landscape in LANDSCAPE_KINDS:
        for mutation in MUTATION_KINDS:
            for i, p in enumerate(p_values):
                specs.append(
                    ProblemSpec(
                        nu=nu,
                        p=p,
                        landscape=landscape,
                        mutation=mutation,
                        seed=i,
                    )
                )
    # Degenerate corners at the pivot size plus tiny chains.
    specs += [
        ProblemSpec(nu=nu, p=0.0, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=nu, p=0.5, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=nu, p=0.05, landscape="flat", mutation="uniform"),
        ProblemSpec(nu=1, p=0.05, landscape="single-peak", mutation="uniform"),
        ProblemSpec(nu=2, p=0.1, landscape="random", mutation="persite", seed=7),
    ]
    return specs


def full_grid(nu: int = 6) -> list[ProblemSpec]:
    """Exhaustive sweep over ν = 1 … ``nu`` and a dense error-rate set."""
    nu = check_chain_length(nu)
    specs: list[ProblemSpec] = []
    p_values = (0.0, 0.001, 0.01, 0.05, 0.15, 0.3, 0.45, 0.5)
    for chain in range(1, nu + 1):
        for landscape in LANDSCAPE_KINDS:
            for mutation in MUTATION_KINDS:
                for i, p in enumerate(p_values):
                    specs.append(
                        ProblemSpec(
                            nu=chain,
                            p=p,
                            landscape=landscape,
                            mutation=mutation,
                            seed=i + chain,
                        )
                    )
    return specs


def random_grid(count: int = 25, *, nu: int = 8, seed: int = 0) -> list[ProblemSpec]:
    """``count`` seeded random specs with ν ≤ ``nu``."""
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    rng = as_generator(seed)
    specs = []
    for i in range(count):
        specs.append(
            ProblemSpec(
                nu=int(rng.integers(1, nu + 1)),
                p=float(rng.uniform(1e-4, 0.5)),
                landscape=str(rng.choice(LANDSCAPE_KINDS)),
                mutation=str(rng.choice(MUTATION_KINDS)),
                peak=float(rng.uniform(1.5, 6.0)),
                floor=1.0,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return specs


GRID_NAMES = ("smoke", "small", "full", "random")


def build_grid(name: str, *, nu: int = 6, count: int = 25, seed: int = 0) -> list[ProblemSpec]:
    """Build a named grid (``smoke``/``small``/``full``/``random``)."""
    if name == "smoke":
        return smoke_grid()
    if name == "small":
        return small_grid(nu)
    if name == "full":
        return full_grid(nu)
    if name == "random":
        return random_grid(count, nu=nu, seed=seed)
    raise ValidationError(f"unknown grid {name!r}; expected one of {GRID_NAMES}")

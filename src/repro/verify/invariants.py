"""Metamorphic invariant catalogue — the paper's identities as checks.

Every invariant encodes one *exactness claim* of the paper (or of this
reproduction's extensions) as an executable, reusable check:

==============================  =========================================
invariant                       paper identity
==============================  =========================================
``q-column-stochastic``         columns of ``Q`` sum to 1 (Eq. 2 / 7);
                                equivalently ``1ᵀ(Q·v) = 1ᵀv``
``fmmp-dense-equivalence``      ``Fmmp(v) ≡ (Q·F)·v`` densely, all three
                                forms (Eqs. 3–5, 9–10, Algorithm 1)
``fmmp-variant-agreement``      Eq. 9 and Eq. 10 stage orders commute
``fmmp-spectral-equivalence``   ``Q·v = V Λ V v`` (Sec. 2 FWHT eigen-
                                decomposition)
``xmvp-exactness``              ``Xmvp(ν) ≡ Smvp`` ([10] baseline)
``shift-safety``                ``μ = (1−2p)^ν f_min ≤ λ_min(W) < λ₀``
                                (Sec. 3)
``shifted-product-exactness``   ``(W − μI)v`` exact via one extra axpy
``shift-invert-exactness``      ``(Q − μI)^{-1}v`` via FWHT equals the
                                dense solve (Sec. 3)
``lemma2-class-recovery``       ``[Γ_k] = C(ν,k)·vΓ_k / Σⱼ C(ν,j)·vΓ_j``
                                matches the full-space Perron vector
                                (Lemma 2, Eq. 14)
``kronecker-factorization``     Perron pair of ``W = ⊗(QᵢFᵢ)`` is the
                                product/⊗ of the factors' pairs (Sec. 5.2)
``fwht-involution``             ``V·V = I`` and ``H·H = N·I`` round trips
``q-inverse-roundtrip``         ``Q⁻¹(Q·v) = v`` via Eq. 12 factors
``mean-fitness-identity``       ``λ₀ = Σᵢ fᵢ xᵢ`` at the fixed point
``device-kernel-equivalence``   Algorithm 2 stage kernels ≡ host butterfly
``distributed-equivalence``     hypercube butterfly ≡ serial butterfly
==============================  =========================================

Each invariant declares its *applicability* (which specs it can check)
and returns the measured discrepancy; the registry turns that into
pass/fail against the invariant's tolerance.

Tolerance discipline: pure product identities are *exact* — they must
hold to ~1e-12 relative error (a few ulps across ν ≤ 10 stages).
Identities that route through a dense eigendecomposition inherit LAPACK's
backward error and use 1e-10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mutation.base import check_column_stochastic
from repro.mutation.grouped import GroupedMutation
from repro.mutation.persite import PerSiteMutation
from repro.mutation.spectral import apply_uniform_q_spectral, solve_shifted_uniform_q
from repro.mutation.uniform import UniformMutation
from repro.operators.dense_w import dense_w
from repro.operators.fmmp import Fmmp
from repro.operators.shifted import ShiftedOperator, conservative_shift
from repro.operators.smvp import Smvp
from repro.operators.xmvp import Xmvp
from repro.solvers.dense import dense_dominant_eigenpair, dense_solve
from repro.solvers.kron_solver import KroneckerSolver
from repro.solvers.reduced import ReducedSolver
from repro.transforms.fwht import fwht, fwht_matrix
from repro.util.binomial import binomial_row
from repro.verify.spec import ProblemSpec

__all__ = ["Invariant", "INVARIANTS", "invariant_names", "relative_error"]

#: largest chain length for which dense materializations are allowed
#: inside invariant checks (64–1024 doubles; instantaneous).
DENSE_NU = 10

#: machine-exact identities (product routes, no eigendecomposition)
EXACT_TOL = 1e-12
#: identities routed through a dense eigendecomposition
EIGEN_TOL = 1e-10


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """``‖a − b‖_∞ / max(‖a‖_∞, ‖b‖_∞, 1e-300)`` — scale-free discrepancy."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = max(float(np.abs(a).max(initial=0.0)), float(np.abs(b).max(initial=0.0)), 1e-300)
    return float(np.abs(a - b).max(initial=0.0)) / scale


@dataclass(frozen=True)
class Invariant:
    """One metamorphic check.

    Attributes
    ----------
    name:
        Stable identifier used in reports and tests.
    equation:
        The paper identity this check encodes.
    description:
        One-line human description.
    tolerance:
        Pass threshold on the measured (relative) error.
    applies:
        Predicate on :class:`ProblemSpec`.
    run:
        ``run(spec, rng) -> (error, details)``; the registry compares
        ``error`` against ``tolerance``.
    exact:
        Whether this is a mathematically exact identity (vs one bounded
        by an eigendecomposition's backward error).
    """

    name: str
    equation: str
    description: str
    tolerance: float
    applies: Callable[[ProblemSpec], bool]
    run: Callable[[ProblemSpec, np.random.Generator], tuple[float, str]]
    exact: bool = True


def _random_probe(spec: ProblemSpec, rng: np.random.Generator, count: int = 3) -> np.ndarray:
    """A few random probe vectors (rows), scaled to unit 1-norm-ish mass;
    includes one strictly positive concentration-like vector."""
    n = spec.n
    probes = rng.standard_normal((count, n))
    probes[0] = np.abs(probes[0]) + 1e-3  # a positive, concentration-like probe
    return probes


# ------------------------------------------------------------------ checks
def _chk_column_stochastic(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    worst = 0.0
    details = []
    if spec.nu <= DENSE_NU:
        q = mutation.dense()
        check_column_stochastic(q, atol=1e-9, what="Q")
        worst = float(np.abs(q.sum(axis=0) - 1.0).max())
        details.append(f"dense column sums off by {worst:.2e}")
    # Mass conservation of the implicit product: 1ᵀ(Qv) = 1ᵀv.
    for v in _random_probe(spec, rng):
        qv = mutation.apply(v.copy())
        err = abs(float(qv.sum()) - float(v.sum())) / max(abs(float(v.sum())), 1.0)
        worst = max(worst, err)
    return worst, "; ".join(details) or "mass conservation on random probes"


def _chk_fmmp_dense(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    landscape = spec.build_landscape()
    probes = _random_probe(spec, rng)
    worst = 0.0
    worst_at = ""
    for form in ("right", "symmetric", "left"):
        wd = dense_w(mutation, landscape, form)
        for variant in ("eq9", "eq10"):
            op = Fmmp(mutation, landscape, form=form, variant=variant)
            for v in probes:
                err = relative_error(op.matvec(v), wd @ v)
                if err > worst:
                    worst, worst_at = err, f"form={form} variant={variant}"
    return worst, worst_at


def _chk_fmmp_variants(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    landscape = spec.build_landscape()
    a = Fmmp(mutation, landscape, variant="eq9")
    b = Fmmp(mutation, landscape, variant="eq10")
    worst = max(relative_error(a.matvec(v), b.matvec(v)) for v in _random_probe(spec, rng))
    return worst, "eq9 vs eq10 stage order"


def _chk_fmmp_spectral(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    worst = 0.0
    for v in _random_probe(spec, rng):
        direct = mutation.apply(v.copy())
        spectral = apply_uniform_q_spectral(v, spec.nu, spec.p)
        worst = max(worst, relative_error(direct, spectral))
    return worst, "butterfly vs V·Λ·V route"


def _chk_xmvp_exact(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    landscape = spec.build_landscape()
    xop = Xmvp(mutation, landscape, dmax=spec.nu)
    sop = Smvp(mutation, landscape)
    worst = max(relative_error(xop.matvec(v), sop.matvec(v)) for v in _random_probe(spec, rng))
    return worst, "Xmvp(nu) vs dense Smvp"


def _chk_shift_safety(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    landscape = spec.build_landscape()
    mu = conservative_shift(mutation, landscape)
    wd = dense_w(mutation, landscape, "symmetric")
    eigs = np.linalg.eigvalsh(wd)
    lam_min, lam_max = float(eigs[0]), float(eigs[-1])
    # μ must lower-bound the spectrum (never crossing any eigenvalue) and
    # keep λ₀ − μ dominant.  Degenerate corner: p = 0 on a flat landscape
    # makes W = μI exactly; the shift remains *safe* (μ = λ_min).  Scale
    # the overshoot by the spectral extent, not |λ_min| — at p = 1/2 the
    # lower edge is numerically zero and would otherwise turn a few ulps
    # of rounding into an O(1) relative error.
    scale = max(abs(lam_min), abs(lam_max), 1e-300)
    overshoot = max(mu - lam_min, 0.0) / scale
    details = f"mu={mu:.6g} lam_min={lam_min:.6g} lam_max={lam_max:.6g}"
    return overshoot, details


def _chk_shifted_product(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    landscape = spec.build_landscape()
    mu = conservative_shift(mutation, landscape)
    op = ShiftedOperator(Fmmp(mutation, landscape), mu)
    wd = dense_w(mutation, landscape, "right") - mu * np.eye(spec.n)
    worst = max(relative_error(op.matvec(v), wd @ v) for v in _random_probe(spec, rng))
    return worst, f"(W - {mu:.4g}·I)·v"


def _chk_shift_invert(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    qd = mutation.dense()
    worst = 0.0
    worst_at = ""
    # Two shifts that can never hit the spectrum {(1−2p)^k} ⊂ [0, 1]:
    # one below, one above.
    for mu in (-0.3, 1.5):
        a = qd - mu * np.eye(spec.n)
        for v in _random_probe(spec, rng):
            fast = solve_shifted_uniform_q(v, spec.nu, spec.p, mu)
            ref = np.linalg.solve(a, v)
            err = relative_error(fast, ref)
            if err > worst:
                worst, worst_at = err, f"mu={mu}"
    return worst, worst_at


def _chk_lemma2(spec: ProblemSpec, rng: np.random.Generator):
    landscape = spec.build_landscape()
    mutation = spec.build_mutation()
    reduced = ReducedSolver(spec.nu, spec.p, landscape).solve()
    full = dense_solve(mutation, landscape, form="right")
    gamma_full = full.error_class_concentrations(spec.nu)
    # The recovery formula itself, applied by hand to the reduced vector:
    sizes = binomial_row(spec.nu)
    weighted = sizes * reduced.eigenvector
    gamma_formula = weighted / weighted.sum()
    err_vec = relative_error(reduced.concentrations, gamma_full)
    err_formula = relative_error(gamma_formula, reduced.concentrations)
    err_lam = abs(reduced.eigenvalue - full.eigenvalue) / max(abs(full.eigenvalue), 1e-300)
    return max(err_vec, err_formula, err_lam), (
        f"class-vector err {err_vec:.2e}, eigenvalue err {err_lam:.2e}"
    )


def _chk_kronecker(spec: ProblemSpec, rng: np.random.Generator):
    landscape = spec.build_landscape()
    mutation = spec.build_mutation()
    res = KroneckerSolver(mutation, landscape).solve()
    full = dense_solve(mutation, landscape, form="right")
    err_lam = abs(res.eigenvalue - full.eigenvalue) / max(abs(full.eigenvalue), 1e-300)
    err_vec = relative_error(res.eigenvector.materialize(), full.concentrations)
    gamma = res.eigenvector.class_concentrations()
    err_gamma = relative_error(gamma, full.error_class_concentrations(spec.nu))
    return max(err_lam, err_vec, err_gamma), (
        f"eigenvalue err {err_lam:.2e}, Perron-vector err {err_vec:.2e}"
    )


def _chk_fwht(spec: ProblemSpec, rng: np.random.Generator):
    worst = 0.0
    for v in _random_probe(spec, rng):
        worst = max(worst, relative_error(fwht(fwht(v)), v))  # involution
        h = fwht(v, ortho=False)
        worst = max(worst, relative_error(fwht(h, ortho=False) / spec.n, v))  # H² = N·I
    if spec.nu <= DENSE_NU:
        vmat = fwht_matrix(spec.nu)
        worst = max(worst, relative_error(vmat @ vmat, np.eye(spec.n)))
    return worst, "round trips + V·V = I"


def _chk_q_inverse(spec: ProblemSpec, rng: np.random.Generator):
    mutation = spec.build_mutation()
    # Conditioning of Q⁻¹ is (1−2p)^{−ν}; only check while well-posed.
    cond = (1.0 - 2.0 * spec.p) ** (-spec.nu)
    worst = 0.0
    for v in _random_probe(spec, rng):
        qv = mutation.apply(v.copy())
        back = mutation.apply_inverse(qv)
        worst = max(worst, relative_error(back, v))
    return worst / cond, f"Q⁻¹(Q·v) round trip (cond ≈ {cond:.2g}, error scaled by it)"


def _chk_mean_fitness(spec: ProblemSpec, rng: np.random.Generator):
    from repro.model.quasispecies import QuasispeciesModel

    landscape = spec.build_landscape()
    mutation = spec.build_mutation()
    model = QuasispeciesModel(landscape, mutation)
    res = model.solve("power", tol=1e-12, shift=False)
    f = landscape.values()
    lam_from_identity = float(f @ res.concentrations)
    err = abs(lam_from_identity - res.eigenvalue) / max(abs(res.eigenvalue), 1e-300)
    return err, f"lambda0={res.eigenvalue:.10g} vs sum(f·x)={lam_from_identity:.10g}"


def _chk_device(spec: ProblemSpec, rng: np.random.Generator):
    from repro.device.kernels.fmmp_kernel import fmmp_stage_kernel
    from repro.device.profile import TESLA_C2050
    from repro.device.runtime import Device

    mutation = spec.build_mutation()
    v = _random_probe(spec, rng, count=1)[0]
    dev = Device(TESLA_C2050)
    dev.alloc("v", spec.n)
    try:
        dev.to_device("v", v)
        for s, m in enumerate(mutation.factors_per_bit()):
            dev.launch(
                fmmp_stage_kernel,
                spec.n // 2,
                {"span": 1 << s, "m00": m[0, 0], "m01": m[0, 1], "m10": m[1, 0], "m11": m[1, 1]},
                binding={"v": "v"},
            )
        device_out = dev.from_device("v")
    finally:
        dev.free("v")
    host_out = mutation.apply(v.copy())
    return relative_error(device_out, host_out), "Algorithm-2 stage kernels vs host butterfly"


def _chk_distributed(spec: ProblemSpec, rng: np.random.Generator):
    from repro.distributed.cluster import gpu_cluster
    from repro.distributed.fmmp import DistributedFmmp
    from repro.distributed.partition import PartitionedVector

    mutation = spec.build_mutation()
    ranks = min(4, spec.n // 2)
    op = DistributedFmmp(gpu_cluster(ranks), mutation.factors_per_bit())
    v = _random_probe(spec, rng, count=1)[0]
    pv = PartitionedVector.scatter(v, ranks)
    out = op.apply(pv).gather()
    serial = mutation.apply(v.copy())
    return relative_error(out, serial), f"hypercube butterfly over {ranks} ranks"


# ----------------------------------------------------------- applicability
def _is_2x2_factored(spec: ProblemSpec) -> bool:
    return spec.mutation in ("uniform", "persite")


def _dense_ok(spec: ProblemSpec) -> bool:
    return spec.nu <= DENSE_NU


def _uniform(spec: ProblemSpec) -> bool:
    return spec.mutation == "uniform"


INVARIANTS: tuple[Invariant, ...] = (
    Invariant(
        name="q-column-stochastic",
        equation="Eq. 2 / Eq. 7",
        description="Q is column stochastic; the implicit product conserves mass",
        tolerance=EXACT_TOL,
        applies=lambda s: True,
        run=_chk_column_stochastic,
    ),
    Invariant(
        name="fmmp-dense-equivalence",
        equation="Eqs. 3-5, 9-10, Algorithm 1",
        description="Fmmp·v equals the dense (Q·F)·v in every form and variant",
        tolerance=EXACT_TOL,
        applies=_dense_ok,
        run=_chk_fmmp_dense,
    ),
    Invariant(
        name="fmmp-variant-agreement",
        equation="Eq. 9 vs Eq. 10",
        description="ascending and descending stage orders agree",
        tolerance=1e-13,
        applies=lambda s: True,
        run=_chk_fmmp_variants,
    ),
    Invariant(
        name="fmmp-spectral-equivalence",
        equation="Sec. 2 (Q = V·Λ·V)",
        description="butterfly Q·v equals the FWHT spectral route",
        tolerance=EXACT_TOL,
        applies=_uniform,
        run=_chk_fmmp_spectral,
    ),
    Invariant(
        name="xmvp-exactness",
        equation="[10] (Xmvp(nu) = Smvp)",
        description="untruncated XOR product equals the dense product",
        tolerance=EXACT_TOL,
        applies=lambda s: _uniform(s) and _dense_ok(s),
        run=_chk_xmvp_exact,
    ),
    Invariant(
        name="shift-safety",
        equation="Sec. 3 (mu = (1-2p)^nu * f_min)",
        description="the conservative shift never crosses the spectrum",
        tolerance=1e-10,
        applies=lambda s: _uniform(s) and _dense_ok(s),
        run=_chk_shift_safety,
        exact=False,
    ),
    Invariant(
        name="shifted-product-exactness",
        equation="Sec. 3",
        description="(W - mu·I)·v through ShiftedOperator equals the dense product",
        tolerance=EXACT_TOL,
        applies=lambda s: _uniform(s) and _dense_ok(s),
        run=_chk_shifted_product,
    ),
    Invariant(
        name="shift-invert-exactness",
        equation="Sec. 3 (FWHT shift-and-invert)",
        description="(Q - mu·I)^{-1}·v via FWHT equals the dense solve",
        tolerance=1e-10,
        applies=lambda s: _uniform(s) and _dense_ok(s),
        run=_chk_shift_invert,
        exact=False,
    ),
    Invariant(
        name="lemma2-class-recovery",
        equation="Lemma 2, Eq. 14",
        description="(nu+1) reduction + binomial recovery matches the full Perron vector",
        tolerance=EIGEN_TOL,
        applies=lambda s: _uniform(s)
        and _dense_ok(s)
        and s.landscape in ("single-peak", "linear", "flat"),
        run=_chk_lemma2,
        exact=False,
    ),
    Invariant(
        name="kronecker-factorization",
        equation="Sec. 5.2 (Eq. 18)",
        description="decoupled Perron pair equals the full-space dense pair",
        tolerance=EIGEN_TOL,
        applies=lambda s: s.landscape == "kronecker" and _dense_ok(s),
        run=_chk_kronecker,
        exact=False,
    ),
    Invariant(
        name="fwht-involution",
        equation="Sec. 2 (V·V = I, H·H = N·I)",
        description="FWHT round trips and orthogonality",
        tolerance=EXACT_TOL,
        applies=lambda s: True,
        run=_chk_fwht,
    ),
    Invariant(
        name="q-inverse-roundtrip",
        equation="Eq. 12",
        description="Q^{-1}(Q·v) returns v (error scaled by cond(Q))",
        tolerance=EXACT_TOL,
        applies=lambda s: _uniform(s) and s.p < 0.5,
        run=_chk_q_inverse,
    ),
    Invariant(
        name="mean-fitness-identity",
        equation="Eq. 1 (stationarity)",
        description="lambda0 equals the mean fitness of the stationary population",
        tolerance=1e-8,
        applies=lambda s: not (s.p == 0.0 and s.landscape == "flat"),
        run=_chk_mean_fitness,
        exact=False,
    ),
    Invariant(
        name="device-kernel-equivalence",
        equation="Sec. 4, Algorithm 2",
        description="device stage kernels reproduce the host butterfly",
        tolerance=EXACT_TOL,
        applies=lambda s: _is_2x2_factored(s) and s.nu <= DENSE_NU,
        run=_chk_device,
    ),
    Invariant(
        name="distributed-equivalence",
        equation="Sec. 4 (hypercube butterfly)",
        description="block-partitioned butterfly matches the serial one",
        tolerance=1e-13,
        applies=lambda s: _is_2x2_factored(s) and s.nu >= 3,
        run=_chk_distributed,
    ),
)


def invariant_names() -> list[str]:
    """Names of every catalogued invariant."""
    return [inv.name for inv in INVARIANTS]

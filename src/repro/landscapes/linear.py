"""The linear fitness landscape.

``f_i = f_0 − (f_0 − f_ν) · dH(i, 0)/ν`` — fitness decays linearly with
distance from the master (paper, Fig. 1 right: ``ν = 20``, ``f_0 = 2``,
``f_ν = 1``).  For this landscape the transition into the uniform
distribution is *smooth*: no error-threshold phenomenon occurs.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.landscapes.hamming import HammingLandscape
from repro.util.validation import check_positive

__all__ = ["LinearLandscape"]


class LinearLandscape(HammingLandscape):
    """Linearly interpolated fitness between master and antipode.

    Parameters
    ----------
    nu:
        Chain length.
    f0:
        Fitness of the master sequence (class Γ₀); paper uses 2.
    fnu:
        Fitness of the antipodal class Γ_ν; paper uses 1.  Must satisfy
        ``0 < fnu <= f0``.
    """

    def __init__(self, nu: int, f0: float = 2.0, fnu: float = 1.0):
        f0 = check_positive(f0, "f0")
        fnu = check_positive(fnu, "fnu")
        if fnu > f0:
            raise ValidationError(f"linear landscape needs fnu <= f0, got {fnu} > {f0}")
        self.f0 = f0
        self.fnu = fnu
        slope = (f0 - fnu) / nu
        super().__init__(nu, lambda k: f0 - slope * k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearLandscape(nu={self.nu}, f0={self.f0}, fnu={self.fnu})"

"""Classic landscape families from the molecular-evolution literature.

The paper's point is generality: its solver needs *no* landscape
structure.  These families give users the standard test beds:

* :class:`MultiplicativeLandscape` — independent per-site fitness
  effects, ``f_i = Π_s (1 − s_s)^{bit_s(i)}``.  Multiplicativity *is*
  Kronecker structure with 2-element diagonal factors, so this family
  rides the Sec. 5.2 decoupling for free (and the class advertises it).
* :class:`AdditiveLandscape` — ``f_i = base + Σ_s e_s·bit_s(i)``.
  Additive-but-non-uniform effects are neither Hamming- nor
  Kronecker-structured: the honest general-solver workload.
* :class:`NKLandscape` — Kauffman-style rugged epistasis: each site's
  contribution depends on ``K`` neighbors; tunable ruggedness between
  additive (K = 0) and fully random (K = ν−1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.landscapes.kronecker import KroneckerLandscape
from repro.util.rng import as_generator
from repro.util.validation import check_chain_length, check_positive

__all__ = ["MultiplicativeLandscape", "AdditiveLandscape", "NKLandscape"]


class MultiplicativeLandscape(KroneckerLandscape):
    """Independent multiplicative per-site effects.

    Parameters
    ----------
    base:
        Fitness of the all-zero master sequence.
    effects:
        Per-site selection coefficients ``s_s ∈ [0, 1)``: carrying the
        mutant allele at site ``s`` multiplies fitness by ``1 − s_s``.

    Notes
    -----
    Built as a :class:`KroneckerLandscape` whose factor for site ``s``
    is ``diag(1, 1 − s_s)`` (scaled into the first factor by ``base``),
    so the decoupled solver of Sec. 5.2 applies directly — multiplicative
    fitness is the biologically named case of Kronecker structure.
    """

    def __init__(self, base: float, effects: Sequence[float]):
        base = check_positive(base, "base")
        effects = [float(e) for e in effects]
        if not effects:
            raise ValidationError("at least one site effect is required")
        for s, e in enumerate(effects):
            if not 0.0 <= e < 1.0:
                raise ValidationError(f"effect {s} must be in [0, 1), got {e}")
        self.base = base
        self.effects = tuple(effects)
        # Kronecker order is MSB first; site s is bit s (LSB first), so
        # factor for the highest site comes first.  Fold `base` into the
        # first factor.
        diagonals = [np.array([1.0, 1.0 - e]) for e in reversed(effects)]
        diagonals[0] = diagonals[0] * base
        super().__init__(diagonals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiplicativeLandscape(nu={self.nu}, base={self.base})"


class AdditiveLandscape(FitnessLandscape):
    """Independent additive per-site effects (no exploitable structure
    unless the effects are all equal).

    Parameters
    ----------
    base:
        Fitness of the master sequence.
    effects:
        Per-site decrements ``e_s >= 0``: ``f_i = base − Σ_s e_s·bit_s(i)``
        (must stay positive at the all-mutant sequence).
    """

    def __init__(self, base: float, effects: Sequence[float]):
        effects = [float(e) for e in effects]
        if not effects:
            raise ValidationError("at least one site effect is required")
        nu = check_chain_length(len(effects))
        super().__init__(nu)
        base = check_positive(base, "base")
        if any(e < 0 for e in effects):
            raise ValidationError("site effects must be non-negative")
        if base - sum(effects) <= 0.0:
            raise ValidationError(
                "base - sum(effects) must stay positive (the all-mutant fitness)"
            )
        self.base = base
        self.effects = tuple(effects)
        idx = np.arange(self.n, dtype=np.int64)
        vals = np.full(self.n, base)
        for s, e in enumerate(effects):
            vals -= e * ((idx >> s) & 1)
        self._values = self._check_positive_values(vals)
        self._values.setflags(write=False)

    def values(self) -> np.ndarray:
        return self._values

    @property
    def fmin(self) -> float:
        return self.base - sum(self.effects)

    @property
    def fmax(self) -> float:
        return self.base

    @property
    def is_error_class_landscape(self) -> bool:
        """Only when every site carries the same effect (then fitness
        depends on the mutation count alone)."""
        return len(set(self.effects)) == 1


class NKLandscape(FitnessLandscape):
    """Kauffman NK model: tunably rugged epistatic fitness.

    Each site ``s`` contributes a value drawn from a lookup table
    indexed by its own allele and the alleles of its ``K`` neighbors
    (cyclically adjacent sites); total fitness is ``offset`` plus the
    mean contribution.  ``K = 0`` is additive; growing ``K`` increases
    ruggedness toward a fully random landscape at ``K = ν−1``.

    Parameters
    ----------
    nu:
        Chain length (full 2^ν values are materialized).
    k:
        Epistasis degree ``0 <= K <= ν−1``.
    offset:
        Positive floor added to the (mean-of-[0,1]-tables) contribution
        so all fitness values stay positive.
    seed:
        RNG seed for the contribution tables.
    """

    def __init__(self, nu: int, k: int, *, offset: float = 0.5, seed=None):
        super().__init__(nu)
        if not 0 <= k <= self.nu - 1:
            raise ValidationError(f"K must be in [0, {self.nu - 1}], got {k}")
        check_positive(offset, "offset")
        self.k = int(k)
        self.offset = float(offset)
        rng = as_generator(seed)
        tables = rng.random((self.nu, 1 << (self.k + 1)))
        idx = np.arange(self.n, dtype=np.int64)
        contrib = np.zeros(self.n)
        for s in range(self.nu):
            # Neighborhood: site s and its K cyclic successors.
            key = np.zeros(self.n, dtype=np.int64)
            for j in range(self.k + 1):
                site = (s + j) % self.nu
                key |= ((idx >> site) & 1) << j
            contrib += tables[s][key]
        vals = self.offset + contrib / self.nu
        self._values = self._check_positive_values(vals)
        self._values.setflags(write=False)

    def values(self) -> np.ndarray:
        return self._values

    @property
    def fmin(self) -> float:
        return float(self._values.min())

    @property
    def fmax(self) -> float:
        return float(self._values.max())

    def ruggedness(self) -> float:
        """Fraction of sequences that are local fitness maxima (over the
        ν single-bit neighbors) — the standard NK ruggedness readout."""
        idx = np.arange(self.n, dtype=np.int64)
        is_max = np.ones(self.n, dtype=bool)
        for s in range(self.nu):
            neighbor = idx ^ (1 << s)
            is_max &= self._values >= self._values[neighbor]
        return float(is_max.sum()) / self.n

"""Fitness landscapes ``F = diag(f_0 … f_{N−1})``.

The paper distinguishes three structural regimes, all represented here:

* **general** — arbitrary positive diagonal
  (:class:`~repro.landscapes.custom.TabulatedLandscape`,
  :class:`~repro.landscapes.random_.RandomLandscape` per Eq. 13); solved
  with the full ``Θ(N log₂ N)`` machinery;
* **Hamming-distance based** — ``f_i = ϕ(dH(i, 0))``
  (:class:`~repro.landscapes.hamming.HammingLandscape` and the classic
  :class:`~repro.landscapes.singlepeak.SinglePeakLandscape` /
  :class:`~repro.landscapes.linear.LinearLandscape`); solvable exactly by
  the (ν+1)-dimensional reduction of Sec. 5.1;
* **Kronecker** — ``F = ⊗ F_{G_i}`` (Eq. 18,
  :class:`~repro.landscapes.kronecker.KroneckerLandscape`); decouples the
  eigenproblem entirely (Sec. 5.2).
"""

from repro.landscapes.base import FitnessLandscape
from repro.landscapes.custom import TabulatedLandscape
from repro.landscapes.hamming import HammingLandscape
from repro.landscapes.singlepeak import SinglePeakLandscape
from repro.landscapes.linear import LinearLandscape
from repro.landscapes.random_ import RandomLandscape
from repro.landscapes.kronecker import KroneckerLandscape
from repro.landscapes.epistatic import (
    AdditiveLandscape,
    MultiplicativeLandscape,
    NKLandscape,
)

__all__ = [
    "AdditiveLandscape",
    "MultiplicativeLandscape",
    "NKLandscape",
    "FitnessLandscape",
    "TabulatedLandscape",
    "HammingLandscape",
    "SinglePeakLandscape",
    "LinearLandscape",
    "RandomLandscape",
    "KroneckerLandscape",
]

"""The single-peak fitness landscape.

``f_0 = f_peak`` for the master sequence, ``f_i = f_rest`` for everything
else — the textbook landscape that produces the sharpest error-threshold
phenomenon (paper, Fig. 1 left: ``ν = 20``, ``f_0 = 2``, ``f_i = 1`` gives
``p_max ≈ 0.035``).
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.landscapes.hamming import HammingLandscape
from repro.util.validation import check_positive

__all__ = ["SinglePeakLandscape"]


class SinglePeakLandscape(HammingLandscape):
    """Single peak at the master sequence.

    Parameters
    ----------
    nu:
        Chain length.
    f_peak:
        Fitness of the master sequence ``X_0`` (paper uses 2).
    f_rest:
        Common fitness of every other sequence (paper uses 1); must be
        strictly below ``f_peak`` for the peak to be a peak.
    """

    def __init__(self, nu: int, f_peak: float = 2.0, f_rest: float = 1.0):
        f_peak = check_positive(f_peak, "f_peak")
        f_rest = check_positive(f_rest, "f_rest")
        if f_rest >= f_peak:
            raise ValidationError(
                f"single-peak landscape needs f_rest < f_peak, got {f_rest} >= {f_peak}"
            )
        self.f_peak = f_peak
        self.f_rest = f_rest
        super().__init__(nu, lambda k: f_peak if k == 0 else f_rest)

    @property
    def superiority(self) -> float:
        """The superiority parameter ``σ₀ = f_peak / f_rest``.

        Classic quasispecies theory predicts the error threshold near
        ``p_max ≈ ln(σ₀)/ν`` — a useful sanity check for Fig. 1.
        """
        return self.f_peak / self.f_rest

    def predicted_threshold(self) -> float:
        """First-order analytic estimate ``p_max ≈ ln(σ₀)/ν``."""
        import math

        return math.log(self.superiority) / self.nu

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SinglePeakLandscape(nu={self.nu}, f_peak={self.f_peak}, f_rest={self.f_rest})"

"""Abstract fitness landscape interface.

A landscape is the positive diagonal of ``F`` in ``W = Q · F``.  Concrete
classes differ in *structure*, which the solvers exploit:

* :meth:`FitnessLandscape.values` materializes the diagonal (guarded, for
  the full solvers),
* :meth:`FitnessLandscape.class_values` exposes the ν+1 values of a
  Hamming-distance landscape (for the exact reduction of Sec. 5.1),
* Kronecker landscapes override :attr:`FitnessLandscape.kron_diagonals`
  (for the decoupled solver of Sec. 5.2).

``fmin``/``fmax`` are available on every landscape without materializing
the diagonal — the power-iteration shift ``μ = (1−2p)^ν f_min`` and the
eigenvalue bound ``λ_0 <= f_max`` (Sec. 3) only need these.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.util.validation import check_chain_length

__all__ = ["FitnessLandscape"]


class FitnessLandscape(abc.ABC):
    """Positive diagonal fitness matrix ``F`` for chain length ``ν``.

    Attributes
    ----------
    nu:
        Chain length.
    n:
        Dimension ``N = 2**ν``.
    """

    def __init__(self, nu: int, *, max_nu: int | None = None):
        kwargs = {} if max_nu is None else {"max_nu": max_nu}
        self.nu = check_chain_length(nu, **kwargs)
        self.n = 1 << self.nu

    # ------------------------------------------------------------------ api
    @abc.abstractmethod
    def values(self) -> np.ndarray:
        """The full diagonal ``(f_0, …, f_{N−1})`` as ``float64``.

        Implementations must return a fresh (or read-only) array and are
        expected to refuse chain lengths where ``N`` doubles would be
        unreasonable.
        """

    @property
    @abc.abstractmethod
    def fmin(self) -> float:
        """``min_i f_i > 0`` — enters the convergence shift."""

    @property
    @abc.abstractmethod
    def fmax(self) -> float:
        """``max_i f_i`` — upper bound for the dominant eigenvalue λ₀."""

    # -------------------------------------------------------- structure API
    @property
    def is_error_class_landscape(self) -> bool:
        """True if ``f_i`` depends only on ``dH(i, 0)`` (Sec. 5.1)."""
        return False

    def class_values(self) -> np.ndarray:
        """The ν+1 values ``FΓ_k = ϕ(k)`` of an error-class landscape.

        Raises
        ------
        ValidationError
            If this landscape is not Hamming-distance based.
        """
        raise ValidationError(
            f"{type(self).__name__} is not an error-class landscape; "
            "the (nu+1)-dimensional reduction does not apply"
        )

    @property
    def kron_diagonals(self) -> list[np.ndarray] | None:
        """Diagonals of the Kronecker factors ``F_{G_i}`` (paper ⊗ order),
        or ``None`` when the landscape has no Kronecker structure."""
        return None

    # ------------------------------------------------------- shared helpers
    def start_vector(self) -> np.ndarray:
        """The paper's power-iteration start ``s = diag(F) / ‖diag(F)‖₁``.

        Chosen because the dominant eigenvector of ``W = Q·F`` resembles
        the landscape itself (Sec. 3).
        """
        f = self.values()
        return f / f.sum()

    def _check_positive_values(self, f: np.ndarray) -> np.ndarray:
        f = np.asarray(f, dtype=np.float64)
        if f.shape != (self.n,):
            raise ValidationError(f"landscape must have {self.n} values, got {f.shape}")
        if not np.all(np.isfinite(f)) or np.any(f <= 0.0):
            raise ValidationError("all fitness values must be finite and > 0")
        return f

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(nu={self.nu})"

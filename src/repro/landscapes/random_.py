"""Random fitness landscapes (paper, Eq. 13).

The paper's experiments deliberately avoid structural assumptions and use

    f_0 = c,       f_i = σ · (η_rnd(i) + 0.5)   for i >= 1,

with ``c > 0``, ``σ ∈ (0, c/2)`` and ``η_rnd`` uniform on [0, 1] — a
master sequence at fitness ``c`` over a rugged floor in
``[σ/2, 3σ/2] ⊂ (0, c)``.  Figure 3 uses ``c = 5``, ``σ = 1``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.util.rng import as_generator
from repro.util.validation import check_positive

__all__ = ["RandomLandscape"]


class RandomLandscape(FitnessLandscape):
    """Unstructured random landscape per Eq. (13).

    Parameters
    ----------
    nu:
        Chain length (the full ``2**ν`` values are materialized, so the
        usual guard applies).
    c:
        Master-sequence fitness (paper: 5).
    sigma:
        Scale of the random floor; must lie in ``(0, c/2)`` so the master
        stays the fittest sequence (paper's constraint).
    seed:
        Seed or :class:`numpy.random.Generator` for reproducibility.
    """

    def __init__(self, nu: int, c: float = 5.0, sigma: float = 1.0, *, seed=None):
        super().__init__(nu)
        c = check_positive(c, "c")
        sigma = check_positive(sigma, "sigma")
        if not sigma < c / 2.0:
            raise ValidationError(f"Eq. (13) requires sigma in (0, c/2); got sigma={sigma}, c={c}")
        self.c = c
        self.sigma = sigma
        rng = as_generator(seed)
        vals = sigma * (rng.random(self.n) + 0.5)
        vals[0] = c
        self._values = self._check_positive_values(vals)
        self._values.setflags(write=False)

    def values(self) -> np.ndarray:
        return self._values

    @property
    def fmin(self) -> float:
        return float(self._values.min())

    @property
    def fmax(self) -> float:
        return float(self._values.max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomLandscape(nu={self.nu}, c={self.c}, sigma={self.sigma})"

"""Hamming-distance based (error-class) fitness landscapes.

``f_i = ϕ(dH(i, 0))`` — every sequence in error class ``Γ_k`` has fitness
``ϕ(k)``.  This is the structure almost the entire quasispecies
literature assumes (paper, Sec. 1.2 / 5.1) and the one for which the
exact (ν+1)-dimensional reduction applies.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape

__all__ = ["HammingLandscape"]


class HammingLandscape(FitnessLandscape):
    """Landscape defined by a function ``ϕ`` of the distance to the master.

    Parameters
    ----------
    nu:
        Chain length.
    phi:
        Either a callable ``ϕ(k) → fitness`` evaluated for
        ``k = 0 … ν``, or a sequence of ν+1 fitness values.

    Notes
    -----
    Because only ν+1 values are stored, instances are valid for very long
    chains; :meth:`values` (which materializes ``2**ν`` floats) is the
    only guarded operation.
    """

    #: materializing the full diagonal beyond this is refused
    _MAX_FULL_NU = 26

    def __init__(self, nu: int, phi: Callable[[int], float] | Sequence[float]):
        super().__init__(nu, max_nu=10_000)
        if callable(phi):
            vals = np.array([float(phi(k)) for k in range(self.nu + 1)])
        else:
            vals = np.asarray(phi, dtype=np.float64).reshape(-1)
            if vals.shape[0] != self.nu + 1:
                raise ValidationError(
                    f"phi must provide nu+1={self.nu + 1} class values, got {vals.shape[0]}"
                )
        if not np.all(np.isfinite(vals)) or np.any(vals <= 0.0):
            raise ValidationError("all class fitness values must be finite and > 0")
        self._class_values = vals
        self._class_values.setflags(write=False)

    def values(self) -> np.ndarray:
        if self.nu > self._MAX_FULL_NU:
            raise ValidationError(
                f"materializing 2**{self.nu} fitness values refused; "
                "use class_values() with the reduced solver"
            )
        return self._class_values[distance_to_master(self.nu)]

    @property
    def fmin(self) -> float:
        return float(self._class_values.min())

    @property
    def fmax(self) -> float:
        return float(self._class_values.max())

    @property
    def is_error_class_landscape(self) -> bool:
        return True

    def class_values(self) -> np.ndarray:
        """The ν+1 values ``FΓ_k = ϕ(k)``."""
        return self._class_values

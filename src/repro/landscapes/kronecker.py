"""Kronecker-product fitness landscapes (Eq. 18, Sec. 5.2).

``F = ⊗_{i=1}^{g} F_{G_i}`` with diagonal factors
``F_{G_i} ∈ R^{2^{g_i} × 2^{g_i}}``.  Such landscapes have
``Σᵢ 2^{g_i}`` degrees of freedom (richer than the ν+1 of Hamming
landscapes) and — the paper's headline structural result — they decouple
``W = Q·F`` into ``g`` independent subproblems whose dominant
eigenvectors Kronecker-combine into the full one.  A chain of length
ν = 100 with g = 4 equal groups becomes four 2²⁵ problems.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.transforms.kronecker import kron_diagonal
from repro.util.validation import check_power_of_two

__all__ = ["KroneckerLandscape"]


class KroneckerLandscape(FitnessLandscape):
    """Landscape whose diagonal is a Kronecker product of small diagonals.

    Parameters
    ----------
    diagonals:
        The diagonals of the factors ``F_{G_i}``, in the paper's ⊗ order
        (factor 0 acts on the most significant group of index bits).
        Each must be positive and of power-of-two length ``2^{g_i}``.

    Notes
    -----
    ``fmin``, ``fmax`` and random access are computed from the factors —
    the full diagonal is only materialized on :meth:`values` (guarded).
    """

    #: materializing the full diagonal beyond this is refused
    _MAX_FULL_NU = 26

    def __init__(self, diagonals: Sequence[np.ndarray]):
        if len(diagonals) == 0:
            raise ValidationError("at least one Kronecker factor is required")
        self._diags: list[np.ndarray] = []
        self._bits: list[int] = []
        for idx, d in enumerate(diagonals):
            arr = np.asarray(d, dtype=np.float64).reshape(-1)
            dim = check_power_of_two(arr.shape[0], f"length of factor {idx}")
            if not np.all(np.isfinite(arr)) or np.any(arr <= 0.0):
                raise ValidationError(f"factor {idx} must be finite and positive")
            self._diags.append(arr.copy())
            self._bits.append(dim.bit_length() - 1)
        nu = sum(self._bits)
        super().__init__(nu, max_nu=10_000)
        for d in self._diags:
            d.setflags(write=False)

    # ----------------------------------------------------------- structure
    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Bits per factor, ``(g_1, …, g_g)``, paper order."""
        return tuple(self._bits)

    @property
    def kron_diagonals(self) -> list[np.ndarray]:
        return [d.copy() for d in self._diags]

    @property
    def degrees_of_freedom(self) -> int:
        """``Σᵢ 2^{g_i}`` — the paper's comparison against ν+1."""
        return sum(1 << b for b in self._bits)

    # ----------------------------------------------------------- evaluation
    def values(self) -> np.ndarray:
        if self.nu > self._MAX_FULL_NU:
            raise ValidationError(
                f"materializing 2**{self.nu} fitness values refused; "
                "use the decoupled Kronecker solver"
            )
        return kron_diagonal(self._diags)

    def value_at(self, i: int) -> float:
        """``f_i`` without materializing: product of factor entries
        selected by the bit groups of ``i`` (MSB group = factor 0)."""
        if not 0 <= i < self.n:
            raise ValidationError(f"index {i} out of range [0, {self.n})")
        out = 1.0
        shift = self.nu
        for d, bits in zip(self._diags, self._bits):
            shift -= bits
            out *= float(d[(i >> shift) & ((1 << bits) - 1)])
        return out

    @property
    def fmin(self) -> float:
        out = 1.0
        for d in self._diags:
            out *= float(d.min())
        return out

    @property
    def fmax(self) -> float:
        out = 1.0
        for d in self._diags:
            out *= float(d.max())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KroneckerLandscape(nu={self.nu}, groups={self.group_sizes})"

"""Explicitly tabulated (fully general) fitness landscapes.

This is the "no assumptions beyond diagonality" case that the paper's
fast solver targets: all ``N`` degrees of freedom are free, nothing is
reduced, and the eigenvector has no structure to exploit.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.landscapes.base import FitnessLandscape

__all__ = ["TabulatedLandscape"]


class TabulatedLandscape(FitnessLandscape):
    """Landscape given by an explicit vector of ``N = 2**ν`` values.

    Parameters
    ----------
    values:
        Positive fitness values ``(f_0, …, f_{N−1})``; ``N`` must be a
        power of two.

    Examples
    --------
    >>> import numpy as np
    >>> ls = TabulatedLandscape([2.0, 1.0, 1.0, 1.0])
    >>> ls.nu, ls.fmax, ls.fmin
    (2, 2.0, 1.0)
    """

    def __init__(self, values: np.ndarray):
        arr = np.asarray(values, dtype=np.float64).reshape(-1)
        n = arr.shape[0]
        if n < 2 or (n & (n - 1)) != 0:
            from repro.exceptions import ValidationError

            raise ValidationError(f"landscape length must be a power of two >= 2, got {n}")
        super().__init__(n.bit_length() - 1)
        self._values = self._check_positive_values(arr).copy()
        self._values.setflags(write=False)

    def values(self) -> np.ndarray:
        return self._values

    @property
    def fmin(self) -> float:
        return float(self._values.min())

    @property
    def fmax(self) -> float:
        return float(self._values.max())

    @property
    def is_error_class_landscape(self) -> bool:
        """Detected by inspection: constant within every error class Γ_k."""
        labels = distance_to_master(self.nu)
        for k in range(self.nu + 1):
            vals = self._values[labels == k]
            if vals.size and not np.all(vals == vals[0]):
                return False
        return True

    def class_values(self) -> np.ndarray:
        if not self.is_error_class_landscape:
            return super().class_values()  # raises with the right message
        labels = distance_to_master(self.nu)
        reps = np.zeros(self.nu + 1)
        for k in range(self.nu + 1):
            reps[k] = self._values[labels == k][0]
        return reps

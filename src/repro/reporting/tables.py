"""Plain-text table rendering for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ValidationError

__all__ = ["render_table", "format_seconds", "format_sci"]


def format_seconds(t: float) -> str:
    """Human-scaled duration: ns/µs/ms/s."""
    if t != t:  # NaN
        return "n/a"
    if t < 0:
        raise ValidationError(f"negative duration {t}")
    if t < 1e-6:
        return f"{t * 1e9:.1f} ns"
    if t < 1e-3:
        return f"{t * 1e6:.1f} µs"
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    if t < 120.0:
        return f"{t:.2f} s"
    return f"{t / 60.0:.1f} min"


def format_sci(x: float, digits: int = 2) -> str:
    """Scientific notation like ``2.1e+07`` (figure-axis style)."""
    return f"{x:.{digits}e}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render an ASCII table with padded columns.

    All cells are stringified with ``str``; callers pre-format numbers.
    """
    if not headers:
        raise ValidationError("table needs at least one column")
    cols = len(headers)
    cells = [[str(h) for h in headers]]
    for r in rows:
        if len(r) != cols:
            raise ValidationError(f"row {r!r} has {len(r)} cells, expected {cols}")
        cells.append([str(c) for c in r])
    widths = [max(len(row[c]) for row in cells) for c in range(cols)]

    def fmt_row(row: list[str]) -> str:
        if align_right:
            return "  ".join(row[c].rjust(widths[c]) for c in range(cols))
        return "  ".join(row[c].ljust(widths[c]) for c in range(cols))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells[1:])
    return "\n".join(lines)

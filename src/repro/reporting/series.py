"""Figure-series containers with CSV export.

Each paper figure is a bundle of named (x → y) series; the benches build
:class:`SeriesBundle` objects, print them, and can persist them as CSV
for external plotting.
"""

from __future__ import annotations

import io
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["FigureSeries", "SeriesBundle"]


@dataclass
class FigureSeries:
    """One named curve: parallel ``x`` and ``y`` sequences."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def as_mapping(self) -> dict[float, float]:
        return dict(zip(self.x, self.y))

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class SeriesBundle:
    """A figure: title, axis names, and a set of curves on a shared x."""

    title: str
    x_label: str = "x"
    y_label: str = "y"
    series: dict[str, FigureSeries] = field(default_factory=dict)

    def new_series(self, label: str) -> FigureSeries:
        if label in self.series:
            raise ValidationError(f"series {label!r} already exists in {self.title!r}")
        s = FigureSeries(label)
        self.series[label] = s
        return s

    def add_mapping(self, label: str, data: Mapping[float, float]) -> FigureSeries:
        s = self.new_series(label)
        for x in sorted(data):
            s.add(x, data[x])
        return s

    # ------------------------------------------------------------- export
    def to_csv(self) -> str:
        """Wide CSV: first column x, one column per series (blank where a
        series has no value at that x)."""
        xs = sorted({x for s in self.series.values() for x in s.x})
        labels = list(self.series)
        buf = io.StringIO()
        buf.write(",".join([self.x_label] + labels) + "\n")
        maps = {lbl: self.series[lbl].as_mapping() for lbl in labels}
        for x in xs:
            cells = [repr(x)]
            for lbl in labels:
                v = maps[lbl].get(x)
                cells.append("" if v is None else repr(v))
            buf.write(",".join(cells) + "\n")
        return buf.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())

    def render(self, *, float_fmt: str = "{:.6g}") -> str:
        """Readable multi-column text rendering of all series."""
        from repro.reporting.tables import render_table

        xs = sorted({x for s in self.series.values() for x in s.x})
        labels = list(self.series)
        maps = {lbl: self.series[lbl].as_mapping() for lbl in labels}
        rows = []
        for x in xs:
            row = [float_fmt.format(x)]
            for lbl in labels:
                v = maps[lbl].get(x)
                row.append("" if v is None else float_fmt.format(v))
            rows.append(row)
        return render_table([self.x_label] + labels, rows, title=self.title)

"""Rendering of experiment outputs: ASCII tables and figure series."""

from repro.reporting.tables import render_table, format_seconds, format_sci
from repro.reporting.series import FigureSeries, SeriesBundle

__all__ = [
    "render_table",
    "format_seconds",
    "format_sci",
    "FigureSeries",
    "SeriesBundle",
]

"""Threaded roofline model + scaling measurement for the panel engine.

The panel-parallel kernel (:mod:`repro.transforms.parallel`) runs the
same fused sweep schedule as the serial batched kernel, so its *byte
count* is unchanged — what threading buys is **aggregate bandwidth**,
and what it costs is **per-sweep synchronization** plus load imbalance
when the panel count doesn't divide evenly across participants.  The
model here is the serial bytes model of
:func:`repro.perf.batched.batched_fmmp_costs` plus three host knobs:

* ``single_core_gbs`` — one streaming core's effective bandwidth;
* ``contention`` — memory-bus saturation: ``T`` streaming threads
  sustain ``T / (1 + contention·(T−1))`` times one core's bandwidth
  (``contention=0`` is perfect scaling, ``1`` is a fully serialized
  bus);
* ``barrier_s`` — one barrier rendezvous, paid once per sweep.

With those, the modeled wall-clock of a ``(ν, B, R, T)`` transform is

    t(R, T) = bytes · ⌈R/T⌉/R / (BW₁ · sat(T)/T) + sweeps · barrier_s

— ``⌈R/T⌉/R`` is the critical-path share of the busiest participant and
``BW₁·sat(T)/T`` the per-thread slice of the saturated aggregate
bandwidth (so at ``R = T`` the speedup tends to ``sat(T)``).  :func:`modeled_thread_speedup` is ``t(serial)/t(R,T)``;
:func:`auto_panels` picks the ``R`` that maximizes it (falling back to
``R = 1``, i.e. the serial kernel, whenever threading cannot win — tiny
ν is all barrier, no bandwidth).  The measured counterparts back the
model with wall-clock numbers for ``benchmarks/bench_parallel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.perf.batched import batched_fmmp_costs, _form_passes
from repro.transforms.batched import fused_stage_count
from repro.transforms.parallel import max_panels, resolve_panels, resolve_threads
from repro.util.timing import TimingResult, median_time

__all__ = [
    "HostModel",
    "DEFAULT_HOST",
    "ParallelCosts",
    "parallel_fmmp_costs",
    "modeled_thread_speedup",
    "modeled_thread_crossover",
    "auto_panels",
    "ParallelMeasurement",
    "measure_parallel_matmat",
    "measured_thread_scaling",
    "measured_thread_crossover",
]


@dataclass(frozen=True)
class HostModel:
    """The three knobs of the threaded roofline (see module docstring)."""

    single_core_gbs: float = 12.0
    contention: float = 0.15
    barrier_s: float = 5e-6

    def saturation(self, threads: int) -> float:
        """Aggregate-bandwidth multiplier of ``threads`` streaming cores."""
        if threads < 1:
            raise ValidationError(f"threads must be >= 1, got {threads}")
        return threads / (1.0 + self.contention * (threads - 1))


DEFAULT_HOST = HostModel()


@dataclass(frozen=True)
class ParallelCosts:
    """Modeled execution of one panel-parallel ``(N, B)`` product.

    Attributes
    ----------
    nu, batch, threads, panels:
        The configuration (``panels`` resolved, power of two).
    bytes_moved:
        Total block traffic — identical to the serial fused kernel's
        (the partition moves no extra bytes).
    bytes_critical:
        The busiest participant's share (load imbalance included).
    sweeps:
        Barrier-synchronized steps (fused sweeps + folded scale passes).
    modeled_time_s:
        Modeled wall-clock under the :class:`HostModel`.
    """

    nu: int
    batch: int
    threads: int
    panels: int
    bytes_moved: float
    bytes_critical: float
    sweeps: int
    modeled_time_s: float


def _steps(nu: int, form: str, radix4: bool) -> int:
    """Barrier-separated steps: fused sweeps plus the pre-scale sweep
    (the post-scale epilogue rides the final barrier)."""
    pre, post = _form_passes(form)
    return fused_stage_count(nu, radix4=radix4) + (1 if pre else 0) + (1 if post else 0)


def parallel_fmmp_costs(
    nu: int,
    batch: int,
    *,
    threads: int = 1,
    panels: int | None = None,
    form: str = "right",
    radix4: bool = True,
    host: HostModel = DEFAULT_HOST,
) -> ParallelCosts:
    """Threaded roofline for one panel-parallel Fmmp product."""
    threads = resolve_threads(threads)
    serial = batched_fmmp_costs(nu, batch, form=form, radix4=radix4)
    r = resolve_panels(panels, nu, threads=threads, radix4=radix4)
    t_eff = min(threads, r)  # more threads than panels just idle
    units_critical = -(-r // t_eff)  # ceil(R/T): busiest participant
    bytes_critical = serial.bytes_moved * units_critical / r
    sweeps = _steps(nu, form, radix4)
    # Each of the T streaming participants sustains its 1/T share of the
    # saturated aggregate bandwidth BW₁·sat(T); the busiest one carries
    # ``bytes_critical`` of traffic at that per-thread rate.
    bw_per_thread = host.single_core_gbs * 1e9 * host.saturation(t_eff) / t_eff
    time_s = bytes_critical / bw_per_thread
    if threads > 1 and r > 1:
        time_s += sweeps * host.barrier_s
    return ParallelCosts(
        nu=nu,
        batch=batch,
        threads=threads,
        panels=r,
        bytes_moved=serial.bytes_moved,
        bytes_critical=bytes_critical,
        sweeps=sweeps,
        modeled_time_s=time_s,
    )


def modeled_thread_speedup(
    nu: int,
    batch: int,
    threads: int,
    *,
    panels: int | None = None,
    form: str = "right",
    radix4: bool = True,
    host: HostModel = DEFAULT_HOST,
) -> float:
    """Modeled wall-clock speedup of ``threads`` panel workers over the
    serial fused kernel (same bytes, more bandwidth, plus barriers)."""
    serial = parallel_fmmp_costs(
        nu, batch, threads=1, panels=1, form=form, radix4=radix4, host=host
    )
    par = parallel_fmmp_costs(
        nu,
        batch,
        threads=threads,
        panels=panels,
        form=form,
        radix4=radix4,
        host=host,
    )
    return serial.modeled_time_s / par.modeled_time_s


def auto_panels(
    nu: int,
    batch: int,
    *,
    threads: int,
    form: str = "right",
    radix4: bool = True,
    host: HostModel = DEFAULT_HOST,
) -> int:
    """Roofline-guided panel count for ``(ν, B, threads)``.

    Evaluates every power-of-two ``R`` up to ``min(2^⌈log₂T⌉,
    max_panels)`` and returns the smallest one attaining the best
    modeled speedup; degenerates to ``R = 1`` (serial kernel) whenever
    threading is modeled to lose — small ν is barrier-dominated.
    """
    threads = resolve_threads(threads)
    if threads == 1:
        return 1
    cap = max_panels(nu, radix4=radix4)
    best_r, best_s = 1, 1.0
    r = 2
    top = 1
    while top < threads:
        top <<= 1
    while r <= min(top, cap):
        s = modeled_thread_speedup(
            nu, batch, threads, panels=r, form=form, radix4=radix4, host=host
        )
        if s > best_s:
            best_r, best_s = r, s
        r <<= 1
    return best_r


def modeled_thread_crossover(
    nu: int,
    batch: int,
    *,
    target_speedup: float = 1.8,
    max_threads: int = 64,
    form: str = "right",
    radix4: bool = True,
    host: HostModel = DEFAULT_HOST,
) -> int | None:
    """Smallest thread count whose modeled speedup reaches the target
    (``None`` when even ``max_threads`` cannot — e.g. tiny ν)."""
    if target_speedup <= 0.0:
        raise ValidationError(f"target_speedup must be > 0, got {target_speedup}")
    t = 2
    while t <= max_threads:
        if (
            modeled_thread_speedup(
                nu, batch, t, form=form, radix4=radix4, host=host
            )
            >= target_speedup
        ):
            return t
        t *= 2
    return None


# --------------------------------------------------------------- measured
@dataclass(frozen=True)
class ParallelMeasurement:
    """One measured serial-vs-threaded comparison point."""

    nu: int
    batch: int
    threads: int
    panels: int
    serial_s: float
    parallel_s: float

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of the threaded transform over serial."""
        return self.serial_s / self.parallel_s

    @property
    def serial_gbs(self) -> float:
        return (
            batched_fmmp_costs(self.nu, self.batch).bytes_moved / self.serial_s / 1e9
        )

    @property
    def parallel_gbs(self) -> float:
        return (
            batched_fmmp_costs(self.nu, self.batch).bytes_moved
            / self.parallel_s
            / 1e9
        )

    def to_dict(self) -> dict:
        return {
            "nu": self.nu,
            "batch": self.batch,
            "threads": self.threads,
            "panels": self.panels,
            "serial_s": self.serial_s,
            "parallel_s": self.parallel_s,
            "speedup": self.speedup,
            "serial_gbs": self.serial_gbs,
            "parallel_gbs": self.parallel_gbs,
        }


def measure_parallel_matmat(
    nu: int,
    batch: int,
    threads: int,
    *,
    panels: int | None = None,
    form: str = "right",
    p: float = 0.01,
    repeats: int = 3,
    min_time: float = 0.01,
) -> ParallelMeasurement:
    """Time the serial fused kernel vs the panel engine on one block.

    BLAS threading is pinned to one thread for the duration (engine
    threads are the parallelism; see :mod:`repro.util.blas`) so the
    comparison is engine scaling, not BLAS scaling.
    """
    # Local imports: repro.operators lazily imports this module.
    from repro.mutation.uniform import UniformMutation
    from repro.transforms.batched import batched_butterfly_transform
    from repro.transforms.parallel import get_engine, parallel_butterfly_transform
    from repro.util.blas import blas_limit

    threads = resolve_threads(threads)
    r = (
        auto_panels(nu, batch, threads=threads, form=form, radix4=True)
        if panels is None
        else resolve_panels(panels, nu, threads=threads)
    )
    factors = UniformMutation(nu, p).factors_per_bit()
    n = 1 << nu
    rng = np.random.default_rng(nu)
    block = np.ascontiguousarray(rng.random((n, batch)) + 0.5)
    pre = np.ascontiguousarray(rng.random(n) + 0.5)
    out = np.empty_like(block)
    scratch = np.empty_like(block)
    engine = get_engine(threads)

    with blas_limit(1):
        serial: TimingResult = median_time(
            lambda: batched_butterfly_transform(
                block, factors, pre_scale=pre, out=out, scratch=scratch
            ),
            repeats=repeats,
            min_time=min_time,
        )
        parallel: TimingResult = median_time(
            lambda: parallel_butterfly_transform(
                block,
                factors,
                pre_scale=pre,
                panels=r,
                engine=engine,
                out=out,
                scratch=scratch,
            ),
            repeats=repeats,
            min_time=min_time,
        )
    return ParallelMeasurement(
        nu=nu,
        batch=batch,
        threads=threads,
        panels=r,
        serial_s=serial.median,
        parallel_s=parallel.median,
    )


def measured_thread_scaling(
    nu: int,
    batch: int,
    threads: tuple[int, ...] = (1, 2, 4, 8),
    *,
    form: str = "right",
    repeats: int = 3,
    min_time: float = 0.01,
) -> list[ParallelMeasurement]:
    """Measured scaling curve over thread counts (one block size)."""
    return [
        measure_parallel_matmat(
            nu, batch, t, form=form, repeats=repeats, min_time=min_time
        )
        for t in threads
    ]


def measured_thread_crossover(
    nu: int,
    batch: int,
    *,
    target_speedup: float = 1.8,
    threads: tuple[int, ...] = (2, 4, 8),
    form: str = "right",
    repeats: int = 3,
    min_time: float = 0.01,
) -> int | None:
    """Smallest measured thread count reaching ``target_speedup`` over
    the serial kernel (``None`` if none of the probed counts does —
    including on hosts without enough cores to scale at all)."""
    for t in threads:
        m = measure_parallel_matmat(
            nu, batch, t, form=form, repeats=repeats, min_time=min_time
        )
        if m.speedup >= target_speedup:
            return t
    return None

"""Wall-clock measurement of the real NumPy operators (Fig. 2 harness).

Fig. 2 plots single-CPU-core runtimes of one ``W·x`` for the three
operators over ν.  These helpers time the actual implementations with
warm-up and median-of-repeats, and assemble per-operator series with
per-operator feasibility caps (dense products stop where memory does).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.operators.base import ImplicitOperator
from repro.util.timing import TimingResult, median_time

__all__ = ["measure_operator_matvec", "measure_series", "MeasuredSeries"]


def measure_operator_matvec(
    operator: ImplicitOperator,
    v: np.ndarray | None = None,
    *,
    repeats: int = 5,
    min_time: float = 0.01,
) -> TimingResult:
    """Median wall-clock of one ``operator.matvec`` call."""
    if v is None:
        rng = np.random.default_rng(0)
        v = rng.random(operator.n) + 0.5
    v = np.asarray(v, dtype=np.float64)
    return median_time(lambda: operator.matvec(v), repeats=repeats, min_time=min_time)


@dataclass
class MeasuredSeries:
    """A measured (ν → seconds) series for one operator."""

    label: str
    nus: list[int] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    def add(self, nu: int, t: float) -> None:
        self.nus.append(int(nu))
        self.seconds.append(float(t))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.nus), np.asarray(self.seconds)


def measure_series(
    label: str,
    nus: Sequence[int],
    operator_factory: Callable[[int], ImplicitOperator],
    *,
    landscape_factory: Callable[[int], FitnessLandscape] | None = None,
    repeats: int = 3,
    min_time: float = 0.005,
    budget_s: float = 60.0,
) -> MeasuredSeries:
    """Measure one operator across chain lengths.

    Parameters
    ----------
    label:
        Series name (e.g. ``"Fmmp"``).
    nus:
        Increasing chain lengths to measure.
    operator_factory:
        ``nu -> operator``; may raise :class:`ValidationError` for
        infeasible sizes (the point is silently skipped, mirroring the
        paper's truncated dense curves).
    landscape_factory:
        Optional; used only to build a realistic input vector.
    repeats, min_time:
        Per-point timing parameters.
    budget_s:
        Stop extending the series once a single matvec exceeds this.
    """
    series = MeasuredSeries(label)
    for nu in nus:
        try:
            op = operator_factory(int(nu))
        except (ValidationError, MemoryError):
            continue
        if landscape_factory is not None:
            v = landscape_factory(int(nu)).start_vector()
        else:
            v = np.random.default_rng(nu).random(op.n) + 0.5
        res = measure_operator_matvec(op, v, repeats=repeats, min_time=min_time)
        series.add(int(nu), res.median)
        if res.median > budget_s:
            break
    return series

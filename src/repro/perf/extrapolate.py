"""Complexity-law fitting and extrapolation.

The paper: "For ν ≥ 22 the execution times for Pi(Xmvp(ν)) are so long
that they had to be extrapolated based on the curves in Figures 2 and 3."
Same here: each operator's asymptotic law is known analytically, so we
fit only the *scale factor* (in log space, over the largest measured
points, where the asymptotic regime holds) and extend the series.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.perf.costs import xmvp_mask_count

__all__ = ["ComplexityLaw", "fit_scale", "predict", "fit_and_extend"]


class ComplexityLaw(enum.Enum):
    """Growth laws in the chain length ν (with ``N = 2^ν``)."""

    N_SQUARED = "N^2"
    N_LOG2_N = "N log2 N"
    N_LINEAR = "N"

    def grow(self, nu: int, *, dmax: int | None = None) -> float:
        """The raw growth function value at ν."""
        n = float(1 << nu)
        if self is ComplexityLaw.N_SQUARED:
            return n * n
        if self is ComplexityLaw.N_LOG2_N:
            return n * nu
        return n

    @staticmethod
    def xmvp_growth(nu: int, dmax: int) -> float:
        """The exact Xmvp growth ``N·Σ_{k≤dmax}C(ν,k)`` (not a pure
        power law — dmax-truncated binomial sums grow polynomially in ν
        on top of N)."""
        return float(1 << nu) * xmvp_mask_count(nu, dmax)


def _growth_values(law, nus: Sequence[int], dmax: int | None) -> np.ndarray:
    if callable(law):
        return np.array([law(int(nu)) for nu in nus], dtype=np.float64)
    if law is ComplexityLaw.N_SQUARED or law is ComplexityLaw.N_LOG2_N or law is ComplexityLaw.N_LINEAR:
        return np.array([law.grow(int(nu)) for nu in nus], dtype=np.float64)
    raise ValidationError(f"unsupported law {law!r}")


def fit_scale(
    law,
    nus: Sequence[int],
    seconds: Sequence[float],
    *,
    tail: int = 4,
    dmax: int | None = None,
) -> float:
    """Least-squares fit (in log space) of ``t(ν) = a · g(ν)``.

    Parameters
    ----------
    law:
        A :class:`ComplexityLaw` or a callable ``nu -> growth``.
    nus, seconds:
        Measured series.
    tail:
        Only the last ``tail`` points enter the fit (the asymptotic
        regime); all points are used when fewer are available.
    """
    nus = list(nus)
    seconds = list(seconds)
    if len(nus) != len(seconds) or not nus:
        raise ValidationError("nus and seconds must be equal-length and non-empty")
    if any(t <= 0 for t in seconds):
        raise ValidationError("measured times must be positive")
    sl = slice(-tail, None) if len(nus) > tail else slice(None)
    g = _growth_values(law, nus[sl], dmax)
    t = np.asarray(seconds[sl], dtype=np.float64)
    # log t = log a + log g  ⇒  log a = mean(log t − log g)
    log_a = float(np.mean(np.log(t) - np.log(g)))
    return math.exp(log_a)


def predict(law, scale: float, nus: Sequence[int], *, dmax: int | None = None) -> np.ndarray:
    """Evaluate ``t(ν) = scale · g(ν)`` over ``nus``."""
    if scale <= 0:
        raise ValidationError("scale must be positive")
    return scale * _growth_values(law, nus, dmax)


def fit_and_extend(
    law,
    measured_nus: Sequence[int],
    measured_seconds: Sequence[float],
    target_nus: Sequence[int],
    *,
    tail: int = 4,
    dmax: int | None = None,
) -> np.ndarray:
    """Fit on the measured series and return times over ``target_nus``,
    keeping the measured values where available (only genuinely missing
    points are extrapolated — the paper's procedure)."""
    scale = fit_scale(law, measured_nus, measured_seconds, tail=tail, dmax=dmax)
    out = predict(law, scale, target_nus, dmax=dmax)
    lookup = {int(nu): float(t) for nu, t in zip(measured_nus, measured_seconds)}
    for i, nu in enumerate(target_nus):
        if int(nu) in lookup:
            out[i] = lookup[int(nu)]
    return out

"""Closed-form per-matvec cost formulas.

These mirror the :meth:`~repro.operators.base.ImplicitOperator.costs`
methods but are computable for *any* ν without building an operator (the
mask tables of an ``Xmvp(5)`` at ν = 25 alone would be ~54k entries; the
dense ``Smvp`` at ν = 25 would be 9 PB — which is rather the point of
the paper).

The formulas (matching Secs. 1.2/2.1):

========== ========================================== =====================
operator    flops                                      complexity class
========== ========================================== =====================
``Smvp``    ``2N²``                                    ``Θ(N²)``
``Xmvp``    ``2N·Σ_{k≤dmax}C(ν,k) + 2N``               ``Θ(N·Σ C(ν,k))``
``Fmmp``    ``3N·ν + N``                               ``Θ(N log₂ N)``
========== ========================================== =====================
"""

from __future__ import annotations

import math

from repro.exceptions import ValidationError
from repro.operators.base import OperatorCosts

__all__ = ["fmmp_costs", "xmvp_costs", "smvp_costs", "xmvp_mask_count", "operator_costs"]


def _check(nu: int) -> int:
    if not isinstance(nu, int) or nu < 1:
        raise ValidationError(f"nu must be a positive integer, got {nu!r}")
    return nu


def xmvp_mask_count(nu: int, dmax: int) -> int:
    """Number of XOR offset masks, ``Σ_{k=0}^{dmax} C(ν, k)``."""
    nu = _check(nu)
    if not 1 <= dmax <= nu:
        raise ValidationError(f"dmax must be in [1, {nu}], got {dmax}")
    return sum(math.comb(nu, k) for k in range(dmax + 1))


def fmmp_costs(nu: int, *, scale_passes: float = 1.0) -> OperatorCosts:
    """Fmmp per-matvec costs: ν butterfly stages of N/2 items each."""
    nu = _check(nu)
    n = float(1 << nu)
    return OperatorCosts(
        flops=6.0 * (n / 2.0) * nu + scale_passes * n,
        bytes_moved=8.0 * (4.0 * (n / 2.0) * nu + 3.0 * scale_passes * n),
        storage_bytes=8.0 * n,
    )


def xmvp_costs(nu: int, dmax: int, *, scale_passes: float = 1.0) -> OperatorCosts:
    """Xmvp(dmax) per-matvec costs: one gather-add pass per mask."""
    nu = _check(nu)
    passes = float(xmvp_mask_count(nu, dmax))
    n = float(1 << nu)
    return OperatorCosts(
        flops=2.0 * n * passes + scale_passes * 2.0 * n,
        bytes_moved=8.0 * n * (3.0 * passes + 3.0 * scale_passes),
        storage_bytes=8.0 * (passes + n),
    )


def smvp_costs(nu: int) -> OperatorCosts:
    """Dense product costs: ``2N²`` flops, matrix-dominated traffic."""
    nu = _check(nu)
    n = float(1 << nu)
    return OperatorCosts(
        flops=2.0 * n * n,
        bytes_moved=8.0 * (n * n + 2.0 * n),
        storage_bytes=8.0 * n * n,
    )


def operator_costs(kind: str, nu: int, dmax: int | None = None) -> OperatorCosts:
    """Dispatch by operator name (``"fmmp"``/``"xmvp"``/``"smvp"``)."""
    if kind == "fmmp":
        return fmmp_costs(nu)
    if kind == "xmvp":
        if dmax is None:
            raise ValidationError("xmvp costs need dmax")
        return xmvp_costs(nu, dmax)
    if kind == "smvp":
        return smvp_costs(nu)
    raise ValidationError(f"unknown operator kind {kind!r}")

"""Performance models, measurement, and extrapolation.

Reproduces the paper's Sec. 4 methodology:

* :mod:`~repro.perf.costs` — closed-form per-matvec operation counts for
  ``Smvp``/``Xmvp(dmax)``/``Fmmp`` (the complexity expressions of
  Secs. 1.2 and 2.1, made concrete);
* :mod:`~repro.perf.model` — roofline time predictions on a
  :class:`~repro.device.profile.HardwareProfile`, including the full
  power-iteration pipeline with transfers (Fig. 3's quantity);
* :mod:`~repro.perf.measure` — wall-clock measurement of the real NumPy
  operators (Fig. 2's quantity);
* :mod:`~repro.perf.extrapolate` — complexity-law fits used exactly the
  way the paper extrapolated ``Pi(Xmvp(ν))`` beyond ν = 22;
* :mod:`~repro.perf.speedup` — assembling Fig. 4's speedup series.
"""

from repro.perf.costs import (
    fmmp_costs,
    xmvp_costs,
    smvp_costs,
    xmvp_mask_count,
    operator_costs,
)
from repro.perf.batched import (
    batched_fmmp_costs,
    modeled_speedup,
    modeled_crossover_batch,
    BatchedMeasurement,
    measure_batched_matmat,
    measured_crossover,
)
from repro.perf.parallel import (
    HostModel,
    DEFAULT_HOST,
    ParallelCosts,
    parallel_fmmp_costs,
    modeled_thread_speedup,
    modeled_thread_crossover,
    auto_panels,
    ParallelMeasurement,
    measure_parallel_matmat,
    measured_thread_scaling,
    measured_thread_crossover,
)
from repro.perf.model import (
    predict_matvec_time,
    predict_power_iteration_time,
    PipelineCostModel,
)
from repro.perf.measure import measure_operator_matvec, measure_series
from repro.perf.extrapolate import ComplexityLaw, fit_scale, predict, fit_and_extend
from repro.perf.speedup import speedup_series, SpeedupTable

__all__ = [
    "fmmp_costs",
    "batched_fmmp_costs",
    "modeled_speedup",
    "modeled_crossover_batch",
    "BatchedMeasurement",
    "measure_batched_matmat",
    "measured_crossover",
    "HostModel",
    "DEFAULT_HOST",
    "ParallelCosts",
    "parallel_fmmp_costs",
    "modeled_thread_speedup",
    "modeled_thread_crossover",
    "auto_panels",
    "ParallelMeasurement",
    "measure_parallel_matmat",
    "measured_thread_scaling",
    "measured_thread_crossover",
    "xmvp_costs",
    "smvp_costs",
    "xmvp_mask_count",
    "operator_costs",
    "predict_matvec_time",
    "predict_power_iteration_time",
    "PipelineCostModel",
    "measure_operator_matvec",
    "measure_series",
    "ComplexityLaw",
    "fit_scale",
    "predict",
    "fit_and_extend",
    "speedup_series",
    "SpeedupTable",
]

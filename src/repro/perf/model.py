"""Roofline time predictions for matvecs and full power iterations.

The matvec model is the plain roofline formula from the cost descriptor.
The pipeline model (:class:`PipelineCostModel`) analytically mirrors the
kernel schedule of :class:`~repro.device.pipeline.DevicePowerIteration`
— launch by launch — so that for any problem the analytic prediction and
the simulated device's accounting agree *exactly* (asserted in
tests/test_perf_model.py).  This is what lets the Fig. 3/4 benches
extend to ν = 25 without hours of simulated execution, precisely as the
paper extrapolated its reference curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.profile import HardwareProfile
from repro.exceptions import ValidationError
from repro.operators.base import OperatorCosts
from repro.perf.costs import xmvp_mask_count

__all__ = ["predict_matvec_time", "predict_power_iteration_time", "PipelineCostModel"]


def predict_matvec_time(profile: HardwareProfile, costs: OperatorCosts) -> float:
    """Roofline duration of one matvec on ``profile`` (no launch splits)."""
    return profile.kernel_time(costs.bytes_moved, costs.flops)


@dataclass(frozen=True)
class _KernelShape:
    """Launch geometry + per-item costs of one pipeline kernel."""

    items: float
    bytes_per_item: float
    flops_per_item: float

    def time(self, profile: HardwareProfile) -> float:
        return profile.kernel_time(self.bytes_per_item * self.items, self.flops_per_item * self.items)


class PipelineCostModel:
    """Analytic mirror of the on-device power iteration.

    Parameters
    ----------
    nu:
        Chain length; ``N = 2**nu``.
    operator:
        ``"fmmp"`` or ``"xmvp"``.
    dmax:
        Cut-off for ``xmvp``.
    shifted:
        Whether the shift axpy is part of each iteration.

    Notes
    -----
    Kernel shapes are kept in sync with
    :class:`repro.device.pipeline.DevicePowerIteration`; the unit test
    locks the two together by comparing against a real simulated run.
    """

    def __init__(
        self,
        nu: int,
        operator: str = "fmmp",
        dmax: int | None = None,
        *,
        shifted: bool = False,
        fused_xmvp: bool = False,
    ):
        if operator not in ("fmmp", "xmvp"):
            raise ValidationError(f"operator must be 'fmmp' or 'xmvp', got {operator!r}")
        self.nu = int(nu)
        self.n = 1 << self.nu
        self.operator = operator
        self.dmax = int(dmax) if dmax is not None else self.nu
        self.shifted = bool(shifted)
        #: ``False`` (default) models our simulated device verbatim: one
        #: gather-add kernel launch per XOR mask (accumulator re-read and
        #: re-written each pass).  ``True`` models the paper's natural
        #: OpenCL implementation: a single kernel per matvec whose work
        #: item loops over all masks with the accumulator in a register —
        #: 8 bytes per mask per item instead of 24, and one launch.
        self.fused_xmvp = bool(fused_xmvp)

    # ------------------------------------------------------------ schedule
    def _iteration_kernels(self) -> list[tuple[_KernelShape, int]]:
        """Launch schedule as ``(shape, count)`` pairs.

        Identical launches are aggregated with a multiplier — the total
        time is exactly linear in the count (per-launch overhead and
        roofline both scale), and this keeps the model O(1) even for the
        tens of millions of mask passes of an exact Xmvp at ν = 25.
        """
        n = float(self.n)
        shapes: list[tuple[_KernelShape, int]] = []
        # w = F·x
        shapes.append((_KernelShape(n, 24.0, 1.0), 1))
        # Q·w
        if self.operator == "fmmp":
            shapes.append((_KernelShape(n / 2.0, 32.0, 6.0), self.nu))
        elif self.fused_xmvp:
            # One kernel: each item gathers w over every mask, keeps the
            # accumulator in a register, writes once.
            masks = xmvp_mask_count(self.nu, self.dmax)
            shapes.append((_KernelShape(n, 8.0 * (masks + 1.0), 2.0 * masks), 1))
        else:
            shapes.append((_KernelShape(n, 16.0, 0.0), 1))  # copy
            shapes.append((_KernelShape(n, 16.0, 1.0), 1))  # scale by QΓ0
            passes = xmvp_mask_count(self.nu, self.dmax) - 1  # k >= 1 masks
            shapes.append((_KernelShape(n, 24.0, 2.0), passes))
            shapes.append((_KernelShape(n, 16.0, 0.0), 1))  # copy acc -> w
        if self.shifted:
            shapes.append((_KernelShape(n, 24.0, 2.0), 1))  # axpy
        # λ: abs map + tree reduction
        shapes.append((_KernelShape(n, 24.0, 1.0), 1))
        shapes.extend(self._reduction_stages())
        # normalize
        shapes.append((_KernelShape(n, 16.0, 1.0), 1))
        # residual: diff-square map + tree reduction
        shapes.append((_KernelShape(n, 32.0, 2.0), 1))
        shapes.extend(self._reduction_stages())
        # x <- w
        shapes.append((_KernelShape(n, 16.0, 0.0), 1))
        return shapes

    def _reduction_stages(self) -> list[tuple[_KernelShape, int]]:
        stages = []
        half = self.n // 2
        while half >= 1:
            stages.append((_KernelShape(float(half), 24.0, 1.0), 1))
            half //= 2
        return stages

    # ----------------------------------------------------------- predictions
    def launches_per_iteration(self) -> int:
        return sum(count for _, count in self._iteration_kernels())

    def iteration_time(self, profile: HardwareProfile) -> float:
        """Modeled duration of one full power-iteration step."""
        return sum(count * shape.time(profile) for shape, count in self._iteration_kernels())

    def scalar_readback_time(self, profile: HardwareProfile) -> float:
        """Two 8-byte reductions results polled per iteration."""
        return 2.0 * profile.transfer_time(8.0)

    def transfer_time(self, profile: HardwareProfile) -> float:
        """Initial f + x uploads and the final x download."""
        return 3.0 * profile.transfer_time(8.0 * self.n)

    def total_time(self, profile: HardwareProfile, iterations: int) -> float:
        """End-to-end modeled time for ``iterations`` steps, transfers
        included — the quantity Fig. 3 plots."""
        if iterations < 1:
            raise ValidationError("iterations must be >= 1")
        per_iter = self.iteration_time(profile) + self.scalar_readback_time(profile)
        return self.transfer_time(profile) + iterations * per_iter


def predict_power_iteration_time(
    profile: HardwareProfile,
    nu: int,
    iterations: int,
    *,
    operator: str = "fmmp",
    dmax: int | None = None,
    shifted: bool = False,
) -> float:
    """Convenience wrapper around :class:`PipelineCostModel`."""
    model = PipelineCostModel(nu, operator, dmax, shifted=shifted)
    return model.total_time(profile, iterations)

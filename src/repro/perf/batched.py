"""Roofline cost model + crossover bench for the batched Fmmp kernel.

The scalar ``Fmmp._q_fast`` streams 7 elementwise passes over ``N/2``
items per stage × ν stages.  The stage-fused batched kernel
(:mod:`repro.transforms.batched`) replaces this with ``⌈ν/2⌉`` radix-4
``matmul`` sweeps over an ``(N, B)`` block — one read stream and one
write stream each — with the diagonal ``F`` scalings folded into the
ping-pong schedule.  Both kernels are bandwidth-bound (the paper's
Sec. 4 premise), so the B-dependent *bytes-moved* model below is the
whole performance story:

======================= ==========================================
path                    bytes moved for B vectors
======================= ==========================================
scalar × B              ``B · 8 · (4·(N/2)·ν + 3·s·N)``
fused (radix-4)         ``16·N·B·⌈ν/2⌉ + pre/post passes``
======================= ==========================================

(``s`` = diagonal scale passes of the form.)  The per-vector ratio of
the two is :func:`modeled_speedup`; it rises quickly with ν because the
fused path's sweep count halves and its 7 passes collapse to 2.  The
measured counterpart (:func:`measure_batched_matmat`,
:func:`measured_crossover`) backs the model with wall-clock numbers —
``benchmarks/bench_batched.py`` records both into ``BENCH_fmmp.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.operators.base import OperatorCosts
from repro.perf.costs import fmmp_costs
from repro.util.timing import TimingResult, median_time

__all__ = [
    "batched_fmmp_costs",
    "modeled_speedup",
    "modeled_crossover_batch",
    "BatchedMeasurement",
    "measure_batched_matmat",
    "measured_crossover",
]


def _check_nu(nu: int) -> int:
    if not isinstance(nu, int) or nu < 1:
        raise ValidationError(f"nu must be a positive integer, got {nu!r}")
    return nu


def _form_passes(form: str) -> tuple[bool, bool]:
    """(pre_scale present, post_scale present) per Eqs. 3–5."""
    if form == "right":
        return True, False
    if form == "symmetric":
        return True, True
    if form == "left":
        return False, True
    raise ValidationError(f"form must be 'right'/'symmetric'/'left', got {form!r}")


def batched_fmmp_costs(
    nu: int,
    batch: int,
    *,
    form: str = "right",
    radix4: bool = True,
) -> OperatorCosts:
    """Costs of one fused ``(N, batch)`` Fmmp product.

    Models the exact sweep schedule of
    :func:`repro.transforms.batched.batched_butterfly_transform`:

    * ``⌊ν/2⌋`` radix-4 sweeps (+1 radix-2 sweep if ν is odd); each
      sweep reads and writes the whole block once (``16·N·B`` bytes) and
      spends ``2r−1`` flops per element (r = radix);
    * a pre-scale pass (read block + read diagonal + write block) when
      the form needs a leading ``F``/``F^{1/2}`` multiply;
    * a post-scale epilogue (read + read diagonal + write, in place on
      the output block) when it needs a trailing one.

    With ``batch=1`` this still describes the fused kernel (which now
    also backs the scalar path), *not* the legacy 7-pass sweep — use
    :func:`repro.perf.costs.fmmp_costs` for that model.
    """
    nu = _check_nu(nu)
    if not isinstance(batch, int) or batch < 1:
        raise ValidationError(f"batch must be a positive integer, got {batch!r}")
    pre, post = _form_passes(form)
    n = float(1 << nu)
    b = float(batch)
    nb = n * b
    if radix4:
        r4, r2 = nu // 2, nu % 2
    else:
        r4, r2 = 0, nu
    sweeps = r4 + r2
    # Fused butterfly sweeps: one read + one write stream per sweep.
    bytes_moved = 16.0 * nb * sweeps
    flops = nb * (7.0 * r4 + 3.0 * r2)
    # Diagonal scale passes (the diagonal itself is (N,) or (N, B); we
    # model the shared (N,) read — the per-column case adds 8·N·(B−1)
    # per pass, a lower-order term for B ≪ N).
    for present in (pre, post):
        if present:
            bytes_moved += 8.0 * (2.0 * nb + n)
            flops += nb
    return OperatorCosts(
        flops=flops,
        bytes_moved=bytes_moved,
        storage_bytes=8.0 * n,
        batch=batch,
    )


def modeled_speedup(
    nu: int,
    batch: int,
    *,
    form: str = "right",
    radix4: bool = True,
) -> float:
    """Modeled per-vector speedup of the fused kernel over the scalar path.

    Both kernels are memory-bound, so the speedup is the ratio of
    per-vector *bytes moved*: scalar 7-pass model
    (:func:`~repro.perf.costs.fmmp_costs`) over the fused model's
    amortized column cost.
    """
    pre, post = _form_passes(form)
    scale_passes = 2.0 if (pre and post) else 1.0
    scalar = fmmp_costs(nu, scale_passes=scale_passes)
    fused = batched_fmmp_costs(nu, batch, form=form, radix4=radix4)
    return scalar.bytes_moved / fused.per_vector().bytes_moved


def modeled_crossover_batch(
    nu: int,
    *,
    form: str = "right",
    target_speedup: float = 1.5,
    max_batch: int = 1024,
) -> int | None:
    """Smallest ``B`` whose modeled per-vector speedup reaches the target.

    Returns ``None`` if even ``max_batch`` columns cannot amortize the
    fixed scale-pass traffic to the target — in that regime the service
    should stay on the scalar route.
    """
    nu = _check_nu(nu)
    if target_speedup <= 0.0:
        raise ValidationError(f"target_speedup must be > 0, got {target_speedup}")
    b = 1
    while b <= max_batch:
        if modeled_speedup(nu, b, form=form) >= target_speedup:
            return b
        b *= 2
    return None


# --------------------------------------------------------------- measured
@dataclass(frozen=True)
class BatchedMeasurement:
    """One measured single-vs-batched comparison point.

    Attributes
    ----------
    nu, batch:
        Problem size and block width.
    single_s:
        Median wall-clock of one scalar ``matvec`` (so ``batch`` solves
        cost ``batch · single_s``).
    batched_s:
        Median wall-clock of one fused ``matmat`` over the whole block.
    """

    nu: int
    batch: int
    single_s: float
    batched_s: float

    @property
    def per_vector_speedup(self) -> float:
        """Scalar time per vector over batched time per vector."""
        return self.single_s / (self.batched_s / self.batch)

    @property
    def single_gbs(self) -> float:
        """Effective scalar bandwidth (7-pass model bytes / measured s)."""
        return fmmp_costs(self.nu).bytes_moved / self.single_s / 1e9

    @property
    def batched_gbs(self) -> float:
        """Effective fused bandwidth (fused model bytes / measured s)."""
        costs = batched_fmmp_costs(self.nu, self.batch)
        return costs.bytes_moved / self.batched_s / 1e9

    def to_dict(self) -> dict:
        return {
            "nu": self.nu,
            "batch": self.batch,
            "single_s": self.single_s,
            "batched_s": self.batched_s,
            "per_vector_speedup": self.per_vector_speedup,
            "single_gbs": self.single_gbs,
            "batched_gbs": self.batched_gbs,
        }


def measure_batched_matmat(
    nu: int,
    batch: int,
    *,
    form: str = "right",
    p: float = 0.01,
    repeats: int = 3,
    min_time: float = 0.01,
) -> BatchedMeasurement:
    """Time scalar ``Fmmp.matvec`` vs fused ``BatchedFmmp.matmat``.

    Uses a uniform mutation model and a single-peak landscape (the
    bench's canonical workload); the block columns are independent
    random vectors.
    """
    # Local imports: repro.operators lazily imports this module from
    # Fmmp.costs, so keep the reverse edge out of import time.
    from repro.landscapes.singlepeak import SinglePeakLandscape
    from repro.mutation.uniform import UniformMutation
    from repro.operators.batched import BatchedFmmp
    from repro.operators.fmmp import Fmmp

    nu = _check_nu(nu)
    mutation = UniformMutation(nu, p)
    landscape = SinglePeakLandscape(nu)
    scalar_op = Fmmp(mutation, landscape, form=form)
    batched_op = BatchedFmmp(mutation, landscape, form=form)
    rng = np.random.default_rng(nu)
    v = rng.random(scalar_op.n) + 0.5
    block = np.ascontiguousarray(rng.random((scalar_op.n, batch)) + 0.5)
    out = np.empty_like(block)
    scratch = np.empty_like(block)

    single: TimingResult = median_time(
        lambda: scalar_op.matvec(v), repeats=repeats, min_time=min_time
    )
    batched: TimingResult = median_time(
        lambda: batched_op.matmat(block, out=out, scratch=scratch),
        repeats=repeats,
        min_time=min_time,
    )
    return BatchedMeasurement(
        nu=nu, batch=batch, single_s=single.median, batched_s=batched.median
    )


def measured_crossover(
    nu: int,
    batches: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    *,
    form: str = "right",
    repeats: int = 3,
    min_time: float = 0.01,
) -> list[BatchedMeasurement]:
    """Measured single-vs-batched series over block widths.

    The crossover point is the first ``batch`` whose
    :attr:`~BatchedMeasurement.per_vector_speedup` exceeds 1 — the
    figure ``benchmarks/bench_batched.py`` records.
    """
    return [
        measure_batched_matmat(
            nu, b, form=form, repeats=repeats, min_time=min_time
        )
        for b in batches
    ]

"""Speedup assembly — the Fig. 4 harness.

Fig. 4 divides every (algorithm, hardware) curve by the reference
``CPU-Pi(Xmvp(ν))`` times and adds the theoretical ``N²/(N log₂ N)``
guide line.  The paper's qualitative observations, which the tests
assert on our reproduction:

* curves for different algorithms have different slopes,
* the same algorithm on different hardware gives parallel (shifted)
  curves,
* GPU-Pi(Fmmp) reaches ≈2·10⁷ at ν = 25.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["speedup_series", "SpeedupTable", "theoretical_guideline"]


def theoretical_guideline(nus: Sequence[int]) -> np.ndarray:
    """The reference curve ``N² / (N log₂ N) = N/ν``."""
    return np.array([float(1 << nu) / nu for nu in nus])


def speedup_series(
    reference_seconds: Mapping[int, float],
    candidate_seconds: Mapping[int, float],
) -> dict[int, float]:
    """``speedup(ν) = t_ref(ν) / t_cand(ν)`` over the common ν values."""
    common = sorted(set(reference_seconds) & set(candidate_seconds))
    if not common:
        raise ValidationError("reference and candidate series share no chain lengths")
    out = {}
    for nu in common:
        t_ref = float(reference_seconds[nu])
        t_c = float(candidate_seconds[nu])
        if t_ref <= 0 or t_c <= 0:
            raise ValidationError(f"non-positive time at nu={nu}")
        out[nu] = t_ref / t_c
    return out


@dataclass
class SpeedupTable:
    """All Fig. 4 series over a common ν grid.

    Attributes
    ----------
    nus:
        The ν grid.
    reference_label:
        Name of the denominator series (``CPU-Pi(Xmvp(ν))``).
    series:
        ``label -> {nu: speedup}`` including the theoretical guide line.
    """

    nus: list[int]
    reference_label: str
    series: dict[str, dict[int, float]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        reference_label: str,
        reference_seconds: Mapping[int, float],
        candidates: Mapping[str, Mapping[int, float]],
        *,
        include_guideline: bool = True,
    ) -> "SpeedupTable":
        nus = sorted(reference_seconds)
        table = cls(nus=nus, reference_label=reference_label)
        if include_guideline:
            guide = theoretical_guideline(nus)
            table.series["N^2/(N log2 N)"] = {nu: float(g) for nu, g in zip(nus, guide)}
        for label, seconds in candidates.items():
            table.series[label] = speedup_series(reference_seconds, seconds)
        return table

    def at(self, label: str, nu: int) -> float:
        try:
            return self.series[label][nu]
        except KeyError:
            raise ValidationError(f"no speedup for {label!r} at nu={nu}") from None

    def slope(self, label: str, *, min_nu: int | None = None) -> float:
        """Least-squares per-ν slope of ``log10(speedup)`` — the quantity
        that is equal for one algorithm across hardware and differs
        between algorithms (paper's reading of Fig. 4).

        ``min_nu`` restricts the fit to the asymptotic tail: the paper's
        "(asymptotically) parallel" wording matters — at small ν,
        launch-overhead effects bend the GPU curves.
        """
        data = self.series.get(label)
        if not data or len(data) < 2:
            raise ValidationError(f"series {label!r} too short for a slope")
        nus = np.array(sorted(nu for nu in data if min_nu is None or nu >= min_nu))
        if nus.size < 2:
            raise ValidationError(f"series {label!r} too short beyond min_nu={min_nu}")
        vals = np.log10([data[int(nu)] for nu in nus])
        # Least-squares slope.
        a = np.vstack([nus, np.ones_like(nus)]).T
        coef, *_ = np.linalg.lstsq(a.astype(float), vals, rcond=None)
        return float(coef[0])

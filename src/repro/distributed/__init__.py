"""Distributed-memory solving (the paper's first-named future work).

The conclusions state: "Given the new solver presented in this paper,
the main limiting factor … is not any more the runtime, but the memory
requirements.  Consequently, in the future we will focus on distributed
memory approaches."  This package implements that approach over a
*simulated* cluster (no MPI in this environment; the communication layer
is modeled exactly like the device layer models kernels):

* the state vector is block-partitioned across ``R = 2^r`` ranks
  (:class:`~repro.distributed.partition.PartitionedVector`) — each rank
  holds ``N/R`` contiguous entries, i.e. the high ``r`` index bits select
  the rank;
* butterfly stages with span below the block size are embarrassingly
  local; the top ``r`` stages pair ranks along hypercube dimensions and
  cost one block exchange each
  (:class:`~repro.distributed.fmmp.DistributedFmmp`) — the classic
  distributed-FFT communication pattern;
* norms/residuals use modeled hypercube allreduces;
* :class:`~repro.distributed.power.DistributedPowerIteration` runs the
  whole solve with per-rank roofline compute plus link-model
  communication accounting, while executing the numerics for real
  (asserted equal to the serial solver).
"""

from repro.distributed.cluster import CommLink, ClusterProfile
from repro.distributed.partition import (
    PartitionedVector,
    panel_bounds,
    split_stages,
    stage_is_local,
)
from repro.distributed.fmmp import DistributedFmmp
from repro.distributed.power import DistributedPowerIteration, DistributedRunReport

__all__ = [
    "CommLink",
    "ClusterProfile",
    "PartitionedVector",
    "panel_bounds",
    "split_stages",
    "stage_is_local",
    "DistributedFmmp",
    "DistributedPowerIteration",
    "DistributedRunReport",
]

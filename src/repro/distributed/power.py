"""Distributed power iteration over the partitioned fast matvec.

Each iteration, per rank: the diagonal ``F`` product on the local block,
the distributed butterfly (local stages + hypercube exchanges), a local
partial 1-norm + modeled allreduce for λ, local normalization, local
partial residual + allreduce, block copy.  Numerics execute for real;
time is per-rank roofline compute plus the α–β communication model.

This realizes the paper's stated future direction — the *memory* wall
falls as ``N/R`` per rank while the communication cost grows only like
``log₂ R`` exchanges per matvec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.cluster import ClusterProfile
from repro.distributed.fmmp import DistributedFmmp
from repro.distributed.partition import PartitionedVector
from repro.exceptions import ConvergenceError, ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.solvers.result import IterationRecord, SolveResult

__all__ = ["DistributedPowerIteration", "DistributedRunReport"]


@dataclass
class DistributedRunReport:
    """Outcome of a distributed solve.

    Attributes
    ----------
    result:
        The numerical eigenpair (identical to the serial solvers).
    ranks:
        Cluster size used.
    modeled_total_s:
        Modeled end-to-end wall-clock.
    modeled_compute_s / modeled_comm_s:
        Per-rank compute vs communication split.
    comm_bytes_per_rank:
        Total bytes each rank sent.
    memory_per_rank_bytes:
        Peak state per rank (the quantity the paper wants scaled down).
    """

    result: SolveResult
    ranks: int
    modeled_total_s: float
    modeled_compute_s: float
    modeled_comm_s: float
    comm_bytes_per_rank: float
    memory_per_rank_bytes: float

    @property
    def comm_fraction(self) -> float:
        total = self.modeled_total_s or 1.0
        return self.modeled_comm_s / total


class DistributedPowerIteration:
    """Power iteration on ``W = Q·F`` over a simulated cluster.

    Parameters
    ----------
    cluster:
        Simulated cluster profile (``R`` must divide ``N/2``).
    mutation:
        Uniform or per-site mutation model (per-bit butterfly factors).
    landscape:
        The fitness landscape.
    tol, max_iterations:
        Stopping criterion on ``‖Wx − λx‖₂``.
    """

    def __init__(
        self,
        cluster: ClusterProfile,
        mutation: UniformMutation | PerSiteMutation,
        landscape: FitnessLandscape,
        *,
        tol: float = 1e-12,
        max_iterations: int = 100_000,
    ):
        if not isinstance(mutation, (UniformMutation, PerSiteMutation)):
            raise ValidationError("distributed pipeline needs per-bit 2x2 factors")
        if mutation.nu != landscape.nu:
            raise ValidationError("mutation and landscape chain lengths disagree")
        self.cluster = cluster
        self.mutation = mutation
        self.landscape = landscape
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.op = DistributedFmmp(cluster, mutation.factors_per_bit())
        self.n = mutation.n

    # ----------------------------------------------------------------- run
    def run(self, start: np.ndarray | None = None, *, raise_on_fail: bool = True) -> DistributedRunReport:
        """Execute the solve; numerics real, time modeled."""
        cl = self.cluster
        r = cl.ranks
        x0 = self.landscape.start_vector() if start is None else np.asarray(start, float)
        if x0.shape != (self.n,):
            raise ValidationError(f"start vector must have shape ({self.n},)")
        x0 = x0 / np.abs(x0).sum()

        f = PartitionedVector.scatter(self.landscape.values(), r)
        x = PartitionedVector.scatter(x0, r)
        b = float(self.op.block_size)

        # ---- per-iteration modeled costs (ranks are symmetric) --------
        node = cl.node
        # diagonal product + abs-sum + scale + residual map + copy: all
        # block-local streaming passes.
        local_passes_bytes = (24.0 + 24.0 + 16.0 + 32.0 + 16.0) * b
        local_passes_flops = (1.0 + 1.0 + 1.0 + 2.0) * b
        compute_per_iter = (
            self.op.compute_time_per_matvec()
            + node.kernel_time(local_passes_bytes, local_passes_flops)
            + 5.0 * node.launch_overhead_s
        )
        comm_per_iter = self.op.comm_time_per_matvec() + 2.0 * cl.allreduce_time()

        history: list[IterationRecord] = []
        lam = 0.0
        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            w = PartitionedVector([xb * fb for xb, fb in zip(x.blocks, f.blocks)])
            self.op.apply(w)
            lam = float(sum(np.abs(blk).sum() for blk in w.blocks))  # allreduce
            if lam <= 0.0:
                raise ConvergenceError("iterate collapsed", iterations=iterations)
            for blk in w.blocks:
                blk /= lam
            r2 = float(
                sum(((wb - xb) ** 2).sum() for wb, xb in zip(w.blocks, x.blocks))
            )  # allreduce
            residual = lam * float(np.sqrt(max(r2, 0.0)))
            x = w
            history.append(IterationRecord(iterations, lam, residual))
            if residual < self.tol:
                break

        converged = residual < self.tol
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"distributed power iteration did not reach tol={self.tol}",
                iterations=iterations,
                residual=residual,
            )

        xg = np.abs(x.gather())
        xg /= xg.sum()
        result = SolveResult(
            eigenvalue=lam,
            eigenvector=xg,
            concentrations=xg,
            iterations=iterations,
            residual=residual,
            converged=converged,
            method=f"Distributed-Pi(Fmmp) on {r} x {node.name}",
            history=history,
        )
        return DistributedRunReport(
            result=result,
            ranks=r,
            modeled_total_s=iterations * (compute_per_iter + comm_per_iter),
            modeled_compute_s=iterations * compute_per_iter,
            modeled_comm_s=iterations * comm_per_iter,
            comm_bytes_per_rank=iterations * self.op.comm_bytes_per_matvec(),
            memory_per_rank_bytes=8.0 * b * 3.0,  # x, w, f blocks
        )

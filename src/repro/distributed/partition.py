"""Block-partitioned vectors over simulated ranks.

The global vector of length ``N = 2^ν`` is split into ``R = 2^r``
contiguous blocks; block ``k`` holds global indices
``[k·N/R, (k+1)·N/R)``, i.e. the **high** ``r`` bits of the index select
the rank.  This is the layout under which the bottom ``ν − r`` butterfly
stages are rank-local and the top ``r`` stages are single-dimension
hypercube exchanges.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.panels import panel_bounds, split_stages, stage_is_local
from repro.exceptions import ValidationError
from repro.util.validation import check_power_of_two

__all__ = [
    "PartitionedVector",
    "panel_bounds",
    "split_stages",
    "stage_is_local",
]


class PartitionedVector:
    """A length-``N`` float64 vector stored as ``R`` rank blocks."""

    def __init__(self, blocks: list[np.ndarray]):
        r = len(blocks)
        check_power_of_two(r, "number of ranks")
        sizes = {b.shape for b in blocks}
        if len(sizes) != 1:
            raise ValidationError("all rank blocks must have equal length")
        (shape,) = sizes
        if len(shape) != 1:
            raise ValidationError("rank blocks must be one-dimensional")
        check_power_of_two(shape[0], "block length")
        self.blocks = [np.ascontiguousarray(b, dtype=np.float64) for b in blocks]
        self.ranks = r
        self.block_size = shape[0]
        self.n = r * shape[0]

    # ------------------------------------------------------------ builders
    @classmethod
    def scatter(cls, v: np.ndarray, ranks: int) -> "PartitionedVector":
        """Split a global vector into ``ranks`` contiguous blocks."""
        v = np.asarray(v, dtype=np.float64).reshape(-1)
        check_power_of_two(ranks, "ranks")
        if v.size % ranks != 0:
            raise ValidationError(f"vector of length {v.size} not divisible by {ranks} ranks")
        block = v.size // ranks
        return cls([v[k * block : (k + 1) * block].copy() for k in range(ranks)])

    def gather(self) -> np.ndarray:
        """Reassemble the global vector (host-side check/output only)."""
        return np.concatenate(self.blocks)

    def copy(self) -> "PartitionedVector":
        return PartitionedVector([b.copy() for b in self.blocks])

    # ------------------------------------------------------------- queries
    def local_sum(self, fn=None) -> list[float]:
        """Per-rank reduction values (``fn`` defaults to plain sum) —
        what each rank contributes to an allreduce."""
        if fn is None:
            return [float(b.sum()) for b in self.blocks]
        return [float(fn(b)) for b in self.blocks]

    def __len__(self) -> int:
        return self.n

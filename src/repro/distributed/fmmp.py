"""Distributed Fmmp: the butterfly over block-partitioned vectors.

Stage structure (block size ``B = N/R``, ranks indexed by the high bits):

* **local stages** — span ``h < B``: both members of every butterfly
  pair live in the same block; every rank runs the ordinary in-situ
  stage on its own data, no communication;
* **cross stages** — span ``h = B·2^d`` for hypercube dimension
  ``d = 0 … r−1``: the pair partner of every element sits in the block
  of the partner rank ``k ^ 2^d``.  Both ranks exchange their full
  blocks, then each computes *its own* output row of the 2×2 mix:

      lower rank (bit d = 0):  block ← m00·block + m01·partner
      upper rank (bit d = 1):  block ← m10·partner + m11·block

  — one ``B``-element exchange and one axpy-like pass per cross stage,
  exactly the distributed-FFT pattern.

Communication per matvec: ``r = log₂R`` exchanges of ``8·B`` bytes.
Compute per rank: the full ν stages over ``B`` elements.  The numerics
are executed for real and must match the serial butterfly bit for bit
(same operation order), which the tests assert.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributed.cluster import ClusterProfile
from repro.distributed.partition import PartitionedVector, split_stages
from repro.exceptions import ValidationError
from repro.transforms.butterfly import apply_stage

__all__ = ["DistributedFmmp"]


class DistributedFmmp:
    """Distributed butterfly ``Q·v`` for per-bit 2×2 factors.

    Parameters
    ----------
    cluster:
        The simulated cluster (fixes ``R``).
    factors:
        ν per-bit 2×2 factors (``factors[s]`` on bit ``s``), as produced
        by the uniform/per-site mutation models.
    """

    def __init__(self, cluster: ClusterProfile, factors: Sequence[np.ndarray]):
        self.cluster = cluster
        self.factors = [np.asarray(f, dtype=np.float64) for f in factors]
        for idx, f in enumerate(self.factors):
            if f.shape != (2, 2):
                raise ValidationError(f"factor {idx} must be 2x2, got {f.shape}")
        self.nu = len(self.factors)
        self.n = 1 << self.nu
        if cluster.ranks > self.n // 2:
            raise ValidationError(
                f"{cluster.ranks} ranks need at least 2 elements per block "
                f"(N = {self.n})"
            )
        self.block_size = self.n // cluster.ranks
        # Shared stage-split math: bottom log2(B) stages are rank-local,
        # top log2(R) pair across ranks (same helper the shared-memory
        # panel engine classifies its sweeps with).
        self.local_stages, self.cross_stages = split_stages(self.nu, cluster.ranks)

    # ------------------------------------------------------------- numerics
    def apply(self, v: PartitionedVector) -> PartitionedVector:
        """In-place distributed ``Q·v``; returns ``v`` for chaining."""
        if v.ranks != self.cluster.ranks or v.n != self.n:
            raise ValidationError("partitioned vector does not match this operator")
        # Local stages: span 1 .. B/2 inside every block.
        for s in range(self.local_stages):
            m = self.factors[s]
            for block in v.blocks:
                apply_stage(block, 1 << s, m, out=block)
        # Cross stages: hypercube dimension d pairs rank k with k ^ 2^d.
        for d in range(self.cross_stages):
            m = self.factors[self.local_stages + d]
            bit = 1 << d
            for k in range(self.cluster.ranks):
                if k & bit:
                    continue  # handled together with the partner
                partner = k ^ bit
                lo = v.blocks[k]
                hi = v.blocks[partner]
                new_lo = m[0, 0] * lo + m[0, 1] * hi
                new_hi = m[1, 0] * lo + m[1, 1] * hi
                v.blocks[k] = new_lo
                v.blocks[partner] = new_hi
        return v

    # ------------------------------------------------------------- modeling
    def compute_time_per_matvec(self) -> float:
        """Per-rank roofline time: ν stages over B elements (every stage
        — local or cross — touches each local element once)."""
        b = float(self.block_size)
        bytes_moved = 32.0 * (b / 2.0) * self.local_stages + 32.0 * b * self.cross_stages / 2.0
        flops = 6.0 * (b / 2.0) * self.local_stages + 6.0 * b * self.cross_stages / 2.0
        # Each stage also costs a launch on the node profile.
        t = self.cluster.node.kernel_time(bytes_moved, flops)
        t += (self.local_stages + self.cross_stages - 1) * self.cluster.node.launch_overhead_s
        return t

    def comm_time_per_matvec(self) -> float:
        """``log₂R`` block exchanges of ``8·B`` bytes."""
        if self.cross_stages == 0:
            return 0.0
        return self.cross_stages * self.cluster.exchange_time(8.0 * self.block_size)

    def comm_bytes_per_matvec(self) -> float:
        """Bytes each rank sends per matvec."""
        return 8.0 * self.block_size * self.cross_stages

    def matvec_time(self) -> float:
        """Modeled wall-clock of one distributed matvec (ranks are
        symmetric, so the max over ranks equals any rank's time)."""
        return self.compute_time_per_matvec() + self.comm_time_per_matvec()

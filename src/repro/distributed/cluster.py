"""Cluster description: node profiles plus a point-to-point link model.

The communication model is the standard α–β (latency–bandwidth) model:
``t(n bytes) = α + n/β``.  Collectives are modeled as hypercube
algorithms over the same links (log₂R stages), which matches the
pairwise-exchange structure the distributed butterfly needs anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.profile import HardwareProfile, TESLA_C2050
from repro.exceptions import ValidationError

__all__ = ["CommLink", "ClusterProfile", "INFINIBAND_QDR"]


@dataclass(frozen=True)
class CommLink:
    """α–β model of one point-to-point link.

    Attributes
    ----------
    latency_s:
        Per-message latency α.
    bandwidth_gbs:
        Sustained bandwidth β in GB/s.
    """

    latency_s: float
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_gbs <= 0:
            raise ValidationError("latency must be >= 0 and bandwidth > 0")

    def time(self, nbytes: float) -> float:
        """Duration of one message of ``nbytes``."""
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


#: QDR InfiniBand, the 2011-era cluster interconnect: ~1.3 µs latency,
#: ~3.2 GB/s effective per direction.
INFINIBAND_QDR = CommLink(latency_s=1.3e-6, bandwidth_gbs=3.2)


@dataclass(frozen=True)
class ClusterProfile:
    """``R`` identical nodes joined by a uniform link model.

    Attributes
    ----------
    node:
        Per-node :class:`HardwareProfile` (compute + memory roofline).
    link:
        Point-to-point :class:`CommLink`.
    ranks:
        Number of ranks, a power of two (hypercube collectives).
    """

    node: HardwareProfile
    link: CommLink
    ranks: int

    def __post_init__(self) -> None:
        r = self.ranks
        if not isinstance(r, int) or r < 1 or (r & (r - 1)) != 0:
            raise ValidationError(f"ranks must be a power of two >= 1, got {r}")

    @property
    def dimensions(self) -> int:
        """Hypercube dimension ``log₂ R``."""
        return self.ranks.bit_length() - 1

    # ------------------------------------------------------------ modeling
    def exchange_time(self, nbytes_per_rank: float) -> float:
        """Pairwise block exchange along one hypercube dimension (each
        rank sends and receives ``nbytes_per_rank``; full duplex)."""
        return self.link.time(nbytes_per_rank)

    def allreduce_time(self, nbytes: float = 8.0) -> float:
        """Hypercube allreduce of a small value: log₂R pairwise steps."""
        if self.ranks == 1:
            return 0.0
        return self.dimensions * self.link.time(nbytes)


def gpu_cluster(ranks: int, *, node: HardwareProfile = TESLA_C2050, link: CommLink = INFINIBAND_QDR) -> ClusterProfile:
    """Convenience constructor: ``ranks`` Tesla-class nodes on QDR IB."""
    return ClusterProfile(node=node, link=link, ranks=ranks)

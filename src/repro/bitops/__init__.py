"""Bit-level machinery for binary RNA sequences.

Sequence ``X_i`` is identified with the binary encoding of the integer
``i`` (zero-based, LSB = site 0).  Everything the paper does with
Hamming distances, error classes ``Γ_{k,i}`` and XOR offsets lives here.
"""

from repro.bitops.popcount import (
    popcount,
    hamming_distance,
    distance_to_master,
    hamming_matrix,
)
from repro.bitops.classes import (
    error_class_indices,
    error_class_labels,
    error_class_sizes,
    error_class_representatives,
    masks_by_popcount,
    masks_up_to_distance,
)
from repro.bitops.graycode import gray_code, gray_permutation, inverse_permutation
from repro.bitops.panels import panel_bounds, split_stages, stage_is_local

__all__ = [
    "popcount",
    "hamming_distance",
    "distance_to_master",
    "hamming_matrix",
    "error_class_indices",
    "error_class_labels",
    "error_class_sizes",
    "error_class_representatives",
    "masks_by_popcount",
    "masks_up_to_distance",
    "gray_code",
    "gray_permutation",
    "inverse_permutation",
    "panel_bounds",
    "split_stages",
    "stage_is_local",
]

"""Error classes ``Γ_{k,i}`` and XOR offset masks.

The error class ``Γ_{k,i}`` (paper, Eq. 6) is the set of sequences at
Hamming distance ``k`` from sequence ``i``; ``Γ_k := Γ_{k,0}`` are the
classes around the master sequence and have ``C(ν, k)`` elements.

The XOR structure of the problem makes every class around ``i`` a
translate of the class around the master: ``Γ_{k,i} = {j ^ i : j ∈ Γ_k}``.
We therefore only ever materialize master classes and XOR-shift them.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.util.binomial import binomial_row
from repro.util.validation import check_chain_length

__all__ = [
    "error_class_labels",
    "error_class_indices",
    "error_class_sizes",
    "error_class_representatives",
    "masks_by_popcount",
    "masks_up_to_distance",
]


def error_class_labels(nu: int) -> np.ndarray:
    """Class index ``k = dH(X_i, X_0)`` for every sequence ``i`` (length N)."""
    return distance_to_master(nu)


def error_class_indices(nu: int, k: int, i: int = 0) -> np.ndarray:
    """All members of ``Γ_{k,i}`` as a sorted ``int64`` array.

    Parameters
    ----------
    nu:
        Chain length.
    k:
        Hamming distance defining the class, ``0 <= k <= nu``.
    i:
        Center sequence (default: the master sequence ``X_0``).
    """
    nu = check_chain_length(nu)
    n = 1 << nu
    if not 0 <= k <= nu:
        raise ValidationError(f"error class index k must be in [0, {nu}], got {k}")
    if not 0 <= i < n:
        raise ValidationError(f"center sequence i must be in [0, {n}), got {i}")
    labels = distance_to_master(nu)
    master_class = np.nonzero(labels == k)[0]
    if i == 0:
        return master_class
    return np.sort(master_class ^ np.int64(i))


def error_class_sizes(nu: int) -> np.ndarray:
    """``|Γ_k| = C(ν, k)`` for ``k = 0..ν`` as ``float64``."""
    nu = check_chain_length(nu, max_nu=10_000)
    return binomial_row(nu)


def error_class_representatives(nu: int) -> np.ndarray:
    """The canonical representative ``2**k − 1`` of each class ``Γ_k``.

    The paper (Sec. 5.1) suggests ``{2^k − 1 | 0 <= k <= ν}``: the sequence
    with the ``k`` lowest bits set clearly has distance ``k`` from the
    master.
    """
    nu = check_chain_length(nu)
    return (np.int64(1) << np.arange(nu + 1, dtype=np.int64)) - 1


def masks_by_popcount(nu: int, k: int) -> np.ndarray:
    """All ν-bit masks with exactly ``k`` set bits, in increasing order.

    These are the XOR offsets that connect a sequence to every member of
    its distance-``k`` class; ``Xmvp`` iterates over them.  Uses Gosper's
    hack to enumerate same-popcount integers in order without scanning all
    ``2**ν`` values.
    """
    nu = check_chain_length(nu)
    if not 0 <= k <= nu:
        raise ValidationError(f"popcount k must be in [0, {nu}], got {k}")
    if k == 0:
        return np.zeros(1, dtype=np.int64)
    import math

    count = math.comb(nu, k)
    out = np.empty(count, dtype=np.int64)
    v = (1 << k) - 1
    limit = 1 << nu
    for idx in range(count):
        out[idx] = v
        if idx + 1 == count:
            break
        # Gosper's hack: next integer with the same popcount.
        c = v & -v
        r = v + c
        v = (((r ^ v) >> 2) // c) | r
        if v >= limit:  # pragma: no cover - guarded by the count
            break
    return out


def masks_up_to_distance(nu: int, dmax: int) -> list[np.ndarray]:
    """Masks grouped by popcount for all distances ``0..dmax``.

    Returns a list of ``dmax + 1`` arrays; entry ``k`` holds the masks of
    popcount ``k``.  This is the sparsity pattern of ``Xmvp(dmax)``.
    """
    nu = check_chain_length(nu)
    if not 0 <= dmax <= nu:
        raise ValidationError(f"dmax must be in [0, {nu}], got {dmax}")
    return [masks_by_popcount(nu, k) for k in range(dmax + 1)]

"""Gray-code reordering of sequence space.

The paper (footnote 2) observes that reordering sequences by the Gray code
— where consecutive codes differ in exactly one bit, i.e.
``dH(X_{g(i)}, X_{g(i+1)}) = 1`` — makes the first off-diagonals of ``Q``
constant.  We expose the permutation both for that structural experiment
and as a general reindexing tool.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.util.validation import check_chain_length

__all__ = ["gray_code", "gray_permutation", "inverse_permutation"]


def gray_code(i: np.ndarray | int) -> np.ndarray | int:
    """Binary-reflected Gray code ``g(i) = i ^ (i >> 1)`` (broadcasts)."""
    arr = np.asarray(i)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValidationError("gray_code requires integer input")
    out = arr ^ (arr >> 1)
    if np.isscalar(i):
        return int(out)
    return out


def gray_permutation(nu: int) -> np.ndarray:
    """The permutation ``π`` with ``π[i] = gray_code(i)`` over ``0..2^ν−1``.

    Applying it to indices reorders sequence space so consecutive rows of
    ``Q`` correspond to sequences at Hamming distance one.
    """
    nu = check_chain_length(nu)
    idx = np.arange(1 << nu, dtype=np.int64)
    return gray_code(idx)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of a permutation given as an index array.

    ``inverse_permutation(p)[p[i]] == i`` for all ``i``.
    """
    perm = np.asarray(perm)
    if perm.ndim != 1:
        raise ValidationError("permutation must be one-dimensional")
    n = perm.shape[0]
    inv = np.empty(n, dtype=np.int64)
    check = np.zeros(n, dtype=bool)
    check[perm] = True
    if not check.all():
        raise ValidationError("input is not a permutation of 0..n-1")
    inv[perm] = np.arange(n, dtype=np.int64)
    return inv

"""Panel/stage-split index math shared by every partitioned butterfly.

One layout, three consumers: the global vector of length ``N = 2^ν`` is
split into ``R = 2^r`` contiguous blocks whose *high* ``r`` index bits
select the block.  Under it, butterfly stages whose footprint fits one
block are embarrassingly parallel and the top stages pair data across
blocks:

* :class:`repro.distributed.partition.PartitionedVector` uses it for
  simulated ranks (cross stages = hypercube exchanges);
* :mod:`repro.transforms.parallel` uses it for shared-memory worker
  panels (cross stages = partner-panel reads);
* the perf models count local vs cross stages with the same arithmetic.

Kept in :mod:`repro.bitops` because it is pure index math with no
dependencies — both the distributed and the transforms layer import it
without cycles.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.util.validation import check_power_of_two

__all__ = ["panel_bounds", "split_stages", "stage_is_local"]


def panel_bounds(n: int, panels: int, p: int) -> tuple[int, int]:
    """Global index range ``[lo, hi)`` of contiguous panel ``p`` of
    ``panels`` (the high ``log₂(panels)`` bits select the panel)."""
    if not 0 <= p < panels:
        raise ValidationError(f"panel index {p} out of range for {panels} panels")
    return p * n // panels, (p + 1) * n // panels


def split_stages(nu: int, panels: int) -> tuple[int, int]:
    """``(local, cross)`` radix-2 stage counts for ``panels = 2^r`` blocks.

    The bottom ``ν − r`` butterfly stages act entirely inside a block
    (span ``< N/R``); the top ``r`` stages pair elements across blocks —
    rank exchanges in the distributed engine, partner-panel reads in the
    shared-memory engine.
    """
    check_power_of_two(panels, "panels")
    r = panels.bit_length() - 1
    if r > nu:
        raise ValidationError(f"{panels} panels need at least {panels} rows (nu={nu})")
    return nu - r, r


def stage_is_local(span: int, radix: int, n: int, panels: int) -> bool:
    """Whether a (possibly fused) stage of footprint ``radix·span`` keeps
    every butterfly group inside one of ``panels`` contiguous blocks."""
    return radix * span <= n // panels

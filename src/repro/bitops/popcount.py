"""Vectorized population count and Hamming distances.

The Hamming distance between sequences is ``dH(X_i, X_j) =
popcount(i XOR j)`` — the key identity behind both the explicit mutation
matrix (Eq. 2) and the XOR-based implicit product ``Xmvp`` of [10].

NumPy has no public popcount ufunc for the versions we target, so we use
the classic SWAR (SIMD-within-a-register) bit-slicing algorithm, fully
vectorized over ``uint64`` lanes.  For the chain lengths of interest
(ν ≤ 28) a single 64-bit word per index suffices.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.util.validation import check_chain_length

__all__ = ["popcount", "hamming_distance", "distance_to_master", "hamming_matrix"]

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_SHIFT56 = np.uint64(56)
_ONE = np.uint64(1)
_TWO = np.uint64(2)
_FOUR = np.uint64(4)


def popcount(x: np.ndarray | int) -> np.ndarray | int:
    """Number of set bits of each element of ``x`` (non-negative ints).

    Accepts scalars or arrays of any integer dtype up to 64 bits; returns
    ``int64`` counts with the same shape (or a Python ``int`` for scalar
    input).

    Implementation: SWAR popcount — pairwise bit sums, then nibble sums,
    then a multiply-accumulate that gathers the byte sums into the top
    byte.  Constant number of vector ops per element.
    """
    scalar = np.isscalar(x)
    arr = np.asarray(x)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValidationError(f"popcount requires integer input, got dtype {arr.dtype}")
    if arr.size and int(arr.min()) < 0:
        raise ValidationError("popcount requires non-negative integers")
    v = arr.astype(np.uint64, copy=True)
    v -= (v >> _ONE) & _M1
    v = (v & _M2) + ((v >> _TWO) & _M2)
    v = (v + (v >> _FOUR)) & _M4
    # The SWAR gather multiply wraps mod 2**64 by design; silence the
    # scalar overflow warning NumPy emits for 0-d operands.
    with np.errstate(over="ignore"):
        counts = ((v * _H01) >> _SHIFT56).astype(np.int64)
    if scalar:
        return int(counts)
    return counts


def hamming_distance(i: np.ndarray | int, j: np.ndarray | int) -> np.ndarray | int:
    """Hamming distance ``dH(X_i, X_j) = popcount(i ^ j)``, broadcasting."""
    a = np.asarray(i)
    b = np.asarray(j)
    if not (np.issubdtype(a.dtype, np.integer) and np.issubdtype(b.dtype, np.integer)):
        raise ValidationError("hamming_distance requires integer inputs")
    x = np.bitwise_xor(a.astype(np.uint64), b.astype(np.uint64))
    out = popcount(x)
    if np.isscalar(i) and np.isscalar(j):
        return int(np.asarray(out))
    return out


def distance_to_master(nu: int) -> np.ndarray:
    """``dH(X_i, X_0)`` for all ``0 <= i < 2**nu`` as an ``int64`` array.

    This is simply the popcount of every index — the vector that defines
    error-class membership and Hamming-based fitness landscapes.
    """
    nu = check_chain_length(nu)
    return popcount(np.arange(1 << nu, dtype=np.uint64))


def hamming_matrix(nu: int, *, max_nu: int = 13) -> np.ndarray:
    """Dense ``N × N`` matrix of pairwise Hamming distances.

    Only used to build explicit matrices for validation and for the dense
    ``Smvp`` baseline, hence the deliberately low ``max_nu`` guard
    (``2**13 = 8192`` → a 512 MiB float64 matrix downstream).
    """
    nu = check_chain_length(nu, max_nu=max_nu)
    idx = np.arange(1 << nu, dtype=np.uint64)
    return popcount(idx[:, None] ^ idx[None, :])

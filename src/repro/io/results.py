"""Save/load :class:`SolveResult` and :class:`ThresholdSweep` objects.

Format: a single ``.npz`` archive per object.  Arrays are stored
natively; scalar metadata goes through a JSON side-channel entry so the
archive stays self-describing and future-proof (unknown keys are
ignored on load).
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import ValidationError
from repro.model.threshold import ThresholdSweep
from repro.solvers.result import IterationRecord, SolveResult

__all__ = [
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "save_verification_report",
    "load_verification_report",
    "save_job_result",
    "load_job_result",
    "save_batch_report",
    "load_batch_report",
]

_RESULT_KIND = "repro.SolveResult.v1"
_SWEEP_KIND = "repro.ThresholdSweep.v1"
_JOB_RESULT_KIND = "repro.JobResult.v1"


def save_result(path: str, result: SolveResult) -> None:
    """Persist a solve result to ``path`` (``.npz``)."""
    meta = {
        "kind": _RESULT_KIND,
        "eigenvalue": result.eigenvalue,
        "iterations": result.iterations,
        "residual": result.residual,
        "converged": bool(result.converged),
        "method": result.method,
    }
    history = np.array(
        [(h.iteration, h.eigenvalue, h.residual) for h in result.history],
        dtype=np.float64,
    ).reshape(-1, 3)
    np.savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        eigenvector=result.eigenvector,
        concentrations=result.concentrations,
        history=history,
    )


def _read_meta(archive, expected_kind: str) -> dict:
    try:
        raw = bytes(archive["meta"].tobytes()).decode()
        meta = json.loads(raw)
    except (KeyError, ValueError) as exc:
        raise ValidationError(f"not a repro archive: {exc}") from exc
    if meta.get("kind") != expected_kind:
        raise ValidationError(
            f"archive kind {meta.get('kind')!r} does not match expected {expected_kind!r}"
        )
    return meta


def load_result(path: str) -> SolveResult:
    """Load a solve result saved by :func:`save_result`."""
    with np.load(path) as archive:
        meta = _read_meta(archive, _RESULT_KIND)
        history = [
            IterationRecord(int(row[0]), float(row[1]), float(row[2]))
            for row in archive["history"]
        ]
        return SolveResult(
            eigenvalue=float(meta["eigenvalue"]),
            eigenvector=archive["eigenvector"].copy(),
            concentrations=archive["concentrations"].copy(),
            iterations=int(meta["iterations"]),
            residual=float(meta["residual"]),
            converged=bool(meta["converged"]),
            method=str(meta["method"]),
            history=history,
        )


def save_verification_report(path: str, report) -> None:
    """Persist a :class:`~repro.verify.report.VerificationReport` as JSON.

    Verification reports are pure scalars/strings, so — unlike solver
    results — they go to plain, diff-able, CI-greppable JSON rather than
    an ``.npz`` archive.
    """
    data = report.to_dict()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_verification_report(path: str):
    """Load a report saved by :func:`save_verification_report`."""
    from repro.verify.report import VerificationReport

    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except ValueError as exc:
        raise ValidationError(f"not a verification report: {exc}") from exc
    return VerificationReport.from_dict(data)


def save_job_result(path: str, result) -> None:
    """Persist a :class:`~repro.service.jobspec.JobResult` (``.npz``).

    This is the on-disk payload of the service result cache — one small
    archive per content hash: the ν+1 class concentrations natively,
    scalars through the JSON side channel (including the solve
    tolerance, which the cache's tolerance-aware lookup inspects).
    """
    meta = {
        "kind": _JOB_RESULT_KIND,
        "eigenvalue": result.eigenvalue,
        "iterations": result.iterations,
        "residual": result.residual,
        "converged": bool(result.converged),
        "method": result.method,
        "tol": result.tol,
    }
    np.savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        concentrations=np.asarray(result.concentrations, dtype=np.float64),
    )


def load_job_result(path: str):
    """Load a job result saved by :func:`save_job_result`."""
    from repro.service.jobspec import JobResult

    with np.load(path) as archive:
        meta = _read_meta(archive, _JOB_RESULT_KIND)
        return JobResult(
            eigenvalue=float(meta["eigenvalue"]),
            concentrations=archive["concentrations"].copy(),
            method=str(meta["method"]),
            iterations=int(meta["iterations"]),
            residual=float(meta["residual"]),
            converged=bool(meta["converged"]),
            tol=float(meta["tol"]),
        )


def save_batch_report(path: str, report) -> None:
    """Persist a :class:`~repro.service.service.BatchReport` as JSON.

    Batch reports — like verification reports — are scalars and strings
    all the way down, so they go to diff-able JSON rather than ``.npz``.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_batch_report(path: str):
    """Load a report saved by :func:`save_batch_report`."""
    from repro.service.service import BatchReport

    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except ValueError as exc:
        raise ValidationError(f"not a batch report: {exc}") from exc
    return BatchReport.from_dict(data)


def save_sweep(path: str, sweep: ThresholdSweep) -> None:
    """Persist an error-rate sweep to ``path`` (``.npz``)."""
    meta = {
        "kind": _SWEEP_KIND,
        "nu": sweep.nu,
        "p_max": sweep.p_max,
        "landscape_name": sweep.landscape_name,
    }
    np.savez(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        error_rates=sweep.error_rates,
        class_concentrations=sweep.class_concentrations,
    )


def load_sweep(path: str) -> ThresholdSweep:
    """Load a sweep saved by :func:`save_sweep`."""
    with np.load(path) as archive:
        meta = _read_meta(archive, _SWEEP_KIND)
        return ThresholdSweep(
            nu=int(meta["nu"]),
            error_rates=archive["error_rates"].copy(),
            class_concentrations=archive["class_concentrations"].copy(),
            p_max=None if meta["p_max"] is None else float(meta["p_max"]),
            landscape_name=str(meta.get("landscape_name", "")),
        )

"""Persistence of solver results, sweeps, and verification reports."""

from repro.io.results import (
    load_result,
    load_sweep,
    load_verification_report,
    save_result,
    save_sweep,
    save_verification_report,
)

__all__ = [
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "save_verification_report",
    "load_verification_report",
]

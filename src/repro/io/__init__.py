"""Persistence of solver results and sweeps (NumPy ``.npz`` archives)."""

from repro.io.results import save_result, load_result, save_sweep, load_sweep

__all__ = ["save_result", "load_result", "save_sweep", "load_sweep"]

"""Persistence of solver results, sweeps, verification and batch reports."""

from repro.io.results import (
    load_batch_report,
    load_job_result,
    load_result,
    load_sweep,
    load_verification_report,
    save_batch_report,
    save_job_result,
    save_result,
    save_sweep,
    save_verification_report,
)

__all__ = [
    "save_result",
    "load_result",
    "save_sweep",
    "load_sweep",
    "save_verification_report",
    "load_verification_report",
    "save_job_result",
    "load_job_result",
    "save_batch_report",
    "load_batch_report",
]

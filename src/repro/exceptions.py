"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library-level failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError`` from NumPy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ConvergenceError",
    "IncompatibleStructureError",
    "DeviceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or structure).

    Inherits from :class:`ValueError` so generic callers that expect
    ``ValueError`` for bad arguments keep working.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach the requested tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm when the solver stopped.
    """

    def __init__(self, message: str, *, iterations: int = -1, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class IncompatibleStructureError(ReproError, ValueError):
    """Two structured objects (e.g. Kronecker-factored ``Q`` and ``F``)
    cannot be combined because their factorizations do not line up."""


class DeviceError(ReproError, RuntimeError):
    """Misuse of the simulated device runtime (stale buffers, bad launch
    geometry, kernel cost-spec violations, ...)."""

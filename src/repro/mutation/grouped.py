"""Grouped mutation processes (Eq. 11).

The most general structure the paper's fast product supports:

    Q = ⊗_{i=1}^{g} Q_{G_i},   Q_{G_i} ∈ R^{2^{g_i} × 2^{g_i}},   Σ g_i = ν

— ``g`` groups of sites; sites inside a group mutate *dependently*
(arbitrary column-stochastic block), distinct groups are independent.
The matvec costs ``Θ(N · Σᵢ 2^{g_i})``; for bounded group sizes this is
the same order as the uniform butterfly (the paper: the group sizes enter
``f(n)`` in the Master-theorem recurrence of Lemma 1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.mutation.base import MutationModel, check_column_stochastic
from repro.transforms.kronecker import kron_matvec
from repro.util.validation import check_chain_length, check_power_of_two

__all__ = ["GroupedMutation"]

#: Refuse groups whose dense block would dominate the whole problem.
_MAX_GROUP_BITS = 12


class GroupedMutation(MutationModel):
    """Kronecker product of column-stochastic group blocks.

    Parameters
    ----------
    blocks:
        Group blocks in the paper's ⊗ order: ``blocks[0]`` acts on the
        most significant ``g_1`` bits of the sequence index.  Each block
        must be a column-stochastic square matrix of power-of-two
        dimension ``2^{g_i}``.

    Examples
    --------
    Two dependent sites whose double mutation is suppressed, combined
    with two independent uniform sites::

        pair = correlated_4x4_block(...)       # 4x4 column stochastic
        unif = site_factor(0.01)               # 2x2
        q = GroupedMutation([pair, unif, unif])   # ν = 4
    """

    def __init__(self, blocks: Sequence[np.ndarray]):
        if len(blocks) == 0:
            raise ValidationError("at least one group block is required")
        self._blocks: list[np.ndarray] = []
        self._group_bits: list[int] = []
        for idx, b in enumerate(blocks):
            arr = check_column_stochastic(b, what=f"group block {idx}")
            dim = check_power_of_two(arr.shape[0], f"dimension of group block {idx}")
            bits = dim.bit_length() - 1
            if bits < 1:
                raise ValidationError(f"group block {idx} must be at least 2x2")
            if bits > _MAX_GROUP_BITS:
                raise ValidationError(
                    f"group block {idx} spans {bits} sites; the dense block would "
                    f"be too large (limit {_MAX_GROUP_BITS})"
                )
            self._blocks.append(arr)
            self._group_bits.append(bits)
        # O(Σ 4^{g_i}) storage regardless of ν; materializing guards live
        # on the 2**nu-sized operations.
        self.nu = check_chain_length(sum(self._group_bits), max_nu=10_000)
        self.n = 1 << self.nu

    # ----------------------------------------------------------- structure
    @property
    def group_sizes(self) -> tuple[int, ...]:
        """The ``g_i`` (bits per group), paper order (MSB group first)."""
        return tuple(self._group_bits)

    def blocks(self) -> list[np.ndarray]:
        """Copies of the group blocks (paper ⊗ order)."""
        return [b.copy() for b in self._blocks]

    @property
    def is_symmetric(self) -> bool:
        return all(np.allclose(b, b.T, atol=1e-14) for b in self._blocks)

    # ----------------------------------------------------------- operations
    def apply(self, v: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """``Q · v`` via the multilinear Kronecker matvec.

        ``Θ(N · Σᵢ 2^{g_i})`` — reduces to the butterfly cost when all
        groups are single sites.
        """
        v = self.check_vector(v)
        res = kron_matvec(self._blocks, v)
        if out is not None:
            out[:] = res
            return out
        return res

    def apply_inverse(self, v: np.ndarray) -> np.ndarray:
        """``Q⁻¹ · v`` via per-block inverses (``(A⊗B)⁻¹ = A⁻¹⊗B⁻¹``)."""
        invs = []
        for idx, b in enumerate(self._blocks):
            try:
                invs.append(np.linalg.inv(b))
            except np.linalg.LinAlgError as exc:
                raise ValidationError(f"group block {idx} is singular") from exc
        v = self.check_vector(v)
        return kron_matvec(invs, v)

    def eigenvalues(self) -> np.ndarray:
        """All ``N`` eigenvalues: Kronecker products of block spectra.

        May be complex for non-symmetric blocks; returned as complex and
        squeezed to real when the imaginary parts vanish.
        """
        lam = np.array([1.0 + 0.0j])
        for b in self._blocks:
            block_eigs = np.linalg.eigvals(b)
            lam = (lam[:, None] * block_eigs[None, :]).reshape(-1)
        if np.allclose(lam.imag, 0.0, atol=1e-12):
            return lam.real
        return lam

    def dense(self, *, max_nu: int = 13) -> np.ndarray:
        """Dense ``Q = ⊗ blocks`` (validation only)."""
        check_chain_length(self.nu, max_nu=max_nu)
        m = np.array([[1.0]])
        for b in self._blocks:
            m = np.kron(m, b)
        return m

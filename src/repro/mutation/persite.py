"""Per-site mutation processes (Sec. 2.2, first generalization).

The uniform-error-rate assumption is the oldest criticism of the
quasispecies model.  The paper's observation: the Kronecker factorization
never needed the factors to be *equal* — any ν independent single-point
processes work, as long as each 2×2 factor is column stochastic.  ``Q``
may lose symmetry; the butterfly product is unaffected.

A general 2×2 column-stochastic factor for site ``s`` is

    [[1 − a_s,  b_s],
     [    a_s,  1 − b_s]]

where ``a_s`` = P(0→1 flip at site s) and ``b_s`` = P(1→0 flip).  The
uniform model is ``a_s = b_s = p`` for all ``s``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.mutation.base import MutationModel, check_column_stochastic
from repro.transforms.butterfly import butterfly_transform
from repro.util.validation import check_chain_length

__all__ = ["PerSiteMutation", "site_factor"]


def site_factor(p01: float, p10: float | None = None) -> np.ndarray:
    """Build a 2×2 column-stochastic single-site factor.

    Parameters
    ----------
    p01:
        Probability that an unmutated site (0) flips to 1.
    p10:
        Probability that a mutated site (1) flips back to 0; defaults to
        ``p01`` (symmetric site).
    """
    if p10 is None:
        p10 = p01
    for name, val in (("p01", p01), ("p10", p10)):
        if not 0.0 <= val <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {val}")
    return np.array([[1.0 - p01, p10], [p01, 1.0 - p10]])


class PerSiteMutation(MutationModel):
    """ν independent, possibly different, single-site mutation processes.

    Parameters
    ----------
    factors:
        Sequence of ν column-stochastic 2×2 matrices; ``factors[s]`` acts
        on site/bit ``s`` (LSB = site 0).

    Notes
    -----
    In the Kronecker product notation of Eq. (7), site ``s`` corresponds
    to factor number ``ν − s`` (the paper's factor 1 is the most
    significant bit) — the :meth:`kronecker_factors` accessor returns
    them in paper order.
    """

    def __init__(self, factors: Sequence[np.ndarray]):
        if len(factors) == 0:
            raise ValidationError("at least one site factor is required")
        self.nu = check_chain_length(len(factors))
        self.n = 1 << self.nu
        self._factors = [
            check_column_stochastic(f, what=f"site factor {s}") for s, f in enumerate(factors)
        ]
        for s, f in enumerate(self._factors):
            if f.shape != (2, 2):
                raise ValidationError(f"site factor {s} must be 2x2, got {f.shape}")

    # ------------------------------------------------------------ builders
    @classmethod
    def from_error_rates(cls, rates: Sequence[float]) -> "PerSiteMutation":
        """Symmetric per-site rates: site ``s`` flips with probability
        ``rates[s]`` in either direction."""
        return cls([site_factor(r) for r in rates])

    @classmethod
    def uniform(cls, nu: int, p: float) -> "PerSiteMutation":
        """The uniform model expressed in per-site form (for testing the
        equivalence with :class:`~repro.mutation.uniform.UniformMutation`)."""
        return cls.from_error_rates([p] * nu)

    # ----------------------------------------------------------- structure
    def factors_per_bit(self) -> list[np.ndarray]:
        """Site-indexed factors (bit ``s`` ↔ ``factors[s]``)."""
        return [f.copy() for f in self._factors]

    def kronecker_factors(self) -> list[np.ndarray]:
        """Factors in the paper's ⊗ order (factor 1 = most significant bit)."""
        return [f.copy() for f in reversed(self._factors)]

    @property
    def is_symmetric(self) -> bool:
        return all(abs(f[0, 1] - f[1, 0]) < 1e-15 for f in self._factors)

    # ----------------------------------------------------------- operations
    def apply(self, v: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Fast ``Q · v`` via the per-bit butterfly — same ``Θ(N log₂ N)``
        cost as the uniform model (the paper's key generality claim)."""
        v = self.check_vector(v)
        in_place = out is v
        res = butterfly_transform(v, self._factors, in_place=in_place)
        if out is not None and not in_place:
            out[:] = res
            return out
        return res

    def apply_inverse(self, v: np.ndarray) -> np.ndarray:
        """``Q⁻¹ · v`` via per-factor 2×2 inverses (requires all factors
        nonsingular, i.e. ``a_s + b_s != 1`` for every site)."""
        invs = []
        for s, f in enumerate(self._factors):
            det = f[0, 0] * f[1, 1] - f[0, 1] * f[1, 0]
            if abs(det) < 1e-300:
                raise ValidationError(f"site factor {s} is singular; Q has no inverse")
            invs.append(np.array([[f[1, 1], -f[0, 1]], [-f[1, 0], f[0, 0]]]) / det)
        v = self.check_vector(v)
        return butterfly_transform(v, invs)

    def eigenvalues(self) -> np.ndarray:
        """All ``N`` eigenvalues as Kronecker combinations of the per-site
        pairs ``{1, 1 − a_s − b_s}``.

        Entry ``i`` multiplies, over every set bit ``s`` of ``i``, the
        second eigenvalue of site ``s`` — generalizing
        ``(1−2p)^{dH(i,0)}``.
        """
        lam = np.ones(self.n)
        for s, f in enumerate(self._factors):
            second = 1.0 - f[1, 0] - f[0, 1]  # 1 - a_s - b_s
            bit = (np.arange(self.n) >> s) & 1
            lam *= np.where(bit == 1, second, 1.0)
        return lam

    def dense(self, *, max_nu: int = 13) -> np.ndarray:
        """Dense ``Q = ⊗ factors`` (validation only)."""
        check_chain_length(self.nu, max_nu=max_nu)
        m = np.array([[1.0]])
        for f in self.kronecker_factors():
            m = np.kron(m, f)
        return m

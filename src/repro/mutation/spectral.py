"""Spectral operations on the uniform mutation matrix via the FWHT.

Section 2 of the paper gives the closed-form eigendecomposition

    Q(ν) = V(ν) · Λ(ν) · V(ν),
    Λ(ν)_{i,i} = (1 − 2p)^{dH(i,0)},     V(ν) = Hadamard / 2^{ν/2},

which yields (Sec. 3, "Towards a Shift-and-Invert Method") an *exact*
``Θ(N log₂ N)`` product with ``(Q − μI)^{-1}``:

    (Q − μI)^{-1} v = V (Λ − μI)^{-1} V v.

These free functions implement that machinery; they power the
shift-and-invert / Rayleigh-quotient solvers for pure-``Q`` problems and
serve as an independent check of the butterfly product.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.transforms.fwht import fwht
from repro.util.validation import check_chain_length, check_error_rate, check_vector

__all__ = [
    "uniform_q_eigenvalues",
    "apply_uniform_q_spectral",
    "apply_uniform_q_inverse",
    "solve_shifted_uniform_q",
]


def uniform_q_eigenvalues(nu: int, p: float) -> np.ndarray:
    """Eigenvalues ``(1−2p)^{dH(i,0)}``, aligned with the FWHT basis.

    Eigenvalue ``(1−2p)^k`` appears with multiplicity ``C(ν, k)`` — this
    also proves ``Q ≻ 0`` for ``p < 1/2`` (paper, Sec. 2).
    """
    nu = check_chain_length(nu)
    p = check_error_rate(p, allow_zero=True)
    return (1.0 - 2.0 * p) ** distance_to_master(nu).astype(np.float64)


def apply_uniform_q_spectral(v: np.ndarray, nu: int, p: float) -> np.ndarray:
    """``Q · v`` computed as ``V Λ V v`` (three ``Θ(N log N)`` passes).

    Slower than the direct butterfly by a constant factor, but an
    algebraically independent route — used to cross-validate ``Fmmp``.
    """
    nu = check_chain_length(nu)
    v = check_vector(v, 1 << nu, "v")
    lam = uniform_q_eigenvalues(nu, p)
    w = fwht(v, ortho=True)
    w *= lam
    return fwht(w, ortho=True, in_place=True)


def apply_uniform_q_inverse(v: np.ndarray, nu: int, p: float) -> np.ndarray:
    """``Q⁻¹ · v`` via the spectral route (requires ``p < 1/2``)."""
    p = check_error_rate(p, allow_zero=True)
    if p >= 0.5:
        raise ValidationError("Q is singular at p = 1/2")
    return solve_shifted_uniform_q(v, nu, p, mu=0.0)


def solve_shifted_uniform_q(v: np.ndarray, nu: int, p: float, mu: float) -> np.ndarray:
    """Exact ``(Q − μI)^{-1} v`` in ``Θ(N log₂ N)`` (paper, Sec. 3).

    Parameters
    ----------
    v:
        Right-hand side, length ``2**nu``.
    nu, p:
        Chain length and error rate defining ``Q``.
    mu:
        Shift; must not coincide with an eigenvalue ``(1−2p)^k``.

    Raises
    ------
    ValidationError
        If ``μ`` is (numerically) an eigenvalue of ``Q``, making the
        shifted matrix singular.
    """
    nu = check_chain_length(nu)
    p = check_error_rate(p, allow_zero=True)
    v = check_vector(v, 1 << nu, "v")
    lam = uniform_q_eigenvalues(nu, p) - float(mu)
    tiny = np.abs(lam) < 1e-14
    if tiny.any():
        raise ValidationError(
            f"shift mu={mu} coincides with an eigenvalue of Q; (Q - mu I) is singular"
        )
    w = fwht(v, ortho=True)
    w /= lam
    return fwht(w, ortho=True, in_place=True)

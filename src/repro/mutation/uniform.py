"""The classic uniform-error-rate mutation matrix (Eq. 2 / Eq. 7).

``Q[i, j] = p^{dH(i,j)} · (1−p)^{ν − dH(i,j)}`` — every site mutates
independently with the same probability ``p``.  Equivalently (Eq. 7)

    Q(ν) = ⊗_{i=1}^{ν} [[1−p, p], [p, 1−p]],

which is what makes the ``Θ(N log₂ N)`` butterfly product possible and
gives the closed-form eigendecomposition ``Q = V Λ V`` with the Hadamard
matrix ``V`` and ``Λ_{i,i} = (1−2p)^{dH(i,0)}``.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master, hamming_matrix
from repro.exceptions import ValidationError
from repro.mutation.base import MutationModel
from repro.transforms.butterfly import butterfly_transform
from repro.util.validation import check_chain_length, check_error_rate

__all__ = ["UniformMutation"]


class UniformMutation(MutationModel):
    """Uniform single-point mutation with error rate ``p``.

    Parameters
    ----------
    nu:
        Chain length ``ν``; the model dimension is ``N = 2**ν``.
    p:
        Per-site error rate, ``0 <= p <= 1/2``.  ``p = 0`` is the
        degenerate error-free corner (``Q = I``) and ``p = 1/2`` the
        maximally-mixing corner (rank-one ``Q``); both are admitted so
        the verification harness can exercise them.

    Examples
    --------
    >>> q = UniformMutation(3, 0.01)
    >>> import numpy as np
    >>> v = np.zeros(8); v[0] = 1.0
    >>> float(q.apply(v).sum().round(12))  # column-stochastic: mass preserved
    1.0
    """

    def __init__(self, nu: int, p: float):
        # The model object is O(1) storage, so very long chains are fine
        # here; only the operations that touch 2**nu-sized data (apply,
        # eigenvalues, dense) enforce the materialization guard.
        self.nu = check_chain_length(nu, max_nu=10_000)
        self.p = check_error_rate(p, allow_zero=True)
        self.n = 1 << self.nu

    # ----------------------------------------------------------- structure
    def factor(self) -> np.ndarray:
        """The single 2×2 Kronecker factor ``[[1−p, p], [p, 1−p]]``."""
        p = self.p
        return np.array([[1.0 - p, p], [p, 1.0 - p]])

    def factors_per_bit(self) -> list[np.ndarray]:
        """One (identical) 2×2 factor per bit, for the butterfly engine."""
        f = self.factor()
        return [f] * self.nu

    def class_values(self) -> np.ndarray:
        """The ν+1 distinct entries ``QΓ_k = p^k (1−p)^{ν−k}``, k = 0..ν.

        The whole matrix contains only these values (paper, Sec. 1.1).
        """
        k = np.arange(self.nu + 1, dtype=np.float64)
        return self.p**k * (1.0 - self.p) ** (self.nu - k)

    @property
    def is_symmetric(self) -> bool:
        return True

    # ----------------------------------------------------------- operations
    def apply(self, v: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Fast ``Q · v`` via the ν-stage butterfly — ``Θ(N log₂ N)``.

        If ``out`` is ``v`` itself the transform runs in situ.
        """
        v = self.check_vector(v)
        in_place = out is v
        res = butterfly_transform(v, self.factors_per_bit(), in_place=in_place)
        if out is not None and not in_place:
            out[:] = res
            return out
        return res

    def apply_inverse(self, v: np.ndarray) -> np.ndarray:
        """Fast ``Q⁻¹ · v``.

        From Eq. (12): the inverse factors are
        ``(1−2p)^{-1} [[1−p, −p], [−p, 1−p]]``; requires ``p < 1/2``.
        """
        if self.p >= 0.5:
            raise ValidationError("Q is singular at p = 1/2; inverse undefined")
        p = self.p
        inv = np.array([[1.0 - p, -p], [-p, 1.0 - p]]) / (1.0 - 2.0 * p)
        v = self.check_vector(v)
        return butterfly_transform(v, [inv] * self.nu)

    def eigenvalues(self) -> np.ndarray:
        """All ``N`` eigenvalues ``(1−2p)^{dH(i,0)}`` (Hadamard order)."""
        return (1.0 - 2.0 * self.p) ** distance_to_master(self.nu).astype(np.float64)

    def spectral_bounds(self) -> tuple[float, float]:
        """``(λ_min, λ_max) = ((1−2p)^ν, 1)`` — Q is positive definite."""
        return ((1.0 - 2.0 * self.p) ** self.nu, 1.0)

    def dense(self, *, max_nu: int = 13) -> np.ndarray:
        """Dense ``Q`` with ``Q[i,j] = QΓ_{dH(i,j)}`` (validation only)."""
        dh = hamming_matrix(self.nu, max_nu=max_nu)
        return self.class_values()[dh]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformMutation(nu={self.nu}, p={self.p})"

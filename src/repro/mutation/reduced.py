"""The reduced (ν+1)×(ν+1) mutation matrix ``QΓ`` (Eq. 14, corrected).

``QΓ[d, k]`` is the probability that one *fixed* sequence from error class
``Γ_d`` mutates into *any* sequence of class ``Γ_k``:

    QΓ[d, k] = Σ_j C(ν−d, k−j) · C(d, j) · p^{k+d−2j} · (1−p)^{ν−(k+d−2j)}

with ``max(0, k+d−ν) <= j <= min(k, d)`` — ``j`` counts the set bits of
the source that *stay* set.  The printed exponent of ``(1−p)`` in the
paper, ``(k+d−2j)−ν``, is a sign typo: the total number of sites is ν and
``k+d−2j`` of them flip, so ``ν−(k+d−2j)`` don't.  (With the printed
exponent the matrix would not even be substochastic; see the unit tests.)

Rows of ``QΓ`` sum to one (a fixed sequence mutates into *some* class
with certainty), i.e. the reduced matrix is **row** stochastic — the
paper's observation that the reduction maps single molecules to class
*representatives*, not to class aggregates.

Implementation
--------------
Row ``d`` is computed as a polynomial-coefficient convolution rather
than the literal triple sum: a source sequence in ``Γ_d`` has ``ν−d``
unset sites, each independently contributing ``(1−p) + p·x`` to the
generating polynomial of the destination distance, and ``d`` set sites
contributing ``p + (1−p)·x`` (the flip-back keeps the site *out* of the
new distance).  Hence

    Σ_k QΓ[d, k]·x^k = ((1−p) + p·x)^{ν−d} · (p + (1−p)·x)^{d},

so each row is one ``numpy.convolve`` of two binomial-expansion
coefficient vectors — ``Θ(ν²)`` per row and C-speed, which keeps even
ν = 1000 (a 2¹⁰⁰⁰-dimensional full problem) in milliseconds.  The
binomial weights are evaluated in log space so very long chains neither
overflow the binomials nor lose the small-``k`` structure to underflow.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.util.binomial import binomial, log_binomial
from repro.util.validation import check_chain_length, check_error_rate

__all__ = ["reduced_mutation_matrix", "reduced_mutation_matrix_reference"]


def _binomial_pmf(n: int, log_success: float, log_fail: float) -> np.ndarray:
    """Coefficients ``C(n, i)·success^i·fail^{n−i}`` for ``i = 0..n``,
    computed in log space (entries below ~1e-300 flush to zero)."""
    if n == 0:
        return np.ones(1)
    i = np.arange(n + 1, dtype=np.float64)
    log_c = np.array([log_binomial(n, int(k)) for k in range(n + 1)])
    logs = log_c + i * log_success + (n - i) * log_fail
    with np.errstate(under="ignore"):
        return np.exp(logs)


def reduced_mutation_matrix(nu: int, p: float) -> np.ndarray:
    """Build ``QΓ ∈ R^{(ν+1)×(ν+1)}`` for chain length ``nu`` and rate ``p``.

    Parameters
    ----------
    nu:
        Chain length; the reduced dimension is ``ν + 1``.  Because the
        reduction is exact, this is valid for *much* longer chains than
        the full solvers (the guard accepts up to ν = 10000).
    p:
        Error rate, ``0 <= p <= 1/2`` (``p = 0`` yields the identity).

    Returns
    -------
    numpy.ndarray
        The row-stochastic reduced mutation matrix.
    """
    nu = check_chain_length(nu, max_nu=10_000)
    p = check_error_rate(p, allow_zero=True)
    if p == 0.0:
        return np.eye(nu + 1)

    log_p = np.log(p)
    log_1mp = np.log1p(-p)
    q = np.empty((nu + 1, nu + 1))
    for d in range(nu + 1):
        # ((1−p) + p·x)^{ν−d}: "success" = contributing to the new
        # distance (a wild site flipping), probability p.
        wild = _binomial_pmf(nu - d, log_p, log_1mp)
        # (p + (1−p)·x)^{d}: a set site *stays* set with 1−p.
        mutant = _binomial_pmf(d, log_1mp, log_p)
        q[d, :] = np.convolve(wild, mutant)
    return q


def reduced_mutation_matrix_reference(nu: int, p: float) -> np.ndarray:
    """Literal triple-sum transcription of (corrected) Eq. (14).

    Executable specification for the tests; ``Θ(ν³)`` Python loops, so
    only suitable for small ν.
    """
    nu = check_chain_length(nu, max_nu=64)
    p = check_error_rate(p, allow_zero=True)
    if p == 0.0:
        return np.eye(nu + 1)
    q = np.zeros((nu + 1, nu + 1))
    for d in range(nu + 1):
        for k in range(nu + 1):
            for j in range(max(0, k + d - nu), min(k, d) + 1):
                flips = k + d - 2 * j
                q[d, k] += (
                    binomial(nu - d, k - j)
                    * binomial(d, j)
                    * p**flips
                    * (1.0 - p) ** (nu - flips)
                )
    return q

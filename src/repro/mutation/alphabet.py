"""Four-letter (RNA) alphabet support — the paper's Sec. 5.2 extension.

The paper closes Sec. 5.2 with: "for Kronecker product-based landscapes
it is relatively easy to extend the quasispecies model beyond a binary
alphabet to the full four element RNA alphabet."  The mechanism is
already in the machinery: encode each nucleotide in two bits and let one
Kronecker *group* of size ``g_i = 2`` carry one nucleotide, with a 4×4
column-stochastic block describing its substitution process.

Nucleotide encoding (two bits per site):

    ==== ==== =========
    bits base chemistry
    ==== ==== =========
    00   A    purine
    01   G    purine
    10   C    pyrimidine
    11   U    pyrimidine
    ==== ==== =========

With this encoding, *transitions* (A↔G, C↔U — the biochemically easy
purine↔purine / pyrimidine↔pyrimidine substitutions) flip only the low
bit of the pair, and *transversions* flip the high bit (or both).  The
:func:`nucleotide_block` below is the Kimura two-parameter model: one
rate ``alpha`` for the transition, ``beta`` for each of the two
transversions.  ``alpha = beta`` recovers the Jukes–Cantor uniform
model, whose Kronecker structure even factors into two independent
binary sites (tested).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.mutation.grouped import GroupedMutation

__all__ = ["nucleotide_block", "rna_mutation", "NUCLEOTIDE_ORDER"]

#: Index → base letter for the two-bit encoding used here.
NUCLEOTIDE_ORDER = ("A", "G", "C", "U")


def nucleotide_block(alpha: float, beta: float | None = None) -> np.ndarray:
    """Kimura two-parameter 4×4 substitution block.

    Parameters
    ----------
    alpha:
        Per-replication transition probability (A↔G, C↔U).
    beta:
        Per-replication probability of *each* transversion (two per
        base); defaults to ``alpha`` (Jukes–Cantor).

    Returns
    -------
    numpy.ndarray
        Column-stochastic 4×4 matrix in the (A, G, C, U) order above.
    """
    if beta is None:
        beta = alpha
    alpha = float(alpha)
    beta = float(beta)
    if alpha < 0 or beta < 0:
        raise ValidationError("substitution rates must be non-negative")
    stay = 1.0 - alpha - 2.0 * beta
    if stay < 0.0:
        raise ValidationError(
            f"alpha + 2*beta must be <= 1 for a stochastic block, got {alpha + 2 * beta}"
        )
    # Rows/cols: A, G, C, U.  Transition partner: A<->G, C<->U.
    return np.array(
        [
            [stay, alpha, beta, beta],
            [alpha, stay, beta, beta],
            [beta, beta, stay, alpha],
            [beta, beta, alpha, stay],
        ]
    )


def rna_mutation(blocks: Sequence[np.ndarray] | None = None, *, length: int | None = None,
                 alpha: float | None = None, beta: float | None = None) -> GroupedMutation:
    """Mutation model for an RNA sequence of ``length`` nucleotides.

    Either pass explicit per-nucleotide 4×4 ``blocks`` (first block =
    5'-most nucleotide = most significant index bits), or ``length``
    together with uniform Kimura rates ``alpha``/``beta``.

    The resulting model has chain length ``ν = 2·length`` bits and plugs
    into every solver in the library unchanged.

    Examples
    --------
    >>> q = rna_mutation(length=3, alpha=0.01, beta=0.002)
    >>> q.nu, q.n
    (6, 64)
    """
    if blocks is None:
        if length is None or alpha is None:
            raise ValidationError("provide either blocks or (length, alpha[, beta])")
        if length < 1:
            raise ValidationError(f"length must be >= 1, got {length}")
        blocks = [nucleotide_block(alpha, beta)] * int(length)
    else:
        blocks = list(blocks)
        if length is not None and len(blocks) != length:
            raise ValidationError(
                f"got {len(blocks)} blocks but length={length}"
            )
        for i, b in enumerate(blocks):
            if np.asarray(b).shape != (4, 4):
                raise ValidationError(f"nucleotide block {i} must be 4x4")
    return GroupedMutation(blocks)

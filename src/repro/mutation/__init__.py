"""Mutation models: the matrix ``Q`` in all the paper's generalities.

* :class:`~repro.mutation.uniform.UniformMutation` — the classic Eigen
  model (Eq. 2 / Eq. 7): one error rate ``p`` for every site.
* :class:`~repro.mutation.persite.PerSiteMutation` — ν independent
  single-point mutation processes, each an arbitrary 2×2
  column-stochastic matrix (Sec. 2.2, first generalization).
* :class:`~repro.mutation.grouped.GroupedMutation` — groups of dependent
  sites, ``Q = ⊗ᵢ Q_{G_i}`` with ``2^{g_i}`` blocks (Eq. 11).

All models share the :class:`~repro.mutation.base.MutationModel` interface:
a fast implicit ``apply`` (the matvec), a dense materialization for
validation at small ν, and structural metadata used by the operators and
solvers.
"""

from repro.mutation.base import MutationModel
from repro.mutation.uniform import UniformMutation
from repro.mutation.persite import PerSiteMutation, site_factor
from repro.mutation.grouped import GroupedMutation
from repro.mutation.spectral import (
    uniform_q_eigenvalues,
    apply_uniform_q_spectral,
    solve_shifted_uniform_q,
    apply_uniform_q_inverse,
)
from repro.mutation.reduced import reduced_mutation_matrix
from repro.mutation.alphabet import nucleotide_block, rna_mutation, NUCLEOTIDE_ORDER

__all__ = [
    "nucleotide_block",
    "rna_mutation",
    "NUCLEOTIDE_ORDER",
    "MutationModel",
    "UniformMutation",
    "PerSiteMutation",
    "site_factor",
    "GroupedMutation",
    "uniform_q_eigenvalues",
    "apply_uniform_q_spectral",
    "solve_shifted_uniform_q",
    "apply_uniform_q_inverse",
    "reduced_mutation_matrix",
]

"""Abstract interface shared by all mutation models.

A *mutation model* describes the column-stochastic matrix ``Q`` whose
entry ``Q[i, j]`` is the probability that a replication of sequence ``j``
produces sequence ``i`` (the convention implied by the ODE system (1):
``dx_i/dt = Σ_j f_j Q_{i,j} x_j − x_i Φ``; for the symmetric uniform model
the two index conventions coincide).

Concrete models must provide a fast implicit matvec and a dense
materialization used only for small-ν validation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.util.validation import check_vector

__all__ = ["MutationModel", "check_column_stochastic"]


def check_column_stochastic(m: np.ndarray, *, atol: float = 1e-12, what: str = "matrix") -> np.ndarray:
    """Validate that ``m`` is square, non-negative, with unit column sums.

    Kronecker products of column-stochastic factors are column-stochastic
    (paper, Sec. 2.2), so validating the factors validates the model.
    """
    arr = np.asarray(m, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{what} must be square, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValidationError(f"{what} must be non-negative to be a stochastic matrix")
    colsums = arr.sum(axis=0)
    if not np.allclose(colsums, 1.0, atol=atol * arr.shape[0] + 1e-12):
        raise ValidationError(
            f"{what} must be column stochastic; column sums deviate by up to "
            f"{np.abs(colsums - 1.0).max():.3e}"
        )
    return arr


class MutationModel(abc.ABC):
    """Common behaviour of all ``Q`` representations.

    Attributes
    ----------
    nu:
        Chain length ``ν``.
    n:
        Problem dimension ``N = 2**ν``.
    """

    nu: int
    n: int

    # ------------------------------------------------------------------ api
    @abc.abstractmethod
    def apply(self, v: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Fast implicit product ``Q · v``.

        ``out`` may alias ``v`` for in-situ operation where the concrete
        model supports it.
        """

    @abc.abstractmethod
    def dense(self) -> np.ndarray:
        """Materialize ``Q`` as a dense ``N × N`` array (validation only).

        Implementations must refuse chain lengths where the dense matrix
        would be unreasonably large.
        """

    @property
    @abc.abstractmethod
    def is_symmetric(self) -> bool:
        """Whether ``Q = Qᵀ`` (true for the uniform model)."""

    # ------------------------------------------------------- shared helpers
    def apply_to_matrix(self, mat: np.ndarray) -> np.ndarray:
        """Apply ``Q`` to each column of ``mat`` (convenience for tests)."""
        mat = np.asarray(mat, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != self.n:
            raise ValidationError(f"expected shape ({self.n}, k), got {mat.shape}")
        out = np.empty_like(mat)
        for col in range(mat.shape[1]):
            out[:, col] = self.apply(mat[:, col].copy())
        return out

    def check_vector(self, v: np.ndarray, name: str = "v") -> np.ndarray:
        """Validate a state vector for this model's dimension."""
        return check_vector(v, self.n, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(nu={self.nu}, n={self.n})"

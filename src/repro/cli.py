"""Command-line interface: ``python -m repro.cli <subcommand>``.

Subcommands
-----------
``solve``
    Solve one quasispecies model and print the biological summary.
``sweep``
    Error-rate sweep on a Hamming landscape (the Fig. 1 computation),
    optionally exported as CSV.
``verify``
    Run the differential verification registry (cross-backend oracles +
    metamorphic invariants) over a parameter grid; exits nonzero on any
    violation and writes a machine-readable JSON report.
``batch``
    Execute a JSON/YAML job manifest through the solver service layer
    (deduplication, content-addressed result cache, fault-tolerant
    worker pool) and write a machine-readable batch report.
``info``
    Version and a map of the available solvers/landscapes.

Examples
--------
::

    python -m repro.cli solve --landscape single-peak --nu 20 --p 0.01
    python -m repro.cli sweep --landscape single-peak --nu 20 \\
        --p-min 0.005 --p-max 0.09 --steps 35 --csv fig1.csv
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._version import __version__
from repro.exceptions import ReproError
from repro.landscapes import (
    LinearLandscape,
    RandomLandscape,
    SinglePeakLandscape,
)
from repro.model import QuasispeciesModel
from repro.model.threshold import sweep_error_rates
from repro.reporting import render_table

__all__ = ["main", "build_parser"]

_LANDSCAPES = ("single-peak", "linear", "random")


def _make_landscape(name: str, nu: int, *, peak: float, floor: float, seed: int):
    if name == "single-peak":
        return SinglePeakLandscape(nu, peak, floor)
    if name == "linear":
        return LinearLandscape(nu, peak, floor)
    if name == "random":
        return RandomLandscape(nu, c=peak, sigma=min(1.0, peak / 2.5), seed=seed)
    raise ReproError(f"unknown landscape {name!r}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast quasispecies solver (SC'11 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one quasispecies model")
    solve.add_argument("--landscape", choices=_LANDSCAPES, default="single-peak")
    solve.add_argument("--nu", type=int, default=12, help="chain length")
    solve.add_argument("--p", type=float, default=0.01, help="error rate")
    solve.add_argument("--peak", type=float, default=2.0, help="master fitness (or c)")
    solve.add_argument("--floor", type=float, default=1.0, help="background fitness")
    solve.add_argument("--seed", type=int, default=0, help="seed for random landscapes")
    solve.add_argument(
        "--method",
        choices=("auto", "power", "dense", "reduced", "lanczos"),
        default="auto",
    )
    solve.add_argument("--tol", type=float, default=1e-12)
    solve.add_argument("--threads", type=int, default=None,
                       help="panel-engine threads for the fmmp butterfly "
                       "(default: REPRO_NUM_THREADS or 1)")
    solve.add_argument("--classes", type=int, default=6, help="error classes to print")
    solve.add_argument("--save", metavar="PATH", help="save the result as .npz")

    sweep = sub.add_parser("sweep", help="error-rate sweep (Fig. 1 computation)")
    sweep.add_argument("--landscape", choices=("single-peak", "linear"), default="single-peak")
    sweep.add_argument("--nu", type=int, default=20)
    sweep.add_argument("--peak", type=float, default=2.0)
    sweep.add_argument("--floor", type=float, default=1.0)
    sweep.add_argument("--p-min", type=float, default=0.0025)
    sweep.add_argument("--p-max", type=float, default=0.09)
    sweep.add_argument("--steps", type=int, default=36)
    sweep.add_argument("--classes", type=int, default=4, help="error classes to print")
    sweep.add_argument("--csv", metavar="PATH", help="write the full sweep as CSV")
    sweep.add_argument("--save", metavar="PATH", help="save the sweep as .npz")

    thr = sub.add_parser(
        "threshold", help="locate the error threshold and mutagenic margin"
    )
    thr.add_argument("--landscape", choices=("single-peak", "linear"), default="single-peak")
    thr.add_argument("--nu", type=int, default=16)
    thr.add_argument("--p", type=float, default=0.01,
                     help="the virus's natural error rate")
    thr.add_argument("--peak", type=float, default=2.0)
    thr.add_argument("--floor", type=float, default=1.0)

    sim = sub.add_parser(
        "simulate", help="finite-population Wright-Fisher dynamics"
    )
    sim.add_argument("--landscape", choices=_LANDSCAPES, default="single-peak")
    sim.add_argument("--nu", type=int, default=12)
    sim.add_argument("--p", type=float, default=0.02)
    sim.add_argument("--peak", type=float, default=2.0)
    sim.add_argument("--floor", type=float, default=1.0)
    sim.add_argument("--population", type=int, default=5_000)
    sim.add_argument("--generations", type=int, default=300)
    sim.add_argument("--burn-in", type=int, default=50)
    sim.add_argument("--seed", type=int, default=0)

    check = sub.add_parser(
        "crosscheck", help="solve via every applicable route and compare"
    )
    check.add_argument("--landscape", choices=_LANDSCAPES, default="random")
    check.add_argument("--nu", type=int, default=9)
    check.add_argument("--p", type=float, default=0.01)
    check.add_argument("--peak", type=float, default=5.0)
    check.add_argument("--floor", type=float, default=1.0)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--accept", type=float, default=1e-7,
                       help="max allowed cross-route disagreement")

    verify = sub.add_parser(
        "verify",
        help="run the differential verification registry over a parameter grid",
    )
    verify.add_argument(
        "--grid",
        choices=("smoke", "small", "full", "random"),
        default="small",
        help="named spec grid (see repro.verify.spec)",
    )
    verify.add_argument("--nu", type=int, default=6, help="pivot chain length")
    verify.add_argument("--seed", type=int, default=0, help="probe/grid seed")
    verify.add_argument("--count", type=int, default=25,
                        help="spec count for --grid random")
    verify.add_argument("--no-solvers", action="store_true",
                        help="skip the solver-oracle tier (products + invariants only)")
    verify.add_argument("--threads", type=int, default=None,
                        help="panel-engine threads for the fmmp-parallel oracle "
                        "(default: REPRO_NUM_THREADS or 1)")
    verify.add_argument("--json", metavar="PATH", default="verify-report.json",
                        help="where to write the JSON report ('-' for stdout)")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress per-spec progress lines")

    batch = sub.add_parser(
        "batch",
        help="execute a JSON/YAML job manifest through the solver service",
    )
    batch.add_argument("manifest", help="path to the job manifest (.json/.yaml)")
    batch.add_argument("--cache-dir", metavar="DIR",
                       help="persistent result-cache directory (warm restarts)")
    batch.add_argument("--workers", type=int, help="worker count")
    batch.add_argument("--pool", choices=("thread", "process", "serial"),
                       dest="pool_kind", help="worker pool kind")
    batch.add_argument("--timeout", type=float, help="per-attempt timeout [s]")
    batch.add_argument("--retries", type=int, help="retries per route")
    batch.add_argument("--threads", type=int, default=None,
                       help="panel-engine threads per worker (workers are "
                       "capped at cpu_count//threads to avoid oversubscription)")
    batch.add_argument(
        "--batched",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="solve operator-sharing job groups in one multi-vector "
        "block power iteration (--no-batched forces scalar solves); "
        "defaults to the manifest's 'batched' option, else on",
    )
    batch.add_argument("--json", metavar="PATH", default="batch-report.json",
                       help="where to write the JSON report ('-' for stdout)")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress the per-job table")

    sub.add_parser("info", help="version and capability overview")
    return parser


def _cmd_solve(args) -> int:
    ls = _make_landscape(args.landscape, args.nu, peak=args.peak, floor=args.floor, seed=args.seed)
    model = QuasispeciesModel(ls, p=args.p)
    result = model.solve(args.method, tol=args.tol, threads=args.threads)
    print(f"landscape   : {args.landscape} (nu={args.nu})")
    print(f"error rate  : p = {args.p}")
    print(f"solver      : {result.method}")
    print(f"lambda_0    : {result.eigenvalue:.10f}")
    if getattr(result, "iterations", 0):
        print(f"iterations  : {result.iterations}")
    gamma = model.class_concentrations(result)
    shown = min(args.classes, len(gamma))
    rows = [[k, f"{gamma[k]:.6e}"] for k in range(shown)]
    print(render_table(["k", "[Gamma_k]"], rows, title="\nerror-class concentrations"))
    if args.save:
        from repro.io import save_result

        save_result(args.save, result)
        print(f"\nsaved result to {args.save}")
    return 0


def _cmd_sweep(args) -> int:
    if args.steps < 2:
        raise ReproError("--steps must be >= 2")
    ls = _make_landscape(args.landscape, args.nu, peak=args.peak, floor=args.floor, seed=0)
    rates = np.linspace(args.p_min, args.p_max, args.steps)
    sweep = sweep_error_rates(ls, rates)
    shown = list(range(min(args.classes, args.nu + 1)))
    rows = []
    for i, p in enumerate(sweep.error_rates):
        rows.append([f"{p:.4f}"] + [f"{sweep.class_concentrations[i, k]:.4e}" for k in shown])
    print(
        render_table(
            ["p"] + [f"[G{k}]" for k in shown],
            rows,
            title=f"error-rate sweep: {args.landscape}, nu={args.nu}",
        )
    )
    if sweep.p_max is not None:
        print(f"\nerror threshold detected at p_max = {sweep.p_max:.4f}")
    else:
        print("\nno error threshold inside the swept range")
    if args.csv:
        from repro.reporting import SeriesBundle

        bundle = SeriesBundle("sweep", x_label="p")
        for k in range(args.nu + 1):
            bundle.add_mapping(f"G{k}", dict(zip(sweep.error_rates, sweep.series(k))))
        bundle.save_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.save:
        from repro.io import save_sweep

        save_sweep(args.save, sweep)
        print(f"saved sweep to {args.save}")
    return 0


def _cmd_threshold(args) -> int:
    from repro.model.antiviral import mutagenesis_margin

    ls = _make_landscape(args.landscape, args.nu, peak=args.peak, floor=args.floor, seed=0)
    a = mutagenesis_margin(ls, args.p)
    print(f"landscape            : {args.landscape} (nu={args.nu})")
    print(f"natural error rate   : p = {a.p_current}")
    print(f"master concentration : {a.master_concentration:.4f}")
    if not a.treatable:
        print("no sharp error threshold on this landscape (smooth transition)")
        return 0
    print(f"error threshold      : p_max = {a.p_max:.4f}")
    if a.margin > 0:
        print(f"mutagenic margin     : +{a.margin:.4f} ({a.fold_increase:.2f}x fold increase)")
    else:
        print("already past the threshold (population delocalized)")
    return 0


def _cmd_simulate(args) -> int:
    from repro.model.concentrations import class_concentrations
    from repro.mutation import UniformMutation
    from repro.population import WrightFisher

    if args.population < 1 or args.generations < 1:
        raise ReproError("--population and --generations must be >= 1")
    ls = _make_landscape(args.landscape, args.nu, peak=args.peak, floor=args.floor, seed=args.seed)
    mut = UniformMutation(args.nu, args.p)
    wf = WrightFisher(mut, ls, args.population, seed=args.seed)
    stats = wf.run(args.generations, burn_in=args.burn_in)
    model = QuasispeciesModel(ls, mut)
    try:
        det = model.solve(tol=1e-11)
        det_gamma = (
            det.concentrations
            if det.concentrations.shape[0] == args.nu + 1
            else class_concentrations(det.concentrations, args.nu)
        )
    except ReproError:
        det_gamma = None
    print(f"Wright-Fisher: {args.landscape}, nu={args.nu}, p={args.p}, "
          f"M={args.population}, {args.generations} generations "
          f"(+{args.burn_in} burn-in)")
    print(f"mean fitness          : {stats.mean_fitness:.6f}")
    if stats.master_extinction_generation is not None:
        print(f"master extinct at gen : {stats.master_extinction_generation}")
    else:
        print("master persisted")
    rows = []
    for k in range(min(6, args.nu + 1)):
        row = [k, f"{stats.mean_class_concentrations[k]:.5f}"]
        if det_gamma is not None:
            row.append(f"{det_gamma[k]:.5f}")
        rows.append(row)
    headers = ["k", "mean [Gamma_k]"] + (["deterministic"] if det_gamma is not None else [])
    print(render_table(headers, rows, title="\ntime-averaged class concentrations"))
    return 0


def _cmd_crosscheck(args) -> int:
    from repro.validation import crosscheck

    ls = _make_landscape(args.landscape, args.nu, peak=args.peak, floor=args.floor, seed=args.seed)
    report = crosscheck(ls, p=args.p, accept=args.accept)
    print(
        render_table(
            ["route", "lambda_0", "iterations", "status"],
            report.summary_rows(),
            title=f"cross-check: {args.landscape}, nu={args.nu}, p={args.p}",
        )
    )
    print(f"\nmax eigenvalue spread     : {report.max_eigenvalue_spread:.3e}")
    print(f"max concentration spread  : {report.max_concentration_spread:.3e}")
    print(f"consistent (<= {report.tolerance:g})  : {report.consistent}")
    return 0 if report.consistent else 1


def _cmd_verify(args) -> int:
    import json as _json

    from repro.verify import run_verification

    def progress(done: int, total: int, rep) -> None:
        if args.quiet:
            return
        status = "ok" if rep.passed else f"{len(rep.failures)} FAILED"
        print(f"[{done:>3}/{total}] {rep.spec.label():<60} {status}")

    report = run_verification(
        args.grid,
        nu=args.nu,
        seed=args.seed,
        count=args.count,
        solvers=not args.no_solvers,
        threads=args.threads,
        progress=progress,
    )
    if args.json == "-":
        print(_json.dumps(report.to_dict(), indent=2))
    elif args.json:
        from repro.io import save_verification_report

        save_verification_report(args.json, report)
        if not args.quiet:
            print(f"wrote {args.json}")

    print(f"\ngrid={report.grid} nu={report.nu} seed={report.seed}: "
          f"{report.total_checks} checks over {len(report.spec_reports)} specs")
    if report.passed:
        print("all invariants and oracle pairs held")
        return 0
    print(f"{report.total_failures} check(s) FAILED; violated:")
    for name in report.violated_names():
        print(f"  - {name}")
    for v in report.violations()[:20]:
        print(f"    {v.describe()}")
    return 1


def _cmd_batch(args) -> int:
    import json as _json

    from repro.service import run_manifest

    report = run_manifest(
        args.manifest,
        cache_dir=args.cache_dir,
        workers=args.workers,
        kind=args.pool_kind,
        timeout=args.timeout,
        retries=args.retries,
        batched=args.batched,
        threads=args.threads,
    )
    if not args.quiet:
        rows = []
        for i in range(report.n_jobs):
            job, result, tele = report.entry(i)
            rows.append([
                i,
                job.label(),
                tele.cache if tele.status == "cached" else tele.status,
                tele.route,
                f"{result.eigenvalue:.8f}" if result is not None else "-",
                f"{tele.solve_seconds * 1e3:.1f}" if tele.status == "solved" else "-",
            ])
        print(
            render_table(
                ["#", "job", "status", "route", "lambda_0", "ms"],
                rows,
                title=f"batch: {args.manifest}",
            )
        )
    if args.json == "-":
        print(_json.dumps(report.to_dict(), indent=2))
    elif args.json:
        from repro.io import save_batch_report

        save_batch_report(args.json, report)
        if not args.quiet:
            print(f"wrote {args.json}")

    if not args.quiet:
        plan = report.plan_stats
        print(
            f"\n{plan['jobs']} job(s): {plan['unique_jobs']} unique "
            f"({plan['duplicates']} duplicate(s)), {report.n_cached} cache hit(s), "
            f"{report.n_solved} solved, {report.n_fallbacks} via fallback, "
            f"{report.n_failed} failed [{report.wall_seconds:.2f}s]"
        )
        failures = report.failures()
        if failures:
            print("failures encountered (recovered unless the job is marked failed):")
            for msg in failures[:20]:
                print(f"  - {msg}")
    return 0 if report.passed else 1


def _cmd_info() -> int:
    print(f"repro {__version__} — fast quasispecies solver (SC'11 reproduction)")
    print("\nsolvers  : power (Fmmp/Xmvp/Smvp, optional shift), dense, reduced (nu+1),")
    print("           kronecker (decoupled), lanczos, arnoldi, shift-invert/RQI (Q),")
    print("           CG inverse iteration (W), Wright-Fisher finite populations")
    print("landscapes: single-peak, linear, Hamming phi, random (Eq. 13), Kronecker")
    print("mutation  : uniform, per-site, grouped (Eq. 11), 4-letter RNA (Kimura)")
    print("device    : simulated OpenCL-style runtime (Tesla C2050 / i5-750 profiles)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "crosscheck":
            return _cmd_crosscheck(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "threshold":
            return _cmd_threshold(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "batch":
            return _cmd_batch(args)
        return _cmd_info()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Arnoldi iteration for non-symmetric operators.

The paper's Sec. 3 mentions "Lanczos/Arnoldi iterations" as the
higher-storage alternatives to power iteration.  Lanczos
(:mod:`repro.solvers.lanczos`) covers the symmetric form; the
generalized mutation processes of Sec. 2.2 can make ``Q`` — and with it
every form of ``W`` — non-symmetric, where Arnoldi is the appropriate
Krylov method.  Same trade-off as Lanczos: far fewer matvecs than power
iteration at the price of storing the full Krylov basis.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.operators.base import ImplicitOperator
from repro.operators.dense_w import convert_eigenvector
from repro.solvers.result import IterationRecord, SolveResult

__all__ = ["Arnoldi"]


class Arnoldi:
    """Arnoldi iteration extracting the dominant (rightmost) Ritz pair.

    Parameters
    ----------
    operator:
        Any implicit operator (symmetry not required).
    tol:
        Threshold on the Ritz residual estimate ``|h_{m+1,m} · y_m|``.
    max_basis:
        Maximum Krylov basis size (memory: ``max_basis`` vectors of
        length ``N`` plus the small Hessenberg matrix).
    """

    def __init__(self, operator: ImplicitOperator, *, tol: float = 1e-12, max_basis: int = 200):
        if max_basis < 2:
            raise ValidationError("max_basis must be >= 2")
        self.operator = operator
        self.tol = float(tol)
        self.max_basis = int(max_basis)

    def solve(
        self,
        start: np.ndarray,
        *,
        landscape=None,
        form: str = "right",
        raise_on_fail: bool = True,
    ) -> SolveResult:
        """Grow the basis until the dominant Ritz pair converges."""
        op = self.operator
        v = np.asarray(start, dtype=np.float64).copy()
        if v.shape != (op.n,):
            raise ValidationError(f"start vector must have shape ({op.n},), got {v.shape}")
        nrm = np.linalg.norm(v)
        if nrm == 0.0:
            raise ValidationError("start vector must be nonzero")
        v /= nrm

        basis = [v]
        h = np.zeros((self.max_basis + 1, self.max_basis))
        history: list[IterationRecord] = []
        lam = 0.0
        residual = np.inf
        ritz = v

        for j in range(self.max_basis):
            w = op.matvec(basis[j])
            # Modified Gram-Schmidt with one re-orthogonalization pass.
            for _ in range(2):
                for i, b in enumerate(basis):
                    coef = float(b @ w)
                    h[i, j] += coef
                    w -= coef * b
            beta = float(np.linalg.norm(w))
            h[j + 1, j] = beta

            # Ritz extraction: rightmost eigenvalue of H_j.
            hj = h[: j + 1, : j + 1]
            evals, evecs = np.linalg.eig(hj)
            k = int(np.argmax(evals.real))
            lam_c = evals[k]
            y = evecs[:, k]
            if abs(lam_c.imag) > 1e-8 * max(1.0, abs(lam_c.real)):
                # A complex rightmost pair cannot be the Perron root of
                # W; keep expanding, it separates out as j grows.
                lam = float(lam_c.real)
                residual = np.inf
            else:
                lam = float(lam_c.real)
                y = y.real
                ynorm = np.linalg.norm(y)
                if ynorm > 0:
                    y = y / ynorm
                residual = abs(beta * y[-1])
                ritz = np.zeros(op.n)
                for coef, b in zip(y, basis):
                    ritz += coef * b
            history.append(IterationRecord(j + 1, lam, residual))
            if residual < self.tol or beta < 1e-300:
                break
            basis.append(w / beta)

        converged = residual < self.tol
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"Arnoldi did not reach tol={self.tol} with basis {self.max_basis}",
                iterations=len(history),
                residual=residual,
            )

        ritz = np.abs(ritz)
        total = ritz.sum()
        if total == 0.0:
            raise ConvergenceError("Arnoldi produced a zero Ritz vector", iterations=len(history))
        ritz /= total
        conc = convert_eigenvector(ritz, landscape, form) if landscape is not None else ritz
        return SolveResult(
            eigenvalue=lam,
            eigenvector=ritz,
            concentrations=conc,
            iterations=len(history),
            residual=residual,
            converged=converged,
            method=f"Arnoldi({type(op).__name__})",
            history=history,
        )

"""Decoupled solver for Kronecker landscapes (Sec. 5.2).

When both ``Q`` and ``F`` factor over the same bit groups,

    W = Q·F = (⊗ᵢ Qᵢ)·(⊗ᵢ Fᵢ) = ⊗ᵢ (Qᵢ·Fᵢ)

by the mixed product formula — the eigenproblem decouples into ``g``
independent subproblems of size ``2^{g_i}``.  The dominant eigenvalue is
the product of the factors' dominant eigenvalues and the Perron vector is
the Kronecker product of the factors' Perron vectors (spectral radius is
multiplicative over ⊗ and the product of positive vectors is positive).

The full eigenvector of a ν = 100 problem can never be materialized; the
:class:`KroneckerEigenvector` therefore answers queries *implicitly*:

* random access ``x[i]`` in ``O(g)``,
* cumulative error-class concentrations ``[Γ_k]`` by a convolution DP
  over the factors (``O(ν²)`` total),
* per-class min/max concentrations — the quantity the paper proposes for
  detecting the error threshold without the full vector — by the same DP
  with (min, ×) / (max, ×) algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import IncompatibleStructureError, ValidationError
from repro.landscapes.custom import TabulatedLandscape
from repro.landscapes.kronecker import KroneckerLandscape
from repro.mutation.base import MutationModel
from repro.mutation.grouped import GroupedMutation
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.operators.fmmp import Fmmp
from repro.solvers.dense import dense_solve
from repro.solvers.power import PowerIteration
from repro.solvers.result import SolveResult
from repro.transforms.kronecker import kron_vector

__all__ = ["KroneckerSolver", "KroneckerEigenvector", "KroneckerSolveResult"]

#: subproblems up to this many bits are solved densely (symmetric eigh on
#: the F^½QF^½ form where possible); larger symmetric ones use Lanczos —
#: random sub-landscapes can have nearly degenerate dominant pairs, which
#: stall plain power iteration but not a Krylov method.
_DENSE_BITS = 10


class KroneckerEigenvector:
    """Implicit Perron vector ``x = x_1 ⊗ … ⊗ x_g`` (all factors positive,
    each normalized to unit 1-norm, so the full vector sums to one)."""

    def __init__(self, factors: list[np.ndarray]):
        if not factors:
            raise ValidationError("at least one factor is required")
        self._factors = []
        self._bits = []
        for idx, f in enumerate(factors):
            arr = np.asarray(f, dtype=np.float64).reshape(-1)
            if np.any(arr < 0.0):
                raise ValidationError(f"factor {idx} of a Perron vector must be non-negative")
            total = arr.sum()
            if total <= 0.0:
                raise ValidationError(f"factor {idx} has zero mass")
            arr = arr / total
            dim = arr.shape[0]
            if dim & (dim - 1):
                raise ValidationError(f"factor {idx} length must be a power of two")
            self._factors.append(arr)
            self._bits.append(dim.bit_length() - 1)
        self.nu = sum(self._bits)
        self.n = 1 << self.nu

    # -------------------------------------------------------------- access
    @property
    def factors(self) -> list[np.ndarray]:
        return [f.copy() for f in self._factors]

    @property
    def group_sizes(self) -> tuple[int, ...]:
        return tuple(self._bits)

    def value_at(self, i: int) -> float:
        """``x_i`` in ``O(g)`` — product of one entry per factor."""
        if not 0 <= i < self.n:
            raise ValidationError(f"index {i} out of range [0, {self.n})")
        out = 1.0
        shift = self.nu
        for f, bits in zip(self._factors, self._bits):
            shift -= bits
            out *= float(f[(i >> shift) & ((1 << bits) - 1)])
        return out

    def materialize(self, *, max_nu: int = 24) -> np.ndarray:
        """The explicit length-``N`` vector (guarded)."""
        if self.nu > max_nu:
            raise ValidationError(
                f"refusing to materialize 2**{self.nu} entries; use the implicit queries"
            )
        return kron_vector(self._factors)

    # ------------------------------------------------- error-class queries
    def _factor_class_reduce(self, reducer) -> list[np.ndarray]:
        """Per-factor per-class reduction (sum/min/max over each Γ_c)."""
        out = []
        for f, bits in zip(self._factors, self._bits):
            labels = distance_to_master(bits) if bits >= 1 else np.zeros(1, dtype=np.int64)
            vals = np.empty(bits + 1)
            for c in range(bits + 1):
                vals[c] = reducer(f[labels == c])
            out.append(vals)
        return out

    def class_concentrations(self) -> np.ndarray:
        """Cumulative ``[Γ_k] = Σ_{popcount(i)=k} x_i`` for ``k = 0..ν``.

        Convolution DP: the distance of ``i`` to the master is the sum of
        the per-group distances, and ``x_i`` is the product of per-group
        entries, so the class sums of the full vector are the convolution
        of the per-factor class sums.
        """
        per_factor = self._factor_class_reduce(np.sum)
        acc = per_factor[0]
        for nxt in per_factor[1:]:
            acc = np.convolve(acc, nxt)
        return acc

    def class_extrema(self) -> tuple[np.ndarray, np.ndarray]:
        """(min, max) concentration of a *single sequence* within each Γ_k.

        The paper's proposed implicit diagnostic: enough to decide
        whether an error threshold occurs without ever forming the
        vector.  DP with (min, ×) / (max, ×) semirings over the same
        convolution structure as :meth:`class_concentrations`.
        """
        mins = self._factor_class_reduce(np.min)
        maxs = self._factor_class_reduce(np.max)

        def semiring_convolve(a: np.ndarray, b: np.ndarray, pick) -> np.ndarray:
            out = np.full(len(a) + len(b) - 1, np.nan)
            for ka in range(len(a)):
                for kb in range(len(b)):
                    cand = a[ka] * b[kb]
                    k = ka + kb
                    if np.isnan(out[k]) or pick(cand, out[k]) == cand:
                        out[k] = cand
            return out

        lo = mins[0]
        hi = maxs[0]
        for nxt_lo, nxt_hi in zip(mins[1:], maxs[1:]):
            lo = semiring_convolve(lo, nxt_lo, min)
            hi = semiring_convolve(hi, nxt_hi, max)
        return lo, hi


@dataclass
class KroneckerSolveResult:
    """Result of the decoupled solve.

    Attributes
    ----------
    eigenvalue:
        λ₀ of the full ``W`` (product of subproblem eigenvalues).
    eigenvector:
        The implicit :class:`KroneckerEigenvector`.
    sub_results:
        The per-group :class:`SolveResult` objects.
    """

    eigenvalue: float
    eigenvector: KroneckerEigenvector
    sub_results: list[SolveResult] = field(repr=False, default_factory=list)

    @property
    def converged(self) -> bool:
        return all(r.converged for r in self.sub_results)


class KroneckerSolver:
    """Decoupled quasispecies solver for compatible ``Q``/``F`` structure.

    Parameters
    ----------
    mutation:
        One of

        * :class:`UniformMutation` — always compatible (any grouping of
          a ⊗ of identical 2×2 factors is again a ⊗ of uniform blocks),
        * :class:`PerSiteMutation` — compatible with any grouping (sites
          regroup freely),
        * :class:`GroupedMutation` — group sizes must equal the
          landscape's exactly (the paper's "Q and F fit together"
          condition via the mixed product formula).
    landscape:
        A :class:`KroneckerLandscape`.
    tol:
        Tolerance for subproblems solved iteratively (large groups).
    """

    def __init__(self, mutation: MutationModel, landscape: KroneckerLandscape, *, tol: float = 1e-13):
        if not isinstance(landscape, KroneckerLandscape):
            raise ValidationError("KroneckerSolver requires a KroneckerLandscape")
        if mutation.nu != landscape.nu:
            raise ValidationError(
                f"mutation (nu={mutation.nu}) and landscape (nu={landscape.nu}) disagree"
            )
        self.landscape = landscape
        self.tol = float(tol)
        self._sub_mutations = self._split_mutation(mutation, landscape.group_sizes)
        self._sub_landscapes = [TabulatedLandscape(d) for d in landscape.kron_diagonals]

    @staticmethod
    def _split_mutation(mutation: MutationModel, groups: tuple[int, ...]) -> list[MutationModel]:
        """Refactor ``Q`` over the landscape's bit groups (paper order)."""
        if isinstance(mutation, UniformMutation):
            return [UniformMutation(g, mutation.p) for g in groups]
        if isinstance(mutation, PerSiteMutation):
            # Site s is bit s (LSB first); landscape group 0 holds the MSB
            # bits.  Collect each group's site factors in LSB-first order.
            factors = mutation.factors_per_bit()
            subs: list[MutationModel] = []
            hi = mutation.nu
            for g in groups:
                lo = hi - g
                subs.append(PerSiteMutation(factors[lo:hi]))
                hi = lo
            return subs
        if isinstance(mutation, GroupedMutation):
            if mutation.group_sizes != tuple(groups):
                raise IncompatibleStructureError(
                    f"mutation groups {mutation.group_sizes} do not match "
                    f"landscape groups {tuple(groups)}; the mixed product "
                    "formula does not apply"
                )
            return [GroupedMutation([b]) for b in mutation.blocks()]
        raise ValidationError(f"unsupported mutation model {type(mutation).__name__}")

    # --------------------------------------------------------------- solve
    def solve(self) -> KroneckerSolveResult:
        """Solve every subproblem independently and combine implicitly.

        Small groups (≤ 10 bits) use the dense LAPACK path; larger
        groups run ``Pi(Fmmp)`` — each subproblem is an ordinary
        quasispecies problem of chain length ``g_i``.
        """
        sub_results: list[SolveResult] = []
        lam = 1.0
        vec_factors: list[np.ndarray] = []
        for sub_q, sub_f in zip(self._sub_mutations, self._sub_landscapes):
            symmetric = sub_q.is_symmetric
            if sub_q.nu <= _DENSE_BITS:
                form = "symmetric" if symmetric else "right"
                res = dense_solve(sub_q, sub_f, form=form)
            elif symmetric:
                from repro.solvers.lanczos import Lanczos

                op = Fmmp(sub_q, sub_f, form="symmetric")
                res = Lanczos(op, tol=self.tol, max_basis=400).solve(
                    np.sqrt(sub_f.values()), landscape=sub_f, form="symmetric"
                )
            else:
                op = Fmmp(sub_q, sub_f, form="right")
                res = PowerIteration(op, tol=self.tol).solve(
                    sub_f.start_vector(), landscape=sub_f, form="right"
                )
            sub_results.append(res)
            lam *= res.eigenvalue
            vec_factors.append(res.concentrations)
        return KroneckerSolveResult(
            eigenvalue=lam,
            eigenvector=KroneckerEigenvector(vec_factors),
            sub_results=sub_results,
        )

"""The (shifted) power iteration — the paper's solver of choice (Sec. 3).

Why power iteration: ``W`` is positive definite (Sec. 2) and
Perron–Frobenius applies, so ``λ₀ > λ₁ ≥ … ≥ λ_{N−1} > 0`` and
convergence to the Perron vector is guaranteed.  Among Krylov methods it
has the smallest possible memory footprint — one extra vector — which is
the binding constraint once ``N = 2^ν`` vectors barely fit in memory.

Paper-faithful details implemented here:

* start vector ``s = diag(F)/‖diag(F)‖₁`` (the landscape itself),
* stopping criterion: the residual ``R(λ̃, x̃) = ‖W·x̃ − λ̃·x̃‖₂``,
* optional conservative shift ``μ = (1−2p)^ν f_min`` (via
  :class:`~repro.operators.shifted.ShiftedOperator`), which improves the
  rate from ``λ₁/λ₀`` to ``(λ₁−μ)/(λ₀−μ)`` and cuts iteration counts by
  ≳10 % on random landscapes (reproduced in the shift-ablation bench).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.operators.base import ImplicitOperator
from repro.operators.dense_w import convert_eigenvector
from repro.operators.shifted import ShiftedOperator
from repro.solvers.result import IterationRecord, SolveResult

__all__ = ["PowerIteration", "BlockPowerIteration", "BlockSolveResult"]


class PowerIteration:
    """Power iteration on any implicit operator.

    Parameters
    ----------
    operator:
        The implicit product for ``W`` (any form); if a
        :class:`~repro.operators.shifted.ShiftedOperator` is passed, the
        reported eigenvalue is automatically un-shifted.
    tol:
        Residual threshold ``τ`` on ``‖Wx − λx‖₂`` (paper: 1e−15 for the
        exact products, 1e−10 for Xmvp(5)).
    max_iterations:
        Safety cap; exceeded ⇒ :class:`ConvergenceError` unless
        ``raise_on_fail=False``.
    record_history:
        Keep a per-iteration (λ, residual) trace.
    reducer:
        Optional :class:`~repro.transforms.parallel.PanelReducer` used for
        the iteration's reductions (1-norm estimate and residual).
        Defaults to the operator's own ``panel_reducer`` attribute when it
        has one (set by ``Fmmp(threads=...)``), so threaded operators get
        panel-ordered, run-to-run deterministic reductions automatically;
        serial operators keep the plain NumPy reductions.

    Notes
    -----
    Iterates are normalized in the **1-norm** — they are relative
    concentrations, and this keeps the Rayleigh-like eigenvalue estimate
    ``λ̃ = ‖W·x‖₁ / ‖x‖₁`` exact in the limit for the positive Perron
    vector (for positive ``x`` and non-negative ``W``, ``1ᵀWx = λ 1ᵀx``
    at the fixed point).  The residual is still measured in the 2-norm,
    as in the paper.
    """

    def __init__(
        self,
        operator: ImplicitOperator,
        *,
        tol: float = 1e-12,
        max_iterations: int = 100_000,
        record_history: bool = False,
        reducer=None,
    ):
        if tol <= 0.0:
            raise ValidationError(f"tol must be positive, got {tol}")
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        self.operator = operator
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.record_history = bool(record_history)
        self.reducer = reducer if reducer is not None else getattr(
            operator, "panel_reducer", None
        )

    # --------------------------------------------------------------- solve
    def solve(
        self,
        start: np.ndarray,
        *,
        landscape=None,
        form: str = "right",
        raise_on_fail: bool = True,
        method_name: str | None = None,
    ) -> SolveResult:
        """Run the iteration from ``start``.

        Parameters
        ----------
        start:
            Starting vector (e.g. ``landscape.start_vector()``); must
            have positive mass.
        landscape, form:
            When given, the converged eigenvector is also converted to
            physical concentrations ``x_R`` (see
            :func:`repro.operators.dense_w.convert_eigenvector`);
            otherwise the working-form vector doubles as concentrations.
        raise_on_fail:
            Raise :class:`ConvergenceError` when the tolerance is not
            met within ``max_iterations`` (default), else return the
            best iterate with ``converged=False``.
        method_name:
            Label stored in the result (defaults to
            ``Pi(<operator class>)``).
        """
        op = self.operator
        mu = op.mu if isinstance(op, ShiftedOperator) else 0.0
        x = np.asarray(start, dtype=np.float64).copy()
        if x.shape != (op.n,):
            raise ValidationError(f"start vector must have shape ({op.n},), got {x.shape}")
        mass = np.abs(x).sum()
        if mass <= 0.0:
            raise ValidationError("start vector must have nonzero mass")
        x /= mass

        history: list[IterationRecord] = []
        lam = 0.0
        residual = np.inf
        iterations = 0
        red = self.reducer
        for iterations in range(1, self.max_iterations + 1):
            y = op.matvec(x)
            # 1-norm estimate; y > 0 near the fixed point.  With a panel
            # reducer the sum is panel-partitioned and combined in fixed
            # panel order — byte-identical across runs and thread counts.
            lam = red.abs_sum(y) if red is not None else float(np.abs(y).sum())
            if lam <= 0.0:
                raise ConvergenceError(
                    "iterate collapsed to zero — W is not acting as a positive operator",
                    iterations=iterations,
                    residual=float("nan"),
                )
            y /= lam
            # Residual of the *normalized* pair: ‖W x − λ x‖₂ = λ‖y − x‖₂.
            if red is not None:
                residual = lam * red.diff_norm(y, x)
            else:
                residual = lam * float(np.linalg.norm(y - x))
            x = y
            if self.record_history:
                history.append(IterationRecord(iterations, lam + mu, residual))
            if residual < self.tol:
                break
        else:  # pragma: no cover - loop always breaks or exhausts
            pass

        converged = residual < self.tol
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"power iteration did not reach tol={self.tol} in "
                f"{self.max_iterations} iterations (residual={residual:.3e})",
                iterations=iterations,
                residual=residual,
            )

        eigenvalue = lam + mu  # un-shift
        x = np.abs(x)  # Perron vector: clean up −0.0 / tiny negative noise
        x /= x.sum()
        if landscape is not None:
            concentrations = convert_eigenvector(x, landscape, form)
        else:
            concentrations = x
        name = method_name or f"Pi({type(op).__name__})"
        return SolveResult(
            eigenvalue=eigenvalue,
            eigenvector=x,
            concentrations=concentrations,
            iterations=iterations,
            residual=residual,
            converged=converged,
            method=name,
            history=history,
        )


@dataclass
class BlockSolveResult:
    """Outcome of a lock-step block power iteration.

    Attributes
    ----------
    columns:
        Per-column :class:`~repro.solvers.result.SolveResult`\\ s, in the
        original column order (deflated columns keep the iteration count
        at which they converged).
    sweeps:
        Number of fused ``matmat`` sweeps executed — the quantity the
        batched route amortizes (``sweeps`` equals the iteration count
        of the *slowest* column).
    """

    columns: list[SolveResult]
    sweeps: int

    @property
    def converged(self) -> bool:
        return all(r.converged for r in self.columns)

    @property
    def eigenvalues(self) -> np.ndarray:
        return np.array([r.eigenvalue for r in self.columns])

    def __len__(self) -> int:
        return len(self.columns)

    def __getitem__(self, j: int) -> SolveResult:
        return self.columns[j]

    def __iter__(self):
        return iter(self.columns)


class BlockPowerIteration:
    """Lock-step power iteration on ``B`` columns sharing one operator.

    All columns ride the *same* fused butterfly stream
    (:meth:`~repro.operators.batched.BatchedFmmp.matmat`): one sweep
    advances every still-active column by one power step.  Each column
    keeps its own eigenvalue estimate, residual, and optional shift
    ``μ_j`` (the per-landscape conservative shift of Sec. 3); columns
    that reach the tolerance are **deflated** — dropped from the working
    block so later sweeps only move the unconverged columns' memory.

    Parameters
    ----------
    operator:
        A :class:`~repro.operators.batched.BatchedFmmp` (per-column or
        shared landscapes) or any :class:`ImplicitOperator` whose
        :meth:`matmat` applies the block product.  Per-column operators
        are driven through their ``columns=`` selection so deflation
        composes with per-column diagonals.
    shifts:
        Optional per-column shift ``μ_j``: scalar (shared) or length-B
        sequence.  The iteration runs on ``W_j − μ_j I`` and reports the
        un-shifted eigenvalue, exactly like wrapping each column in a
        :class:`~repro.operators.shifted.ShiftedOperator`.
    tol, max_iterations, record_history:
        As for :class:`PowerIteration`; the residual criterion
        ``‖W_j x_j − λ_j x_j‖₂ < τ`` is applied per column.
    reducer:
        Optional :class:`~repro.transforms.parallel.PanelReducer`; the
        per-column 1-norms and residuals become panel-partitioned partial
        sums combined in fixed panel order (axis-0 reductions per column).
        Defaults to the operator's ``panel_reducer`` attribute (set by
        ``BatchedFmmp(threads=...)``).
    """

    def __init__(
        self,
        operator: ImplicitOperator,
        *,
        shifts: float | Sequence[float] | np.ndarray | None = None,
        tol: float = 1e-12,
        max_iterations: int = 100_000,
        record_history: bool = False,
        reducer=None,
    ):
        if tol <= 0.0:
            raise ValidationError(f"tol must be positive, got {tol}")
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        self.operator = operator
        self.shifts = shifts
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.record_history = bool(record_history)
        self.reducer = reducer if reducer is not None else getattr(
            operator, "panel_reducer", None
        )

    # ------------------------------------------------------------ plumbing
    def _resolve_batch(self, starts: np.ndarray | None) -> int:
        op = self.operator
        if starts is not None:
            arr = np.asarray(starts)
            if arr.ndim != 2 or arr.shape[0] != op.n:
                raise ValidationError(
                    f"starts must be an ({op.n}, B) block, got shape {arr.shape}"
                )
            b = arr.shape[1]
        elif getattr(op, "per_column", False):
            b = op.batch
        else:
            raise ValidationError(
                "starts is required unless the operator carries per-column landscapes"
            )
        if b < 1:
            raise ValidationError("block power iteration needs at least one column")
        if getattr(op, "per_column", False) and b != op.batch:
            raise ValidationError(
                f"starts has {b} columns but the operator has {op.batch} landscape columns"
            )
        return b

    def _resolve_shifts(self, b: int) -> np.ndarray:
        if self.shifts is None:
            return np.zeros(b)
        mu = np.atleast_1d(np.asarray(self.shifts, dtype=np.float64))
        if mu.shape == (1,):
            mu = np.full(b, mu[0])
        if mu.shape != (b,):
            raise ValidationError(f"shifts must be scalar or length {b}, got shape {mu.shape}")
        return mu

    def _resolve_landscapes(self, landscapes, b: int):
        if landscapes is None:
            op_lands = getattr(self.operator, "landscapes", None)
            if op_lands is not None and getattr(self.operator, "per_column", False):
                return list(op_lands)
            if op_lands is not None and len(op_lands) == 1:
                return [op_lands[0]] * b
            return [None] * b
        lands = list(landscapes)
        if len(lands) == 1:
            lands = lands * b
        if len(lands) != b:
            raise ValidationError(f"expected {b} landscapes, got {len(lands)}")
        return lands

    # --------------------------------------------------------------- solve
    def solve(
        self,
        starts: np.ndarray | None = None,
        *,
        landscapes=None,
        form: str | None = None,
        raise_on_fail: bool = True,
        method_name: str | None = None,
    ) -> BlockSolveResult:
        """Run the lock-step iteration.

        Parameters
        ----------
        starts:
            ``(n, B)`` block of start vectors (columns with positive
            mass).  Defaults to each landscape's
            :meth:`~repro.landscapes.base.FitnessLandscape.start_vector`
            when the operator carries per-column landscapes.
        landscapes:
            Per-column landscapes for the concentration conversion;
            defaults to the operator's own, when it has them.
        form:
            Eigenproblem form for the conversion (defaults to the
            operator's ``form`` attribute, else ``"right"``).
        raise_on_fail:
            Raise :class:`ConvergenceError` if any column misses the
            tolerance within ``max_iterations`` (default); otherwise
            the stragglers are returned with ``converged=False``.
        """
        op = self.operator
        n = op.n
        b = self._resolve_batch(starts)
        mu = self._resolve_shifts(b)
        lands = self._resolve_landscapes(landscapes, b)
        if form is None:
            form = getattr(op, "form", "right")
        per_column = bool(getattr(op, "per_column", False))

        if starts is None:
            cols = []
            for j, land in enumerate(lands):
                if land is None:
                    raise ValidationError(f"no start vector and no landscape for column {j}")
                cols.append(land.start_vector())
            x = np.stack(cols, axis=1).astype(np.float64)
        else:
            x = np.ascontiguousarray(starts, dtype=np.float64).copy()
        mass = np.abs(x).sum(axis=0)
        if np.any(mass <= 0.0):
            bad = int(np.argmin(mass))
            raise ValidationError(f"start column {bad} has nonzero mass required, got {mass[bad]}")
        x /= mass[None, :]

        name = method_name or f"BPi({type(op).__name__})"
        active = list(range(b))
        lam = np.zeros(b)
        residual = np.full(b, np.inf)
        iterations = np.zeros(b, dtype=int)
        final = [None] * b
        histories: list[list[IterationRecord]] = [[] for _ in range(b)]
        sweeps = 0

        red = self.reducer
        while active and sweeps < self.max_iterations:
            sweeps += 1
            kwargs = {"columns": active} if per_column else {}
            y = op.matmat(x, **kwargs)
            mu_act = mu[active]
            if np.any(mu_act != 0.0):
                y = y - x * mu_act[None, :]
            # Panel-ordered per-column 1-norms when a reducer is present
            # (byte-identical across runs and thread counts at fixed R).
            lam_act = red.abs_sum(y) if red is not None else np.abs(y).sum(axis=0)
            if np.any(lam_act <= 0.0):
                bad = active[int(np.argmin(lam_act))]
                raise ConvergenceError(
                    f"column {bad} collapsed to zero — W is not acting as a "
                    "positive operator",
                    iterations=sweeps,
                    residual=float("nan"),
                )
            y = y / lam_act[None, :]
            if red is not None:
                res_act = lam_act * red.diff_norm(y, x)
            else:
                res_act = lam_act * np.linalg.norm(y - x, axis=0)

            if self.record_history:
                for k, j in enumerate(active):
                    histories[j].append(
                        IterationRecord(sweeps, float(lam_act[k] + mu[j]), float(res_act[k]))
                    )

            done = [k for k in range(len(active)) if res_act[k] < self.tol]
            for k in range(len(active)):
                j = active[k]
                lam[j] = lam_act[k]
                residual[j] = res_act[k]
                iterations[j] = sweeps
            if done:
                # Deflation: freeze converged columns, shrink the block.
                done_set = set(done)
                for k in done:
                    final[active[k]] = y[:, k].copy()
                keep = [k for k in range(len(active)) if k not in done_set]
                active = [active[k] for k in keep]
                x = np.ascontiguousarray(y[:, keep])
            else:
                x = y

        for k, j in enumerate(active):  # stragglers keep their last iterate
            final[j] = x[:, k].copy()

        if active and raise_on_fail:
            raise ConvergenceError(
                f"block power iteration: columns {active} did not reach "
                f"tol={self.tol} in {self.max_iterations} sweeps "
                f"(worst residual={float(np.max(residual[active])):.3e})",
                iterations=sweeps,
                residual=float(np.max(residual[active])),
            )

        unconverged = set(active)
        results: list[SolveResult] = []
        for j in range(b):
            v = np.abs(final[j])
            v /= v.sum()
            concentrations = (
                convert_eigenvector(v, lands[j], form) if lands[j] is not None else v
            )
            results.append(
                SolveResult(
                    eigenvalue=float(lam[j] + mu[j]),
                    eigenvector=v,
                    concentrations=concentrations,
                    iterations=int(iterations[j]),
                    residual=float(residual[j]),
                    converged=j not in unconverged,
                    method=name,
                    history=histories[j],
                )
            )
        return BlockSolveResult(columns=results, sweeps=sweeps)

"""The (shifted) power iteration — the paper's solver of choice (Sec. 3).

Why power iteration: ``W`` is positive definite (Sec. 2) and
Perron–Frobenius applies, so ``λ₀ > λ₁ ≥ … ≥ λ_{N−1} > 0`` and
convergence to the Perron vector is guaranteed.  Among Krylov methods it
has the smallest possible memory footprint — one extra vector — which is
the binding constraint once ``N = 2^ν`` vectors barely fit in memory.

Paper-faithful details implemented here:

* start vector ``s = diag(F)/‖diag(F)‖₁`` (the landscape itself),
* stopping criterion: the residual ``R(λ̃, x̃) = ‖W·x̃ − λ̃·x̃‖₂``,
* optional conservative shift ``μ = (1−2p)^ν f_min`` (via
  :class:`~repro.operators.shifted.ShiftedOperator`), which improves the
  rate from ``λ₁/λ₀`` to ``(λ₁−μ)/(λ₀−μ)`` and cuts iteration counts by
  ≳10 % on random landscapes (reproduced in the shift-ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.operators.base import ImplicitOperator
from repro.operators.dense_w import convert_eigenvector
from repro.operators.shifted import ShiftedOperator
from repro.solvers.result import IterationRecord, SolveResult

__all__ = ["PowerIteration"]


class PowerIteration:
    """Power iteration on any implicit operator.

    Parameters
    ----------
    operator:
        The implicit product for ``W`` (any form); if a
        :class:`~repro.operators.shifted.ShiftedOperator` is passed, the
        reported eigenvalue is automatically un-shifted.
    tol:
        Residual threshold ``τ`` on ``‖Wx − λx‖₂`` (paper: 1e−15 for the
        exact products, 1e−10 for Xmvp(5)).
    max_iterations:
        Safety cap; exceeded ⇒ :class:`ConvergenceError` unless
        ``raise_on_fail=False``.
    record_history:
        Keep a per-iteration (λ, residual) trace.

    Notes
    -----
    Iterates are normalized in the **1-norm** — they are relative
    concentrations, and this keeps the Rayleigh-like eigenvalue estimate
    ``λ̃ = ‖W·x‖₁ / ‖x‖₁`` exact in the limit for the positive Perron
    vector (for positive ``x`` and non-negative ``W``, ``1ᵀWx = λ 1ᵀx``
    at the fixed point).  The residual is still measured in the 2-norm,
    as in the paper.
    """

    def __init__(
        self,
        operator: ImplicitOperator,
        *,
        tol: float = 1e-12,
        max_iterations: int = 100_000,
        record_history: bool = False,
    ):
        if tol <= 0.0:
            raise ValidationError(f"tol must be positive, got {tol}")
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        self.operator = operator
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.record_history = bool(record_history)

    # --------------------------------------------------------------- solve
    def solve(
        self,
        start: np.ndarray,
        *,
        landscape=None,
        form: str = "right",
        raise_on_fail: bool = True,
        method_name: str | None = None,
    ) -> SolveResult:
        """Run the iteration from ``start``.

        Parameters
        ----------
        start:
            Starting vector (e.g. ``landscape.start_vector()``); must
            have positive mass.
        landscape, form:
            When given, the converged eigenvector is also converted to
            physical concentrations ``x_R`` (see
            :func:`repro.operators.dense_w.convert_eigenvector`);
            otherwise the working-form vector doubles as concentrations.
        raise_on_fail:
            Raise :class:`ConvergenceError` when the tolerance is not
            met within ``max_iterations`` (default), else return the
            best iterate with ``converged=False``.
        method_name:
            Label stored in the result (defaults to
            ``Pi(<operator class>)``).
        """
        op = self.operator
        mu = op.mu if isinstance(op, ShiftedOperator) else 0.0
        x = np.asarray(start, dtype=np.float64).copy()
        if x.shape != (op.n,):
            raise ValidationError(f"start vector must have shape ({op.n},), got {x.shape}")
        mass = np.abs(x).sum()
        if mass <= 0.0:
            raise ValidationError("start vector must have nonzero mass")
        x /= mass

        history: list[IterationRecord] = []
        lam = 0.0
        residual = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            y = op.matvec(x)
            lam = float(np.abs(y).sum())  # 1-norm estimate; y > 0 near the fixed point
            if lam <= 0.0:
                raise ConvergenceError(
                    "iterate collapsed to zero — W is not acting as a positive operator",
                    iterations=iterations,
                    residual=float("nan"),
                )
            y /= lam
            # Residual of the *normalized* pair: ‖W x − λ x‖₂ = λ‖y − x‖₂.
            residual = lam * float(np.linalg.norm(y - x))
            x = y
            if self.record_history:
                history.append(IterationRecord(iterations, lam + mu, residual))
            if residual < self.tol:
                break
        else:  # pragma: no cover - loop always breaks or exhausts
            pass

        converged = residual < self.tol
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"power iteration did not reach tol={self.tol} in "
                f"{self.max_iterations} iterations (residual={residual:.3e})",
                iterations=iterations,
                residual=residual,
            )

        eigenvalue = lam + mu  # un-shift
        x = np.abs(x)  # Perron vector: clean up −0.0 / tiny negative noise
        x /= x.sum()
        if landscape is not None:
            concentrations = convert_eigenvector(x, landscape, form)
        else:
            concentrations = x
        name = method_name or f"Pi({type(op).__name__})"
        return SolveResult(
            eigenvalue=eigenvalue,
            eigenvector=x,
            concentrations=concentrations,
            iterations=iterations,
            residual=residual,
            converged=converged,
            method=name,
            history=history,
        )

"""Shift-and-invert machinery (paper Sec. 3, last subsection, + extension).

For the pure mutation matrix ``Q`` the FWHT eigendecomposition gives an
*exact* ``Θ(N log₂ N)`` product with ``(Q − μI)^{-1}``, enabling inverse
iteration and Rayleigh-quotient iteration (RQI) with cubic local
convergence — implemented in :func:`inverse_iteration_q` and
:func:`rayleigh_quotient_iteration_q`.

For the full ``W = Q·F`` with arbitrary diagonal ``F`` no closed-form
inverse is available; the paper lists this as current/future work.  We
implement the natural extension: **CG-based inverse iteration** on the
symmetric form ``W_S = F^½ Q F^½`` — each inverse application
``(W_S − μI)^{-1} v`` is solved iteratively with conjugate gradients
using only the fast matvec.  (For μ above the bulk of the spectrum the
shifted matrix is indefinite; CG still works in practice close to λ₀
because the dominant eigenspace dominates the Krylov space, but we guard
with a residual check and fall back on MINRES-like restarts by reseeding.)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.mutation.spectral import solve_shifted_uniform_q
from repro.mutation.uniform import UniformMutation
from repro.operators.base import ImplicitOperator
from repro.solvers.result import IterationRecord, SolveResult

__all__ = [
    "inverse_iteration_q",
    "rayleigh_quotient_iteration_q",
    "cg_inverse_iteration",
]


def _normalize(v: np.ndarray) -> np.ndarray:
    nrm = np.linalg.norm(v)
    if nrm == 0.0:
        raise ConvergenceError("zero iterate in inverse iteration")
    return v / nrm


def inverse_iteration_q(
    nu: int,
    p: float,
    mu: float,
    *,
    start: np.ndarray | None = None,
    tol: float = 1e-13,
    max_iterations: int = 200,
) -> SolveResult:
    """Inverse iteration for the eigenpair of ``Q`` nearest to ``μ``.

    Each step costs two FWHTs + a diagonal solve (``Θ(N log₂ N)``),
    exactly the paper's shift-and-invert product.
    """
    n = 1 << nu
    q = UniformMutation(nu, p)
    if start is None:
        # A random start has components in *every* eigenspace — the
        # uniform vector would be trapped in the λ = 1 eigenspace.
        x = _normalize(np.random.default_rng(0).standard_normal(n))
    else:
        x = _normalize(np.asarray(start, float))
    history: list[IterationRecord] = []
    lam = 0.0
    residual = np.inf
    for it in range(1, max_iterations + 1):
        y = solve_shifted_uniform_q(x, nu, p, mu)
        x = _normalize(y)
        qx = q.apply(x.copy())
        lam = float(x @ qx)
        residual = float(np.linalg.norm(qx - lam * x))
        history.append(IterationRecord(it, lam, residual))
        if residual < tol:
            break
    else:
        raise ConvergenceError(
            f"inverse iteration did not converge to tol={tol}",
            iterations=max_iterations,
            residual=residual,
        )
    conc = np.abs(x) / np.abs(x).sum()
    return SolveResult(
        eigenvalue=lam,
        eigenvector=x,
        concentrations=conc,
        iterations=it,
        residual=residual,
        converged=True,
        method="InverseIteration(Q)",
        history=history,
    )


def rayleigh_quotient_iteration_q(
    nu: int,
    p: float,
    *,
    start: np.ndarray | None = None,
    mu0: float | None = None,
    tol: float = 1e-13,
    max_iterations: int = 50,
) -> SolveResult:
    """Rayleigh-quotient iteration on ``Q`` — cubically convergent.

    Starts from shift ``mu0`` (default: just above the largest
    eigenvalue 1, targeting the dominant pair) and updates the shift to
    the current Rayleigh quotient each step.
    """
    n = 1 << nu
    q = UniformMutation(nu, p)
    rng = np.random.default_rng(0)
    x = (
        _normalize(np.ones(n) + 1e-3 * rng.standard_normal(n))
        if start is None
        else _normalize(np.asarray(start, float))
    )
    qx = q.apply(x.copy())
    mu = float(x @ qx) if mu0 is None else float(mu0)
    history: list[IterationRecord] = []
    residual = np.inf
    lam = mu
    for it in range(1, max_iterations + 1):
        try:
            y = solve_shifted_uniform_q(x, nu, p, mu)
        except ValidationError:
            # μ collided with an eigenvalue — we have (numerically)
            # converged onto it; nudge minutely to extract the vector.
            y = solve_shifted_uniform_q(x, nu, p, mu * (1.0 + 1e-12) + 1e-300)
        x = _normalize(y)
        qx = q.apply(x.copy())
        lam = float(x @ qx)
        residual = float(np.linalg.norm(qx - lam * x))
        history.append(IterationRecord(it, lam, residual))
        if residual < tol:
            break
        mu = lam
    else:
        raise ConvergenceError(
            f"RQI did not converge to tol={tol}", iterations=max_iterations, residual=residual
        )
    conc = np.abs(x) / np.abs(x).sum()
    return SolveResult(
        eigenvalue=lam,
        eigenvector=x,
        concentrations=conc,
        iterations=it,
        residual=residual,
        converged=True,
        method="RQI(Q)",
        history=history,
    )


def _cg_solve(
    matvec,
    b: np.ndarray,
    *,
    tol: float,
    max_iterations: int,
) -> np.ndarray:
    """Plain conjugate gradients on an implicit (possibly shifted) matrix."""
    x = np.zeros_like(b)
    r = b.copy()
    pvec = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    for _ in range(max_iterations):
        ap = matvec(pvec)
        denom = float(pvec @ ap)
        if abs(denom) < 1e-300:
            break
        alpha = rs / denom
        x += alpha * pvec
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) < tol * b_norm:
            break
        pvec = r + (rs_new / rs) * pvec
        rs = rs_new
    return x


def cg_inverse_iteration(
    operator: ImplicitOperator,
    *,
    start: np.ndarray,
    mu: float,
    tol: float = 1e-10,
    max_outer: int = 100,
    cg_tol: float = 1e-8,
    cg_max_iterations: int = 500,
) -> SolveResult:
    """Inverse iteration on a full symmetric ``W`` with inner CG solves.

    The building block the paper names as current work: an efficient
    solver for ``(W − μI)x = b`` with arbitrary diagonal ``F``.  Here it
    is realized matrix-free — every CG step is one fast matvec.

    Parameters
    ----------
    operator:
        Symmetric ``W`` operator (use ``form="symmetric"``).
    start:
        Starting vector.
    mu:
        Fixed shift; choose close to (and ideally above) λ₀ for fast
        convergence to the dominant pair.
    """
    if not operator.is_symmetric:
        raise ValidationError("cg_inverse_iteration requires a symmetric operator")
    x = _normalize(np.asarray(start, dtype=np.float64).copy())
    history: list[IterationRecord] = []
    lam = 0.0
    residual = np.inf
    shifted = lambda v: operator.matvec(v) - mu * v
    for it in range(1, max_outer + 1):
        # Tighten the inner solve as the outer iteration converges: the
        # achievable eigen-residual is floored by the linear-solve error.
        inner_tol = min(cg_tol, max(1e-14, 1e-3 * residual if np.isfinite(residual) else cg_tol))
        y = _cg_solve(shifted, x, tol=inner_tol, max_iterations=cg_max_iterations)
        if not np.all(np.isfinite(y)) or np.linalg.norm(y) == 0.0:
            raise ConvergenceError(
                "inner CG solve failed (indefinite shift too far inside the spectrum?)",
                iterations=it,
            )
        x = _normalize(y)
        wx = operator.matvec(x)
        lam = float(x @ wx)
        residual = float(np.linalg.norm(wx - lam * x))
        history.append(IterationRecord(it, lam, residual))
        if residual < tol:
            break
    else:
        raise ConvergenceError(
            f"CG inverse iteration did not reach tol={tol}",
            iterations=max_outer,
            residual=residual,
        )
    conc = np.abs(x) / np.abs(x).sum()
    return SolveResult(
        eigenvalue=lam,
        eigenvector=x,
        concentrations=conc,
        iterations=it,
        residual=residual,
        converged=True,
        method="CG-InverseIteration(W)",
        history=history,
    )

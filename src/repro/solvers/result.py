"""Solver result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolveResult", "IterationRecord"]


@dataclass
class IterationRecord:
    """One step of an iterative eigensolver's history."""

    iteration: int
    eigenvalue: float
    residual: float


@dataclass
class SolveResult:
    """Dominant eigenpair of the quasispecies matrix ``W``.

    Attributes
    ----------
    eigenvalue:
        The dominant eigenvalue λ₀ of ``W`` (mean fitness of the
        stationary population).
    eigenvector:
        The Perron eigenvector in the solver's working form, normalized
        to unit 1-norm with non-negative entries.
    concentrations:
        The eigenvector converted to the *right* form ``x_R`` — the
        physical relative concentrations (``Σᵢ xᵢ = 1``).
    iterations:
        Matvec-bearing iterations performed (0 for direct solvers).
    residual:
        Final residual ``‖W·x − λ·x‖₂`` in the working form.
    converged:
        Whether the tolerance was reached (always ``True`` for direct
        solvers).
    history:
        Per-iteration eigenvalue/residual trace (present when the solver
        was asked to record it).
    method:
        Human-readable description, e.g. ``"Pi(Fmmp)"``.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    concentrations: np.ndarray
    iterations: int
    residual: float
    converged: bool
    method: str
    history: list[IterationRecord] = field(default_factory=list, repr=False)

    def error_class_concentrations(self, nu: int) -> np.ndarray:
        """Cumulative concentrations ``[Γ_k]`` of the error classes.

        Convenience wrapper around
        :func:`repro.model.concentrations.class_concentrations`.
        """
        from repro.model.concentrations import class_concentrations

        return class_concentrations(self.concentrations, nu)

"""Lanczos iteration on the symmetric form (Eq. 4).

The paper (Sec. 3) notes Lanczos/Arnoldi converge in fewer matvecs than
power iteration but "require storing more intermediate vectors … and are
thus less attractive for very large scale instances".  We implement a
full-reorthogonalized Lanczos so the storage/accuracy trade-off can be
*measured* rather than asserted — see the solver-comparison bench.

Only valid on symmetric operators (use ``form="symmetric"`` with a
symmetric mutation model).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.operators.base import ImplicitOperator
from repro.operators.dense_w import convert_eigenvector
from repro.solvers.result import IterationRecord, SolveResult

__all__ = ["Lanczos"]


class Lanczos:
    """Storage-hungry Krylov alternative to the power iteration.

    Parameters
    ----------
    operator:
        A *symmetric* implicit operator (checked via its
        ``is_symmetric`` flag).
    tol:
        Residual threshold on ``‖W·x − λ·x‖₂`` for the extracted Ritz
        pair.
    max_basis:
        Maximum Krylov basis size — this is the memory cost the paper
        warns about: ``max_basis`` extra vectors of length ``N``.
    """

    def __init__(self, operator: ImplicitOperator, *, tol: float = 1e-12, max_basis: int = 200):
        if not operator.is_symmetric:
            raise ValidationError(
                "Lanczos requires a symmetric operator; use form='symmetric' "
                "with a symmetric mutation model"
            )
        if max_basis < 2:
            raise ValidationError("max_basis must be >= 2")
        self.operator = operator
        self.tol = float(tol)
        self.max_basis = int(max_basis)

    def solve(
        self,
        start: np.ndarray,
        *,
        landscape=None,
        form: str = "symmetric",
        raise_on_fail: bool = True,
    ) -> SolveResult:
        """Build the Krylov basis until the dominant Ritz pair converges."""
        op = self.operator
        v = np.asarray(start, dtype=np.float64).copy()
        if v.shape != (op.n,):
            raise ValidationError(f"start vector must have shape ({op.n},), got {v.shape}")
        nrm = np.linalg.norm(v)
        if nrm == 0.0:
            raise ValidationError("start vector must be nonzero")
        v /= nrm

        basis = [v]
        alphas: list[float] = []
        betas: list[float] = []
        history: list[IterationRecord] = []
        lam = 0.0
        residual = np.inf
        ritz = v

        for j in range(self.max_basis):
            w = op.matvec(basis[j])
            alpha = float(basis[j] @ w)
            alphas.append(alpha)
            w -= alpha * basis[j]
            if j > 0:
                w -= betas[j - 1] * basis[j - 1]
            # Full reorthogonalization: cheap insurance at these basis sizes.
            for b in basis:
                w -= (b @ w) * b
            beta = float(np.linalg.norm(w))

            # Ritz extraction from the tridiagonal matrix.
            t = np.diag(alphas)
            if betas:
                off = np.array(betas)
                t += np.diag(off, 1) + np.diag(off, -1)
            evals, evecs = np.linalg.eigh(t)
            lam = float(evals[-1])
            y = evecs[:, -1]
            ritz = np.zeros(op.n)
            for coef, b in zip(y, basis):
                ritz += coef * b
            # Lanczos residual estimate: |β_j · y_last|.
            residual = abs(beta * y[-1])
            history.append(IterationRecord(j + 1, lam, residual))
            if residual < self.tol or beta < 1e-300:
                break
            betas.append(beta)
            basis.append(w / beta)

        converged = residual < self.tol
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"Lanczos did not reach tol={self.tol} with basis {self.max_basis}",
                iterations=len(alphas),
                residual=residual,
            )

        ritz = np.abs(ritz)
        total = ritz.sum()
        if total == 0.0:
            raise ConvergenceError("Lanczos produced a zero Ritz vector", iterations=len(alphas))
        ritz /= total
        if landscape is not None:
            conc = convert_eigenvector(ritz, landscape, form)
        else:
            conc = ritz
        return SolveResult(
            eigenvalue=lam,
            eigenvector=ritz,
            concentrations=conc,
            iterations=len(alphas),
            residual=residual,
            converged=converged,
            method=f"Lanczos({type(op).__name__})",
            history=history,
        )

    def storage_vectors(self, iterations: int) -> int:
        """Extra length-``N`` vectors held after ``iterations`` steps —
        the quantity power iteration keeps at 1 (paper's argument)."""
        return min(iterations + 1, self.max_basis + 1)

"""Left Perron eigenvector — genotype reproductive values.

For symmetric ``Q`` the left and right eigenvectors of ``W = Q·F``
coincide up to diagonal scalings, but the generalized mutation processes
of Sec. 2.2 make ``W`` genuinely non-symmetric, and then the *left*
Perron vector ``u`` (``uᵀW = λ₀uᵀ``) carries its own biology: ``u_i`` is
the **reproductive value** of genotype ``i`` — the long-run contribution
of one individual of type ``i`` to the future population (the classical
Fisher notion; it weights each genotype by where its mutational lineage
goes, not where it sits).

Computed with the same machinery as everything else: the transpose
matvec is just the butterfly with transposed factors (``(A⊗B)ᵀ =
Aᵀ⊗Bᵀ``), wrapped in the adjoint of the landscape scaling.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.mutation.grouped import GroupedMutation
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.operators.base import FORMS, ImplicitOperator, OperatorCosts
from repro.operators.fmmp import Fmmp
from repro.solvers.power import PowerIteration
from repro.solvers.result import SolveResult

__all__ = ["TransposedFmmp", "left_eigenvector", "reproductive_values"]


def _transposed_mutation(mutation: MutationModel) -> MutationModel:
    """The mutation model whose ``Q`` is the transpose of the input's."""
    if isinstance(mutation, UniformMutation):
        return mutation  # symmetric
    if isinstance(mutation, PerSiteMutation):
        return PerSiteMutation([f.T for f in mutation.factors_per_bit()])
    if isinstance(mutation, GroupedMutation):
        # NOTE: transposed blocks are *row* stochastic; GroupedMutation
        # validates column stochasticity, so build via the generic path.
        raise ValidationError(
            "transpose of a grouped model is not column stochastic; "
            "use TransposedFmmp which transposes implicitly"
        )
    raise ValidationError(f"unsupported mutation model {type(mutation).__name__}")


class TransposedFmmp(ImplicitOperator):
    """Implicit ``Wᵀ·v`` at the same ``Θ(N log₂ N)`` cost.

    ``(Q·F)ᵀ = F·Qᵀ`` and ``Qᵀ = ⊗ M_iᵀ`` — the same butterfly with each
    2×2 (or 2^g×2^g) factor transposed, composed with the diagonal on
    the correct side for each form (Eqs. 3–5).
    """

    def __init__(self, mutation: MutationModel, landscape: FitnessLandscape, form: str = "right"):
        if form not in FORMS:
            raise ValidationError(f"form must be one of {FORMS}, got {form!r}")
        if mutation.nu != landscape.nu:
            raise ValidationError("mutation and landscape chain lengths disagree")
        self.mutation = mutation
        self.landscape = landscape
        self.form = form
        self.n = mutation.n
        self._f = landscape.values()
        self._sqrt_f = np.sqrt(self._f)
        if isinstance(mutation, GroupedMutation):
            from repro.transforms.kronecker import kron_matvec

            blocks_t = [b.T for b in mutation.blocks()]
            self._qt = lambda w: kron_matvec(blocks_t, w)
        elif isinstance(mutation, (UniformMutation, PerSiteMutation)):
            from repro.transforms.butterfly import butterfly_transform

            factors_t = [f.T for f in mutation.factors_per_bit()]
            self._qt = lambda w: butterfly_transform(w, factors_t, in_place=True)
        else:
            raise ValidationError(f"unsupported mutation model {type(mutation).__name__}")

    def matvec(self, v: np.ndarray) -> np.ndarray:
        v = self.check(v)
        if self.form == "right":  # (QF)^T = F Q^T
            return self._f * self._qt(v.copy())
        if self.form == "left":  # (FQ)^T = Q^T F
            return self._qt(self._f * v)
        return self._sqrt_f * self._qt(self._sqrt_f * v)

    @property
    def is_symmetric(self) -> bool:
        return self.form == "symmetric" and self.mutation.is_symmetric

    def costs(self) -> OperatorCosts:
        """Identical to the forward operator's (same stage structure)."""
        return Fmmp(self.mutation, self.landscape, form=self.form).costs()


def left_eigenvector(
    mutation: MutationModel,
    landscape: FitnessLandscape,
    *,
    form: str = "right",
    tol: float = 1e-12,
    max_iterations: int = 200_000,
) -> SolveResult:
    """Dominant *left* eigenpair of ``W`` via power iteration on ``Wᵀ``.

    The returned ``eigenvector`` is the left Perron vector ``u``
    (1-norm, positive); ``eigenvalue`` must — and is asserted in the
    tests to — match the right eigenvalue λ₀.
    """
    op = TransposedFmmp(mutation, landscape, form=form)
    pi = PowerIteration(op, tol=tol, max_iterations=max_iterations)
    res = pi.solve(np.ones(mutation.n) / mutation.n, method_name=f"LeftPi(Fmmp^T, {form})")
    return res


def reproductive_values(
    mutation: MutationModel,
    landscape: FitnessLandscape,
    *,
    tol: float = 1e-12,
) -> np.ndarray:
    """Fisher reproductive values of all genotypes.

    The left Perron vector of the right form ``W = Q·F``, normalized so
    the population-average reproductive value is one:
    ``Σ_i u_i x_i = 1`` with ``x`` the stationary distribution.
    """
    left = left_eigenvector(mutation, landscape, form="right", tol=tol)
    right = PowerIteration(Fmmp(mutation, landscape), tol=tol).solve(
        landscape.start_vector(), landscape=landscape
    )
    u = left.eigenvector
    scale = float(u @ right.concentrations)
    if scale <= 0.0:
        raise ValidationError("degenerate left/right normalization")
    return u / scale

"""Dense LAPACK baseline solvers (validation at small ν).

The "standard approach" the paper measures speedups against is a dense
matrix with a generic eigensolver.  We provide both a direct dense solve
(for ground truth in tests) and a dominant-eigenpair extraction.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.base import MutationModel
from repro.operators.dense_w import convert_eigenvector, dense_w
from repro.solvers.result import SolveResult

__all__ = ["dense_dominant_eigenpair", "dense_solve"]


def dense_dominant_eigenpair(w: np.ndarray, *, symmetric: bool | None = None) -> tuple[float, np.ndarray]:
    """Dominant eigenpair of a dense matrix via LAPACK.

    Parameters
    ----------
    w:
        Square matrix.
    symmetric:
        Use the symmetric driver (``eigh``); autodetected when ``None``.

    Returns
    -------
    (eigenvalue, eigenvector)
        The eigenvector is scaled to unit 1-norm with non-negative
        orientation (Perron normalization).
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValidationError(f"expected a square matrix, got shape {w.shape}")
    if symmetric is None:
        symmetric = bool(np.allclose(w, w.T, atol=1e-12))
    if symmetric:
        vals, vecs = np.linalg.eigh(w)
        lam = float(vals[-1])
        vec = vecs[:, -1]
    else:
        vals, vecs = np.linalg.eig(w)
        order = np.argsort(vals.real)
        lam_c = vals[order[-1]]
        if abs(lam_c.imag) > 1e-10 * max(1.0, abs(lam_c.real)):
            raise ValidationError("dominant eigenvalue is complex; not a Perron problem")
        lam = float(lam_c.real)
        vec = vecs[:, order[-1]].real
    if vec.sum() < 0:
        vec = -vec
    total = np.abs(vec).sum()
    if total == 0.0:
        raise ValidationError("degenerate zero eigenvector")
    return lam, vec / total


def dense_solve(
    mutation: MutationModel,
    landscape: FitnessLandscape,
    form: str = "right",
    *,
    max_nu: int = 13,
) -> SolveResult:
    """Ground-truth quasispecies solve by dense eigendecomposition.

    Builds ``W`` in the requested form, extracts the dominant pair, and
    converts to physical concentrations.
    """
    w = dense_w(mutation, landscape, form, max_nu=max_nu)
    symmetric = form == "symmetric" and mutation.is_symmetric
    lam, vec = dense_dominant_eigenpair(w, symmetric=symmetric)
    vec = np.abs(vec)
    vec /= vec.sum()
    residual = float(np.linalg.norm(w @ vec - lam * vec))
    return SolveResult(
        eigenvalue=lam,
        eigenvector=vec,
        concentrations=convert_eigenvector(vec, landscape, form),
        iterations=0,
        residual=residual,
        converged=True,
        method=f"Dense({form})",
    )

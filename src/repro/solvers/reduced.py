"""Exact (ν+1)-dimensional reduction for Hamming landscapes (Sec. 5.1).

Lemma 2 of the paper: if ``F`` is an error-class landscape, ``W = Q·F``
maps error-class vectors to error-class vectors, so the power iteration
(started from an error-class vector) lives entirely in the
(ν+1)-dimensional space of class representatives.  The reduced matrix is

    W_red[d, k] = QΓ[d, k] · FΓ_k

with ``QΓ`` from Eq. (14) — note it maps *representatives*, not class
aggregates, so the cumulative concentrations of the full problem are
recovered by the binomial rescaling

    [Γ_k] = C(ν,k)·vΓ_k / Σ_j C(ν,j)·vΓ_j.

This makes approximative schemes unnecessary for this landscape family
(the paper's point against [11, 17]) and handles chain lengths far beyond
anything the full solvers can touch.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.reduced import reduced_mutation_matrix
from repro.solvers.dense import dense_dominant_eigenpair
from repro.solvers.result import SolveResult
from repro.util.binomial import binomial_row
from repro.util.validation import check_chain_length, check_error_rate

__all__ = ["ReducedSolver", "reduced_w_matrix"]


def reduced_w_matrix(nu: int, p: float, class_fitness: np.ndarray) -> np.ndarray:
    """The reduced matrix ``W_red = QΓ · diag(FΓ)`` ∈ R^{(ν+1)×(ν+1)}."""
    nu = check_chain_length(nu, max_nu=10_000)
    p = check_error_rate(p, allow_zero=True)
    f = np.asarray(class_fitness, dtype=np.float64).reshape(-1)
    if f.shape[0] != nu + 1:
        raise ValidationError(f"class fitness must have nu+1={nu + 1} values, got {f.shape[0]}")
    if np.any(f <= 0.0) or not np.all(np.isfinite(f)):
        raise ValidationError("class fitness values must be finite and positive")
    return reduced_mutation_matrix(nu, p) * f[None, :]


class ReducedSolver:
    """Exact quasispecies solver for Hamming-distance landscapes.

    Parameters
    ----------
    nu:
        Chain length (may far exceed what full solvers allow).
    p:
        Uniform error rate.
    landscape:
        Any landscape with ``is_error_class_landscape == True`` — or an
        explicit array of ν+1 class fitness values.

    Examples
    --------
    >>> from repro.landscapes import SinglePeakLandscape
    >>> res = ReducedSolver(20, 0.01, SinglePeakLandscape(20)).solve()
    >>> res.converged
    True
    """

    def __init__(self, nu: int, p: float, landscape: FitnessLandscape | np.ndarray):
        self.nu = check_chain_length(nu, max_nu=10_000)
        self.p = check_error_rate(p, allow_zero=True)
        if isinstance(landscape, FitnessLandscape):
            if landscape.nu != self.nu:
                raise ValidationError(
                    f"landscape nu={landscape.nu} does not match solver nu={self.nu}"
                )
            if not landscape.is_error_class_landscape:
                raise ValidationError(
                    "the (nu+1) reduction is exact only for Hamming-distance "
                    "landscapes (Lemma 2); use the full solvers instead"
                )
            self.class_fitness = landscape.class_values()
        else:
            self.class_fitness = np.asarray(landscape, dtype=np.float64).reshape(-1)
            if self.class_fitness.shape[0] != self.nu + 1:
                raise ValidationError(
                    f"expected nu+1={self.nu + 1} class fitness values, "
                    f"got {self.class_fitness.shape[0]}"
                )
        self._w_red = reduced_w_matrix(self.nu, self.p, self.class_fitness)

    # --------------------------------------------------------------- solve
    def solve(self) -> SolveResult:
        """Solve the (ν+1) problem directly and rescale.

        Returns a :class:`SolveResult` whose ``eigenvector`` holds the
        ν+1 *representative* concentrations ``vΓ`` and whose
        ``concentrations`` holds the cumulative class concentrations
        ``[Γ_k]`` (both unit 1-norm).
        """
        lam, v_gamma = dense_dominant_eigenpair(self._w_red, symmetric=False)
        v_gamma = np.abs(v_gamma)
        v_gamma /= v_gamma.sum()
        residual = float(np.linalg.norm(self._w_red @ v_gamma - lam * v_gamma))
        sizes = binomial_row(self.nu)
        weighted = sizes * v_gamma
        class_conc = weighted / weighted.sum()
        return SolveResult(
            eigenvalue=lam,
            eigenvector=v_gamma,
            concentrations=class_conc,
            iterations=0,
            residual=residual,
            converged=True,
            method="Reduced(nu+1)",
        )

    def full_eigenvector(self, *, max_nu: int = 24) -> np.ndarray:
        """Materialize the full N-dimensional concentration vector.

        Every sequence in ``Γ_k`` carries the same concentration
        ``vΓ_k / Σ_j C(ν,j) vΓ_j`` — exact recovery of the original
        eigenvector from the reduced one (paper, Sec. 5.1).
        """
        check_chain_length(self.nu, max_nu=max_nu)
        from repro.bitops.popcount import distance_to_master

        res = self.solve()
        v_gamma = res.eigenvector
        sizes = binomial_row(self.nu)
        denom = float((sizes * v_gamma).sum())
        per_sequence = v_gamma / denom
        return per_sequence[distance_to_master(self.nu)]

    @property
    def reduced_matrix(self) -> np.ndarray:
        """A copy of ``W_red`` (for inspection and tests)."""
        return self._w_red.copy()

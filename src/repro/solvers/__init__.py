"""Eigensolvers for the quasispecies eigenproblem.

* :class:`~repro.solvers.power.PowerIteration` — the paper's workhorse
  (Sec. 3): minimal storage, guaranteed convergence (Perron–Frobenius +
  positive definiteness), optional conservative shift.
* :func:`~repro.solvers.dense.dense_dominant_eigenpair` — LAPACK baseline
  for validation at small ν.
* :class:`~repro.solvers.lanczos.Lanczos` — Krylov alternative on the
  symmetric form; converges in fewer matvecs but stores a basis (the
  trade-off the paper cites for preferring power iteration at scale).
* :mod:`~repro.solvers.shift_invert` — exact shift-and-invert / Rayleigh
  quotient iteration for pure-``Q`` problems via the FWHT, plus a
  CG-based inverse iteration for full ``W`` (the paper's "current work"
  item, implemented here as an extension).
* :class:`~repro.solvers.reduced.ReducedSolver` — the exact
  (ν+1)-dimensional reduction for Hamming landscapes (Sec. 5.1).
* :class:`~repro.solvers.kron_solver.KroneckerSolver` — the decoupled
  solver for Kronecker landscapes (Sec. 5.2) with an implicit
  (lazy) eigenvector representation.
"""

from repro.solvers.result import SolveResult, IterationRecord
from repro.solvers.power import PowerIteration, BlockPowerIteration, BlockSolveResult
from repro.solvers.dense import dense_dominant_eigenpair, dense_solve
from repro.solvers.lanczos import Lanczos
from repro.solvers.arnoldi import Arnoldi
from repro.solvers.shift_invert import (
    rayleigh_quotient_iteration_q,
    inverse_iteration_q,
    cg_inverse_iteration,
)
from repro.solvers.reduced import ReducedSolver, reduced_w_matrix
from repro.solvers.kron_solver import KroneckerSolver, KroneckerEigenvector
from repro.solvers.left_eigen import (
    TransposedFmmp,
    left_eigenvector,
    reproductive_values,
)

__all__ = [
    "SolveResult",
    "IterationRecord",
    "PowerIteration",
    "BlockPowerIteration",
    "BlockSolveResult",
    "dense_dominant_eigenpair",
    "dense_solve",
    "Lanczos",
    "Arnoldi",
    "rayleigh_quotient_iteration_q",
    "inverse_iteration_q",
    "cg_inverse_iteration",
    "ReducedSolver",
    "reduced_w_matrix",
    "KroneckerSolver",
    "KroneckerEigenvector",
    "TransposedFmmp",
    "left_eigenvector",
    "reproductive_values",
]

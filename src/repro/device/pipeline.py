"""Full on-device power iteration (the paper's Sec. 4 pipeline).

Runs the entire ``Pi(Fmmp)`` / ``Pi(Xmvp(dmax))`` loop through device
kernels: host code only drives stage loops, polls scalar reduction
results, and performs the initial/final transfers — exactly the
structure of the paper's OpenCL implementation ("the i-loop runs at the
host, in each iteration of the i-loop the kernel is called with N/2
threads").

The returned :class:`DeviceRunReport` carries both the numerical
:class:`~repro.solvers.result.SolveResult` (real, validated numerics)
and the modeled time breakdown — including the split between matvec
kernels and reduction kernels that backs the paper's remark that the
summation "has almost no influence on the overall execution time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitops.classes import masks_up_to_distance
from repro.device.kernels.elementwise import (
    abs_kernel,
    axpy_kernel,
    copy_kernel,
    diff_square_into_kernel,
    multiply_into_kernel,
    scale_kernel,
)
from repro.device.kernels.fmmp_kernel import fmmp_stage_kernel
from repro.device.kernels.reduce_kernel import tree_reduce_sum
from repro.device.kernels.xmvp_kernel import xmvp_pass_kernel
from repro.device.runtime import Device
from repro.exceptions import ConvergenceError, DeviceError, ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.mutation.persite import PerSiteMutation
from repro.mutation.uniform import UniformMutation
from repro.solvers.result import IterationRecord, SolveResult

__all__ = ["DevicePowerIteration", "DeviceRunReport"]

_MATVEC_KERNELS = {"fmmp_stage", "xmvp_pass", "xmvp_fused", "multiply_into"}
_REDUCTION_KERNELS = {"reduce_add_stage", "abs_into", "diff_square_into", "square_into"}


@dataclass
class DeviceRunReport:
    """Outcome of one on-device solve.

    Attributes
    ----------
    result:
        The numerical eigenpair (identical semantics to the host
        solvers).
    modeled_total_s:
        Modeled end-to-end time, transfers included (what Fig. 3 plots).
    modeled_kernel_s / modeled_transfer_s:
        Kernel vs host↔device split.
    time_by_class:
        Modeled seconds per kernel class: ``matvec``, ``reduction``,
        ``other``.
    launches:
        Total kernel launches.
    """

    result: SolveResult
    modeled_total_s: float
    modeled_kernel_s: float
    modeled_transfer_s: float
    time_by_class: dict = field(default_factory=dict)
    launches: int = 0

    @property
    def reduction_fraction(self) -> float:
        """Share of kernel time spent in reductions (paper: ≈ negligible)."""
        total = sum(self.time_by_class.values()) or 1.0
        return self.time_by_class.get("reduction", 0.0) / total


class DevicePowerIteration:
    """Power iteration executed through the simulated device.

    Parameters
    ----------
    device:
        The simulated :class:`~repro.device.runtime.Device`.
    mutation:
        :class:`UniformMutation` or :class:`PerSiteMutation` (the
        butterfly kernels need per-bit 2×2 factors; grouped models would
        need a dedicated kernel).
    landscape:
        The fitness landscape.
    operator:
        ``"fmmp"`` or ``"xmvp"``.
    dmax:
        Cut-off distance for ``xmvp``.
    tol, max_iterations:
        Stopping criterion ``‖Wx − λx‖₂ < tol``.
    shift:
        Optional scalar shift μ (applied as one extra axpy per
        iteration, exactly its real cost).
    fused_xmvp:
        Run Xmvp as the paper-style single fused kernel per matvec
        (register accumulator) instead of one launch per XOR mask —
        see :mod:`repro.device.kernels.xmvp_fused`.
    """

    def __init__(
        self,
        device: Device,
        mutation: "UniformMutation | PerSiteMutation | GroupedMutation",
        landscape: FitnessLandscape,
        *,
        operator: str = "fmmp",
        dmax: int | None = None,
        tol: float = 1e-12,
        max_iterations: int = 100_000,
        shift: float = 0.0,
        fused_xmvp: bool = False,
    ):
        from repro.mutation.grouped import GroupedMutation

        if not isinstance(mutation, (UniformMutation, PerSiteMutation, GroupedMutation)):
            raise ValidationError(
                "device pipeline supports uniform, per-site, and grouped "
                "(block size <= 4) mutation models"
            )
        if mutation.nu != landscape.nu:
            raise ValidationError("mutation and landscape chain lengths disagree")
        if operator not in ("fmmp", "xmvp"):
            raise ValidationError(f"operator must be 'fmmp' or 'xmvp', got {operator!r}")
        if operator == "xmvp" and not isinstance(mutation, UniformMutation):
            raise ValidationError("xmvp requires the uniform mutation model")
        if isinstance(mutation, GroupedMutation):
            if operator != "fmmp":
                raise ValidationError("grouped models run through the butterfly path only")
            if any(g > 2 for g in mutation.group_sizes):
                raise ValidationError(
                    "device kernels cover group sizes 1 and 2 (bits); larger "
                    "blocks need a dedicated kernel"
                )
        self.device = device
        self.mutation = mutation
        self.landscape = landscape
        self.operator = operator
        self.nu = mutation.nu
        self.n = mutation.n
        self.dmax = int(dmax) if dmax is not None else self.nu
        if operator == "xmvp" and not 1 <= self.dmax <= self.nu:
            raise ValidationError(f"dmax must be in [1, {self.nu}]")
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.shift = float(shift)
        self.fused_xmvp = bool(fused_xmvp)
        # Butterfly stage plan: (kind, span, payload) from the LSB up.
        # kind "2": radix-2 stage with a 2x2 factor (Algorithm 2);
        # kind "4": radix-4 stage with a 4x4 group kernel.
        self._stage_plan: list[tuple[str, int, object]] = []
        if isinstance(mutation, GroupedMutation):
            from repro.device.kernels.group_kernel import make_group4_stage_kernel

            lo = 0
            for block, g in zip(reversed(mutation.blocks()), reversed(mutation.group_sizes)):
                if g == 1:
                    self._stage_plan.append(("2", 1 << lo, np.asarray(block)))
                else:
                    self._stage_plan.append(("4", 1 << lo, make_group4_stage_kernel(block)))
                lo += g
        else:
            for s, f in enumerate(mutation.factors_per_bit()):
                self._stage_plan.append(("2", 1 << s, np.asarray(f)))
        if operator == "xmvp":
            self._masks = masks_up_to_distance(self.nu, self.dmax)
            self._q_class = mutation.class_values()
            if self.fused_xmvp:
                from repro.device.kernels.xmvp_fused import make_fused_xmvp_kernel

                all_masks = np.concatenate(self._masks)
                weights = np.concatenate(
                    [np.full(len(m), self._q_class[k]) for k, m in enumerate(self._masks)]
                )
                self._fused_kernel = make_fused_xmvp_kernel(all_masks, weights)

    # -------------------------------------------------------------- helpers
    def _apply_q_fmmp(self, buf: str) -> None:
        """The butterfly: one launch per stage (radix 2 or 4)."""
        for kind, span, payload in self._stage_plan:
            if kind == "2":
                m = payload
                self.device.launch(
                    fmmp_stage_kernel,
                    self.n // 2,
                    {
                        "span": span,
                        "m00": m[0, 0],
                        "m01": m[0, 1],
                        "m10": m[1, 0],
                        "m11": m[1, 1],
                    },
                    binding={"v": buf},
                )
            else:
                self.device.launch(
                    payload, self.n // 4, {"span": span}, binding={"v": buf}
                )

    def _apply_q_xmvp(self, src: str, dst: str) -> None:
        """Accumulate XOR passes: ``dst = Σ_k QΓ_k Σ_m src[· ^ m]``."""
        # dst = QΓ_0 · src  (the k = 0 identity mask)
        self.device.launch(copy_kernel, self.n, binding={"dst": dst, "src": src})
        self.device.launch(scale_kernel, self.n, {"alpha": self._q_class[0]}, binding={"v": dst})
        for k in range(1, self.dmax + 1):
            qk = float(self._q_class[k])
            for m in self._masks[k]:
                self.device.launch(
                    xmvp_pass_kernel,
                    self.n,
                    {"mask": int(m), "q": qk},
                    binding={"acc": dst, "w": src},
                )

    def _sum_into_scratch(self, kernel, bindings: dict) -> float:
        """Map into the scratch buffer, then tree-reduce it to a scalar."""
        self.device.launch(kernel, self.n, binding=bindings)
        return tree_reduce_sum(self.device, "scratch", self.n)

    # ----------------------------------------------------------------- run
    def run(self, start: np.ndarray | None = None, *, raise_on_fail: bool = True) -> DeviceRunReport:
        """Execute the full pipeline and return the report.

        Allocates buffers ``x`` (iterate), ``w`` (product), ``f``
        (fitness), ``scratch`` (reductions) and, for xmvp, ``acc``.
        """
        dev = self.device
        n = self.n
        for name in ("x", "w", "f", "scratch") + (("acc",) if self.operator == "xmvp" else ()):
            dev.alloc(name, n)
        try:
            return self._run_inner(start, raise_on_fail)
        finally:
            for name in ("x", "w", "f", "scratch") + (("acc",) if self.operator == "xmvp" else ()):
                try:
                    dev.free(name)
                except DeviceError:  # pragma: no cover - defensive cleanup
                    pass

    def _run_inner(self, start, raise_on_fail) -> DeviceRunReport:
        dev = self.device
        n = self.n
        x0 = self.landscape.start_vector() if start is None else np.asarray(start, float)
        if x0.shape != (n,):
            raise ValidationError(f"start vector must have shape ({n},)")
        x0 = x0 / np.abs(x0).sum()

        dev.to_device("f", self.landscape.values())
        dev.to_device("x", x0)

        history: list[IterationRecord] = []
        lam = 0.0
        residual = np.inf
        iterations = 0
        # The buffer holding the product W·x each iteration: the fused
        # Xmvp kernel writes straight into "acc" (no copy-back, matching
        # its cost model); every other path lands in "w".
        prod = "acc" if (self.operator == "xmvp" and self.fused_xmvp) else "w"
        for iterations in range(1, self.max_iterations + 1):
            # w = F·x
            dev.launch(multiply_into_kernel, n, binding={"dst": "w", "a": "x", "b": "f"})
            # prod = Q·w
            if self.operator == "fmmp":
                self._apply_q_fmmp("w")
            elif self.fused_xmvp:
                dev.launch(self._fused_kernel, n, binding={"y": "acc", "w": "w"})
            else:
                self._apply_q_xmvp("w", "acc")
                dev.launch(copy_kernel, n, binding={"dst": "w", "src": "acc"})
            # optional shift: prod -= μ·x
            if self.shift != 0.0:
                dev.launch(axpy_kernel, n, {"alpha": -self.shift}, binding={"y": prod, "x": "x"})
            # λ = ‖prod‖₁ (≥ 0 for the Perron iterate; abs for faithfulness)
            lam = self._sum_into_scratch(abs_kernel, {"dst": "scratch", "src": prod})
            if lam <= 0.0:
                raise ConvergenceError("device iterate collapsed to zero", iterations=iterations)
            dev.launch(scale_kernel, n, {"alpha": 1.0 / lam}, binding={"v": prod})
            # residual² = Σ (prod − x)²   (scaled by λ afterwards)
            r2 = self._sum_into_scratch(
                diff_square_into_kernel, {"dst": "scratch", "a": prod, "b": "x"}
            )
            residual = lam * float(np.sqrt(max(r2, 0.0)))
            dev.launch(copy_kernel, n, binding={"dst": "x", "src": prod})
            history.append(IterationRecord(iterations, lam + self.shift, residual))
            if residual < self.tol:
                break

        converged = residual < self.tol
        if not converged and raise_on_fail:
            raise ConvergenceError(
                f"device power iteration did not reach tol={self.tol}",
                iterations=iterations,
                residual=residual,
            )

        x = dev.from_device("x")
        x = np.abs(x)
        x /= x.sum()
        acct = dev.accounting
        by_class = {"matvec": 0.0, "reduction": 0.0, "other": 0.0}
        for rec in acct.records:
            if rec.kernel in _MATVEC_KERNELS:
                by_class["matvec"] += rec.modeled_time_s
            elif rec.kernel in _REDUCTION_KERNELS:
                by_class["reduction"] += rec.modeled_time_s
            else:
                by_class["other"] += rec.modeled_time_s

        if self.operator == "fmmp":
            op_label = "Fmmp"
        else:
            op_label = f"Xmvp({self.dmax}{', fused' if self.fused_xmvp else ''})"
        result = SolveResult(
            eigenvalue=lam + self.shift,
            eigenvector=x,
            concentrations=x,
            iterations=iterations,
            residual=residual,
            converged=converged,
            method=f"Device-Pi({op_label}) on {dev.profile.name}",
            history=history,
        )
        return DeviceRunReport(
            result=result,
            modeled_total_s=acct.total_time_s,
            modeled_kernel_s=acct.kernel_time_s,
            modeled_transfer_s=acct.transfer_time_s,
            time_by_class=by_class,
            launches=acct.launches,
        )

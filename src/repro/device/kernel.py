"""Kernel abstraction: scalar work-item semantics + vectorized execution.

An OpenCL kernel is a function of the work-item id.  Here each
:class:`Kernel` carries **two** implementations of the same semantics:

* ``scalar_fn(item_id, state, params) -> {(buffer, index): value}`` —
  the executable specification: reads the pre-launch ``state`` (dict of
  buffer-name → ndarray) and returns the writes this work item performs.
  This is a line-for-line transcription of the paper's kernel pseudocode
  (e.g. Algorithm 2 lines 3–7).
* ``batch_fn(ids, buffers, params)`` — the vectorized NumPy
  implementation that actually executes a launch.

The runtime can *validate* a launch by replaying sampled work items
through ``scalar_fn`` against a pre-launch snapshot and comparing with
the post-launch buffers — sound because OpenCL forbids two work items of
one launch from writing the same location (a property
:meth:`repro.device.runtime.Device.launch` also spot-checks).

Cost accounting is declared per work item (:class:`KernelCosts`), so a
launch of ``G`` items moves ``G·bytes_per_item`` bytes and performs
``G·flops_per_item`` flops under the roofline model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.exceptions import DeviceError

__all__ = ["Kernel", "KernelCosts"]

ScalarFn = Callable[[int, Mapping[str, np.ndarray], Mapping], dict]
BatchFn = Callable[[np.ndarray, Mapping[str, np.ndarray], Mapping], None]


@dataclass(frozen=True)
class KernelCosts:
    """Per-work-item cost declaration (for the roofline time model)."""

    bytes_per_item: float
    flops_per_item: float

    def __post_init__(self) -> None:
        if self.bytes_per_item < 0 or self.flops_per_item < 0:
            raise DeviceError("kernel costs must be non-negative")


class Kernel:
    """A named device kernel.

    Parameters
    ----------
    name:
        Kernel identifier (shows up in launch records).
    scalar_fn:
        Executable per-work-item specification (see module docstring).
    batch_fn:
        Vectorized implementation; mutates the bound buffers in place.
    costs:
        Per-item cost declaration.
    buffer_names:
        The buffer arguments the kernel binds, in order.
    """

    def __init__(
        self,
        name: str,
        scalar_fn: ScalarFn,
        batch_fn: BatchFn,
        costs: KernelCosts,
        buffer_names: tuple[str, ...],
    ):
        self.name = str(name)
        self.scalar_fn = scalar_fn
        self.batch_fn = batch_fn
        self.costs = costs
        self.buffer_names = tuple(buffer_names)
        if not self.buffer_names:
            raise DeviceError(f"kernel {name!r} must bind at least one buffer")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.name!r}, buffers={self.buffer_names})"

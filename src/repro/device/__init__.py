"""Simulated OpenCL-style device runtime (the paper's Sec. 4 substrate).

The paper evaluates on an Nvidia Tesla C2050 through OpenCL.  This
environment has no GPU, so — per the substitution policy in DESIGN.md —
we execute the *same kernels* (scalar work-item semantics identical to
the paper's Algorithm 2) on a simulated device:

* numerics are real: each launch runs a vectorized batch implementation
  whose semantics are verified against the scalar work-item function;
* *time* is modeled: per-work-item byte/flop counts against the hardware
  profile's memory bandwidth and peak FLOP rate (the paper itself notes
  the kernels are bandwidth-bound: "the performance achieved on the GPUs
  used exactly corresponds to their particular memory bandwidth").

Components: :class:`~repro.device.profile.HardwareProfile` presets,
:class:`~repro.device.buffer.DeviceBuffer`,
:class:`~repro.device.kernel.Kernel`,
:class:`~repro.device.runtime.Device`, the kernel library under
``repro.device.kernels``, and the full on-device power iteration in
:mod:`repro.device.pipeline`.
"""

from repro.device.profile import (
    HardwareProfile,
    TESLA_C2050,
    INTEL_I5_750,
    INTEL_I5_750_SINGLE_CORE,
)
from repro.device.buffer import DeviceBuffer
from repro.device.kernel import Kernel, KernelCosts
from repro.device.runtime import Device, LaunchRecord
from repro.device.pipeline import DevicePowerIteration, DeviceRunReport

__all__ = [
    "HardwareProfile",
    "TESLA_C2050",
    "INTEL_I5_750",
    "INTEL_I5_750_SINGLE_CORE",
    "DeviceBuffer",
    "Kernel",
    "KernelCosts",
    "Device",
    "LaunchRecord",
    "DevicePowerIteration",
    "DeviceRunReport",
]

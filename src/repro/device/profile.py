"""Hardware profiles for the simulated device.

The two machines of the paper's Sec. 4 experiments, with headline
specifications taken from the vendor datasheets of the period:

* **Nvidia Tesla C2050** — 3 GB GDDR5, 144 GB/s peak memory bandwidth,
  515 GFLOP/s double precision, PCIe 2.0 x16 (≈6 GB/s effective).
* **Intel Core i5-750** @ 2.67 GHz — 4 cores; the paper's reference
  curves are effectively single-threaded, so a single-core profile is
  provided too (DDR3-1333 dual channel ≈ 21 GB/s chip-level; a single
  core sustains roughly half of that on streaming kernels).

Sustained streaming bandwidth is below peak on every machine; the
``efficiency`` field captures that derating (GPU STREAM-like kernels
reach ~75–80 % of peak bandwidth, CPU cores ~60 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["HardwareProfile", "TESLA_C2050", "INTEL_I5_750", "INTEL_I5_750_SINGLE_CORE"]


@dataclass(frozen=True)
class HardwareProfile:
    """Performance-model description of one execution target.

    Attributes
    ----------
    name:
        Human-readable device name.
    mem_bandwidth_gbs:
        Peak main-memory bandwidth in GB/s.
    peak_gflops:
        Peak double-precision GFLOP/s.
    transfer_bandwidth_gbs:
        Host↔device transfer bandwidth in GB/s (PCIe for GPUs); ``0``
        means the memory is host memory — no transfer cost.
    launch_overhead_s:
        Fixed cost per kernel launch (driver/dispatch latency); for a
        CPU "launch" this is a function call, effectively 0.
    efficiency:
        Fraction of peak bandwidth/FLOPs sustained by streaming kernels.
    """

    name: str
    mem_bandwidth_gbs: float
    peak_gflops: float
    transfer_bandwidth_gbs: float = 0.0
    launch_overhead_s: float = 0.0
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.mem_bandwidth_gbs <= 0 or self.peak_gflops <= 0:
            raise ValidationError("bandwidth and peak flops must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValidationError("efficiency must be in (0, 1]")
        if self.transfer_bandwidth_gbs < 0 or self.launch_overhead_s < 0:
            raise ValidationError("transfer bandwidth and launch overhead must be >= 0")

    # ------------------------------------------------------------- modeling
    def kernel_time(self, bytes_moved: float, flops: float) -> float:
        """Roofline time for one kernel: launch overhead plus the larger
        of the bandwidth-bound and compute-bound durations."""
        mem_t = bytes_moved / (self.mem_bandwidth_gbs * self.efficiency * 1e9)
        cmp_t = flops / (self.peak_gflops * self.efficiency * 1e9)
        return self.launch_overhead_s + max(mem_t, cmp_t)

    def transfer_time(self, nbytes: float) -> float:
        """Host↔device transfer duration (0 for host-resident memory)."""
        if self.transfer_bandwidth_gbs == 0.0:
            return 0.0
        return nbytes / (self.transfer_bandwidth_gbs * 1e9)


#: The paper's GPU (Sec. 4, Fig. 3/4).
TESLA_C2050 = HardwareProfile(
    name="Nvidia Tesla C2050",
    mem_bandwidth_gbs=144.0,
    peak_gflops=515.0,
    transfer_bandwidth_gbs=6.0,
    launch_overhead_s=5e-6,
    efficiency=0.78,
)

#: The paper's CPU reference, all four cores.
INTEL_I5_750 = HardwareProfile(
    name="Intel i5-750 @ 2.67GHz (4 cores)",
    mem_bandwidth_gbs=21.0,
    peak_gflops=42.7,  # 4 cores x 2.67 GHz x 4 DP flops/cycle (SSE)
    transfer_bandwidth_gbs=0.0,
    launch_overhead_s=0.0,
    efficiency=0.6,
)

#: Single-core variant — the baseline Pi(Xmvp(nu)) reference runs here.
INTEL_I5_750_SINGLE_CORE = HardwareProfile(
    name="Intel i5-750 @ 2.67GHz (1 core)",
    mem_bandwidth_gbs=10.5,
    peak_gflops=10.7,  # 2.67 GHz x 4 DP flops/cycle
    transfer_bandwidth_gbs=0.0,
    launch_overhead_s=0.0,
    efficiency=0.6,
)

"""The device kernel library.

Every kernel ships with both a scalar work-item specification (the
paper's pseudocode, executable) and the vectorized batch implementation
that actually runs — see :mod:`repro.device.kernel` for the contract.
"""

from repro.device.kernels.fmmp_kernel import fmmp_stage_kernel
from repro.device.kernels.elementwise import (
    scale_kernel,
    pointwise_multiply_kernel,
    multiply_into_kernel,
    copy_kernel,
    axpy_kernel,
    square_into_kernel,
    diff_square_into_kernel,
    abs_kernel,
)
from repro.device.kernels.reduce_kernel import reduce_add_stage_kernel, tree_reduce_sum
from repro.device.kernels.xmvp_kernel import xmvp_pass_kernel

__all__ = [
    "fmmp_stage_kernel",
    "scale_kernel",
    "pointwise_multiply_kernel",
    "multiply_into_kernel",
    "copy_kernel",
    "axpy_kernel",
    "square_into_kernel",
    "diff_square_into_kernel",
    "abs_kernel",
    "reduce_add_stage_kernel",
    "tree_reduce_sum",
    "xmvp_pass_kernel",
]

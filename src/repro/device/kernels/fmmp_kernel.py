"""The Fmmp butterfly stage kernel — the paper's Algorithm 2, verbatim.

One launch of ``N/2`` work items performs one butterfly stage of span
``i`` in place.  Work item ``ID`` computes (Algorithm 2 lines 3–7)::

    j ← 2·ID − (ID & (i−1))        # = 2·i·⌊ID/i⌋ + ID mod i
    t1 ← v[j];  t2 ← v[j + i]
    v[j]     ← m00·t1 + m01·t2     # paper: (1−p)·t1 + p·t2
    v[j + i] ← m10·t1 + m11·t2     # paper: p·t1 + (1−p)·t2

The index identity ``2·ID − (ID & (i−1)) = 2·i·⌊ID/i⌋ + ID mod i`` (valid
because ``i`` is a power of two) is the paper's bit trick for replacing a
modulo with an AND; it is property-tested in
tests/test_device_kernels.py.  The host drives the ``log₂ N`` stage loop
(see :mod:`repro.device.pipeline`).

Cost per work item: 4 memory operations on f64 (2 loads + 2 stores) and
6 flops (4 multiplies + 2 adds) — the ratio that makes the kernel
bandwidth-bound, as the paper observes.
"""

from __future__ import annotations

import numpy as np

from repro.device.kernel import Kernel, KernelCosts
from repro.exceptions import DeviceError

__all__ = ["fmmp_stage_kernel"]


def _params(params) -> tuple[int, float, float, float, float]:
    try:
        span = int(params["span"])
        m00 = float(params["m00"])
        m01 = float(params["m01"])
        m10 = float(params["m10"])
        m11 = float(params["m11"])
    except KeyError as exc:
        raise DeviceError(f"fmmp_stage kernel missing parameter {exc}") from None
    if span < 1 or (span & (span - 1)) != 0:
        raise DeviceError(f"span must be a positive power of two, got {span}")
    return span, m00, m01, m10, m11


def _scalar(item_id: int, state, params) -> dict:
    """Algorithm 2 lines 3–7 for a single work item."""
    span, m00, m01, m10, m11 = _params(params)
    v = state["v"]
    j = 2 * item_id - (item_id & (span - 1))  # line 3
    t1 = v[j]  # line 4
    t2 = v[j + span]  # line 5
    return {
        ("v", j): m00 * t1 + m01 * t2,  # line 6
        ("v", j + span): m10 * t1 + m11 * t2,  # line 7
    }


def _batch(ids: np.ndarray, buffers, params) -> None:
    span, m00, m01, m10, m11 = _params(params)
    v = buffers["v"]
    j = 2 * ids - (ids & (span - 1))
    t1 = v[j]
    t2 = v[j + span]
    v[j] = m00 * t1 + m01 * t2
    v[j + span] = m10 * t1 + m11 * t2


#: Singleton kernel object (stateless; parameters arrive per launch).
fmmp_stage_kernel = Kernel(
    name="fmmp_stage",
    scalar_fn=_scalar,
    batch_fn=_batch,
    costs=KernelCosts(bytes_per_item=32.0, flops_per_item=6.0),
    buffer_names=("v",),
)

"""Tree reduction on the device.

The classic pairwise pattern: a stage with ``half`` work items folds the
upper half of the active range onto the lower half
(``v[ID] += v[ID + half]``); ``log₂ N`` launches leave the total in
``v[0]``.  The paper (Sec. 4) notes this summation parallelizes well and
contributes almost nothing to the power iteration's runtime — the cost
model here lets the benches confirm that.
"""

from __future__ import annotations

import numpy as np

from repro.device.kernel import Kernel, KernelCosts
from repro.device.runtime import Device
from repro.exceptions import DeviceError

__all__ = ["reduce_add_stage_kernel", "tree_reduce_sum"]


def _reduce_scalar(i, state, params):
    half = int(params["half"])
    return {("v", i): state["v"][i] + state["v"][i + half]}


def _reduce_batch(ids, buffers, params):
    half = int(params["half"])
    v = buffers["v"]
    v[ids] += v[ids + half]


#: One fold stage: ``v[ID] += v[ID + half]`` for ``ID < half``.
reduce_add_stage_kernel = Kernel(
    "reduce_add_stage",
    _reduce_scalar,
    _reduce_batch,
    KernelCosts(bytes_per_item=24.0, flops_per_item=1.0),
    ("v",),
)


def tree_reduce_sum(device: Device, buffer_name: str, n: int) -> float:
    """Sum the first ``n`` elements of a buffer by ``log₂ n`` fold stages.

    Destroys the buffer's contents (it is reduction scratch by contract)
    and returns the total read back as a single-scalar transfer.

    ``n`` must be a power of two — all pipeline vectors here are.
    """
    if n < 1 or (n & (n - 1)) != 0:
        raise DeviceError(f"tree_reduce_sum needs a power-of-two length, got {n}")
    buf = device.buffer(buffer_name)
    if buf.size < n:
        raise DeviceError(f"buffer {buffer_name!r} shorter than reduction length {n}")
    half = n // 2
    while half >= 1:
        device.launch(
            reduce_add_stage_kernel, half, {"half": half}, binding={"v": buffer_name}
        )
        half //= 2
    return device.read_scalar(buffer_name, 0)

"""The Xmvp XOR-gather pass kernel.

One launch accumulates a single XOR offset ``m`` of the sparsified
product (see :mod:`repro.operators.xmvp`): work item ``ID`` performs

    acc[ID] += q · w[ID ^ m]

The gather ``w[ID ^ m]`` is the scattered memory access the paper blames
for Xmvp's fading competitiveness at large ν — the cost spec charges the
same bytes as a streaming pass (an optimistic model for the GPU, which
makes the measured Fmmp advantage in Figs. 3–4 a *lower* bound).
"""

from __future__ import annotations

import numpy as np

from repro.device.kernel import Kernel, KernelCosts
from repro.exceptions import DeviceError

__all__ = ["xmvp_pass_kernel"]


def _params(params) -> tuple[int, float]:
    try:
        mask = int(params["mask"])
        q = float(params["q"])
    except KeyError as exc:
        raise DeviceError(f"xmvp_pass kernel missing parameter {exc}") from None
    if mask < 0:
        raise DeviceError(f"mask must be non-negative, got {mask}")
    return mask, q


def _scalar(item_id: int, state, params) -> dict:
    mask, q = _params(params)
    return {("acc", item_id): state["acc"][item_id] + q * state["w"][item_id ^ mask]}


def _batch(ids: np.ndarray, buffers, params) -> None:
    mask, q = _params(params)
    buffers["acc"][ids] += q * buffers["w"][ids ^ mask]


#: ``acc[ID] += q · w[ID ^ mask]`` over the full vector.
xmvp_pass_kernel = Kernel(
    name="xmvp_pass",
    scalar_fn=_scalar,
    batch_fn=_batch,
    costs=KernelCosts(bytes_per_item=24.0, flops_per_item=2.0),
    buffer_names=("acc", "w"),
)

"""Radix-4 butterfly stage — Algorithm 2 generalized to 2-bit groups.

A grouped mutation factor ``Q_G ∈ R^{4×4}`` (e.g. one RNA nucleotide,
Sec. 2.2/5.2) occupying bits ``[s, s+2)`` mixes, for span ``h = 2^s``,
every quadruple ``v[j], v[j+h], v[j+2h], v[j+3h]``.  One launch runs
``N/4`` work items; the index arithmetic extends the paper's bit trick:

    offset = ID & (h − 1)
    j      = 4·ID − 3·offset        # = 4h·⌊ID/h⌋ + ID mod h

Cost per item: 8 f64 memory operations (4 loads + 4 stores) and 28
flops (a dense 4×4 matvec) — still bandwidth-bound, like its radix-2
parent.
"""

from __future__ import annotations

import numpy as np

from repro.device.kernel import Kernel, KernelCosts
from repro.exceptions import DeviceError

__all__ = ["make_group4_stage_kernel", "group4_stage_kernel_factory"]


def _check_params(params) -> int:
    try:
        span = int(params["span"])
    except KeyError:
        raise DeviceError("group4_stage kernel missing parameter 'span'") from None
    if span < 1 or (span & (span - 1)) != 0:
        raise DeviceError(f"span must be a positive power of two, got {span}")
    return span


def make_group4_stage_kernel(block: np.ndarray) -> Kernel:
    """Build the radix-4 stage kernel for a fixed 4×4 block.

    The block is baked in (16 coefficients exceed comfortable scalar
    launch parameters); ``span`` arrives per launch.
    """
    m = np.asarray(block, dtype=np.float64)
    if m.shape != (4, 4):
        raise DeviceError(f"group block must be 4x4, got {m.shape}")

    def scalar(item_id: int, state, params) -> dict:
        span = _check_params(params)
        v = state["v"]
        j = 4 * item_id - 3 * (item_id & (span - 1))
        t = [v[j + k * span] for k in range(4)]
        return {
            ("v", j + r * span): sum(m[r, c] * t[c] for c in range(4))
            for r in range(4)
        }

    def batch(ids: np.ndarray, buffers, params) -> None:
        span = _check_params(params)
        v = buffers["v"]
        j = 4 * ids - 3 * (ids & (span - 1))
        t = [v[j + k * span] for k in range(4)]
        for r in range(4):
            v[j + r * span] = m[r, 0] * t[0] + m[r, 1] * t[1] + m[r, 2] * t[2] + m[r, 3] * t[3]

    return Kernel(
        name="group4_stage",
        scalar_fn=scalar,
        batch_fn=batch,
        costs=KernelCosts(bytes_per_item=64.0, flops_per_item=28.0),
        buffer_names=("v",),
    )


def group4_stage_kernel_factory(blocks: list[np.ndarray]) -> list[Kernel]:
    """Kernels for a list of 4×4 blocks (one per 2-bit group)."""
    return [make_group4_stage_kernel(b) for b in blocks]

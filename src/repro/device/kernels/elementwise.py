"""Elementwise device kernels: scaling, products, axpy, norms' map steps.

Beyond the matvec, the power iteration needs vector scaling (the
normalization), diagonal products (applying ``F``), and the map halves
of norm/residual reductions (paper Sec. 4: "the power iteration method
only needs a fast procedure for the summation of the components of a
vector").
"""

from __future__ import annotations

import numpy as np

from repro.device.kernel import Kernel, KernelCosts

__all__ = [
    "scale_kernel",
    "pointwise_multiply_kernel",
    "multiply_into_kernel",
    "copy_kernel",
    "axpy_kernel",
    "square_into_kernel",
    "diff_square_into_kernel",
    "abs_kernel",
]


# --------------------------------------------------------------------- scale
def _scale_scalar(i, state, params):
    return {("v", i): state["v"][i] * float(params["alpha"])}


def _scale_batch(ids, buffers, params):
    buffers["v"][ids] *= float(params["alpha"])


#: ``v[i] *= alpha`` — used for 1-norm normalization.
scale_kernel = Kernel(
    "scale", _scale_scalar, _scale_batch, KernelCosts(16.0, 1.0), ("v",)
)


# ----------------------------------------------------------- diagonal product
def _pmul_scalar(i, state, params):
    return {("v", i): state["v"][i] * state["f"][i]}


def _pmul_batch(ids, buffers, params):
    buffers["v"][ids] *= buffers["f"][ids]


#: ``v[i] *= f[i]`` — applies the diagonal ``F`` in place (right form).
pointwise_multiply_kernel = Kernel(
    "pointwise_multiply", _pmul_scalar, _pmul_batch, KernelCosts(24.0, 1.0), ("v", "f")
)


def _mulinto_scalar(i, state, params):
    return {("dst", i): state["a"][i] * state["b"][i]}


def _mulinto_batch(ids, buffers, params):
    buffers["dst"][ids] = buffers["a"][ids] * buffers["b"][ids]


#: ``dst[i] = a[i] * b[i]`` — out-of-place diagonal product.
multiply_into_kernel = Kernel(
    "multiply_into", _mulinto_scalar, _mulinto_batch, KernelCosts(24.0, 1.0), ("dst", "a", "b")
)


# ----------------------------------------------------------------------- copy
def _copy_scalar(i, state, params):
    return {("dst", i): state["src"][i]}


def _copy_batch(ids, buffers, params):
    buffers["dst"][ids] = buffers["src"][ids]


#: ``dst[i] = src[i]`` — keeps the previous iterate for the residual.
copy_kernel = Kernel(
    "copy", _copy_scalar, _copy_batch, KernelCosts(16.0, 0.0), ("dst", "src")
)


# ----------------------------------------------------------------------- axpy
def _axpy_scalar(i, state, params):
    return {("y", i): state["y"][i] + float(params["alpha"]) * state["x"][i]}


def _axpy_batch(ids, buffers, params):
    buffers["y"][ids] += float(params["alpha"]) * buffers["x"][ids]


#: ``y[i] += alpha·x[i]`` — the shift ``W−μI`` costs exactly one of these.
axpy_kernel = Kernel(
    "axpy", _axpy_scalar, _axpy_batch, KernelCosts(24.0, 2.0), ("y", "x")
)


# ------------------------------------------------------------------ map steps
def _sq_scalar(i, state, params):
    return {("dst", i): state["src"][i] ** 2}


def _sq_batch(ids, buffers, params):
    buffers["dst"][ids] = buffers["src"][ids] ** 2


#: ``dst[i] = src[i]²`` — map half of a 2-norm reduction.
square_into_kernel = Kernel(
    "square_into", _sq_scalar, _sq_batch, KernelCosts(24.0, 1.0), ("dst", "src")
)


def _dsq_scalar(i, state, params):
    d = state["a"][i] - state["b"][i]
    return {("dst", i): d * d}


def _dsq_batch(ids, buffers, params):
    d = buffers["a"][ids] - buffers["b"][ids]
    buffers["dst"][ids] = d * d


#: ``dst[i] = (a[i]−b[i])²`` — map half of the residual ‖y−x‖₂.
diff_square_into_kernel = Kernel(
    "diff_square_into", _dsq_scalar, _dsq_batch, KernelCosts(32.0, 2.0), ("dst", "a", "b")
)


def _abs_scalar(i, state, params):
    return {("dst", i): abs(state["src"][i])}


def _abs_batch(ids, buffers, params):
    buffers["dst"][ids] = np.abs(buffers["src"][ids])


#: ``dst[i] = |src[i]|`` — map half of a 1-norm reduction.
abs_kernel = Kernel(
    "abs_into", _abs_scalar, _abs_batch, KernelCosts(24.0, 1.0), ("dst", "src")
)

"""Fused Xmvp kernel — the paper-style one-launch-per-matvec variant.

The per-mask :mod:`~repro.device.kernels.xmvp_kernel` re-reads and
re-writes the accumulator on every pass (24 B/item/mask).  A real OpenCL
implementation loops over the masks *inside* the work item, keeping the
accumulator in a register:

    acc = 0
    for (mask_k, q_k) in masks:            # all Σ C(ν,k) offsets
        acc += q_k · w[ID ^ mask_k]
    y[ID] = acc

— 8 bytes of traffic per mask per item (the gather) plus one write.
This kernel implements exactly that; its cost spec therefore depends on
the mask count, which is passed at construction.  It is the executable
counterpart of ``PipelineCostModel(fused_xmvp=True)`` and the two are
pinned together in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.device.kernel import Kernel, KernelCosts
from repro.exceptions import DeviceError

__all__ = ["make_fused_xmvp_kernel"]


def make_fused_xmvp_kernel(masks: np.ndarray, weights: np.ndarray) -> Kernel:
    """Build the fused kernel for a fixed mask/weight table.

    Parameters
    ----------
    masks:
        All XOR offsets (every popcount class, including the zero mask),
        ``int64``.
    weights:
        Matching ``QΓ_{popcount(mask)}`` weights.

    Returns
    -------
    Kernel
        Reads ``w``, writes ``y``; per-item cost ``8·(len(masks)+1)``
        bytes and ``2·len(masks)`` flops.
    """
    masks = np.asarray(masks, dtype=np.int64).reshape(-1)
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    if masks.shape != weights.shape or masks.size == 0:
        raise DeviceError("masks and weights must be equal-length and non-empty")

    def scalar(item_id: int, state, params) -> dict:
        w = state["w"]
        acc = 0.0
        for m, q in zip(masks, weights):
            acc += q * w[item_id ^ int(m)]
        return {("y", item_id): acc}

    def batch(ids: np.ndarray, buffers, params) -> None:
        w = buffers["w"]
        acc = np.zeros(len(ids))
        for m, q in zip(masks, weights):
            acc += q * w[ids ^ m]
        buffers["y"][ids] = acc

    return Kernel(
        name="xmvp_fused",
        scalar_fn=scalar,
        batch_fn=batch,
        costs=KernelCosts(
            bytes_per_item=8.0 * (masks.size + 1.0),
            flops_per_item=2.0 * masks.size,
        ),
        buffer_names=("y", "w"),
    )

"""The simulated device: buffer management, kernel launches, accounting.

Execution is numerically real (the vectorized batch path); *time* is
modeled with the roofline formula of the bound
:class:`~repro.device.profile.HardwareProfile`.  Every launch and
transfer is recorded, so a pipeline can report modeled wall-clock,
kernel counts, and traffic — the quantities behind Figures 3 and 4.

Validation: ``Device(validate=True)`` replays every launch's sampled
work items through the kernel's scalar specification against a
pre-launch snapshot and raises :class:`DeviceError` on any divergence.
This is how we demonstrate that the vectorized implementations have
exactly the semantics of the paper's Algorithm 2 (see
tests/test_device_kernels.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.buffer import DeviceBuffer
from repro.device.kernel import Kernel
from repro.device.profile import HardwareProfile
from repro.exceptions import DeviceError
from repro.util.rng import as_generator

__all__ = ["Device", "LaunchRecord"]


@dataclass
class LaunchRecord:
    """Bookkeeping for one kernel launch."""

    kernel: str
    global_size: int
    modeled_time_s: float
    bytes_moved: float
    flops: float


@dataclass
class _Accounting:
    kernel_time_s: float = 0.0
    transfer_time_s: float = 0.0
    launches: int = 0
    bytes_moved: float = 0.0
    bytes_transferred: float = 0.0
    flops: float = 0.0
    records: list[LaunchRecord] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return self.kernel_time_s + self.transfer_time_s


class Device:
    """A simulated accelerator bound to a hardware profile.

    Parameters
    ----------
    profile:
        The :class:`HardwareProfile` used for time modeling.
    validate:
        Replay sampled work items through each kernel's scalar
        specification after every launch (slow; for tests).
    validate_samples:
        Work items sampled per launch in validation mode (all items when
        the launch is smaller).
    seed:
        Seed for validation sampling.
    record_launches:
        Keep a :class:`LaunchRecord` per launch (disable for very long
        pipelines to bound memory).
    """

    def __init__(
        self,
        profile: HardwareProfile,
        *,
        validate: bool = False,
        validate_samples: int = 64,
        seed: int | None = 0,
        record_launches: bool = True,
    ):
        self.profile = profile
        self.validate = bool(validate)
        self.validate_samples = int(validate_samples)
        self.record_launches = bool(record_launches)
        self._rng = as_generator(seed)
        self._buffers: dict[str, DeviceBuffer] = {}
        self.accounting = _Accounting()

    # ------------------------------------------------------------- buffers
    def alloc(self, name: str, size: int) -> DeviceBuffer:
        """Allocate a named device buffer."""
        if name in self._buffers:
            raise DeviceError(f"buffer {name!r} already allocated")
        buf = DeviceBuffer(name, size)
        self._buffers[name] = buf
        return buf

    def free(self, name: str) -> None:
        """Release a buffer."""
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise DeviceError(f"no buffer named {name!r}")
        buf.release()

    def buffer(self, name: str) -> DeviceBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise DeviceError(f"no buffer named {name!r}") from None

    # ------------------------------------------------------------ transfers
    def to_device(self, name: str, host: np.ndarray) -> DeviceBuffer:
        """Host → device copy with transfer-time accounting."""
        buf = self.buffer(name)
        buf.write(host)
        self.accounting.transfer_time_s += self.profile.transfer_time(buf.nbytes)
        self.accounting.bytes_transferred += buf.nbytes
        return buf

    def from_device(self, name: str) -> np.ndarray:
        """Device → host copy with transfer-time accounting."""
        buf = self.buffer(name)
        self.accounting.transfer_time_s += self.profile.transfer_time(buf.nbytes)
        self.accounting.bytes_transferred += buf.nbytes
        return buf.read()

    def read_scalar(self, name: str, index: int = 0) -> float:
        """Read one element (e.g. a reduction result) — 8-byte transfer.

        This is how the host polls residuals/norms each iteration without
        paying a full-vector readback, as a real pipeline would.
        """
        buf = self.buffer(name)
        if not 0 <= index < buf.size:
            raise DeviceError(f"index {index} out of range for buffer {name!r}")
        self.accounting.transfer_time_s += self.profile.transfer_time(8.0)
        self.accounting.bytes_transferred += 8.0
        return float(buf.data[index])

    # -------------------------------------------------------------- launch
    def launch(
        self,
        kernel: Kernel,
        global_size: int,
        params: dict | None = None,
        binding: dict[str, str] | None = None,
    ) -> None:
        """Execute ``kernel`` over work items ``0 .. global_size-1``.

        Numerics run through the vectorized ``batch_fn``; the modeled
        duration is added to the accounting.  In validation mode, a
        sample of work items is replayed through the scalar
        specification first and compared against the batch result.

        Parameters
        ----------
        kernel, global_size, params:
            The kernel, its ND-range size, and its scalar parameters.
        binding:
            Maps the kernel's *formal* buffer names to actual device
            buffer names (identity by default) — the simulated analogue
            of ``clSetKernelArg``.
        """
        if global_size < 1:
            raise DeviceError(f"global_size must be >= 1, got {global_size}")
        params = dict(params or {})
        binding = binding or {}
        state = {}
        for bname in kernel.buffer_names:
            state[bname] = self.buffer(binding.get(bname, bname)).data

        snapshot = None
        if self.validate:
            snapshot = {k: v.copy() for k, v in state.items()}

        ids = np.arange(global_size, dtype=np.int64)
        kernel.batch_fn(ids, state, params)

        if self.validate:
            self._validate_launch(kernel, global_size, snapshot, state, params)

        bytes_moved = kernel.costs.bytes_per_item * global_size
        flops = kernel.costs.flops_per_item * global_size
        t = self.profile.kernel_time(bytes_moved, flops)
        acct = self.accounting
        acct.kernel_time_s += t
        acct.launches += 1
        acct.bytes_moved += bytes_moved
        acct.flops += flops
        if self.record_launches:
            acct.records.append(
                LaunchRecord(kernel.name, global_size, t, bytes_moved, flops)
            )

    def _validate_launch(self, kernel, global_size, snapshot, state, params) -> None:
        """Replay sampled work items through the scalar spec."""
        if global_size <= self.validate_samples:
            sample = np.arange(global_size)
        else:
            sample = self._rng.choice(global_size, size=self.validate_samples, replace=False)
        seen_writes: set[tuple[str, int]] = set()
        for item in sample:
            writes = kernel.scalar_fn(int(item), snapshot, params)
            for (bname, idx), value in writes.items():
                key = (bname, int(idx))
                if key in seen_writes:
                    raise DeviceError(
                        f"kernel {kernel.name!r}: work items write overlapping "
                        f"location {key} — illegal in a single launch"
                    )
                seen_writes.add(key)
                actual = state[bname][idx]
                if not np.isclose(actual, value, rtol=1e-12, atol=1e-300):
                    raise DeviceError(
                        f"kernel {kernel.name!r} divergence at item {item}, "
                        f"{bname}[{idx}]: scalar spec {value!r} vs batch {actual!r}"
                    )

    # ------------------------------------------------------------- reports
    def reset_accounting(self) -> None:
        self.accounting = _Accounting()

    @property
    def modeled_time_s(self) -> float:
        """Total modeled wall-clock so far (kernels + transfers)."""
        return self.accounting.total_time_s

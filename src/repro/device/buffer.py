"""Device-resident buffers.

A :class:`DeviceBuffer` wraps the NumPy array that *represents* device
memory.  Host code must go through :meth:`repro.device.runtime.Device`
transfer methods (which account PCIe time) rather than touching
``.data`` directly — tests and kernels are the only sanctioned direct
readers.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DeviceError

__all__ = ["DeviceBuffer"]


class DeviceBuffer:
    """A named, fixed-size float64 array living "on the device".

    Parameters
    ----------
    name:
        Identifier used by kernels to bind arguments.
    size:
        Number of float64 elements.
    """

    def __init__(self, name: str, size: int):
        if size < 1:
            raise DeviceError(f"buffer {name!r} must have positive size, got {size}")
        self.name = str(name)
        self.size = int(size)
        self.data = np.zeros(self.size, dtype=np.float64)
        self._released = False

    @property
    def nbytes(self) -> int:
        return self.size * 8

    def write(self, host: np.ndarray) -> None:
        """Copy host data in (no transfer accounting — Device does that)."""
        self._check_alive()
        host = np.asarray(host, dtype=np.float64)
        if host.shape != (self.size,):
            raise DeviceError(
                f"buffer {self.name!r} has size {self.size}, got host array {host.shape}"
            )
        self.data[:] = host

    def read(self) -> np.ndarray:
        """Copy device data out (no transfer accounting — Device does that)."""
        self._check_alive()
        return self.data.copy()

    def release(self) -> None:
        """Mark the buffer freed; further use is an error."""
        self._released = True

    def _check_alive(self) -> None:
        if self._released:
            raise DeviceError(f"buffer {self.name!r} was released")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else f"{self.size} f64"
        return f"DeviceBuffer({self.name!r}, {state})"

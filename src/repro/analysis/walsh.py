"""Walsh-spectral analysis of landscapes and distributions.

Section 2 diagonalizes ``Q`` in the Walsh basis; the same basis is the
natural "Fourier" decomposition of fitness landscapes and stationary
distributions over the Boolean cube.  The energy in popcount shell ``k``
measures order-``k`` epistatic interaction strength — additive
landscapes live in shells 0–1, pairwise-epistatic ones in shell 2, NK
landscapes spread energy up to shell K+1.  The shell profile also
predicts when the :class:`~repro.operators.truncated.TruncatedWalsh`
compression is effective (energy concentrated in low shells).
"""

from __future__ import annotations

import numpy as np

from repro.bitops.popcount import distance_to_master
from repro.exceptions import ValidationError
from repro.transforms.fwht import fwht
from repro.util.validation import check_chain_length, check_vector

__all__ = ["walsh_spectrum", "shell_energies", "epistasis_order", "effective_order"]


def walsh_spectrum(x: np.ndarray, nu: int) -> np.ndarray:
    """Walsh coefficients ``x̂ = V·x`` (orthonormal basis).

    Parseval holds: ``‖x̂‖₂ = ‖x‖₂``.
    """
    nu = check_chain_length(nu)
    x = check_vector(x, 1 << nu, "x")
    return fwht(x, ortho=True)


def shell_energies(x: np.ndarray, nu: int, *, normalized: bool = True) -> np.ndarray:
    """Energy ``Σ_{popcount(i)=k} x̂_i²`` per shell ``k = 0..ν``.

    With ``normalized=True`` the energies are divided by the total so
    they sum to one.
    """
    spec = walsh_spectrum(x, nu)
    labels = distance_to_master(nu)
    energy = np.bincount(labels, weights=spec**2, minlength=nu + 1)
    if normalized:
        total = energy.sum()
        if total <= 0.0:
            raise ValidationError("zero vector has no shell energies")
        energy = energy / total
    return energy


def epistasis_order(f: np.ndarray, nu: int, *, threshold: float = 1e-12) -> int:
    """Highest shell carrying non-negligible energy — the interaction
    order of a fitness landscape (0 = constant, 1 = additive,
    2 = pairwise epistasis, …)."""
    energy = shell_energies(f, nu)
    above = np.nonzero(energy > threshold)[0]
    return int(above.max()) if above.size else 0


def effective_order(x: np.ndarray, nu: int, *, mass: float = 0.99) -> int:
    """Smallest ``k`` such that shells ``0..k`` carry at least ``mass``
    of the energy — the k_max the truncated-Walsh operator would need
    to represent ``x`` at that fidelity."""
    if not 0.0 < mass <= 1.0:
        raise ValidationError(f"mass must be in (0, 1], got {mass}")
    energy = shell_energies(x, nu)
    cum = np.cumsum(energy)
    idx = np.nonzero(cum >= mass - 1e-15)[0]
    return int(idx[0]) if idx.size else nu

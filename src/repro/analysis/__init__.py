"""Analysis tools on top of the solvers.

* :mod:`repro.analysis.spectral` — the second eigenpair by deflation,
  spectral gap ``λ₁/λ₀`` (the power iteration's convergence rate, and a
  sharp order parameter for the error threshold: the gap closes at
  ``p_max``), and rate estimation from residual histories.
* :mod:`repro.analysis.statistics` — population-level readouts of a
  stationary distribution: consensus sequence, Shannon entropy of the
  mutant cloud, localization measures.
"""

from repro.analysis.spectral import (
    deflated_second_eigenpair,
    spectral_gap,
    estimate_rate_from_history,
    predicted_iterations,
)
from repro.analysis.statistics import (
    consensus_sequence,
    cloud_entropy,
    master_localization,
    summarize,
    QuasispeciesSummary,
)
from repro.analysis.resolution import (
    site_marginal,
    prefix_concentrations,
    kron_site_marginal,
)
from repro.analysis.walsh import (
    walsh_spectrum,
    shell_energies,
    epistasis_order,
    effective_order,
)

__all__ = [
    "walsh_spectrum",
    "shell_energies",
    "epistasis_order",
    "effective_order",
    "site_marginal",
    "prefix_concentrations",
    "kron_site_marginal",
    "deflated_second_eigenpair",
    "spectral_gap",
    "estimate_rate_from_history",
    "predicted_iterations",
    "consensus_sequence",
    "cloud_entropy",
    "master_localization",
    "summarize",
    "QuasispeciesSummary",
]

"""Classic closed-form quasispecies approximations, checked against exact.

Before fast exact solvers, the field worked with first-order theory
(Eigen 1971; Swetina & Schuster 1982 — the paper's refs. [5, 17]).  For
the single-peak landscape with superiority ``σ₀ = f_peak/f_rest``:

* master copying fidelity        ``Q̄ = (1−p)^ν``,
* error-threshold condition      ``Q̄·σ₀ > 1``  ⇒
  ``p_max = 1 − σ₀^{−1/ν} ≈ ln(σ₀)/ν``,
* stationary master frequency (neglecting back-mutation)
  ``x₀ ≈ (σ₀Q̄ − 1)/(σ₀ − 1)``,
* dominant eigenvalue (same approximation) ``λ₀ ≈ f_peak·Q̄``.

Having the exact machinery lets us do what the classic papers could
not: *measure* the approximation error of these formulas across the
phase diagram (see the tests and ``bench_classic_theory.py``) — they are
excellent deep in the ordered phase and fail, as expected, near the
threshold where back-mutation and the mutant cloud matter.
"""

from __future__ import annotations

import math

from repro.exceptions import ValidationError
from repro.landscapes.singlepeak import SinglePeakLandscape
from repro.util.validation import check_chain_length, check_error_rate

__all__ = [
    "master_fidelity",
    "classic_threshold",
    "no_backmutation_master_frequency",
    "no_backmutation_growth",
]


def master_fidelity(nu: int, p: float) -> float:
    """Probability ``Q̄ = (1−p)^ν`` of copying the master without error."""
    nu = check_chain_length(nu, max_nu=10_000)
    p = check_error_rate(p, allow_zero=True)
    return (1.0 - p) ** nu


def classic_threshold(nu: int, superiority: float, *, first_order: bool = False) -> float:
    """The classic error-threshold estimate.

    Exact condition of the no-backflow theory: ``(1−p)^ν σ₀ = 1`` ⇒
    ``p_max = 1 − σ₀^{−1/ν}``; with ``first_order=True`` the textbook
    expansion ``ln(σ₀)/ν`` is returned instead.
    """
    nu = check_chain_length(nu, max_nu=10_000)
    if superiority <= 1.0:
        raise ValidationError(f"superiority must exceed 1, got {superiority}")
    if first_order:
        return math.log(superiority) / nu
    return 1.0 - superiority ** (-1.0 / nu)


def no_backmutation_master_frequency(nu: int, p: float, superiority: float) -> float:
    """Swetina–Schuster stationary master frequency
    ``x₀ = (σ₀Q̄ − 1)/(σ₀ − 1)``, clipped at 0 above the threshold."""
    if superiority <= 1.0:
        raise ValidationError(f"superiority must exceed 1, got {superiority}")
    q = master_fidelity(nu, p)
    return max(0.0, (superiority * q - 1.0) / (superiority - 1.0))


def no_backmutation_growth(landscape: SinglePeakLandscape, p: float) -> float:
    """Dominant-eigenvalue approximation ``λ₀ ≈ f_peak·(1−p)^ν`` (valid
    below threshold), floored at ``f_rest`` (the delocalized value)."""
    if not isinstance(landscape, SinglePeakLandscape):
        raise ValidationError("the classic formulas assume the single-peak landscape")
    lam = landscape.f_peak * master_fidelity(landscape.nu, p)
    return max(lam, landscape.f_rest)

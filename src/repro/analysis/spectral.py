"""Spectral-gap analysis.

The power iteration's convergence rate is ``λ₁/λ₀`` (or, shifted,
``(λ₁−μ)/(λ₀−μ)`` — Sec. 3 of the paper).  Beyond predicting iteration
counts, the gap is physically meaningful: at the error threshold the
dominant eigenvalue of ``W`` becomes nearly degenerate (the ordered
quasispecies and the delocalized phase exchange stability), so
``λ₁/λ₀ → 1`` exactly where Fig. 1 shows the collapse.  The
gap-vs-threshold bench exercises this.

The second eigenpair is computed by *deflation* on the symmetric form:
power iteration on ``W_S − λ₀·x₀x₀ᵀ``, each step re-orthogonalized
against the known dominant eigenvector — one extra stored vector, in the
spirit of the paper's minimal-memory constraints.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.operators.base import ImplicitOperator
from repro.solvers.result import IterationRecord

__all__ = [
    "deflated_second_eigenpair",
    "spectral_gap",
    "estimate_rate_from_history",
    "predicted_iterations",
]


def deflated_second_eigenpair(
    operator: ImplicitOperator,
    eigenvalue: float,
    eigenvector: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iterations: int = 200_000,
    seed: int = 0,
) -> tuple[float, np.ndarray]:
    """Second eigenpair ``(λ₁, x₁)`` of a symmetric operator.

    Parameters
    ----------
    operator:
        Symmetric implicit operator (``form="symmetric"``).
    eigenvalue, eigenvector:
        The known dominant pair ``(λ₀, x₀)`` (any scaling; normalized
        internally).
    tol:
        Residual threshold ``‖W x₁ − λ₁ x₁‖₂``.

    Returns
    -------
    (lambda1, x1)
        The subdominant eigenvalue and a unit-2-norm eigenvector.
    """
    if not operator.is_symmetric:
        raise ValidationError(
            "deflation requires a symmetric operator; use form='symmetric'"
        )
    x0 = np.asarray(eigenvector, dtype=np.float64)
    nrm = np.linalg.norm(x0)
    if nrm == 0.0:
        raise ValidationError("dominant eigenvector must be nonzero")
    x0 = x0 / nrm

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(operator.n)
    x -= (x0 @ x) * x0
    x /= np.linalg.norm(x)

    lam1 = 0.0
    for it in range(1, max_iterations + 1):
        y = operator.matvec(x)
        y -= (x0 @ y) * x0  # deflate: project out the dominant direction
        lam1 = float(x @ y)
        residual = float(np.linalg.norm(y - lam1 * x))
        nrm = np.linalg.norm(y)
        if nrm == 0.0:
            raise ConvergenceError("deflated iterate collapsed", iterations=it)
        x = y / nrm
        if residual < tol:
            return lam1, x
    raise ConvergenceError(
        f"deflated power iteration did not reach tol={tol}",
        iterations=max_iterations,
        residual=residual,
    )


def spectral_gap(
    operator: ImplicitOperator,
    eigenvalue: float,
    eigenvector: np.ndarray,
    *,
    tol: float = 1e-9,
) -> float:
    """The ratio ``λ₁/λ₀ ∈ (0, 1)`` — the power iteration's rate.

    Values near 1 mean slow convergence *and* near-degeneracy of the
    stationary distribution (threshold vicinity).
    """
    lam1, _ = deflated_second_eigenpair(operator, eigenvalue, eigenvector, tol=tol)
    if eigenvalue <= 0.0:
        raise ValidationError("dominant eigenvalue must be positive")
    return abs(lam1) / float(eigenvalue)


def estimate_rate_from_history(history: list[IterationRecord], *, tail: int = 10) -> float:
    """Empirical convergence factor from a solver's residual history.

    Fits the geometric decay of the last ``tail`` residuals; equals
    ``λ₁/λ₀`` asymptotically for the (unshifted) power iteration.
    """
    resids = [h.residual for h in history if h.residual > 0.0 and math.isfinite(h.residual)]
    if len(resids) < 3:
        raise ValidationError("need at least 3 positive residuals to estimate a rate")
    resids = resids[-max(3, tail):]
    logs = np.log(resids)
    steps = np.arange(len(logs))
    slope = float(np.polyfit(steps, logs, 1)[0])
    return float(np.exp(slope))


def predicted_iterations(rate: float, *, start_residual: float, tol: float) -> int:
    """Iterations needed for a geometric residual ``r_k = r₀·rate^k`` to
    cross ``tol`` — the planning counterpart of the rate estimate."""
    if not 0.0 < rate < 1.0:
        raise ValidationError(f"rate must be in (0, 1), got {rate}")
    if start_residual <= 0.0 or tol <= 0.0:
        raise ValidationError("residuals must be positive")
    if start_residual <= tol:
        return 0
    return int(math.ceil(math.log(tol / start_residual) / math.log(rate)))

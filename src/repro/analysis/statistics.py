"""Population statistics of a stationary quasispecies distribution.

These are the biological readouts a virologist would compute from the
solver's output: the consensus sequence (per-site majority), the Shannon
entropy of the mutant cloud, and how strongly the population localizes
around the master sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.model.concentrations import class_concentrations, participation_ratio
from repro.util.validation import check_chain_length, check_vector

__all__ = [
    "consensus_sequence",
    "cloud_entropy",
    "master_localization",
    "summarize",
    "QuasispeciesSummary",
]


def consensus_sequence(x: np.ndarray, nu: int) -> int:
    """Per-site majority sequence of the distribution.

    Site ``s`` of the consensus is 1 iff the total concentration of
    sequences with bit ``s`` set exceeds 1/2.  For quasispecies
    distributions below the error threshold this recovers the master
    sequence even when no single sequence holds a majority.
    """
    nu = check_chain_length(nu)
    x = check_vector(x, 1 << nu, "x")
    total = float(x.sum())
    if total <= 0.0:
        raise ValidationError("distribution has no mass")
    idx = np.arange(1 << nu, dtype=np.int64)
    consensus = 0
    for s in range(nu):
        mass_one = float(x[(idx >> s) & 1 == 1].sum())
        if mass_one > total / 2.0:
            consensus |= 1 << s
    return consensus


def cloud_entropy(x: np.ndarray, *, base: float = 2.0, normalized: bool = False) -> float:
    """Shannon entropy of the distribution (bits by default).

    0 for a single dominant sequence, ``ν`` (=``log2 N``) for the
    uniform distribution above the error threshold.  With
    ``normalized=True`` the result is divided by ``log2 N`` to land in
    [0, 1].
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValidationError("expected a non-empty 1-D distribution")
    if np.any(x < 0.0):
        raise ValidationError("concentrations must be non-negative")
    total = float(x.sum())
    if total <= 0.0:
        raise ValidationError("distribution has no mass")
    p = x / total
    nz = p[p > 0.0]
    h = float(-(nz * np.log(nz)).sum() / np.log(base))
    if normalized:
        h /= np.log(x.size) / np.log(base)
    return h


def master_localization(x: np.ndarray, nu: int, *, radius: int = 1) -> float:
    """Fraction of the population within Hamming distance ``radius`` of
    the master — the "localized" order parameter of the ordered phase."""
    nu = check_chain_length(nu)
    if not 0 <= radius <= nu:
        raise ValidationError(f"radius must be in [0, {nu}], got {radius}")
    gamma = class_concentrations(x, nu)
    return float(gamma[: radius + 1].sum() / gamma.sum())


@dataclass
class QuasispeciesSummary:
    """One-glance description of a stationary distribution."""

    nu: int
    consensus: int
    dominant_index: int
    dominant_concentration: float
    entropy_bits: float
    entropy_normalized: float
    participation_ratio: float
    localization_radius1: float
    class_concentrations: np.ndarray

    @property
    def is_ordered(self) -> bool:
        """Heuristic phase call: ordered if the cloud occupies a
        vanishing fraction of sequence space (normalized entropy well
        below the uniform value)."""
        return self.entropy_normalized < 0.5


def summarize(x: np.ndarray, nu: int) -> QuasispeciesSummary:
    """Compute the full :class:`QuasispeciesSummary` of a distribution."""
    nu = check_chain_length(nu)
    x = check_vector(x, 1 << nu, "x")
    dominant = int(np.argmax(x))
    return QuasispeciesSummary(
        nu=nu,
        consensus=consensus_sequence(x, nu),
        dominant_index=dominant,
        dominant_concentration=float(x[dominant] / x.sum()),
        entropy_bits=cloud_entropy(x),
        entropy_normalized=cloud_entropy(x, normalized=True),
        participation_ratio=participation_ratio(x),
        localization_radius1=master_localization(x, nu, radius=1),
        class_concentrations=class_concentrations(x, nu),
    )

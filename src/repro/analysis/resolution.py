"""Multi-resolution concentration queries (paper future work, implemented).

The conclusions name "efficient methods which allow for computing
quasispecies concentrations at various resolution levels" as an open
direction.  Two natural resolution hierarchies:

* **site marginals / subcube aggregation** — marginalize the
  distribution onto any subset ``S`` of sites: the probability of each
  of the ``2^{|S|}`` configurations of those sites, all other sites
  summed out.  For an explicit vector this is one reshape+sum
  (``Θ(N)``); for the implicit Kronecker eigenvectors of Sec. 5.2 it
  factors over the groups and costs only ``Θ(Σ 2^{g_i})`` — resolution
  queries on a ν = 100 model without ever materializing it.
* **prefix coarse-graining** — aggregate into ``2^ℓ`` blocks by the top
  ``ℓ`` index bits (level-ℓ resolution of the sequence-space binary
  tree), the natural "zoom" hierarchy of the butterfly layout.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.solvers.kron_solver import KroneckerEigenvector
from repro.util.validation import check_chain_length, check_vector

__all__ = ["site_marginal", "prefix_concentrations", "kron_site_marginal"]


def site_marginal(x: np.ndarray, nu: int, sites: Sequence[int]) -> np.ndarray:
    """Marginal distribution of the given sites (explicit vector).

    Parameters
    ----------
    x:
        Concentration vector of length ``2**nu``.
    nu:
        Chain length.
    sites:
        Distinct site indices (bit positions, LSB = site 0), in the
        order the output configurations should be indexed: entry ``c``
        of the result is the total concentration of sequences whose
        selected sites spell the binary number ``c`` (``sites[0]`` is
        the least significant output bit).

    Returns
    -------
    numpy.ndarray
        Length ``2**len(sites)`` marginal (sums to ``x.sum()``).
    """
    nu = check_chain_length(nu)
    x = check_vector(x, 1 << nu, "x")
    sites = list(sites)
    if len(set(sites)) != len(sites):
        raise ValidationError("sites must be distinct")
    if not sites:
        raise ValidationError("at least one site is required")
    for s in sites:
        if not 0 <= s < nu:
            raise ValidationError(f"site {s} out of range [0, {nu})")
    idx = np.arange(1 << nu, dtype=np.int64)
    config = np.zeros(1 << nu, dtype=np.int64)
    for out_bit, s in enumerate(sites):
        config |= ((idx >> s) & 1) << out_bit
    return np.bincount(config, weights=x, minlength=1 << len(sites))


def prefix_concentrations(x: np.ndarray, nu: int, level: int) -> np.ndarray:
    """Coarse-grained concentrations at tree level ``level``.

    Aggregates over the ``2^{ν−ℓ}`` sequences sharing each of the
    ``2^ℓ`` most-significant-bit prefixes: level 0 is the total mass,
    level ν the full vector.
    """
    nu = check_chain_length(nu)
    if not 0 <= level <= nu:
        raise ValidationError(f"level must be in [0, {nu}], got {level}")
    x = check_vector(x, 1 << nu, "x")
    return x.reshape(1 << level, -1).sum(axis=1)


def kron_site_marginal(
    vec: KroneckerEigenvector, sites: Sequence[int]
) -> np.ndarray:
    """Site marginal of an *implicit* Kronecker eigenvector.

    The distribution factors over the bit groups, so the marginal is the
    Kronecker product of per-group marginals — computable for chain
    lengths whose full vector could never be stored (the ν = 100 case of
    Sec. 5.2).

    Sites use the same global bit convention as everywhere (LSB = site
    0); the output is indexed like :func:`site_marginal`.
    """
    sites = list(sites)
    if not sites or len(set(sites)) != len(sites):
        raise ValidationError("sites must be non-empty and distinct")
    for s in sites:
        if not 0 <= s < vec.nu:
            raise ValidationError(f"site {s} out of range [0, {vec.nu})")

    # Locate each factor's global bit range.  Factors are stored MSB
    # group first: factor 0 covers bits [nu − g₀, nu); within a group,
    # the group's LSB is its lowest global bit.
    factors = vec.factors
    bits = vec.group_sizes
    ranges = []
    hi = vec.nu
    for g in bits:
        ranges.append((hi - g, hi))
        hi -= g

    # Sites in different groups are independent (the distribution is a
    # product over groups), so the joint marginal is the product of the
    # per-group joint marginals; sites sharing a group stay correlated
    # and are marginalized jointly within it.
    by_group: dict[int, list[int]] = {}
    for pos, s in enumerate(sites):
        for gi, (lo, hi_) in enumerate(ranges):
            if lo <= s < hi_:
                by_group.setdefault(gi, []).append(pos)
                break

    out_dim = 1 << len(sites)
    out_idx = np.arange(out_dim)
    table = np.ones(out_dim)
    for gi, positions in by_group.items():
        lo, _ = ranges[gi]
        f = factors[gi]
        g = bits[gi]
        idx = np.arange(1 << g)
        # Output configuration contributed by this group's sites, for
        # every internal state of the group.
        conf = np.zeros(1 << g, dtype=np.int64)
        mask = 0
        for pos in positions:
            conf |= ((idx >> (sites[pos] - lo)) & 1) << pos
            mask |= 1 << pos
        group_marginal = np.bincount(conf, weights=f / f.sum(), minlength=out_dim)
        # Bits owned by other groups are free: broadcast over them.
        table *= group_marginal[out_idx & mask]
    return table

"""Batch planner: dedup, operator grouping, and cost-ordered execution.

Given a manifest of :class:`~repro.service.jobspec.SolveJob` requests,
:func:`plan_batch` produces a :class:`BatchPlan` that the worker pool
executes:

1. **Deduplication** — jobs with identical content hashes are collapsed
   to one physical solve; the plan's ``index_map`` expands results back
   to the original request order.
2. **Operator grouping** — jobs sharing a mutation operator (same ν, p,
   mutation family, seed — i.e. the same Q-factor tables and FWHT
   plans) are placed in one :class:`JobGroup`, so workers build the
   operator once per group (a per-process build memo in
   :mod:`repro.service.pool` realizes the sharing).
3. **Cost ordering** — groups of reduced (ν+1)-sized jobs run before
   full 2^ν groups, and cheaper groups before expensive ones (flop
   estimates from :mod:`repro.perf.costs`), so short jobs are never
   stuck behind long ones and cache-priming results appear early.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.perf.costs import operator_costs
from repro.service.jobspec import SolveJob

__all__ = [
    "JobGroup",
    "BatchPlan",
    "BatchedSolveJob",
    "estimate_cost",
    "plan_batch",
    "is_batchable",
    "plan_batched_jobs",
]

#: nominal iteration count used to price one iterative full-size solve
_NOMINAL_ITERATIONS = 200.0


def estimate_cost(job: SolveJob) -> float:
    """Rough flop estimate for one solve of ``job`` (planning only).

    Reduced jobs cost one dense (ν+1) eigendecomposition; dense full
    solves cost ``N³``; iterative full routes cost the per-matvec flops
    of their operator (:func:`repro.perf.costs.operator_costs`) times a
    nominal iteration count.  Only the *relative* ordering matters.
    """
    method = job.resolved_method()
    n = float(job.n)
    if method == "reduced":
        return float(job.nu + 1) ** 3
    if method == "dense":
        return n**3
    if method == "kronecker":
        # decoupled per-group eigenproblems: negligible next to full N
        return sum(float(1 << g) ** 3 for g in _kron_groups(job))
    operator = job.operator
    dmax = job.dmax if operator == "xmvp" else None
    if operator == "xmvp":
        dmax = dmax or job.nu
    flops = operator_costs(operator, job.nu, dmax).flops
    return flops * _NOMINAL_ITERATIONS


def _kron_groups(job: SolveJob) -> tuple[int, ...]:
    from repro.service.jobspec import split_groups

    return split_groups(job.nu)


@dataclass
class JobGroup:
    """Unique jobs sharing one operator build, in execution order."""

    key: str
    indices: list[int] = field(default_factory=list)  # into BatchPlan.unique_jobs
    reduced: bool = False
    cost: float = 0.0


@dataclass
class BatchPlan:
    """The scheduler's output: what to solve, once, and in what order.

    Attributes
    ----------
    jobs:
        The original request list (duplicates included).
    unique_jobs:
        One job per distinct content hash, in first-seen order.
    index_map:
        ``index_map[i]`` is the index into ``unique_jobs`` serving
        original request ``i``.
    groups:
        Operator-sharing groups in execution order (reduced first,
        then by ascending cost estimate).
    """

    jobs: list[SolveJob]
    unique_jobs: list[SolveJob]
    index_map: list[int]
    groups: list[JobGroup]

    @property
    def order(self) -> list[int]:
        """Indices into ``unique_jobs`` in planned execution order."""
        return [i for group in self.groups for i in group.indices]

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_unique(self) -> int:
        return len(self.unique_jobs)

    @property
    def n_duplicates(self) -> int:
        """Requests answered by another identical request's solve."""
        return len(self.jobs) - len(self.unique_jobs)

    def multiplicity(self, unique_index: int) -> int:
        """How many original requests map to ``unique_jobs[unique_index]``."""
        return sum(1 for u in self.index_map if u == unique_index)

    def group_of(self, unique_index: int) -> JobGroup:
        """The operator group containing ``unique_jobs[unique_index]``."""
        for group in self.groups:
            if unique_index in group.indices:
                return group
        raise IndexError(f"unique index {unique_index} not in any group")

    def to_dict(self) -> dict:
        """Scalar summary for batch reports."""
        return {
            "jobs": self.n_jobs,
            "unique_jobs": self.n_unique,
            "duplicates": self.n_duplicates,
            "groups": len(self.groups),
            "reduced_jobs": sum(len(g.indices) for g in self.groups if g.reduced),
        }


@dataclass(frozen=True)
class BatchedSolveJob:
    """A block of operator-sharing jobs to solve in one butterfly stream.

    Every member shares the mutation operator ``Q`` (same
    :meth:`~repro.service.jobspec.SolveJob.operator_key`) and the
    eigenproblem form; the landscapes differ per column.  The pool
    executes it through
    :class:`~repro.solvers.power.BlockPowerIteration` on one
    :class:`~repro.operators.batched.BatchedFmmp`, with per-column
    shifts and per-column convergence bookkeeping.

    Attributes
    ----------
    key:
        The shared operator key (group identity).
    form:
        The shared eigenproblem form.
    indices:
        Positions of the member jobs in ``BatchPlan.unique_jobs``.
    jobs:
        The member jobs, aligned with ``indices``.
    """

    key: str
    form: str
    indices: tuple[int, ...]
    jobs: tuple[SolveJob, ...]

    @property
    def batch(self) -> int:
        return len(self.jobs)

    @property
    def tol(self) -> float:
        """The tightest member tolerance — satisfying it satisfies all."""
        return min(j.tol for j in self.jobs)

    @property
    def max_iterations(self) -> int:
        return max(int(j.max_iterations) for j in self.jobs)

    def label(self) -> str:
        first = self.jobs[0]
        return (
            f"batched[B={self.batch}] nu={first.nu} p={first.p:g} "
            f"mutation={first.mutation} form={self.form}"
        )


def is_batchable(job: SolveJob) -> bool:
    """Whether ``job`` can ride the batched multi-vector power route.

    Batchable jobs are full-size power solves on the Fmmp operator —
    the route :class:`~repro.operators.batched.BatchedFmmp` implements.
    Reduced/dense/Krylov/kronecker routes keep their scalar paths (they
    are either already (ν+1)-sized or need per-job Krylov state).
    """
    return job.resolved_method() == "power" and job.operator == "fmmp"


def plan_batched_jobs(
    plan: BatchPlan,
    subset: Sequence[int] | None = None,
    *,
    min_batch: int = 2,
) -> list[BatchedSolveJob]:
    """Extract batched blocks from a plan's operator-sharing groups.

    Walks each :class:`JobGroup`, keeps its batchable members (within
    ``subset`` when given — the service passes the cache-miss indices),
    sub-groups them by eigenproblem form (one
    :class:`~repro.operators.batched.BatchedFmmp` has a single form),
    and emits a :class:`BatchedSolveJob` for every sub-group of at least
    ``min_batch`` jobs.  Smaller sub-groups stay on the scalar route —
    a one-column block has nothing to amortize.
    """
    if min_batch < 1:
        from repro.exceptions import ValidationError

        raise ValidationError(f"min_batch must be >= 1, got {min_batch}")
    allowed = None if subset is None else set(subset)
    blocks: list[BatchedSolveJob] = []
    for group in plan.groups:
        if group.reduced:
            continue
        by_form: dict[str, list[int]] = {}
        for idx in group.indices:
            if allowed is not None and idx not in allowed:
                continue
            job = plan.unique_jobs[idx]
            if not is_batchable(job):
                continue
            by_form.setdefault(job.form, []).append(idx)
        for form in sorted(by_form):
            indices = by_form[form]
            if len(indices) < min_batch:
                continue
            blocks.append(
                BatchedSolveJob(
                    key=group.key,
                    form=form,
                    indices=tuple(indices),
                    jobs=tuple(plan.unique_jobs[i] for i in indices),
                )
            )
    return blocks


def plan_batch(jobs: list[SolveJob]) -> BatchPlan:
    """Plan a batch: dedup → group by operator → order by cost.

    Deterministic: equal inputs give equal plans (grouping keys are
    content hashes, ties broken by first-seen order).
    """
    unique_jobs: list[SolveJob] = []
    index_map: list[int] = []
    seen: dict[str, int] = {}
    for job in jobs:
        key = job.content_key()
        if key not in seen:
            seen[key] = len(unique_jobs)
            unique_jobs.append(job)
        index_map.append(seen[key])

    groups: dict[str, JobGroup] = {}
    for idx, job in enumerate(unique_jobs):
        key = job.operator_key()
        group = groups.get(key)
        if group is None:
            group = groups[key] = JobGroup(key=key, reduced=job.is_reduced)
        group.indices.append(idx)
        group.cost += estimate_cost(job)

    ordered = sorted(
        groups.values(),
        key=lambda g: (not g.reduced, g.cost, min(g.indices)),
    )
    for group in ordered:
        group.indices.sort(key=lambda i: (estimate_cost(unique_jobs[i]), i))
    return BatchPlan(
        jobs=list(jobs),
        unique_jobs=unique_jobs,
        index_map=index_map,
        groups=ordered,
    )

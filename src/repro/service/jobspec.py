"""Canonical solve-job specifications and content hashing.

This module is the *single source of truth* for describing one
quasispecies problem declaratively — plain scalars and strings only —
shared by the verification harness (:mod:`repro.verify.spec`), the
serving layer (:mod:`repro.service`), and the batch CLI.

Two layers of description live here:

:class:`ProblemSpec`
    The mathematical problem: chain length, error rate, landscape
    family, mutation family, seed.  Declarative, hashable, and
    deterministic — the same spec rebuilds identical landscape and
    mutation objects inside pytest, the CLI, the scheduler workers, and
    any future remote backend.  (Extracted from ``repro.verify.spec``,
    which now re-exports it, so the verification grids and the service
    layer can never drift apart.)

:class:`SolveJob`
    A problem *plus* a solver route (method, operator, eigenproblem
    form, shift, tolerances).  Jobs are content-addressed:
    :meth:`SolveJob.content_key` is a deterministic SHA-256 over a
    canonical payload (floats serialized via ``float.hex`` so hashing is
    exact, keys sorted), :meth:`SolveJob.cache_key` drops the accuracy
    knobs (``tol``/``max_iterations``/``tag``) so the result cache can
    serve a *tighter* cached solve to a *looser* request, and
    :meth:`SolveJob.operator_key` identifies jobs that share the same
    mutation operator (ν, p, mutation family, seed) so Q-factor tables
    and FWHT plans are built once per group.

:class:`JobResult`
    The service-level result payload: dominant eigenvalue plus the
    (ν+1) error-class concentrations — uniform across every route
    (full 2^ν solves are contracted to classes), light enough to cache
    on disk by the thousands.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes import (
    HammingLandscape,
    KroneckerLandscape,
    LinearLandscape,
    RandomLandscape,
    SinglePeakLandscape,
)
from repro.landscapes.base import FitnessLandscape
from repro.mutation import (
    GroupedMutation,
    MutationModel,
    PerSiteMutation,
    UniformMutation,
    site_factor,
)
from repro.util.rng import as_generator
from repro.util.validation import check_chain_length, check_error_rate

__all__ = [
    "LANDSCAPE_KINDS",
    "MUTATION_KINDS",
    "JOB_METHODS",
    "ProblemSpec",
    "SolveJob",
    "JobResult",
    "split_groups",
    "canonical_payload",
    "content_hash",
]

LANDSCAPE_KINDS = ("single-peak", "linear", "flat", "random", "kronecker")
MUTATION_KINDS = ("uniform", "persite", "grouped")

#: solver routes a job may request (``auto`` defers to the model's
#: structural dispatch; ``shift-invert`` is the CG inverse-iteration
#: route of :func:`repro.solvers.shift_invert.cg_inverse_iteration`).
JOB_METHODS = (
    "auto",
    "power",
    "dense",
    "reduced",
    "kronecker",
    "lanczos",
    "arnoldi",
    "shift-invert",
)

_OPERATORS = ("fmmp", "xmvp", "smvp")
_FORMS = ("right", "left", "symmetric")

#: landscape kinds whose class structure admits the exact (ν+1) reduction
_ERROR_CLASS_KINDS = ("single-peak", "linear", "flat", "hamming")


def split_groups(nu: int, max_group: int = 3) -> tuple[int, ...]:
    """Deterministic split of ``ν`` bits into groups of size ≤ ``max_group``.

    Used to give Kronecker landscapes and grouped mutation models a
    reproducible structure for any chain length.
    """
    nu = check_chain_length(nu)
    if max_group < 1:
        raise ValidationError(f"max_group must be >= 1, got {max_group}")
    groups: list[int] = []
    left = nu
    while left > 0:
        g = min(max_group, left)
        groups.append(g)
        left -= g
    return tuple(groups)


# ------------------------------------------------------------- hashing
def canonical_payload(obj):
    """Recursively canonicalize ``obj`` for deterministic hashing.

    Floats go through :meth:`float.hex` (exact, locale-independent),
    tuples become lists, dict keys are emitted sorted by
    :func:`content_hash`'s JSON serialization.  Raises for types with no
    canonical form (no silent ``repr`` fallbacks).
    """
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, np.floating):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(x) for x in obj]
    if isinstance(obj, np.ndarray):
        return [canonical_payload(x) for x in obj.tolist()]
    if isinstance(obj, dict):
        return {str(k): canonical_payload(v) for k, v in obj.items()}
    raise ValidationError(f"cannot canonicalize {type(obj).__name__} for hashing")


def content_hash(obj) -> str:
    """Deterministic SHA-256 hex digest of a canonicalized payload."""
    blob = json.dumps(canonical_payload(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ProblemSpec:
    """One quasispecies problem, fully determined by plain scalars.

    Attributes
    ----------
    nu:
        Chain length ``ν`` (``N = 2**ν``).
    p:
        Nominal per-site error rate; per-site/grouped models derive
        their (seeded) heterogeneous rates from it.
    landscape:
        One of :data:`LANDSCAPE_KINDS`.
    mutation:
        One of :data:`MUTATION_KINDS`.
    peak, floor:
        Master / background fitness used by the structured landscapes.
    seed:
        Seed for every random ingredient (random landscape values,
        per-site rate jitter, grouped-block mixing).
    """

    nu: int
    p: float
    landscape: str = "single-peak"
    mutation: str = "uniform"
    peak: float = 2.0
    floor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_chain_length(self.nu)
        check_error_rate(self.p, allow_zero=True)
        if self.landscape not in LANDSCAPE_KINDS:
            raise ValidationError(
                f"landscape must be one of {LANDSCAPE_KINDS}, got {self.landscape!r}"
            )
        if self.mutation not in MUTATION_KINDS:
            raise ValidationError(
                f"mutation must be one of {MUTATION_KINDS}, got {self.mutation!r}"
            )

    # --------------------------------------------------------------- label
    @property
    def n(self) -> int:
        return 1 << self.nu

    def label(self) -> str:
        """Compact human-readable identifier used in reports."""
        return (
            f"nu={self.nu} p={self.p:g} landscape={self.landscape} "
            f"mutation={self.mutation} seed={self.seed}"
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        return cls(**data)

    def with_(self, **changes) -> "ProblemSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **changes)

    def content_key(self) -> str:
        """Deterministic content hash of this problem description."""
        return content_hash(self.to_dict())

    # ------------------------------------------------------------ builders
    def build_landscape(self) -> FitnessLandscape:
        """Materialize the landscape object this spec describes."""
        if self.landscape == "single-peak":
            return SinglePeakLandscape(self.nu, self.peak, self.floor)
        if self.landscape == "linear":
            return LinearLandscape(self.nu, self.peak, self.floor)
        if self.landscape == "flat":
            # Flat is a (degenerate) error-class landscape: phi(k) = floor.
            return HammingLandscape(self.nu, [self.floor] * (self.nu + 1))
        if self.landscape == "random":
            return RandomLandscape(
                self.nu,
                c=max(self.peak, 1.5),
                sigma=min(1.0, max(self.peak, 1.5) / 3.0),
                seed=self.seed,
            )
        # kronecker
        rng = as_generator(self.seed)
        diagonals = [
            self.floor + (self.peak - self.floor) * rng.random(1 << g) + 0.1
            for g in split_groups(self.nu)
        ]
        return KroneckerLandscape(diagonals)

    def build_mutation(self) -> MutationModel:
        """Materialize the mutation model this spec describes."""
        if self.mutation == "uniform":
            return UniformMutation(self.nu, self.p)
        rng = as_generator(self.seed + 1)
        if self.mutation == "persite":
            factors = []
            for _ in range(self.nu):
                p01 = self._jitter_rate(rng)
                p10 = self._jitter_rate(rng)
                factors.append(site_factor(p01, p10))
            return PerSiteMutation(factors)
        # grouped: per-group blocks = convex mix of a product-of-sites
        # block with a random column-stochastic matrix, so the blocks are
        # genuinely non-product (exercising the Kronecker contraction).
        blocks = []
        for g in split_groups(self.nu):
            block = np.ones((1, 1))
            for _ in range(g):
                block = np.kron(block, site_factor(self._jitter_rate(rng), self._jitter_rate(rng)))
            noise = rng.random((1 << g, 1 << g)) + 1e-3
            noise /= noise.sum(axis=0, keepdims=True)
            blocks.append(0.9 * block + 0.1 * noise)
        return GroupedMutation(blocks)

    def _jitter_rate(self, rng: np.random.Generator) -> float:
        """A per-site rate near ``p`` (equal to ``p`` at the degenerate
        corners so p = 0 / p = 1/2 stay exactly degenerate)."""
        if self.p in (0.0, 0.5):
            return self.p
        lo = 0.5 * self.p
        hi = min(0.5, 1.5 * self.p)
        return float(lo + (hi - lo) * rng.random())


@dataclass(frozen=True)
class SolveJob:
    """One content-addressed solve request: a problem plus a route.

    The problem fields mirror :class:`ProblemSpec` with one extension:
    ``landscape="hamming"`` carries an explicit tuple of ν+1 class
    fitness values (how the sweep runners describe arbitrary
    Hamming-structured landscapes).  The route fields mirror
    :meth:`repro.model.quasispecies.QuasispeciesModel.solve`.

    Attributes
    ----------
    method, operator, form, dmax, shift:
        The solver route (see :data:`JOB_METHODS`).
    tol, max_iterations:
        Accuracy knobs — excluded from :meth:`cache_key` so a cached
        solve at *tighter* tolerance satisfies a *looser* request.
    tag:
        Free-form manifest label; never hashed.
    """

    nu: int
    p: float
    landscape: str = "single-peak"
    mutation: str = "uniform"
    peak: float = 2.0
    floor: float = 1.0
    seed: int = 0
    class_values: tuple | None = None
    method: str = "auto"
    operator: str = "fmmp"
    form: str = "right"
    dmax: int | None = None
    shift: bool | float = False
    tol: float = 1e-12
    max_iterations: int = 100_000
    tag: str = ""

    def __post_init__(self) -> None:
        check_chain_length(self.nu)
        check_error_rate(self.p, allow_zero=True)
        if self.landscape == "hamming":
            if self.class_values is None:
                raise ValidationError("landscape='hamming' requires class_values")
            values = tuple(float(v) for v in self.class_values)
            if len(values) != self.nu + 1:
                raise ValidationError(
                    f"class_values must have nu+1={self.nu + 1} entries, got {len(values)}"
                )
            object.__setattr__(self, "class_values", values)
        else:
            if self.landscape not in LANDSCAPE_KINDS:
                raise ValidationError(
                    f"landscape must be 'hamming' or one of {LANDSCAPE_KINDS}, "
                    f"got {self.landscape!r}"
                )
            if self.class_values is not None:
                raise ValidationError("class_values is only valid with landscape='hamming'")
        if self.mutation not in MUTATION_KINDS:
            raise ValidationError(
                f"mutation must be one of {MUTATION_KINDS}, got {self.mutation!r}"
            )
        if self.method not in JOB_METHODS:
            raise ValidationError(f"method must be one of {JOB_METHODS}, got {self.method!r}")
        if self.operator not in _OPERATORS:
            raise ValidationError(f"operator must be one of {_OPERATORS}, got {self.operator!r}")
        if self.form not in _FORMS:
            raise ValidationError(f"form must be one of {_FORMS}, got {self.form!r}")
        if self.dmax is not None and not 1 <= int(self.dmax) <= self.nu:
            raise ValidationError(f"dmax must be in [1, {self.nu}], got {self.dmax}")
        if not isinstance(self.shift, bool) and not isinstance(self.shift, (int, float)):
            raise ValidationError(f"shift must be a bool or a float, got {self.shift!r}")
        if not (isinstance(self.tol, (int, float)) and self.tol > 0):
            raise ValidationError(f"tol must be positive, got {self.tol!r}")
        if int(self.max_iterations) < 1:
            raise ValidationError(f"max_iterations must be >= 1, got {self.max_iterations}")

    # ------------------------------------------------------------ identity
    @property
    def n(self) -> int:
        return 1 << self.nu

    def label(self) -> str:
        """Compact identifier used in batch reports and CLI tables."""
        base = (
            f"nu={self.nu} p={self.p:g} landscape={self.landscape} "
            f"mutation={self.mutation} method={self.method}"
        )
        return f"{self.tag}: {base}" if self.tag else base

    def _problem_payload(self) -> dict:
        return {
            "nu": self.nu,
            "p": self.p,
            "landscape": self.landscape,
            "mutation": self.mutation,
            "peak": self.peak,
            "floor": self.floor,
            "seed": self.seed,
            "class_values": self.class_values,
        }

    def _route_payload(self) -> dict:
        return {
            "method": self.method,
            "operator": self.operator,
            "form": self.form,
            "dmax": self.dmax,
            "shift": self.shift,
        }

    def content_key(self) -> str:
        """Full content hash (problem + route + accuracy knobs)."""
        payload = self._problem_payload() | self._route_payload()
        payload |= {"tol": self.tol, "max_iterations": self.max_iterations}
        return content_hash(payload)

    def cache_key(self) -> str:
        """Content hash *excluding* accuracy knobs (``tol``,
        ``max_iterations``) and the cosmetic ``tag`` — the key under
        which the tolerance-aware result cache files this job."""
        return content_hash(self._problem_payload() | self._route_payload())

    def operator_key(self) -> str:
        """Hash identifying jobs that share operator construction.

        Jobs with equal keys use the same mutation operator (same ν, p,
        mutation family, seed), so Q-factor tables / FWHT plans built
        for one serve the whole group; reduced jobs group separately
        (they share the (ν+1) machinery instead).  The uniform model
        ignores the seed (``Q`` depends on ν and p only), so uniform
        jobs group *across* seeds — a random-landscape grid over many
        seeds is a single operator group, i.e. one batched butterfly
        stream.
        """
        payload = {
            "nu": self.nu,
            "p": self.p,
            "mutation": self.mutation,
            "seed": None if self.mutation == "uniform" else self.seed,
            "reduced": self.is_reduced,
            "operator": None if self.is_reduced else self.operator,
            "dmax": None if self.is_reduced else self.dmax,
        }
        return content_hash(payload)

    # ----------------------------------------------------------- structure
    def resolved_method(self) -> str:
        """The concrete route ``auto`` dispatches to (for planning).

        Mirrors the model's structural dispatch: the exact (ν+1)
        reduction whenever the landscape is Hamming-structured and the
        mutation uniform, otherwise the full-size power route.
        """
        if self.method != "auto":
            return self.method
        if self.mutation == "uniform" and self.landscape in _ERROR_CLASS_KINDS:
            return "reduced"
        if self.landscape == "kronecker" and self.mutation == "grouped":
            return "kronecker"
        return "power"

    @property
    def is_reduced(self) -> bool:
        """True when this job runs in the (ν+1)-dimensional reduction."""
        return self.resolved_method() == "reduced"

    # ------------------------------------------------------------ builders
    def problem(self) -> ProblemSpec:
        """The :class:`ProblemSpec` view of the problem fields
        (named-landscape jobs only)."""
        if self.landscape == "hamming":
            raise ValidationError("explicit hamming jobs have no named ProblemSpec")
        return ProblemSpec(
            nu=self.nu,
            p=self.p,
            landscape=self.landscape,
            mutation=self.mutation,
            peak=self.peak,
            floor=self.floor,
            seed=self.seed,
        )

    def build_landscape(self) -> FitnessLandscape:
        """Materialize the landscape (delegates to :class:`ProblemSpec`
        for the named kinds)."""
        if self.landscape == "hamming":
            return HammingLandscape(self.nu, list(self.class_values))
        return self.problem().build_landscape()

    def build_mutation(self) -> MutationModel:
        """Materialize the mutation model."""
        spec = ProblemSpec(
            nu=self.nu,
            p=self.p,
            landscape="single-peak",
            mutation=self.mutation,
            peak=self.peak,
            floor=self.floor,
            seed=self.seed,
        )
        return spec.build_mutation()

    # --------------------------------------------------------- conversion
    @classmethod
    def from_problem(cls, spec: ProblemSpec, **route) -> "SolveJob":
        """Wrap a :class:`ProblemSpec` as a job (route fields via kwargs)."""
        return cls(**spec.to_dict(), **route)

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["class_values"] is not None:
            data["class_values"] = list(data["class_values"])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SolveJob":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown SolveJob fields: {sorted(unknown)}")
        data = dict(data)
        if data.get("class_values") is not None:
            data["class_values"] = tuple(data["class_values"])
        return cls(**data)

    def with_(self, **changes) -> "SolveJob":
        """A copy of this job with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class JobResult:
    """Service-level result of one solve job.

    ``concentrations`` holds the ν+1 error-class concentrations
    ``[Γ_k]`` — exactly the reduced solver's output for reduced jobs,
    and the class-contracted eigenvector for full 2^ν routes — so every
    route produces the same light, cacheable payload.
    """

    eigenvalue: float
    concentrations: np.ndarray
    method: str
    iterations: int
    residual: float
    converged: bool
    tol: float

    def to_dict(self) -> dict:
        """Plain-JSON form (arrays become lists)."""
        return {
            "eigenvalue": self.eigenvalue,
            "concentrations": [float(x) for x in np.asarray(self.concentrations)],
            "method": self.method,
            "iterations": self.iterations,
            "residual": self.residual,
            "converged": self.converged,
            "tol": self.tol,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        return cls(
            eigenvalue=float(data["eigenvalue"]),
            concentrations=np.asarray(data["concentrations"], dtype=np.float64),
            method=str(data["method"]),
            iterations=int(data["iterations"]),
            residual=float(data["residual"]),
            converged=bool(data["converged"]),
            tol=float(data["tol"]),
        )

"""The solver service facade: cache → scheduler → pool → report.

:class:`SolverService` turns the library into a queryable backend: hand
it a list of :class:`~repro.service.jobspec.SolveJob` requests (or a
JSON/YAML manifest) and it answers each one exactly once — deduplicated
by content hash, served from the tolerance-aware result cache when
possible, solved by the fault-tolerant worker pool otherwise — and
returns a machine-readable :class:`BatchReport`.

Manifest format
---------------
::

    {
      "defaults": {"nu": 8, "mutation": "uniform", "tol": 1e-10},
      "jobs": [
        {"p": 0.01, "landscape": "single-peak"},
        {"p": 0.02, "landscape": "random", "method": "power", "seed": 3}
      ],
      "options": {"workers": 4, "kind": "thread", "cache_dir": ".repro-cache"}
    }

Each job entry is a :meth:`SolveJob.from_dict` payload merged over
``defaults``.  ``options`` feeds the :class:`SolverService` constructor
(``workers``, ``kind``, ``timeout``, ``retries``, ``backoff``,
``capacity``, ``cache_dir``, ``batched``, ``min_batch``, ``threads``)
and is overridable from the CLI.  YAML
manifests work when PyYAML is installed (the dependency is optional and
gated).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.service.cache import ResultCache
from repro.service.jobspec import JobResult, SolveJob
from repro.service.pool import JobTelemetry, WorkerPool
from repro.service.scheduler import plan_batch, plan_batched_jobs

__all__ = ["SolverService", "BatchReport", "load_manifest", "run_manifest"]

_OPTION_KEYS = (
    "workers",
    "kind",
    "timeout",
    "retries",
    "backoff",
    "capacity",
    "cache_dir",
    "batched",
    "min_batch",
    "threads",
)


@dataclass
class BatchReport:
    """Everything a batch run produced, JSON round-trip safe.

    ``results`` is aligned with the *original* request list (duplicates
    receive the shared result object); ``telemetry`` is aligned with
    the plan's unique jobs.
    """

    jobs: list[SolveJob]
    results: list[JobResult | None]
    telemetry: list[JobTelemetry]
    index_map: list[int]
    plan_stats: dict
    cache_stats: dict
    wall_seconds: float = 0.0

    # ------------------------------------------------------------- counts
    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_duplicates(self) -> int:
        return int(self.plan_stats.get("duplicates", 0))

    @property
    def n_solved(self) -> int:
        """Jobs that required a fresh solve."""
        return sum(1 for t in self.telemetry if t.status == "solved")

    @property
    def n_cached(self) -> int:
        """Unique jobs answered entirely from the result cache."""
        return sum(1 for t in self.telemetry if t.status == "cached")

    @property
    def n_failed(self) -> int:
        return sum(1 for t in self.telemetry if t.status == "failed")

    @property
    def n_fallbacks(self) -> int:
        """Jobs that completed on a degraded route."""
        return sum(1 for t in self.telemetry if t.fallback_used)

    @property
    def n_batched(self) -> int:
        """Unique jobs served by a multi-vector block solve."""
        return sum(1 for t in self.telemetry if t.batch > 1 and t.status == "solved")

    @property
    def passed(self) -> bool:
        """True when every request received a result."""
        return self.n_failed == 0 and all(r is not None for r in self.results)

    def failures(self) -> list[str]:
        """Every named failure across the batch (including the ones a
        fallback route subsequently recovered from)."""
        return [msg for t in self.telemetry for msg in t.failures]

    # -------------------------------------------------------------- views
    def entry(self, i: int) -> tuple[SolveJob, JobResult | None, JobTelemetry]:
        """Original request ``i`` with its result and telemetry."""
        return self.jobs[i], self.results[i], self.telemetry[self.index_map[i]]

    def to_dict(self) -> dict:
        return {
            "kind": "repro.BatchReport.v1",
            "plan": dict(self.plan_stats),
            "cache": dict(self.cache_stats),
            "wall_seconds": self.wall_seconds,
            "solved": self.n_solved,
            "cached": self.n_cached,
            "failed": self.n_failed,
            "fallbacks": self.n_fallbacks,
            "batched": self.n_batched,
            "passed": self.passed,
            "index_map": list(self.index_map),
            "jobs": [job.to_dict() for job in self.jobs],
            "results": [r.to_dict() if r is not None else None for r in self.results],
            "telemetry": [t.to_dict() for t in self.telemetry],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        if data.get("kind") != "repro.BatchReport.v1":
            raise ValidationError(
                f"not a batch report (kind={data.get('kind')!r})"
            )
        return cls(
            jobs=[SolveJob.from_dict(j) for j in data["jobs"]],
            results=[
                None if r is None else JobResult.from_dict(r) for r in data["results"]
            ],
            telemetry=[JobTelemetry.from_dict(t) for t in data["telemetry"]],
            index_map=[int(i) for i in data["index_map"]],
            plan_stats=dict(data["plan"]),
            cache_stats=dict(data["cache"]),
            wall_seconds=float(data["wall_seconds"]),
        )


class SolverService:
    """A queryable solver backend over cache + scheduler + worker pool.

    Parameters
    ----------
    cache:
        An explicit :class:`~repro.service.cache.ResultCache` (shared
        between services, pre-warmed, …) — or ``None`` to build one
        from ``capacity``/``cache_dir``.
    pool:
        An explicit :class:`~repro.service.pool.WorkerPool` — or
        ``None`` to build one from ``workers``/``kind``/``timeout``/
        ``retries``/``backoff``/``solve_fn``.
    batched:
        Route operator-sharing groups of batchable power jobs through
        the multi-vector
        :class:`~repro.solvers.power.BlockPowerIteration` (default
        ``True``); ``False`` forces per-job scalar solves.
    min_batch:
        Smallest group size worth batching (default 2).
    threads:
        Panel-engine threads per worker for the fmmp routes (``None``
        → ``REPRO_NUM_THREADS`` or 1).  An execution knob only: it
        never enters a job's content hash, so cached results are shared
        across thread counts.  The pool caps its worker count at
        ``cpu_count // threads`` to avoid oversubscription.

    Examples
    --------
    >>> from repro.service import SolverService, SolveJob
    >>> service = SolverService(kind="serial")
    >>> report = service.submit([SolveJob(nu=6, p=0.01)] * 3)
    >>> (report.n_solved, report.n_duplicates)
    (1, 2)
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        pool: WorkerPool | None = None,
        capacity: int = 512,
        cache_dir: str | None = None,
        workers: int | None = None,
        kind: str = "thread",
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        solve_fn=None,
        batched_solve_fn=None,
        batched: bool = True,
        min_batch: int = 2,
        threads: int | None = None,
    ):
        if min_batch < 1:
            raise ValidationError(f"min_batch must be >= 1, got {min_batch}")
        self.cache = cache or ResultCache(capacity, disk_dir=cache_dir)
        self.pool = pool or WorkerPool(
            workers,
            kind=kind,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            solve_fn=solve_fn,
            batched_solve_fn=batched_solve_fn,
            threads=threads,
        )
        self.batched = bool(batched)
        self.min_batch = int(min_batch)

    # -------------------------------------------------------------- single
    def solve(self, job: SolveJob) -> JobResult:
        """Answer one job (cache-aware); raises if every route failed."""
        report = self.submit([job])
        result = report.results[0]
        if result is None:
            raise ValidationError(
                "job failed on every route: " + "; ".join(report.failures())
            )
        return result

    # --------------------------------------------------------------- batch
    def submit(self, jobs: list[SolveJob]) -> BatchReport:
        """Answer a batch of jobs: dedup → cache → pool → report."""
        t0 = time.perf_counter()
        plan = plan_batch(jobs)
        results: list[JobResult | None] = [None] * plan.n_unique
        telemetry: list[JobTelemetry | None] = [None] * plan.n_unique

        to_solve: list[int] = []
        for uidx in plan.order:
            job = plan.unique_jobs[uidx]
            cached, status = self.cache.lookup(job)
            if cached is not None:
                results[uidx] = cached
                telemetry[uidx] = JobTelemetry.cached(job, status)
            else:
                to_solve.append(uidx)

        if to_solve:
            singles = to_solve
            if self.batched:
                blocks = plan_batched_jobs(plan, to_solve, min_batch=self.min_batch)
                covered = {i for block in blocks for i in block.indices}
                singles = [u for u in to_solve if u not in covered]
                for block in blocks:
                    outcomes = self.pool.run_batched(block)
                    for uidx, (result, tele) in zip(block.indices, outcomes):
                        results[uidx] = result
                        telemetry[uidx] = tele
                        if result is not None:
                            self.cache.store(plan.unique_jobs[uidx], result)
            if singles:
                outcomes = self.pool.run([plan.unique_jobs[u] for u in singles])
                for uidx, (result, tele) in zip(singles, outcomes):
                    results[uidx] = result
                    telemetry[uidx] = tele
                    if result is not None:
                        self.cache.store(plan.unique_jobs[uidx], result)

        return BatchReport(
            jobs=plan.jobs,
            results=[results[u] for u in plan.index_map],
            telemetry=list(telemetry),
            index_map=list(plan.index_map),
            plan_stats=plan.to_dict(),
            cache_stats=self.cache.stats.to_dict(),
            wall_seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------ manifest
    def run_manifest(self, path: str) -> BatchReport:
        """Execute the jobs of a JSON/YAML manifest file."""
        jobs, _ = load_manifest(path)
        return self.submit(jobs)


def _parse_manifest_text(text: str, path: str) -> dict:
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - environment-dependent
            raise ValidationError(
                "YAML manifests need the optional PyYAML dependency; "
                "use a JSON manifest instead"
            ) from exc
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValidationError(f"manifest is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValidationError("manifest must be a mapping with a 'jobs' list")
    return data


def load_manifest(path: str) -> tuple[list[SolveJob], dict]:
    """Parse a manifest file into ``(jobs, options)``.

    Every job entry is merged over the manifest's ``defaults`` mapping;
    unknown option keys are rejected so typos fail loudly.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ValidationError(f"cannot read manifest {path!r}: {exc}") from exc
    data = _parse_manifest_text(text, path)
    raw_jobs = data.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise ValidationError("manifest must contain a non-empty 'jobs' list")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ValidationError("manifest 'defaults' must be a mapping")
    options = data.get("options", {})
    if not isinstance(options, dict):
        raise ValidationError("manifest 'options' must be a mapping")
    unknown = set(options) - set(_OPTION_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown manifest options {sorted(unknown)}; expected {_OPTION_KEYS}"
        )
    jobs = []
    for i, entry in enumerate(raw_jobs):
        if not isinstance(entry, dict):
            raise ValidationError(f"manifest job #{i} must be a mapping, got {entry!r}")
        jobs.append(SolveJob.from_dict({**defaults, **entry}))
    return jobs, dict(options)


def run_manifest(path: str, **overrides) -> BatchReport:
    """One-shot manifest execution with option overrides.

    ``overrides`` (e.g. ``workers=4``, ``cache_dir="..."``) take
    precedence over the manifest's ``options`` block; ``None`` values
    are ignored so CLI flags pass through unconditionally.
    """
    jobs, options = load_manifest(path)
    merged = {**options, **{k: v for k, v in overrides.items() if v is not None}}
    unknown = set(merged) - set(_OPTION_KEYS)
    if unknown:
        raise ValidationError(f"unknown service options {sorted(unknown)}")
    service = SolverService(**merged)
    return service.submit(jobs)

"""Content-addressed result cache: in-memory LRU + optional disk store.

Real quasispecies workloads are dominated by dense parameter sweeps
over (ν, p, landscape) grids in which many requests are exact
duplicates — an error-threshold scan re-run with one extra grid point
repeats every previous solve.  The cache makes those repeats free:

* **Keying** — entries are filed under
  :meth:`repro.service.jobspec.SolveJob.cache_key`, a deterministic
  content hash of the problem *and* route but **not** the accuracy
  knobs.
* **Tolerance-aware lookup** — a cached solve performed at tolerance
  ``t`` satisfies any request with ``tol >= t`` (a tighter solve is a
  strictly better answer).  A looser cached solve never masks a tighter
  request; the tighter solve then *replaces* the looser entry.
* **LRU accounting** — bounded in-memory capacity with
  least-recently-used eviction; every hit/miss/eviction/store is
  counted in :class:`CacheStats` for the batch reports.
* **Disk tier** — an optional directory of one ``.npz`` archive per
  content hash (via :func:`repro.io.save_job_result`), giving warm
  restarts across processes: re-running a manifest against a warm disk
  cache performs zero new solves.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.service.jobspec import JobResult, SolveJob

__all__ = ["CacheStats", "ResultCache"]

#: cache-status labels used in telemetry and batch reports
MEMORY_HIT = "hit-memory"
DISK_HIT = "hit-disk"
MISS = "miss"


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    replacements: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    def to_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "replacements": self.replacements,
        }


@dataclass
class _Entry:
    tol: float
    result: JobResult = field(repr=False)


class ResultCache:
    """Tolerance-aware, content-addressed cache of :class:`JobResult`.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory entries; the least recently used
        entry is evicted when full (disk entries are never evicted).
    disk_dir:
        Optional directory for the persistent tier.  Created on first
        store; safe to share between runs (filenames are content
        hashes, so concurrent writers can only race to write identical
        payloads).

    Examples
    --------
    >>> from repro.service import ResultCache, SolveJob
    >>> cache = ResultCache(capacity=2)
    >>> cache.lookup(SolveJob(nu=4, p=0.01))
    (None, 'miss')
    """

    def __init__(self, capacity: int = 512, disk_dir: str | None = None):
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()

    # -------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job: SolveJob) -> bool:
        entry = self._entries.get(job.cache_key())
        return entry is not None and entry.tol <= job.tol

    def keys(self) -> list[str]:
        """In-memory keys, least → most recently used."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry (disk tier untouched)."""
        self._entries.clear()

    # -------------------------------------------------------------- lookup
    def lookup(self, job: SolveJob) -> tuple[JobResult | None, str]:
        """Find a result for ``job``; returns ``(result, status)``.

        ``status`` is ``"hit-memory"``, ``"hit-disk"`` or ``"miss"``.
        A hit requires the stored solve tolerance to be at least as
        tight as ``job.tol``; disk hits are promoted into memory.
        """
        key = job.cache_key()
        entry = self._entries.get(key)
        if entry is not None and entry.tol <= job.tol:
            self._entries.move_to_end(key)
            self.stats.memory_hits += 1
            return entry.result, MEMORY_HIT
        disk = self._load_disk(key)
        if disk is not None and disk.tol <= job.tol:
            self._put_memory(key, _Entry(disk.tol, disk))
            self.stats.disk_hits += 1
            return disk, DISK_HIT
        self.stats.misses += 1
        return None, MISS

    # --------------------------------------------------------------- store
    def store(self, job: SolveJob, result: JobResult) -> None:
        """File ``result`` under ``job``'s content hash.

        A tighter-tolerance entry is never overwritten by a looser one;
        a tighter arrival replaces the looser entry in both tiers.
        """
        key = job.cache_key()
        existing = self._entries.get(key)
        if existing is not None and existing.tol <= result.tol:
            self._entries.move_to_end(key)
            return
        if existing is not None:
            self.stats.replacements += 1
        self._put_memory(key, _Entry(result.tol, result))
        self.stats.stores += 1
        self._store_disk(key, result)

    def _put_memory(self, key: str, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ---------------------------------------------------------- disk tier
    def _disk_path(self, key: str) -> str | None:
        if self.disk_dir is None:
            return None
        return os.path.join(self.disk_dir, f"{key}.npz")

    def _load_disk(self, key: str) -> JobResult | None:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        from repro.io import load_job_result

        import zipfile

        try:
            return load_job_result(path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, ValidationError):
            return None  # a corrupt entry is a miss, not a crash

    def _store_disk(self, key: str, result: JobResult) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        existing = self._load_disk(key)
        if existing is not None and existing.tol <= result.tol:
            return
        from repro.io import save_job_result

        os.makedirs(self.disk_dir, exist_ok=True)
        save_job_result(path, result)

"""Fault-tolerant worker pool: timeouts, retries, graceful degradation.

The pool turns one :class:`~repro.service.jobspec.SolveJob` into one
:class:`~repro.service.jobspec.JobResult`, surviving the failure modes a
serving backend actually sees:

* **Per-job timeouts** — each attempt gets a wall-clock budget
  (``thread``/``process`` executors; a timed-out thread attempt is
  abandoned, a timed-out process attempt's worker is left to the
  executor to recycle).
* **Bounded retries with backoff** — transient failures (a poisoned
  worker, a flaky allocation) are retried up to ``retries`` times per
  route with exponentially growing backoff.
* **Graceful degradation** — when a route keeps failing, the pool walks
  a structural fallback chain (e.g. ``shift-invert`` → shifted power →
  plain power → dense for small ν) so a job completes whenever *any*
  applicable route can, with the failure named in the telemetry.
* **Structured telemetry** — queue time, solve time, iterations,
  attempts, named failures, and the route that finally served the job.

Workers share operator construction within a scheduler group through a
per-process build memo: the first job of a group pays for the mutation
Q-factor tables / FWHT plan, subsequent jobs in the same group reuse
them.
"""

from __future__ import annotations

import functools
import os
import time
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.service.jobspec import JobResult, SolveJob

__all__ = [
    "MAX_DENSE_NU",
    "JobTelemetry",
    "WorkerPool",
    "execute_job",
    "execute_batched_job",
    "fallback_routes",
]

#: largest chain length for which the dense fallback route is allowed
MAX_DENSE_NU = 10

_POOL_KINDS = ("serial", "thread", "process")

#: per-process memo of built (mutation, landscape) pairs, keyed by the
#: job's problem hash — realizes the scheduler's operator sharing.
_BUILD_MEMO: dict[str, tuple] = {}
_BUILD_MEMO_CAP = 32


@dataclass
class JobTelemetry:
    """Structured per-job execution record.

    ``status`` is ``"solved"`` (a worker produced the result),
    ``"cached"`` (the service answered from the result cache) or
    ``"failed"`` (every route in the fallback chain failed — the named
    failures are in ``failures``).

    ``batch`` is the block width the job was solved in: 1 for a scalar
    solve, B > 1 when the job rode a batched
    :class:`~repro.service.scheduler.BatchedSolveJob` (its
    ``solve_seconds`` is then the whole block's wall-clock divided by
    B — the amortized per-column cost).
    """

    key: str
    label: str
    status: str = "solved"
    route: str = ""
    attempts: int = 0
    failures: list[str] = field(default_factory=list)
    fallback_used: bool = False
    queue_seconds: float = 0.0
    solve_seconds: float = 0.0
    iterations: int = 0
    cache: str = "miss"
    batch: int = 1

    @classmethod
    def cached(cls, job: SolveJob, status: str) -> "JobTelemetry":
        """Telemetry for a cache-served job (no worker involved)."""
        return cls(
            key=job.cache_key(),
            label=job.label(),
            status="cached",
            route="cache",
            cache=status,
        )

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "status": self.status,
            "route": self.route,
            "attempts": self.attempts,
            "failures": list(self.failures),
            "fallback_used": self.fallback_used,
            "queue_seconds": self.queue_seconds,
            "solve_seconds": self.solve_seconds,
            "iterations": self.iterations,
            "cache": self.cache,
            "batch": self.batch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobTelemetry":
        return cls(**data)


# ------------------------------------------------------------ execution
def _route_label(job: SolveJob) -> str:
    method = job.method if job.method != "auto" else f"auto->{job.resolved_method()}"
    return method


def fallback_routes(job: SolveJob) -> list[SolveJob]:
    """The degradation chain for ``job``: requested route first, then
    progressively simpler structurally-applicable routes.

    The chain (deduplicated by method) is

    1. the requested route,
    2. the shifted power iteration (uniform mutation only — the
       paper's default accelerated route),
    3. the plain power iteration (always applicable),
    4. the dense eigendecomposition for ν ≤ :data:`MAX_DENSE_NU`.

    Reduced jobs stay reduced: the (ν+1) route is exact and has no
    cheaper fallback, so only the dense *reduced-size* path behind
    :class:`~repro.solvers.reduced.ReducedSolver` applies.
    """
    chain = [job]
    if job.resolved_method() == "reduced":
        return chain
    seen = {job.method}

    def add(**changes) -> None:
        candidate = job.with_(**changes)
        if candidate.method not in seen:
            seen.add(candidate.method)
            chain.append(candidate)

    if job.mutation == "uniform" and job.p != 0.0:
        add(method="power", operator="fmmp", form="right", shift=True, dmax=None)
    # a "power" entry above shadows this one via the method dedup, so
    # force the plain variant through a distinct method check
    plain = job.with_(method="power", operator="fmmp", form="right", shift=False, dmax=None)
    if all(not _same_route(plain, c) for c in chain):
        chain.append(plain)
    if job.nu <= MAX_DENSE_NU:
        add(method="dense", operator="fmmp", form="right", shift=False, dmax=None)
    return chain


def _same_route(a: SolveJob, b: SolveJob) -> bool:
    return (
        a.method == b.method
        and a.operator == b.operator
        and a.form == b.form
        and a.shift == b.shift
        and a.dmax == b.dmax
    )


def _built(job: SolveJob):
    """(mutation, landscape) for ``job``, via the per-process memo."""
    key = job.operator_key() + ":" + job.cache_key()
    hit = _BUILD_MEMO.get(key)
    if hit is None:
        hit = (job.build_mutation(), job.build_landscape())
        if len(_BUILD_MEMO) >= _BUILD_MEMO_CAP:
            _BUILD_MEMO.pop(next(iter(_BUILD_MEMO)))
        _BUILD_MEMO[key] = hit
    return hit


def _result_gamma(res, nu: int) -> np.ndarray:
    """Error-class concentrations from any route's result object."""
    from repro.model.concentrations import class_concentrations
    from repro.solvers.kron_solver import KroneckerSolveResult

    if isinstance(res, KroneckerSolveResult):
        return res.eigenvector.class_concentrations()
    conc = np.asarray(res.concentrations)
    if conc.shape[0] == nu + 1:
        return conc
    return class_concentrations(conc, nu)


def _solve_shift_invert(job: SolveJob) -> JobResult:
    from repro.model.concentrations import class_concentrations
    from repro.operators.dense_w import convert_eigenvector
    from repro.operators.fmmp import Fmmp
    from repro.solvers.shift_invert import cg_inverse_iteration

    mutation, landscape = _built(job)
    if not mutation.is_symmetric:
        raise ValidationError(
            "shift-invert (CG inverse iteration) needs the symmetric form, "
            "which exists only for symmetric mutation models"
        )
    op = Fmmp(mutation, landscape, form="symmetric")
    res = cg_inverse_iteration(
        op,
        start=np.sqrt(landscape.values()),
        mu=landscape.fmax * 1.05,
        tol=max(job.tol, 1e-13),
        max_outer=min(job.max_iterations, 200),
    )
    conc = convert_eigenvector(res.eigenvector, landscape, "symmetric")
    return JobResult(
        eigenvalue=float(res.eigenvalue),
        concentrations=class_concentrations(conc, job.nu),
        method=res.method,
        iterations=res.iterations,
        residual=res.residual,
        converged=res.converged,
        tol=job.tol,
    )


def execute_job(job: SolveJob, *, threads: int | None = None) -> JobResult:
    """Solve one job synchronously (the pool's default worker body).

    Module-level and picklable, so it crosses process boundaries; the
    reduced route reproduces
    :class:`~repro.solvers.reduced.ReducedSolver` output bit-for-bit
    (the parallel sweep's regression tests rely on it).

    ``threads`` (pool-level, **not** part of the job's content hash —
    thread count must never change what a job computes, only how fast)
    turns on the panel-parallel butterfly for the iterative fmmp
    routes.  Bound via ``functools.partial`` so the partial still
    pickles into process workers.
    """
    from repro.model.quasispecies import QuasispeciesModel
    from repro.solvers.reduced import ReducedSolver

    method = job.resolved_method()
    if method == "reduced":
        if job.landscape == "hamming":
            target = np.asarray(job.class_values, dtype=np.float64)
        else:
            target = job.build_landscape()
        res = ReducedSolver(job.nu, float(job.p), target).solve()
        return JobResult(
            eigenvalue=float(res.eigenvalue),
            concentrations=res.concentrations,
            method=res.method,
            iterations=res.iterations,
            residual=res.residual,
            converged=res.converged,
            tol=job.tol,
        )
    if method == "shift-invert":
        return _solve_shift_invert(job)

    mutation, landscape = _built(job)
    model = QuasispeciesModel(landscape, mutation)
    res = model.solve(
        job.method,
        operator=job.operator,
        form=job.form,
        dmax=job.dmax,
        tol=job.tol,
        shift=job.shift,
        max_iterations=job.max_iterations,
        threads=threads,
    )
    return JobResult(
        eigenvalue=float(res.eigenvalue),
        concentrations=_result_gamma(res, job.nu),
        method=getattr(res, "method", method),
        iterations=int(getattr(res, "iterations", 0)),
        residual=float(getattr(res, "residual", 0.0)),
        converged=bool(getattr(res, "converged", True)),
        tol=job.tol,
    )


def _effective_shift(job: SolveJob, mutation, landscape) -> float:
    """The shift μ the scalar route would apply to ``job``.

    Mirrors :meth:`repro.model.quasispecies.QuasispeciesModel.solve`
    exactly: ``auto`` implies the conservative shift for non-degenerate
    uniform problems; ``shift=True`` demands the uniform formula; a
    float is used verbatim.
    """
    from repro.mutation.uniform import UniformMutation
    from repro.operators.shifted import conservative_shift

    shift = job.shift
    if job.method == "auto" and shift is False and isinstance(mutation, UniformMutation):
        degenerate = mutation.p == 0.0 and landscape.fmin == landscape.fmax
        if not degenerate:
            shift = True
    if shift is False:
        return 0.0
    if shift is True:
        if not isinstance(mutation, UniformMutation):
            raise ValidationError(
                "the conservative shift formula needs the uniform model; "
                "pass an explicit float shift instead"
            )
        return conservative_shift(mutation, landscape)
    return float(shift)


def execute_batched_job(bjob, *, threads: int | None = None) -> list:
    """Solve a :class:`~repro.service.scheduler.BatchedSolveJob`.

    Builds the shared mutation operator once, stacks the per-job
    landscapes into one :class:`~repro.operators.batched.BatchedFmmp`,
    and runs the lock-step
    :class:`~repro.solvers.power.BlockPowerIteration` with per-column
    shifts.  Returns one :class:`~repro.service.jobspec.JobResult` per
    member job, in order.  Module-level and picklable.
    """
    from repro.model.concentrations import class_concentrations
    from repro.operators.batched import BatchedFmmp
    from repro.solvers.power import BlockPowerIteration

    jobs = list(bjob.jobs)
    if not jobs:
        raise ValidationError("batched job has no members")
    mutation = jobs[0].build_mutation()
    landscapes = [job.build_landscape() for job in jobs]
    shifts = np.array(
        [_effective_shift(job, mutation, land) for job, land in zip(jobs, landscapes)]
    )
    op = BatchedFmmp(mutation, landscapes, form=bjob.form, threads=threads)
    solver = BlockPowerIteration(
        op,
        shifts=shifts,
        tol=bjob.tol,
        max_iterations=bjob.max_iterations,
    )
    shifted_any = bool(np.any(shifts != 0.0))
    label = "BPi(Fmmp, shifted)" if shifted_any else "BPi(Fmmp)"
    block = solver.solve(raise_on_fail=False, method_name=label)
    results = []
    for job, res in zip(jobs, block.columns):
        results.append(
            JobResult(
                eigenvalue=float(res.eigenvalue),
                concentrations=class_concentrations(res.concentrations, job.nu),
                method=res.method,
                iterations=int(res.iterations),
                residual=float(res.residual),
                converged=bool(res.converged),
                tol=job.tol,
            )
        )
    return results


def _timed_call(fn, job):
    """Worker wrapper measuring start/end stamps (module-level so it
    pickles into process workers)."""
    t0 = time.perf_counter()
    result = fn(job)
    return result, t0, time.perf_counter()


# ----------------------------------------------------------------- pool
@dataclass
class _JobState:
    job: SolveJob
    routes: list[SolveJob]
    route_idx: int = 0
    attempt: int = 0
    telemetry: JobTelemetry = None  # set in __post_init__

    def __post_init__(self) -> None:
        self.telemetry = JobTelemetry(key=self.job.cache_key(), label=self.job.label())

    @property
    def current(self) -> SolveJob:
        return self.routes[self.route_idx]

    def record_failure(self, message: str, retries: int) -> bool:
        """Advance retry/fallback state; returns True when exhausted.

        ``retries`` is the per-route retry budget — pass 0 for
        structural errors (retrying a :class:`ValidationError` cannot
        succeed; fall straight through to the next route).
        """
        self.telemetry.failures.append(f"{_route_label(self.current)}: {message}")
        self.attempt += 1
        if self.attempt > retries:
            self.route_idx += 1
            self.attempt = 0
        return self.route_idx >= len(self.routes)

    def finish(self, result_tuple, submit_time: float) -> JobResult:
        result, t_start, t_end = result_tuple
        tele = self.telemetry
        tele.status = "solved"
        tele.route = _route_label(self.current)
        tele.fallback_used = self.route_idx > 0
        tele.queue_seconds = max(0.0, t_start - submit_time)
        tele.solve_seconds = t_end - t_start
        tele.iterations = result.iterations
        return result

    def fail(self) -> None:
        self.telemetry.status = "failed"
        self.telemetry.route = ""


class WorkerPool:
    """Execute solve jobs with retries, timeouts and fallback routes.

    Parameters
    ----------
    workers:
        Worker count (default ``os.cpu_count()``, capped at the batch
        size).
    kind:
        ``"thread"`` (default; LAPACK/BLAS release the GIL), ``"process"``
        (full isolation — required for hard timeout enforcement), or
        ``"serial"`` (in-line, deterministic; timeouts not enforced).
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = unlimited).
    retries:
        Extra attempts per route before falling back (0 = no retry).
    backoff:
        Base backoff in seconds; wave ``k`` of retries sleeps
        ``backoff·2^k`` (capped at 1 s).
    solve_fn:
        Worker body override — used by fault-injection tests and by
        any deployment that wraps :func:`execute_job` (must be
        picklable for ``kind="process"``).
    batched_solve_fn:
        Override for the batched-block worker body (defaults to
        :func:`execute_batched_job`); fault-injection tests use it to
        exercise the batched → scalar degradation path.
    threads:
        Panel-engine threads per worker (``None`` →
        ``REPRO_NUM_THREADS`` or 1).  Bound into the default worker
        bodies with ``functools.partial`` — the thread count is an
        execution knob, never part of a job's content hash.  When
        ``threads > 1`` the effective worker count is capped at
        ``cpu_count // threads`` (at least 1) so pool workers × engine
        threads never oversubscribe the host.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        kind: str = "thread",
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        solve_fn=None,
        batched_solve_fn=None,
        threads: int | None = None,
    ):
        if kind not in _POOL_KINDS:
            raise ValidationError(f"kind must be one of {_POOL_KINDS}, got {kind!r}")
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValidationError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
        from repro.transforms.parallel import resolve_threads

        self.workers = workers
        self.kind = kind
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.threads = resolve_threads(threads)
        if solve_fn is None and self.threads > 1:
            solve_fn = functools.partial(execute_job, threads=self.threads)
        if batched_solve_fn is None and self.threads > 1:
            batched_solve_fn = functools.partial(
                execute_batched_job, threads=self.threads
            )
        self.solve_fn = solve_fn or execute_job
        self.batched_solve_fn = batched_solve_fn or execute_batched_job

    def effective_workers(self, n_jobs: int) -> int:
        """Worker count for ``n_jobs``: the requested (or cpu_count)
        figure, capped at the job count and — when each worker drives a
        multi-threaded panel engine — at ``cpu_count // threads`` so
        the pool never oversubscribes the host."""
        cpus = os.cpu_count() or 1
        workers = min(n_jobs, self.workers or cpus)
        if self.threads > 1:
            workers = min(workers, max(1, cpus // self.threads))
        return max(1, workers)

    # ----------------------------------------------------------------- run
    def run(self, jobs: list[SolveJob]) -> list[tuple[JobResult | None, JobTelemetry]]:
        """Solve ``jobs``; returns aligned ``(result, telemetry)`` pairs.

        A ``None`` result means every route failed; the telemetry names
        each failure.
        """
        states = [_JobState(job, fallback_routes(job)) for job in jobs]
        if not states:
            return []
        workers = self.effective_workers(len(states))
        if self.kind == "serial" or workers == 1:
            return [self._run_serial(state) for state in states]
        return self._run_executor(states, workers)

    # ------------------------------------------------------------- batched
    def run_batched(self, bjob) -> list[tuple[JobResult | None, JobTelemetry]]:
        """Execute one :class:`~repro.service.scheduler.BatchedSolveJob`.

        The whole block rides a single
        :class:`~repro.solvers.power.BlockPowerIteration` stream; the
        returned ``(result, telemetry)`` pairs align with
        ``bjob.jobs``.  Degradation is per *failure scope*:

        * the block itself raising (bad build, kernel error) falls back
          to scalar :meth:`run` for **every** member — each telemetry
          names the block failure and ``fallback_used`` is set;
        * individual unconverged columns fall back to the scalar route
          chain for **those columns only** — the converged columns keep
          their batched results.
        """
        jobs = list(bjob.jobs)
        b = len(jobs)
        t0 = time.perf_counter()
        try:
            results = self.batched_solve_fn(bjob)
            if len(results) != b:
                raise ValidationError(
                    f"batched worker returned {len(results)} results for {b} jobs"
                )
        except Exception as exc:  # noqa: BLE001 - block falls back to scalar
            note = f"batched[B={b}]: {type(exc).__name__}: {exc}"
            outcomes = self.run(jobs)
            for _, tele in outcomes:
                tele.failures.insert(0, note)
                tele.fallback_used = True
            return outcomes
        elapsed = time.perf_counter() - t0

        outcomes: list[tuple[JobResult | None, JobTelemetry] | None] = [None] * b
        pending: list[int] = []
        for k, (job, result) in enumerate(zip(jobs, results)):
            if not result.converged:
                pending.append(k)
                continue
            tele = JobTelemetry(
                key=job.cache_key(),
                label=job.label(),
                status="solved",
                route="batched-power",
                attempts=1,
                solve_seconds=elapsed / b,
                iterations=result.iterations,
                batch=b,
            )
            outcomes[k] = (result, tele)
        if pending:
            note = (
                f"batched-power: column did not converge within "
                f"{bjob.max_iterations} sweeps"
            )
            scalar = self.run([jobs[k] for k in pending])
            for k, (result, tele) in zip(pending, scalar):
                tele.failures.insert(0, note)
                tele.fallback_used = True
                outcomes[k] = (result, tele)
        return outcomes

    # -------------------------------------------------------------- serial
    def _run_serial(self, state: _JobState) -> tuple[JobResult | None, JobTelemetry]:
        wave = 0
        while True:
            state.telemetry.attempts += 1
            submit = time.perf_counter()
            try:
                out = _timed_call(self.solve_fn, state.current)
            except Exception as exc:  # noqa: BLE001 - a failing route falls back
                budget = 0 if isinstance(exc, ValidationError) else self.retries
                exhausted = state.record_failure(f"{type(exc).__name__}: {exc}", budget)
                if exhausted:
                    state.fail()
                    return None, state.telemetry
                time.sleep(min(1.0, self.backoff * (2**wave)))
                wave += 1
                continue
            return state.finish(out, submit), state.telemetry

    # ------------------------------------------------------------ executor
    def _run_executor(
        self, states: list[_JobState], workers: int
    ) -> list[tuple[JobResult | None, JobTelemetry]]:
        outcomes: list[tuple[JobResult | None, JobTelemetry]] = [None] * len(states)
        active = list(range(len(states)))
        wave = 0
        if self.kind == "thread":
            executor = ThreadPoolExecutor(max_workers=workers)
        else:
            # Process workers pin their BLAS pools to one thread on
            # startup: the pool (and, with threads > 1, each worker's
            # panel engine) owns the parallelism — nested BLAS teams
            # would oversubscribe the host (see repro.util.blas).
            from repro.util.blas import pin_blas_env

            executor = ProcessPoolExecutor(
                max_workers=workers, initializer=pin_blas_env
            )
        with executor as pool:
            while active:
                submissions = []
                for i in active:
                    states[i].telemetry.attempts += 1
                    fut = pool.submit(_timed_call, self.solve_fn, states[i].current)
                    submissions.append((i, fut, time.perf_counter()))
                retry_wave = []
                for i, fut, submitted in submissions:
                    state = states[i]
                    try:
                        if self.timeout is None:
                            out = fut.result()
                        else:
                            remaining = max(0.0, submitted + self.timeout - time.perf_counter())
                            out = fut.result(timeout=remaining)
                    except FutureTimeoutError:
                        fut.cancel()
                        if state.record_failure(
                            f"TimeoutError: exceeded {self.timeout:g}s budget", self.retries
                        ):
                            state.fail()
                            outcomes[i] = (None, state.telemetry)
                        else:
                            retry_wave.append(i)
                        continue
                    except CancelledError:
                        state.record_failure("CancelledError: attempt cancelled", 0)
                        state.fail()
                        outcomes[i] = (None, state.telemetry)
                        continue
                    except Exception as exc:  # noqa: BLE001 - worker raised
                        budget = 0 if isinstance(exc, ValidationError) else self.retries
                        if state.record_failure(f"{type(exc).__name__}: {exc}", budget):
                            state.fail()
                            outcomes[i] = (None, state.telemetry)
                        else:
                            retry_wave.append(i)
                        continue
                    outcomes[i] = (state.finish(out, submitted), state.telemetry)
                active = retry_wave
                if active:
                    time.sleep(min(1.0, self.backoff * (2**wave)))
                    wave += 1
        return outcomes

"""Solver service layer: scheduler, result cache, fault-tolerant pool.

This package turns the library into a queryable solver backend for the
sweep-shaped workloads that dominate quasispecies studies (error
threshold scans, treatment-planning grids, finite-population
comparisons):

:mod:`repro.service.jobspec`
    Canonical, content-hashed job specs (single source of truth shared
    with :mod:`repro.verify`) and the service-level result payload.
:mod:`repro.service.cache`
    Content-addressed result cache — in-memory LRU plus an optional
    on-disk tier — with tolerance-aware lookup and full accounting.
:mod:`repro.service.scheduler`
    Batch planner: dedup identical jobs, group jobs sharing a mutation
    operator, order reduced (ν+1) jobs ahead of full 2^ν jobs.
:mod:`repro.service.pool`
    Worker pool with per-job timeouts, bounded retries with backoff,
    graceful route degradation, and structured telemetry.
:mod:`repro.service.service`
    The :class:`SolverService` facade, JSON/YAML manifests, and the
    machine-readable :class:`BatchReport`.

Entry points: ``repro-quasispecies batch manifest.json`` (CLI),
:func:`repro.model.parallel_sweep.parallel_sweep_error_rates` and the
:mod:`repro.verify` grid runner (both routed through this layer).
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.jobspec import (
    JOB_METHODS,
    LANDSCAPE_KINDS,
    MUTATION_KINDS,
    JobResult,
    ProblemSpec,
    SolveJob,
    canonical_payload,
    content_hash,
    split_groups,
)
from repro.service.pool import (
    MAX_DENSE_NU,
    JobTelemetry,
    WorkerPool,
    execute_job,
    execute_batched_job,
    fallback_routes,
)
from repro.service.scheduler import (
    BatchPlan,
    BatchedSolveJob,
    JobGroup,
    estimate_cost,
    is_batchable,
    plan_batch,
    plan_batched_jobs,
)
from repro.service.service import (
    BatchReport,
    SolverService,
    load_manifest,
    run_manifest,
)

__all__ = [
    "JOB_METHODS",
    "LANDSCAPE_KINDS",
    "MUTATION_KINDS",
    "MAX_DENSE_NU",
    "BatchPlan",
    "BatchReport",
    "BatchedSolveJob",
    "CacheStats",
    "JobGroup",
    "JobResult",
    "JobTelemetry",
    "ProblemSpec",
    "ResultCache",
    "SolveJob",
    "SolverService",
    "WorkerPool",
    "canonical_payload",
    "content_hash",
    "estimate_cost",
    "execute_job",
    "execute_batched_job",
    "fallback_routes",
    "is_batchable",
    "load_manifest",
    "plan_batch",
    "plan_batched_jobs",
    "run_manifest",
    "split_groups",
]

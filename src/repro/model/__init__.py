"""High-level quasispecies model API.

* :class:`~repro.model.quasispecies.QuasispeciesModel` — the facade a
  downstream user touches: pick a landscape + mutation model, solve with
  the best applicable method, query concentrations.
* :mod:`~repro.model.ode` — the replicator–mutator ODE system (Eq. 1)
  and its integrator; validates that the eigenvector solution really is
  the long-time limit of the dynamics.
* :mod:`~repro.model.concentrations` — error-class cumulative
  concentrations and distribution diagnostics.
* :mod:`~repro.model.threshold` — error-rate sweeps and detection of the
  error-threshold ``p_max`` (Fig. 1 machinery).
"""

from repro.model.concentrations import (
    class_concentrations,
    uniform_class_concentrations,
    dominant_sequence,
    participation_ratio,
)
from repro.model.ode import QuasispeciesODE, integrate_to_stationary
from repro.model.threshold import ThresholdSweep, detect_error_threshold
from repro.model.quasispecies import QuasispeciesModel
from repro.model.antiviral import find_threshold, mutagenesis_margin
from repro.model.relaxation import relaxation_time, measure_relaxation_time
from repro.model.parallel_sweep import parallel_sweep_error_rates
from repro.model.treatment import (
    TimeVaryingQuasispeciesODE,
    constant,
    dose_course,
    ramp,
)

__all__ = [
    "find_threshold",
    "mutagenesis_margin",
    "relaxation_time",
    "measure_relaxation_time",
    "parallel_sweep_error_rates",
    "TimeVaryingQuasispeciesODE",
    "constant",
    "dose_course",
    "ramp",
    "class_concentrations",
    "uniform_class_concentrations",
    "dominant_sequence",
    "participation_ratio",
    "QuasispeciesODE",
    "integrate_to_stationary",
    "ThresholdSweep",
    "detect_error_threshold",
    "QuasispeciesModel",
]

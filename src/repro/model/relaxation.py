"""Relaxation dynamics: how fast Eq. (1) approaches the quasispecies.

Linearizing the replicator–mutator flow at its fixed point (the Perron
vector ``x*``) gives decay modes with rates ``λ₀ − λ_i`` — the slowest
transient dies like ``exp(−(λ₀ − λ₁)·t)``, so the *relaxation time* is

    τ = 1 / (λ₀ − λ₁),

the dynamical face of the same spectral gap that sets the power
iteration's convergence (Sec. 3) and closes at the error threshold.
This module predicts τ from the gap and measures it from integrated
trajectories, closing the loop between the solver-side and physics-side
views of the spectrum.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.model.ode import QuasispeciesODE

__all__ = ["relaxation_time", "measure_relaxation_time"]


def relaxation_time(lambda0: float, lambda1: float) -> float:
    """Predicted slowest-mode relaxation time ``1/(λ₀ − λ₁)``."""
    gap = float(lambda0) - float(lambda1)
    if gap <= 0.0:
        raise ValidationError(f"need lambda0 > lambda1, got gap {gap}")
    return 1.0 / gap


def measure_relaxation_time(
    ode: QuasispeciesODE,
    stationary: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    dt: float = 0.02,
    t_transient: float = 2.0,
    t_fit: float = 6.0,
) -> float:
    """Fit the exponential decay of ``‖x(t) − x*‖₁`` to a trajectory.

    Parameters
    ----------
    ode:
        The dynamics.
    stationary:
        The fixed point ``x*`` (from any solver).
    x0:
        Starting state (default: the pure-master initial condition).
    dt:
        Integration step.
    t_transient:
        Time discarded before fitting (fast modes must die first).
    t_fit:
        Length of the fitting window.

    Returns
    -------
    float
        The measured time constant τ (distance ∝ ``exp(−t/τ)``).
    """
    if dt <= 0 or t_transient < 0 or t_fit <= 0:
        raise ValidationError("dt and time windows must be positive")
    stationary = np.asarray(stationary, dtype=np.float64)
    x = ode.master_start() if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    steps_transient = int(round(t_transient / dt))
    steps_fit = int(round(t_fit / dt))
    for _ in range(steps_transient):
        x = ode.step_rk4(x, dt)
    times = []
    log_dists = []
    for k in range(steps_fit):
        x = ode.step_rk4(x, dt)
        d = float(np.abs(x - stationary).sum())
        if d <= 1e-14:
            break  # converged below measurable distance
        times.append((k + 1) * dt)
        log_dists.append(np.log(d))
    if len(times) < 5:
        raise ValidationError(
            "trajectory converged too fast to fit a relaxation time; "
            "shorten dt or move the start closer"
        )
    slope = float(np.polyfit(times, log_dists, 1)[0])
    if slope >= 0.0:
        raise ValidationError("distance to the fixed point did not decay")
    return -1.0 / slope

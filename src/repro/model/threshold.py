"""Error-threshold sweeps and detection (the Fig. 1 machinery).

For a given landscape, sweep the error rate ``p`` and record the
cumulative error-class concentrations ``[Γ_k](p)``.  If the landscape
exhibits the error-threshold phenomenon there is a critical ``p_max``
(≈0.035 for the paper's ν = 20 single peak) above which the stationary
distribution collapses to uniform; smooth landscapes (e.g. linear)
show no such transition.

Detection criterion: the distribution is "uniform" when every class
concentration matches ``C(ν,k)/2^ν`` within a tolerance; ``p_max`` is the
first swept ``p`` from which this holds onward.  We also expose the
master-class order parameter ``[Γ_0](p)`` and the participation ratio
for alternative diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.concentrations import uniform_class_concentrations
from repro.solvers.reduced import ReducedSolver
from repro.util.validation import check_chain_length

__all__ = ["ThresholdSweep", "detect_error_threshold", "sweep_error_rates"]


@dataclass
class ThresholdSweep:
    """Result of an error-rate sweep.

    Attributes
    ----------
    nu:
        Chain length.
    error_rates:
        The swept ``p`` values (increasing).
    class_concentrations:
        Array of shape ``(len(error_rates), ν+1)`` — row ``i`` holds
        ``[Γ_0..Γ_ν]`` at ``p = error_rates[i]``.
    p_max:
        Detected threshold, or ``None`` when no transition occurs within
        the swept range.
    """

    nu: int
    error_rates: np.ndarray
    class_concentrations: np.ndarray
    p_max: float | None = None
    landscape_name: str = ""
    extra: dict = field(default_factory=dict)

    def series(self, k: int) -> np.ndarray:
        """The curve ``[Γ_k](p)`` across the sweep."""
        if not 0 <= k <= self.nu:
            raise ValidationError(f"class index must be in [0, {self.nu}], got {k}")
        return self.class_concentrations[:, k]

    def master_curve(self) -> np.ndarray:
        """``[Γ_0](p)`` — the classic order parameter."""
        return self.series(0)


def sweep_error_rates(
    landscape: FitnessLandscape,
    error_rates: np.ndarray,
    *,
    solver: str = "reduced",
) -> ThresholdSweep:
    """Compute ``[Γ_k](p)`` over a grid of error rates.

    Parameters
    ----------
    landscape:
        Must be an error-class landscape for the (default) exact reduced
        solver; for general landscapes use
        :class:`repro.model.quasispecies.QuasispeciesModel` per point.
    error_rates:
        Increasing grid of ``p`` values, each in ``[0, 1/2]``.
    solver:
        Currently only ``"reduced"`` — Fig. 1's landscapes are both
        Hamming-based, and the reduction is exact (Sec. 5.1).
    """
    if solver != "reduced":
        raise ValidationError(f"unknown sweep solver {solver!r}")
    if not landscape.is_error_class_landscape:
        raise ValidationError("sweep_error_rates needs a Hamming-distance landscape")
    rates = np.asarray(error_rates, dtype=np.float64).reshape(-1)
    if rates.size == 0 or np.any(np.diff(rates) <= 0):
        raise ValidationError("error_rates must be a non-empty increasing grid")
    nu = landscape.nu
    rows = np.empty((rates.size, nu + 1))
    for i, p in enumerate(rates):
        if p == 0.0:
            # Degenerate limit: error-free replication concentrates all
            # mass on the fittest class; for quasispecies landscapes
            # (master fittest) that is Γ0.
            rows[i] = 0.0
            rows[i, int(np.argmax(landscape.class_values()))] = 1.0
            continue
        res = ReducedSolver(nu, float(p), landscape).solve()
        rows[i] = res.concentrations
    sweep = ThresholdSweep(
        nu=nu,
        error_rates=rates,
        class_concentrations=rows,
        landscape_name=type(landscape).__name__,
    )
    sweep.p_max = detect_error_threshold(sweep)
    return sweep


def detect_error_threshold(sweep: ThresholdSweep, *, rtol: float = 0.02) -> float | None:
    """Locate ``p_max``: the first ``p`` from which the distribution stays
    uniform.

    "Uniform" means every class concentration deviates from
    ``C(ν,k)/2^ν`` by at most ``rtol · max_k(C(ν,k)/2^ν)`` — deviations
    are measured against the distribution's scale, not per class,
    because the single-member classes (Γ₀, Γ_ν) approach their tiny
    uniform values only asymptotically for finite ν while the
    distribution is already indistinguishable from uniform at the
    resolution of Fig. 1.

    Returns ``None`` if the distribution never reaches uniform in the
    sweep (no threshold in range) **or** if it approaches it only
    asymptotically at the end of the range (smooth transition — the
    linear-landscape case: uniformity exactly at the boundary of the
    sweep is not called a threshold unless there are at least two
    consecutive uniform points strictly inside the range).
    """
    nu = check_chain_length(sweep.nu, max_nu=1000)
    uniform = uniform_class_concentrations(nu)
    rows = sweep.class_concentrations
    scale = float(uniform.max())
    is_uniform = np.all(np.abs(rows - uniform[None, :]) <= rtol * scale, axis=1)
    if not is_uniform.any():
        return None
    first = int(np.argmax(is_uniform))
    # Require the uniform phase to persist to the end of the sweep and to
    # start strictly inside the range.
    if not is_uniform[first:].all():
        candidates = np.nonzero(is_uniform)[0]
        for c in candidates:
            if is_uniform[c:].all():
                first = int(c)
                break
        else:
            return None
    if first == 0 or first >= rows.shape[0] - 1:
        return None
    return float(sweep.error_rates[first])

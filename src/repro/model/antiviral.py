"""Lethal-mutagenesis planning — the paper's motivating application.

Sec. 1.1: the sudden transition at the error threshold "is of potential
interest as a building block for new antiviral strategies [Eigen 2002]
because the error rates of RNA viruses are usually close to this
critical value and an increase of p is possible by the use of
pharmaceutical drugs."

This module turns the solvers into that planning tool: locate the
threshold ``p_max`` of a landscape precisely (bisection on the
order parameter, powered by the exact reduced solver for Hamming
landscapes and the fast general solver otherwise) and report the *dose
margin* — how much a mutagenic drug must raise the error rate of a
virus currently replicating at ``p`` to push it over the edge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.landscapes.base import FitnessLandscape
from repro.model.concentrations import class_concentrations, uniform_class_concentrations
from repro.mutation.uniform import UniformMutation
from repro.operators.fmmp import Fmmp
from repro.solvers.power import PowerIteration
from repro.solvers.reduced import ReducedSolver
from repro.util.validation import check_error_rate

__all__ = ["find_threshold", "mutagenesis_margin", "MutagenesisAssessment"]


def _distance_to_uniform(landscape: FitnessLandscape, p: float) -> float:
    """Max class-concentration deviation from uniform, in units of the
    distribution scale (the Fig. 1 plotting-resolution metric)."""
    nu = landscape.nu
    uniform = uniform_class_concentrations(nu)
    if landscape.is_error_class_landscape:
        gamma = ReducedSolver(nu, p, landscape).solve().concentrations
    else:
        mut = UniformMutation(nu, p)
        res = PowerIteration(Fmmp(mut, landscape), tol=1e-11, max_iterations=500_000).solve(
            landscape.start_vector(), landscape=landscape
        )
        gamma = class_concentrations(res.concentrations, nu)
    return float(np.abs(gamma - uniform).max() / uniform.max())


def _is_delocalized(landscape: FitnessLandscape, p: float, *, rtol: float) -> bool:
    """Is the stationary distribution uniform (within rtol·scale) at p?"""
    return _distance_to_uniform(landscape, p) <= rtol


def find_threshold(
    landscape: FitnessLandscape,
    *,
    p_lo: float = 1e-4,
    p_hi: float = 0.45,
    rtol: float = 0.02,
    tol_p: float = 1e-4,
    max_bisections: int = 60,
) -> float | None:
    """Locate ``p_max`` by bisection on the delocalization criterion.

    Returns ``None`` when no transition exists in ``(p_lo, p_hi)`` —
    either the population is already delocalized at ``p_lo`` or it stays
    ordered through ``p_hi`` (smooth landscapes reach uniform only
    asymptotically).

    Parameters
    ----------
    landscape:
        Any landscape (exact reduced path for Hamming structure, the
        fast general solver otherwise).
    p_lo, p_hi:
        Bracketing error rates.
    rtol:
        Uniformity tolerance relative to the distribution scale (the
        Fig. 1 plotting-resolution criterion).
    tol_p:
        Bisection resolution in ``p``.
    """
    p_lo = check_error_rate(p_lo)
    p_hi = check_error_rate(p_hi)
    if p_lo >= p_hi:
        raise ValidationError("need p_lo < p_hi")
    if _is_delocalized(landscape, p_lo, rtol=rtol):
        return None  # already above threshold at the lower bracket
    if not _is_delocalized(landscape, p_hi, rtol=rtol):
        return None  # no transition inside the bracket
    lo, hi = p_lo, p_hi
    for _ in range(max_bisections):
        if hi - lo <= tol_p:
            break
        mid = 0.5 * (lo + hi)
        if _is_delocalized(landscape, mid, rtol=rtol):
            hi = mid
        else:
            lo = mid
    p_star = 0.5 * (lo + hi)
    # Sharpness check: a genuine error threshold is a *sudden* change
    # (paper Sec. 1.1) — just below p*, the distribution must still be
    # strongly ordered.  Smooth landscapes (e.g. linear) drift into
    # uniformity gradually on their way to p = 1/2 and fail this test.
    below = max(p_lo, p_star * 0.85)
    if below < p_star and _distance_to_uniform(landscape, below) < 10.0 * rtol:
        return None
    return p_star


@dataclass
class MutagenesisAssessment:
    """Planning summary for a virus at error rate ``p``.

    Attributes
    ----------
    p_current:
        The virus's natural error rate.
    p_max:
        The landscape's threshold (``None`` if no sharp threshold).
    margin:
        ``p_max − p_current`` — the additional per-site error rate a
        mutagen must induce (negative: already past the threshold).
    fold_increase:
        ``p_max / p_current`` — the dose expressed as a fold change.
    master_concentration:
        Current master-class concentration (how entrenched the wild
        type is before treatment).
    """

    p_current: float
    p_max: float | None
    margin: float | None
    fold_increase: float | None
    master_concentration: float

    @property
    def treatable(self) -> bool:
        """Whether a sharp threshold exists to push the virus over."""
        return self.p_max is not None


def mutagenesis_margin(
    landscape: FitnessLandscape,
    p_current: float,
    *,
    rtol: float = 0.02,
    tol_p: float = 1e-4,
) -> MutagenesisAssessment:
    """Assess the mutagenic dose needed to cross the error threshold."""
    p_current = check_error_rate(p_current)
    nu = landscape.nu
    if landscape.is_error_class_landscape:
        gamma = ReducedSolver(nu, p_current, landscape).solve().concentrations
    else:
        mut = UniformMutation(nu, p_current)
        res = PowerIteration(Fmmp(mut, landscape), tol=1e-11, max_iterations=500_000).solve(
            landscape.start_vector(), landscape=landscape
        )
        gamma = class_concentrations(res.concentrations, nu)
    p_max = find_threshold(landscape, rtol=rtol, tol_p=tol_p)
    if p_max is None:
        return MutagenesisAssessment(
            p_current=p_current,
            p_max=None,
            margin=None,
            fold_increase=None,
            master_concentration=float(gamma[0]),
        )
    return MutagenesisAssessment(
        p_current=p_current,
        p_max=p_max,
        margin=p_max - p_current,
        fold_increase=p_max / p_current,
        master_concentration=float(gamma[0]),
    )
